(* ftb — fault tolerance boundary analysis CLI.

   Subcommands:
     list                         list available benchmark programs
     campaign  BENCH              run a fault-injection campaign
     boundary  BENCH              infer a boundary from a random sample
     adaptive  BENCH              run the progressive/adaptive sampler
     report    BENCH              exhaustive-campaign study of one benchmark
     serve                        run the campaign daemon
     submit    BENCH              queue a campaign on a running daemon
     jobs                         list daemon jobs
     watch     ID                 stream a daemon job's progress
     cancel    ID                 cancel a daemon job *)

open Cmdliner

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let logs_term = Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let bench_arg =
  let doc =
    Printf.sprintf "Benchmark program to analyse. One of: %s."
      (String.concat ", " (Ftb_kernels.Suite.names ()))
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed for sampling.")

let fraction_arg =
  Arg.(
    value
    & opt float 0.01
    & info [ "fraction"; "f" ] ~docv:"F"
        ~doc:"Fraction of the (site, bit) sample space to draw, in (0, 1].")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write CSV files under $(docv).")

let model_conv =
  let parse s =
    match Ftb_inject.Models.spec_of_string s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print ppf spec =
    Format.pp_print_string ppf (Ftb_inject.Models.spec_to_string spec)
  in
  Arg.conv ~docv:"MODEL" (parse, print)

let model_arg =
  Arg.(
    value
    & opt model_conv Ftb_inject.Models.default_spec
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          "Fault model of the campaign: $(b,bit-flip-64) (the default, the paper's \
           model), $(b,bit-flip-32), $(b,adjacent-burst-2), or \
           $(b,random-value:LO:HI[:SEED]) (stochastic value replacement drawn \
           uniformly from [LO, HI), deterministically derived per case from SEED).")

(* One parser for the adaptive-campaign knobs, shared verbatim by
   `campaign --adaptive` and `submit --adaptive` so both accept the same
   flags, share the same defaults ({!Ftb_core.Adaptive.default_config})
   and reject the same out-of-range values as usage errors (exit 2) with
   the library's own message. *)
let adaptive_config_term =
  let d = Ftb_core.Adaptive.default_config in
  let round_fraction_arg =
    Arg.(
      value
      & opt float d.Ftb_core.Adaptive.round_fraction
      & info [ "round-fraction" ] ~docv:"F"
          ~doc:"Fraction of the case space drawn per adaptive round, in (0, 1].")
  in
  let stop_sdc_arg =
    Arg.(
      value
      & opt float d.Ftb_core.Adaptive.stop_sdc_fraction
      & info [ "stop-sdc" ] ~docv:"F"
          ~doc:
            "Convergence criterion: stop when at least this fraction of a round's \
             samples are SDC, in (0, 1].")
  in
  let max_rounds_arg =
    Arg.(
      value
      & opt int d.Ftb_core.Adaptive.max_rounds
      & info [ "max-rounds" ] ~docv:"N"
          ~doc:"Hard cap on adaptive rounds (positive).")
  in
  let no_filter_arg =
    Arg.(
      value & flag
      & info [ "no-filter" ]
          ~doc:"Skip the sec. 3.5 filter operation when folding rounds into the boundary.")
  in
  let no_bias_arg =
    Arg.(
      value & flag
      & info [ "no-bias" ]
          ~doc:
            "Draw each round uniformly instead of biasing candidate selection by \
             inverse information (sec. 3.4).")
  in
  let build round_fraction stop_sdc max_rounds no_filter no_bias =
    let config =
      {
        Ftb_core.Adaptive.round_fraction;
        stop_sdc_fraction = stop_sdc;
        max_rounds;
        filter = not no_filter;
        bias = not no_bias;
      }
    in
    match Ftb_core.Adaptive.check_config config with
    | () -> config
    | exception Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  Term.(
    const build $ round_fraction_arg $ stop_sdc_arg $ max_rounds_arg $ no_filter_arg
    $ no_bias_arg)

let find_program name =
  match Ftb_kernels.Suite.find name with
  | program -> program
  | exception Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

let pct = Ftb_report.Ascii.percent

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () json =
    if json then begin
      (* Machine-readable listing for service clients and scripts — the
         aligned text below is for humans and not parse-stable. *)
      let module J = Ftb_service.Json in
      let entries =
        List.map
          (fun (name, program) ->
            let p = Lazy.force program in
            let golden = Ftb_trace.Golden.run p in
            J.Obj
              [
                ("name", J.String name);
                ("description", J.String p.Ftb_trace.Program.description);
                ("tolerance", J.Float p.Ftb_trace.Program.tolerance);
                ("sites", J.Int (Ftb_trace.Golden.sites golden));
              ])
          Ftb_kernels.Suite.all
      in
      print_endline (J.to_string (J.List entries))
    end
    else
      List.iter
        (fun (name, program) ->
          let p = Lazy.force program in
          Printf.printf "%-8s %s (T = %g)\n" name p.Ftb_trace.Program.description
            p.Ftb_trace.Program.tolerance)
        Ftb_kernels.Suite.all
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit a JSON array (name, description, tolerance, site count) instead of \
             aligned text. Runs each benchmark's golden trace to size its site count.")
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available benchmark programs")
    Term.(const run $ logs_term $ json_arg)

(* ------------------------------------------------------------------ *)

let campaign_run () name exhaustive adaptive aconfig fraction seed model csv checkpoint
    checkpoint_every resume fuel domains =
  let module Models = Ftb_inject.Models in
  if exhaustive && adaptive then begin
    Printf.eprintf "--exhaustive and --adaptive are mutually exclusive\n";
    exit 2
  end;
  (* A junk FTB_DOMAINS should be a usage error, not a backtrace — even
     when --domains was not passed. *)
  let domains = Ftb_util.Domains.default_or_exit ?flag:domains () in
  let program = find_program name in
  let golden = Ftb_trace.Golden.run program in
  let sites = Ftb_trace.Golden.sites golden in
  Printf.printf "%s: %d dynamic instructions, %d fault cases (%s)\n" name sites
    (Models.total_cases model ~sites)
    (Models.spec_name model);
  if adaptive then begin
    let module A = Ftb_core.Adaptive in
    let module AE = Ftb_plan.Adaptive_engine in
    let result, stats =
      AE.run ~config:aconfig ~spec:model ?fuel ?checkpoint
        ~on_round:(fun ~round ~drawn ~masked ~sdc ~crash ->
          Printf.printf "  round %2d: %d samples (%d masked, %d sdc, %d crash)\n%!" round
            drawn masked sdc crash)
        ~name ~seed golden
    in
    if stats.AE.resumed_rounds > 0 then
      Printf.printf "  resumed %d round%s (%d samples) from checkpoint\n"
        stats.AE.resumed_rounds
        (if stats.AE.resumed_rounds = 1 then "" else "s")
        stats.AE.resumed_samples;
    let masked, sdc, crash = Ftb_inject.Sample_run.count_outcomes result.A.samples in
    Printf.printf "adaptive campaign: %d rounds, stopped: %s\n" result.A.rounds
      (A.stop_reason_to_string result.A.stop_reason);
    Printf.printf "  %d samples (%s of the space): %d masked, %d sdc, %d crash\n"
      (Array.length result.A.samples)
      (pct result.A.sample_fraction)
      masked sdc crash;
    Printf.printf "  fresh samples this run: %d\n" stats.AE.fresh_samples
  end
  else if exhaustive then begin
    let module E = Ftb_campaign.Engine in
    let config =
      {
        E.default_config with
        E.checkpoint_every;
        domains;
        fuel;
        resume;
        model;
        (* A corrupt checkpoint should cost the user the resume, not the
           campaign: quarantine it for post-mortem and rebuild. *)
        on_invalid_checkpoint = E.Restart;
        on_checkpoint =
          (if checkpoint = None then None
           else
             Some
               (fun ~shards_done ~shards_total ->
                 Logs.info (fun m ->
                     m "checkpoint: %d/%d shards" shards_done shards_total)));
      }
    in
    let report = E.run ~config ?checkpoint golden in
    (match report.E.quarantined with
    | Some path ->
        Printf.printf
          "warning: checkpoint was corrupt — moved to %s, campaign restarted from \
           scratch\n"
          path
    | None -> ());
    let gt = report.E.ground_truth in
    Printf.printf "exhaustive campaign:\n  masked %s\n  sdc    %s\n  crash  %s\n"
      (pct (Ftb_inject.Ground_truth.masked_ratio gt))
      (pct (Ftb_inject.Ground_truth.sdc_ratio gt))
      (pct (Ftb_inject.Ground_truth.crash_ratio gt));
    let c = Ftb_inject.Ground_truth.crash_counts gt in
    Printf.printf "  crash reasons: %d nan, %d inf, %d exception, %d fuel-exhausted\n"
      c.Ftb_inject.Ground_truth.nan c.Ftb_inject.Ground_truth.inf
      c.Ftb_inject.Ground_truth.exn c.Ftb_inject.Ground_truth.fuel;
    if checkpoint <> None then
      Printf.printf
        "  shards: %d total, %d resumed from checkpoint, %d executed, %d retried, %d \
         checkpoints written\n"
        report.E.total_shards report.E.resumed_shards report.E.executed_shards
        report.E.retries report.E.checkpoints_written;
    match csv with
    | None -> ()
    | Some dir ->
        let table = Ftb_util.Table.create [ "site"; "phase"; "sdc_ratio" ] in
        Array.iteri
          (fun site ratio ->
            Ftb_util.Table.add_row table
              [
                string_of_int site;
                Ftb_trace.Golden.phase_of_site golden site;
                Printf.sprintf "%.6f" ratio;
              ])
          (Ftb_inject.Ground_truth.site_sdc_ratio gt);
        let path = Ftb_util.Table.save_csv ~dir ~name:(name ^ "_site_sdc") table in
        Printf.printf "wrote %s\n" path
  end
  else begin
    let rng = Ftb_util.Rng.create ~seed in
    (* The default model keeps the historical sampler byte-for-byte;
       other models draw from their own dense case space and classify
       through the model-aware contained runner (same split as the
       daemon's sample jobs). *)
    let masked, sdc, crash, runs =
      if Models.spec_equal model Models.default_spec then begin
        let cases = Ftb_inject.Sample_run.draw_uniform rng golden ~fraction in
        let samples = Ftb_inject.Sample_run.run_cases ?fuel golden cases in
        let masked, sdc, crash = Ftb_inject.Sample_run.count_outcomes samples in
        (masked, sdc, crash, Array.length samples)
      end
      else begin
        let n = Models.total_cases model ~sites in
        let k = max 1 (int_of_float (Float.ceil (fraction *. float_of_int n))) in
        let cases = Ftb_util.Sampling.uniform rng ~n ~k:(min k n) in
        let masked = ref 0 and sdc = ref 0 and crash = ref 0 in
        Array.iter
          (fun case ->
            match
              Ftb_inject.Ground_truth.outcome_of_byte
                (Ftb_inject.Ground_truth.case_byte_model ?fuel model golden case)
            with
            | Ftb_trace.Runner.Masked -> incr masked
            | Ftb_trace.Runner.Sdc -> incr sdc
            | Ftb_trace.Runner.Crash -> incr crash)
          cases;
        (!masked, !sdc, !crash, Array.length cases)
      end
    in
    let total = float_of_int runs in
    Printf.printf "monte carlo campaign (%s of the space, %d runs):\n" (pct fraction)
      runs;
    Printf.printf "  masked %s\n  sdc    %s\n  crash  %s\n"
      (pct (float_of_int masked /. total))
      (pct (float_of_int sdc /. total))
      (pct (float_of_int crash /. total))
  end

let campaign_cmd =
  let exhaustive_arg =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:"Run the complete campaign (every bit of every dynamic instruction).")
  in
  let adaptive_arg =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Run the sec. 3.4 progressive/adaptive sampler through the round engine: \
             plan, execute and fold biased rounds until the $(b,--stop-sdc) criterion \
             converges. With $(b,--checkpoint) the campaign is kill-safe at round \
             granularity and resumes bit-identically.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Checkpoint file for the exhaustive or adaptive campaign: partial state is \
             written here atomically so an interrupted campaign can be resumed (with \
             $(b,--resume) for exhaustive; adaptive campaigns resume automatically when \
             the checkpoint matches the campaign identity).")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Write a checkpoint every $(docv) completed shards.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the $(b,--checkpoint) file if it exists (validated against the \
             golden run); without this flag an existing checkpoint is ignored and \
             overwritten.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Per-case dynamic-instruction budget; faults that keep the program from \
             converging terminate as fuel-exhausted crashes instead of hanging.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains for the exhaustive campaign (1 = serial). Precedence: this \
             flag wins; otherwise the $(b,FTB_DOMAINS) environment variable; otherwise \
             the recommended domain count capped to 8.")
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run a fault-injection campaign on a benchmark")
    Term.(
      const campaign_run $ logs_term $ bench_arg $ exhaustive_arg $ adaptive_arg
      $ adaptive_config_term $ fraction_arg $ seed_arg $ model_arg $ csv_arg
      $ checkpoint_arg $ checkpoint_every_arg $ resume_arg $ fuel_arg $ domains_arg)

(* ------------------------------------------------------------------ *)

let boundary_run () name fraction filter seed evaluate =
  let program = find_program name in
  let golden = Ftb_trace.Golden.run program in
  let sites = Ftb_trace.Golden.sites golden in
  let rng = Ftb_util.Rng.create ~seed in
  let cases = Ftb_inject.Sample_run.draw_uniform rng golden ~fraction in
  let samples = Ftb_inject.Sample_run.run_cases golden cases in
  let boundary = Ftb_core.Boundary.infer ~filter ~sites samples in
  let masked, sdc, crash = Ftb_inject.Sample_run.count_outcomes samples in
  Printf.printf "%s: boundary from %d samples (%s), filter %s\n" name
    (Array.length samples) (pct fraction)
    (if filter then "on" else "off");
  Printf.printf "  sample outcomes: %d masked, %d sdc, %d crash\n" masked sdc crash;
  let supported = ref 0 in
  Array.iter (fun s -> if s > 0 then incr supported) boundary.Ftb_core.Boundary.support;
  Printf.printf "  sites with evidence: %d / %d (%s)\n" !supported sites
    (pct (float_of_int !supported /. float_of_int sites));
  Printf.printf "  uncertainty (self-verified precision): %s\n"
    (pct (Ftb_core.Metrics.uncertainty boundary golden samples));
  let observations = Ftb_core.Predict.observations_of_samples samples in
  Printf.printf "  predicted overall SDC ratio: %s\n"
    (pct
       (Ftb_core.Predict.overall_sdc_ratio ~policy:Ftb_core.Predict.Observed_all
          ~observations boundary golden));
  if evaluate then begin
    Printf.printf "running exhaustive campaign for ground-truth evaluation...\n%!";
    let gt = Ftb_inject.Ground_truth.run golden in
    let e = Ftb_core.Metrics.evaluate boundary gt in
    Printf.printf "  true SDC ratio: %s\n" (pct (Ftb_inject.Ground_truth.sdc_ratio gt));
    Printf.printf "  precision %s, recall %s\n" (pct e.Ftb_core.Metrics.precision)
      (pct e.Ftb_core.Metrics.recall)
  end

(* The default term of the `boundary` command group; the store-facing
   subcommands (query / list / export / gc) are defined with the other
   service commands below. *)
let boundary_infer_term =
  let filter_arg =
    Arg.(value & flag & info [ "filter" ] ~doc:"Apply the SDC filter operation (sec. 3.5).")
  in
  let evaluate_arg =
    Arg.(
      value & flag
      & info [ "evaluate" ]
          ~doc:"Also run the exhaustive campaign and report precision/recall.")
  in
  Term.(
    const boundary_run $ logs_term $ bench_arg $ fraction_arg $ filter_arg $ seed_arg
    $ evaluate_arg)

(* ------------------------------------------------------------------ *)

let adaptive_run () name round_fraction stop seed evaluate =
  let program = find_program name in
  let golden = Ftb_trace.Golden.run program in
  let config =
    {
      Ftb_core.Adaptive.default_config with
      Ftb_core.Adaptive.round_fraction;
      stop_sdc_fraction = stop;
    }
  in
  let result =
    Ftb_core.Adaptive.run ~config
      ~on_round:(fun ~round ~drawn ~masked ~sdc ~crash ->
        Printf.printf "  round %2d: %d samples (%d masked, %d sdc, %d crash)\n" round drawn
          masked sdc crash)
      (Ftb_util.Rng.create ~seed) golden
  in
  Printf.printf "%s: adaptive sampling finished after %d rounds (%s)\n" name
    result.Ftb_core.Adaptive.rounds
    (match result.Ftb_core.Adaptive.stop_reason with
    | Ftb_core.Adaptive.Converged -> "converged"
    | Ftb_core.Adaptive.Pool_exhausted -> "candidate pool exhausted"
    | Ftb_core.Adaptive.Round_cap -> "round cap reached");
  Printf.printf "  samples used: %s of the space\n"
    (pct result.Ftb_core.Adaptive.sample_fraction);
  let observations =
    Ftb_core.Predict.observations_of_samples result.Ftb_core.Adaptive.samples
  in
  Printf.printf "  predicted overall SDC ratio: %s\n"
    (pct
       (Ftb_core.Predict.overall_sdc_ratio ~policy:Ftb_core.Predict.Observed_all
          ~observations result.Ftb_core.Adaptive.boundary golden));
  if evaluate then begin
    Printf.printf "running exhaustive campaign for ground-truth evaluation...\n%!";
    let gt = Ftb_inject.Ground_truth.run golden in
    Printf.printf "  true SDC ratio: %s\n" (pct (Ftb_inject.Ground_truth.sdc_ratio gt));
    let e = Ftb_core.Metrics.evaluate result.Ftb_core.Adaptive.boundary gt in
    Printf.printf "  precision %s, recall %s\n" (pct e.Ftb_core.Metrics.precision)
      (pct e.Ftb_core.Metrics.recall)
  end

let adaptive_cmd =
  let round_arg =
    Arg.(
      value & opt float 0.001
      & info [ "round-fraction" ] ~docv:"F" ~doc:"Fraction of the space drawn per round.")
  in
  let stop_arg =
    Arg.(
      value & opt float 0.95
      & info [ "stop" ] ~docv:"F"
          ~doc:"Stop when at least this fraction of a round's samples are SDC.")
  in
  let evaluate_arg =
    Arg.(
      value & flag
      & info [ "evaluate" ]
          ~doc:"Also run the exhaustive campaign and report precision/recall.")
  in
  Cmd.v
    (Cmd.info "adaptive" ~doc:"Run the progressive/adaptive sampling method (sec. 3.4)")
    Term.(
      const adaptive_run $ logs_term $ bench_arg $ round_arg $ stop_arg $ seed_arg
      $ evaluate_arg)

(* ------------------------------------------------------------------ *)

let protect_run () name fraction seed budgets =
  let program = find_program name in
  let golden = Ftb_trace.Golden.run program in
  let sites = Ftb_trace.Golden.sites golden in
  let rng = Ftb_util.Rng.create ~seed in
  let cases = Ftb_inject.Sample_run.draw_uniform rng golden ~fraction in
  let samples = Ftb_inject.Sample_run.run_cases golden cases in
  let boundary = Ftb_core.Boundary.infer ~filter:true ~sites samples in
  let observations = Ftb_core.Predict.observations_of_samples samples in
  let plan =
    Ftb_core.Protection.plan ~policy:Ftb_core.Predict.Observed_all ~observations boundary
      golden
  in
  Printf.printf "%s: protection plan from a %s sample (%d runs)\n" name (pct fraction)
    (Array.length samples);
  Printf.printf "running exhaustive campaign to score the plan...\n%!";
  let gt = Ftb_inject.Ground_truth.run golden in
  let evaluations = Ftb_core.Protection.evaluate plan gt ~budgets:(Array.of_list budgets) in
  let table =
    Ftb_util.Table.create [ "budget"; "residual SDC"; "eliminated"; "efficiency" ]
  in
  Array.iter
    (fun (e : Ftb_core.Protection.evaluation) ->
      Ftb_util.Table.add_row table
        [
          pct e.Ftb_core.Protection.budget;
          pct e.Ftb_core.Protection.residual_sdc_ratio;
          pct e.Ftb_core.Protection.eliminated_sdc;
          pct e.Ftb_core.Protection.efficiency;
        ])
    evaluations;
  print_string (Ftb_util.Table.render ~title:"Selective protection" table)

let protect_cmd =
  let budgets_arg =
    Arg.(
      value
      & opt (list float) [ 0.01; 0.05; 0.1; 0.2 ]
      & info [ "budgets" ] ~docv:"B,..."
          ~doc:"Protection budgets as fractions of all sites.")
  in
  Cmd.v
    (Cmd.info "protect" ~doc:"Rank sites for selective protection and score the ranking")
    Term.(const protect_run $ logs_term $ bench_arg $ fraction_arg $ seed_arg $ budgets_arg)

(* ------------------------------------------------------------------ *)

let models_run () name exhaustive samples_per_site seed fuel domains csv =
  let program = find_program name in
  let golden = Ftb_trace.Golden.run program in
  if exhaustive then begin
    (* The cross-model results family: one full campaign per model, via
       the same model-aware executor the campaign engine uses. *)
    let domains = Ftb_util.Domains.default_or_exit ?flag:domains () in
    let result =
      Ftb_core.Study_models.run ~domains ?fuel ~name golden
        (Ftb_core.Study_models.default_specs ~seed)
    in
    print_string (Ftb_report.Render.model_table [ result ]);
    match csv with
    | None -> ()
    | Some dir ->
        List.iter
          (fun path -> Printf.printf "wrote %s\n" path)
          (Ftb_report.Render.save_all ~dir
             (Ftb_report.Render.csv_model_table [ result ]))
  end
  else begin
    let rng = Ftb_util.Rng.create ~seed in
    let models =
      Ftb_inject.Models.all_discrete
      @ [ Ftb_inject.Models.Random_value { lo = -1e3; hi = 1e3 } ]
    in
    Printf.printf "%s: SDC sensitivity to the fault model (%d injections per site)\n" name
      samples_per_site;
    let table = Ftb_util.Table.create [ "model"; "runs"; "masked"; "sdc"; "crash" ] in
    List.iter
      (fun (c : Ftb_inject.Models.campaign) ->
        Ftb_util.Table.add_row table
          [
            Ftb_inject.Models.name c.Ftb_inject.Models.model;
            string_of_int c.Ftb_inject.Models.total.Ftb_inject.Models.runs;
            pct c.Ftb_inject.Models.masked_ratio;
            pct c.Ftb_inject.Models.sdc_ratio;
            pct c.Ftb_inject.Models.crash_ratio;
          ])
      (Ftb_inject.Models.compare_models ~samples_per_site rng golden models);
    print_string (Ftb_util.Table.render table)
  end

let models_cmd =
  let samples_arg =
    Arg.(
      value & opt int 4
      & info [ "samples-per-site" ] ~docv:"N" ~doc:"Injections drawn per dynamic instruction.")
  in
  let exhaustive_arg =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:
            "Run the complete campaign under every model (instead of a small \
             Monte-Carlo sample) and print the cross-model comparison table.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N" ~doc:"Per-case dynamic-instruction budget.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:"Worker domains for the exhaustive campaigns (1 = serial).")
  in
  Cmd.v
    (Cmd.info "models" ~doc:"Compare SDC ratios under alternative fault models")
    Term.(
      const models_run $ logs_term $ bench_arg $ exhaustive_arg $ samples_arg $ seed_arg
      $ fuel_arg $ domains_arg $ csv_arg)

(* ------------------------------------------------------------------ *)

let propagation_run () name site bit fraction seed =
  let program = find_program name in
  let golden = Ftb_trace.Golden.run program in
  let sites = Ftb_trace.Golden.sites golden in
  let site = if site >= 0 then site else sites / 2 in
  if site >= sites then begin
    Printf.eprintf "site %d out of range (program has %d dynamic instructions)\n" site sites;
    exit 2
  end;
  (* One experiment's wave... *)
  let fault = Ftb_trace.Fault.make ~site ~bit in
  let prop = Ftb_trace.Runner.run_propagation golden fault in
  print_string (Ftb_report.Propagation_view.wave golden prop);
  (* ...and the aggregate phase-to-phase matrix from a sample. *)
  let rng = Ftb_util.Rng.create ~seed in
  let cases = Ftb_inject.Sample_run.draw_uniform rng golden ~fraction in
  let samples = Ftb_inject.Sample_run.run_cases golden cases in
  print_newline ();
  print_string
    (Ftb_report.Propagation_view.render_matrix
       (Ftb_report.Propagation_view.phase_matrix golden samples))

let propagation_cmd =
  let site_arg =
    Arg.(
      value & opt int (-1)
      & info [ "site" ] ~docv:"I" ~doc:"Injection site for the wave view (default: middle).")
  in
  let bit_arg =
    Arg.(value & opt int 52 & info [ "bit" ] ~docv:"B" ~doc:"Bit to flip for the wave view.")
  in
  Cmd.v
    (Cmd.info "propagation"
       ~doc:"Visualise error propagation: one experiment's wave and the phase matrix")
    Term.(const propagation_run $ logs_term $ bench_arg $ site_arg $ bit_arg $ fraction_arg $ seed_arg)

(* ------------------------------------------------------------------ *)

let report_run () name csv =
  let program = find_program name in
  let context = Ftb_core.Context.prepare ~name program in
  let result = Ftb_core.Study_exhaustive.run context in
  print_string (Ftb_report.Render.table1 [ result ]);
  print_newline ();
  print_string (Ftb_report.Render.crash_table [ result ]);
  print_newline ();
  print_string (Ftb_report.Render.fig3 [ result ]);
  match csv with
  | None -> ()
  | Some dir ->
      List.iter
        (fun p -> Printf.printf "wrote %s\n" p)
        (Ftb_report.Render.save_all ~dir
           (Ftb_report.Render.csv_table1 [ result ]
           @ Ftb_report.Render.csv_crash_table [ result ]
           @ Ftb_report.Render.csv_fig3 [ result ]))

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Exhaustive-campaign resiliency report for one benchmark")
    Term.(const report_run $ logs_term $ bench_arg $ csv_arg)

(* ------------------------------------------------------------------ *)
(* Campaign service: daemon + clients                                  *)

module Service = Ftb_service

let default_state_dir = "_ftb_service"

let state_arg =
  Arg.(
    value & opt string default_state_dir
    & info [ "state" ] ~docv:"DIR"
        ~doc:"Daemon state directory (job descriptors and campaign checkpoints).")

let socket_of_state state = Filename.concat state "daemon.sock"

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          (Printf.sprintf
             "Unix-domain socket of the daemon (default: $(b,%s))."
             (socket_of_state default_state_dir)))

let serve_run () state socket tcp capacity domains checkpoint_every stuck_after
    lease_ttl audit_rate quarantine_after no_cache =
  let domains = Ftb_util.Domains.default_or_exit ?flag:domains () in
  let socket = Option.value socket ~default:(socket_of_state state) in
  (match stuck_after with
  | Some d when d <= 0. ->
      Printf.eprintf "--stuck-after must be positive (got %g)\n" d;
      exit 2
  | _ -> ());
  if lease_ttl <= 0. then begin
    Printf.eprintf "--lease-ttl must be positive (got %g)\n" lease_ttl;
    exit 2
  end;
  if not (audit_rate >= 0. && audit_rate <= 1.) then begin
    Printf.eprintf "--audit-rate must be in [0, 1] (got %g)\n" audit_rate;
    exit 2
  end;
  if quarantine_after <= 0 then begin
    Printf.eprintf "--quarantine-after must be positive (got %d)\n" quarantine_after;
    exit 2
  end;
  (* Every daemon is fleet-capable: remote `ftb worker` processes may
     attach at any time and exhaustive jobs submitted while workers are
     live run on the fleet instead of the local pool. *)
  let fleet = Ftb_dist.Fleet.create ~lease_ttl ~audit_rate ~quarantine_after () in
  let config =
    {
      (Service.Server.default_config ~state_dir:state) with
      Service.Server.capacity;
      domains;
      checkpoint_every;
      stuck_after;
      cache = not no_cache;
      extension = Some (Ftb_dist.Fleet.extension fleet);
      wave_runner = Some (Ftb_dist.Fleet.wave_runner fleet);
      round_runner = Some (Ftb_dist.Fleet.round_runner fleet);
      provenance =
        Some
          (fun ~job_id ->
            Ftb_dist.Fleet.job_provenance fleet ~job_id
            |> Option.map (fun jp ->
                   (jp.Ftb_dist.Fleet.jp_workers, jp.Ftb_dist.Fleet.jp_audited)));
    }
  in
  let t = Service.Server.create config in
  (* A conviction has three consequences: operators hear about it, any
     profile the liar ever touched leaves the cache, and watchers of the
     running job see the event inline. *)
  Ftb_dist.Fleet.set_on_quarantine fleet (fun ~name ~disputes ->
      Printf.printf
        "ftb daemon: worker %s QUARANTINED after %d disputed shards\n%!" name
        disputes;
      (match Service.Server.store t with
      | Some store ->
          let removed = Ftb_compose.Store.invalidate_worker store ~worker:name in
          if removed > 0 then
            Printf.printf
              "ftb daemon: purged %d cached profile%s with provenance from %s\n%!"
              removed
              (if removed = 1 then "" else "s")
              name
      | None -> ());
      Service.Server.notify_quarantine t ~worker:name ~disputes);
  Printf.printf
    "ftb daemon: state %s, socket %s, %d domain%s, queue capacity %d%s, lease ttl \
     %gs, audit rate %s, cache %s\n\
     %!"
    state socket domains
    (if domains = 1 then "" else "s")
    capacity
    (match stuck_after with
    | Some d -> Printf.sprintf ", stuck watchdog %gs" d
    | None -> "")
    lease_ttl
    (if audit_rate = 0. then "off" else pct audit_rate)
    (if no_cache then "off" else "on");
  Service.Server.run ?tcp ~socket t;
  Printf.printf "ftb daemon: drained\n"

let serve_cmd =
  let tcp_arg =
    Arg.(
      value
      & opt (some (pair ~sep:':' string int)) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Additionally listen on a TCP endpoint (opt-in; no authentication).")
  in
  let capacity_arg =
    Arg.(
      value & opt int 64
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Queue bound; further submissions are rejected with $(b,queue_full).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains for campaign execution. Precedence: this flag; then \
             $(b,FTB_DOMAINS); then the recommended count capped to 8.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Shard waves between checkpoint writes for exhaustive jobs.")
  in
  let stuck_after_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "stuck-after" ] ~docv:"SECONDS"
          ~doc:
            "Stuck-job watchdog: a running job that completes no shard wave for \
             this long is marked $(b,stuck) (terminal, checkpoint preserved) and \
             the queue moves on. Off by default.")
  in
  let lease_ttl_arg =
    Arg.(
      value & opt float 5.0
      & info [ "lease-ttl" ] ~docv:"SECONDS"
          ~doc:
            "Shard lease deadline for attached $(b,ftb worker) processes. A \
             worker that stops heartbeating for this long loses its lease and \
             the shard is reassigned.")
  in
  let audit_rate_arg =
    Arg.(
      value & opt float 0.02
      & info [ "audit-rate" ] ~docv:"FRACTION"
          ~doc:
            "Trust-but-verify: fraction of each fleet wave's remotely-committed \
             shards the daemon re-executes locally and compares digests on \
             (always at least one shard per worker per job). A mismatch marks \
             the shard disputed, triggers full re-execution of that worker's \
             commits, and counts toward $(b,--quarantine-after). $(b,0) \
             disables auditing — fleet-harvested cache profiles then stay \
             unaudited and are refused at submit time without \
             $(b,--trust-cache).")
  in
  let quarantine_after_arg =
    Arg.(
      value & opt int 2
      & info [ "quarantine-after" ] ~docv:"N"
          ~doc:
            "Quarantine a worker after N disputed (silently corrupt) shards: \
             its leases are revoked, re-registration under the same name is \
             refused, and every cached profile it touched is purged. Clear \
             with $(b,ftb workers --clear NAME).")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the compositional profile cache. By default the daemon \
             keeps per-section and whole-boundary outcome profiles under \
             $(b,<state>/cache) and serves byte-identical exhaustive \
             resubmissions from them — whole (completed at submit time, no \
             execution) or in part (only changed sections' cases run).")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the persistent campaign daemon")
    Term.(
      const serve_run $ logs_term $ state_arg $ socket_arg $ tcp_arg $ capacity_arg
      $ domains_arg $ checkpoint_every_arg $ stuck_after_arg $ lease_ttl_arg
      $ audit_rate_arg $ quarantine_after_arg $ no_cache_arg)

(* ------------------------------------------------------------------ *)
(* ftb worker: attach to a daemon and execute leased campaign shards. *)

let worker_run () connect domains name =
  let domains = Ftb_util.Domains.default_or_exit ?flag:domains () in
  let endpoint = Ftb_dist.Worker.endpoint_of_addr connect in
  let describe =
    match endpoint with
    | Ftb_dist.Worker.Unix_socket path -> path
    | Ftb_dist.Worker.Tcp (host, port) -> Printf.sprintf "%s:%d" host port
  in
  (* A stable default name (host + pid) keeps the worker's reputation in
     one place across reconnects: dispute counts accumulate against the
     name, and a quarantined name stays barred until the operator clears
     it. The daemon sanitizes whatever we send. *)
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s-%d" (Unix.gethostname ()) (Unix.getpid ())
  in
  let config =
    Ftb_dist.Worker.config ~domains ~name
      ~log:(fun msg -> Printf.printf "%s\n%!" msg)
      (fun () ->
        match Ftb_dist.Worker.connect_endpoint endpoint with
        | fd -> fd
        | exception Unix.Unix_error (err, _, _) ->
            Printf.eprintf "cannot reach daemon at %s: %s (is `ftb serve` running?)\n"
              describe (Unix.error_message err);
            exit 1)
  in
  Printf.printf "ftb worker: daemon %s, name %s, %d domain%s\n%!" describe name
    domains
    (if domains = 1 then "" else "s");
  match Ftb_dist.Worker.run config with
  | stats ->
      Printf.printf "ftb worker: done — %d shards (%d cases), %d failures, %d stale\n"
        stats.Ftb_dist.Worker.shards stats.Ftb_dist.Worker.cases
        stats.Ftb_dist.Worker.failures stats.Ftb_dist.Worker.stale_acks
  | exception Ftb_dist.Worker_proto.Decode_error msg ->
      Printf.eprintf
        "ftb worker: daemon refused registration: %s\n\
         (a quarantined name needs `ftb workers --clear %s` on the daemon host)\n"
        msg name;
      exit 1

let worker_cmd =
  let connect_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Daemon address: a Unix-domain socket path (the daemon's \
             $(b,--socket)) or $(b,HOST:PORT) for a daemon serving $(b,--tcp).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains for shard execution. Precedence: this flag; then \
             $(b,FTB_DOMAINS); then the recommended count capped to 8.")
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME"
          ~doc:
            "Stable worker identity for the daemon's trust ledger (default: \
             $(b,hostname-pid)). Dispute counts and quarantine decisions \
             attach to this name; a quarantined name is refused at \
             registration until cleared with $(b,ftb workers --clear).")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Attach to a campaign daemon and execute leased shards"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Registers with a running $(b,ftb serve) daemon, pulls campaign \
              shards under bounded leases, executes them on a local domain \
              pool with the same batched executor as the daemon itself, and \
              streams outcome bytes back. Multiple workers (on this or other \
              machines via $(b,--tcp)) scale a campaign out; outcome bytes \
              are bit-identical to a serial run regardless of worker count or \
              worker failures. Every result frame carries an outcome digest; \
              the daemon spot-audits committed shards by re-executing them \
              and quarantines workers whose results are disputed.";
         ])
    Term.(const worker_run $ logs_term $ connect_arg $ domains_arg $ name_arg)

let with_client socket f =
  let socket = Option.value socket ~default:(socket_of_state default_state_dir) in
  match Service.Client.connect ~socket with
  | client ->
      Fun.protect ~finally:(fun () -> Service.Client.close client) (fun () -> f client)
  | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "cannot reach daemon at %s: %s (is `ftb serve` running?)\n" socket
        (Unix.error_message err);
      exit 1

let die_error what (e : Service.Client.error) =
  Printf.eprintf "%s failed [%s]: %s\n" what e.Service.Client.code e.Service.Client.message;
  exit 1

let print_progress (e : Service.Client.event) =
  match e with
  | Service.Client.Progress
      { cases_done; cases_total; masked; sdc; crash; cases_per_sec; _ } ->
      Printf.printf "  %d/%d cases (%s) — %d masked, %d sdc, %d crash — %.0f cases/s\n%!"
        cases_done cases_total
        (pct
           (if cases_total = 0 then 0.
            else float_of_int cases_done /. float_of_int cases_total))
        masked sdc crash cases_per_sec
  | Service.Client.Round { round; drawn; masked; sdc; crash; samples_total; cases_total; _ }
    ->
      Printf.printf
        "  round %d: drew %d (%d masked, %d sdc, %d crash) — %d samples, %s of the \
         space\n\
         %!"
        round drawn masked sdc crash samples_total
        (pct
           (if cases_total = 0 then 0.
            else float_of_int samples_total /. float_of_int cases_total))
  | Service.Client.Worker_quarantined { worker; disputes; _ } ->
      Printf.printf
        "  worker %s QUARANTINED (%d disputed shards) — its results re-executed\n%!"
        worker disputes

let print_final id (job : Service.Job.info) =
  Printf.printf "job %d %s\n" id (Service.Job.status_name job.Service.Job.status);
  (match job.Service.Job.status with
  | Service.Job.Failed msg -> Printf.printf "  error: %s\n" msg
  | Service.Job.Stuck ->
      Printf.printf
        "  no shard-wave progress within the daemon's --stuck-after deadline\n\
        \  checkpoint preserved under the state directory; resubmit to retry,\n\
        \  or restart the daemon with a longer deadline\n"
  | _ -> ());
  let c = job.Service.Job.counts in
  if c.Service.Job.cases_done > 0 then
    Printf.printf "  %d cases: %d masked, %d sdc, %d crash\n" c.Service.Job.cases_done
      c.Service.Job.masked c.Service.Job.sdc c.Service.Job.crash;
  (match job.Service.Job.cache with
  | Service.Job.Cache_none -> ()
  | Service.Job.Cache_full ->
      Printf.printf "  served from cache: full (no cases executed)\n"
  | Service.Job.Cache_partial ->
      Printf.printf "  served from cache: partial (only changed sections executed)\n")

let watch_until_done client id =
  match Service.Client.watch ~on_event:print_progress client id with
  | Error e -> die_error "watch" e
  | Ok job -> print_final id job

let endpoint_of socket =
  let socket = Option.value socket ~default:(socket_of_state default_state_dir) in
  (socket, Service.Client.unix_endpoint ~socket)

let die_unreachable socket exn =
  Printf.eprintf
    "cannot reach daemon at %s after retries: %s (is `ftb serve` running?)\n" socket
    (match exn with
    | Unix.Unix_error (err, _, _) -> Unix.error_message err
    | e -> Printexc.to_string e);
  exit 1

let watch_retry_until_done socket endpoint id =
  match Service.Client.watch_retry ~on_event:print_progress endpoint id with
  | Error e -> die_error "watch" e
  | Ok job -> print_final id job
  | exception exn -> die_unreachable socket exn

let submit_run () name socket adaptive aconfig fraction seed model shard_size fuel
    priority trust_cache no_watch idem =
  let mode =
    match (adaptive, fraction) with
    | true, Some _ ->
        Printf.eprintf "--adaptive and --fraction are mutually exclusive\n";
        exit 2
    | true, None -> Service.Job.Adaptive { config = aconfig; seed }
    | false, Some fraction -> Service.Job.Sample { fraction; seed }
    | false, None -> Service.Job.Exhaustive
  in
  let spec =
    {
      (Service.Job.default_spec ~bench:name) with
      Service.Job.mode;
      shard_size;
      priority;
      model;
      trust_cache;
      fuel = (match fuel with Some _ -> fuel | None -> (Service.Job.default_spec ~bench:name).Service.Job.fuel);
    }
  in
  let announce id =
    (* "submitted", not "queued": a cache-served resubmission is already
       completed by the time the ACK arrives. *)
    Printf.printf "job %d submitted (%s, %s, %s)\n%!" id name
      (match mode with
      | Service.Job.Exhaustive -> "exhaustive"
      | Service.Job.Sample { fraction; _ } -> Printf.sprintf "sample %s" (pct fraction)
      | Service.Job.Adaptive { config; _ } ->
          Printf.sprintf "adaptive %s/round"
            (pct config.Ftb_core.Adaptive.round_fraction))
      (Ftb_inject.Models.spec_name model)
  in
  match idem with
  | Some key -> (
      (* An idempotency key makes blind retry safe: the whole submission
         goes through the backoff-retrying client, and a resubmission
         whose first ACK was lost dedupes server-side to the same job. *)
      let sock, endpoint = endpoint_of socket in
      match Service.Client.submit_retry endpoint ~idem:key spec with
      | Error e -> die_error "submit" e
      | exception exn -> die_unreachable sock exn
      | Ok id ->
          announce id;
          if not no_watch then watch_retry_until_done sock endpoint id)
  | None ->
      with_client socket (fun client ->
          match Service.Client.submit client spec with
          | Error e -> die_error "submit" e
          | Ok id ->
              announce id;
              if not no_watch then watch_until_done client id)

let submit_cmd =
  let adaptive_arg =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Queue a sec. 3.4 adaptive campaign (checkpointed per round, resumable \
             bit-identically across daemon restarts; distributed over attached \
             $(b,ftb worker) processes when any are live). The converged boundary is \
             published to the daemon's boundary store, and a resubmission of the \
             exact same campaign (benchmark, model, fuel, adaptive flags, seed) is \
             served from it instantly with zero fresh samples.")
  in
  let fraction_opt_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "fraction"; "f" ] ~docv:"F"
          ~doc:
            "Submit a Monte-Carlo sample of this fraction of the (site, bit) space \
             instead of the exhaustive (checkpointed, resumable) campaign.")
  in
  let shard_size_arg =
    Arg.(
      value & opt int 4096
      & info [ "shard-size" ] ~docv:"N"
          ~doc:"Cases per shard — the progress, checkpoint and cancellation granularity.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N" ~doc:"Per-case dynamic-instruction budget.")
  in
  let priority_arg =
    Arg.(
      value & opt int 0
      & info [ "priority" ] ~docv:"P" ~doc:"Higher priorities run first; FIFO within one.")
  in
  let trust_cache_arg =
    Arg.(
      value & flag
      & info [ "trust-cache" ]
          ~doc:
            "Accept cached profiles with $(i,unaudited) fleet provenance for \
             this job. By default a full-boundary cache hit whose bytes were \
             computed by fleet workers the daemon never audited (e.g. \
             $(b,--audit-rate 0)) is refused and the campaign re-executes; \
             profiles with $(b,local) or audited-fleet provenance are always \
             eligible.")
  in
  let no_watch_arg =
    Arg.(
      value & flag
      & info [ "no-watch"; "detach" ]
          ~doc:"Print the job id and return instead of streaming progress until done.")
  in
  let idem_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "idem" ] ~docv:"KEY"
          ~doc:
            "Idempotency key. Enables the retrying client (backoff tuned by \
             $(b,FTB_RETRY_BASE), $(b,FTB_RETRY_CAP), $(b,FTB_RETRY_ATTEMPTS)): \
             a resubmission with the same key maps to the already-created job \
             instead of running the campaign twice.")
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Queue a campaign on a running daemon")
    Term.(
      const submit_run $ logs_term $ bench_arg $ socket_arg $ adaptive_arg
      $ adaptive_config_term $ fraction_opt_arg $ seed_arg $ model_arg $ shard_size_arg
      $ fuel_arg $ priority_arg $ trust_cache_arg $ no_watch_arg $ idem_arg)

let jobs_run () socket json =
  with_client socket (fun client ->
      match Service.Client.list client with
      | Error e -> die_error "list" e
      | Ok jobs ->
          if json then
            print_endline
              (Service.Json.to_string
                 (Service.Json.List (List.map Service.Job.info_to_json jobs)))
          else if jobs = [] then print_endline "no jobs"
          else begin
            Printf.printf "%-4s %-10s %-10s %-9s %-12s %-8s %s\n" "id" "bench" "mode"
              "prio" "status" "cache" "progress";
            List.iter
              (fun (j : Service.Job.info) ->
                let c = j.Service.Job.counts in
                Printf.printf "%-4d %-10s %-10s %-9d %-12s %-8s %d/%d\n"
                  j.Service.Job.id j.Service.Job.spec.Service.Job.bench
                  (match j.Service.Job.spec.Service.Job.mode with
                  | Service.Job.Exhaustive -> "exhaustive"
                  | Service.Job.Sample _ -> "sample"
                  | Service.Job.Adaptive _ -> "adaptive")
                  j.Service.Job.spec.Service.Job.priority
                  (Service.Job.status_name j.Service.Job.status)
                  (Service.Job.cache_name j.Service.Job.cache)
                  c.Service.Job.cases_done c.Service.Job.cases_total)
              jobs
          end)

let jobs_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the job list as JSON.")
  in
  Cmd.v
    (Cmd.info "jobs" ~doc:"List jobs known to a running daemon")
    Term.(const jobs_run $ logs_term $ socket_arg $ json_arg)

let job_id_arg =
  Arg.(required & pos 0 (some int) None & info [] ~docv:"ID" ~doc:"Job id.")

let watch_cmd =
  (* Watching is read-only, so it always goes through the reconnecting
     client: a daemon restart mid-stream shows up as a short pause, not a
     dropped session, and resumed streams never repeat a wave. *)
  let run () socket id =
    let sock, endpoint = endpoint_of socket in
    watch_retry_until_done sock endpoint id
  in
  Cmd.v
    (Cmd.info "watch" ~doc:"Stream a daemon job's progress until it finishes")
    Term.(const run $ logs_term $ socket_arg $ job_id_arg)

let cancel_cmd =
  let run () socket id =
    with_client socket (fun client ->
        match Service.Client.cancel client id with
        | Error e -> die_error "cancel" e
        | Ok job ->
            Printf.printf "job %d %s\n" id
              (match job.Service.Job.status with
              | Service.Job.Running -> "cancellation requested (at next shard wave)"
              | status -> Service.Job.status_name status))
  in
  Cmd.v
    (Cmd.info "cancel" ~doc:"Cancel a queued or running daemon job")
    Term.(const run $ logs_term $ socket_arg $ job_id_arg)

(* ------------------------------------------------------------------ *)
(* ftb cache: inspect and maintain the daemon's profile store.         *)

let cache_run () state action keep prefix all from_worker =
  let root = Service.Server.cache_dir ~state_dir:state in
  let store = Ftb_compose.Store.open_ ~root in
  match action with
  | `Stats ->
      let s = Ftb_compose.Store.stats store in
      Printf.printf
        "cache %s\n\
        \  %d entries: %d section profiles, %d boundary profiles (%d bytes)\n\
        \  %d with unaudited fleet provenance (refused without --trust-cache)\n\
        \  %d quarantined\n"
        root s.Ftb_compose.Store.entries s.Ftb_compose.Store.sections
        s.Ftb_compose.Store.boundaries s.Ftb_compose.Store.bytes
        s.Ftb_compose.Store.unaudited s.Ftb_compose.Store.quarantined
  | `Gc ->
      let removed = Ftb_compose.Store.gc store ~keep in
      Printf.printf "cache gc: removed %d entr%s, kept the newest %d\n" removed
        (if removed = 1 then "y" else "ies")
        keep
  | `Invalidate -> (
      match (prefix, all, from_worker) with
      | None, false, None ->
          Printf.eprintf
            "cache invalidate needs --prefix KEYPREFIX, --from-worker NAME or --all\n";
          exit 2
      | Some _, true, _ | Some _, _, Some _ | _, true, Some _ ->
          Printf.eprintf "--prefix, --all and --from-worker are mutually exclusive\n";
          exit 2
      | Some p, false, None ->
          let removed = Ftb_compose.Store.invalidate store ~prefix:p in
          Printf.printf "cache invalidate: removed %d entr%s with key prefix %s\n"
            removed
            (if removed = 1 then "y" else "ies")
            p
      | None, false, Some worker ->
          let removed = Ftb_compose.Store.invalidate_worker store ~worker in
          Printf.printf
            "cache invalidate: removed %d entr%s with provenance from worker %s\n"
            removed
            (if removed = 1 then "y" else "ies")
            worker
      | None, true, None ->
          let removed = Ftb_compose.Store.invalidate store ~prefix:"" in
          Printf.printf "cache invalidate: removed all %d entr%s\n" removed
            (if removed = 1 then "y" else "ies"))

let cache_cmd =
  let action_arg =
    let actions = [ ("stats", `Stats); ("gc", `Gc); ("invalidate", `Invalidate) ] in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION" ~doc:"One of $(b,stats), $(b,gc), $(b,invalidate).")
  in
  let keep_arg =
    Arg.(
      value & opt int 4096
      & info [ "keep" ] ~docv:"N"
          ~doc:"For $(b,gc): keep the N most recently written entries.")
  in
  let prefix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prefix" ] ~docv:"KEYPREFIX"
          ~doc:"For $(b,invalidate): remove entries whose content key starts with this.")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"For $(b,invalidate): remove every cache entry.")
  in
  let from_worker_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-worker" ] ~docv:"NAME"
          ~doc:
            "For $(b,invalidate): remove every entry whose provenance names \
             this fleet worker — the blast-radius purge after a quarantine \
             (the daemon runs the same purge automatically when it convicts \
             a worker; this covers stores the liar touched before the \
             conviction, audited entries included).")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Inspect or prune the daemon's compositional profile cache"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "The daemon keeps content-addressed outcome profiles under \
              $(b,<state>/cache): one per program section and one per whole \
              campaign boundary. $(b,stats) summarizes the store, $(b,gc) \
              bounds it to the newest N entries, and $(b,invalidate) removes \
              entries by content-key prefix, by fleet-worker provenance \
              ($(b,--from-worker)), or all of them. Corrupt entries are never \
              served; they are moved to a $(b,quarantine/) sibling and \
              rebuilt by the next campaign.";
         ])
    Term.(
      const cache_run $ logs_term $ state_arg $ action_arg $ keep_arg $ prefix_arg
      $ all_arg $ from_worker_arg)

(* ------------------------------------------------------------------ *)
(* ftb workers: the daemon's fleet trust ledger.                       *)

let workers_run () socket json clear =
  let socket = Option.value socket ~default:(socket_of_state default_state_dir) in
  let fd =
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX socket)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | fd -> fd
    | exception Unix.Unix_error (err, _, _) ->
        Printf.eprintf "cannot reach daemon at %s: %s (is `ftb serve` running?)\n"
          socket (Unix.error_message err);
        exit 1
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let module P = Ftb_dist.Worker_proto in
      match clear with
      | Some name -> (
          Service.Wire.write fd (P.workers_clear_request ~name);
          match P.parse_cleared (Service.Wire.read fd) with
          | true -> Printf.printf "worker %s cleared: it may register again\n" name
          | false ->
              Printf.printf "worker %s was not quarantined; nothing to clear\n" name
          | exception P.Decode_error msg ->
              Printf.eprintf "workers --clear failed: %s\n" msg;
              exit 1)
      | None -> (
          Service.Wire.write fd P.workers_request;
          let frame = Service.Wire.read fd in
          if json then print_endline (Service.Json.to_string frame)
          else
            match P.parse_workers frame with
            | exception P.Decode_error msg ->
                Printf.eprintf "workers failed: %s\n" msg;
                exit 1
            | [], [] -> print_endline "no workers attached, none quarantined"
            | rows, barred ->
                if rows <> [] then begin
                  Printf.printf "%-4s %-20s %-7s %-6s %-9s %-7s %-8s %s\n" "wid"
                    "name" "domains" "age" "committed" "failed" "disputed" "status";
                  List.iter
                    (fun (r : P.worker_row) ->
                      Printf.printf "%-4d %-20s %-7d %-6.1f %-9d %-7d %-8d %s\n"
                        r.P.row_wid r.P.row_name r.P.row_domains r.P.row_age
                        r.P.row_committed r.P.row_failed r.P.row_disputed
                        (if r.P.row_quarantined then "QUARANTINED" else "ok"))
                    rows
                end;
                List.iter
                  (fun (name, disputes) ->
                    Printf.printf
                      "barred: %s (%d disputed shards) — clear with `ftb workers \
                       --clear %s`\n"
                      name disputes name)
                  barred))

let workers_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the raw worker-stats frame as JSON.")
  in
  let clear_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "clear" ] ~docv:"NAME"
          ~doc:
            "Lift a worker's quarantine: its name may register again and its \
             dispute count restarts from zero. Purge the profiles it \
             poisoned separately ($(b,ftb cache invalidate --from-worker)) — \
             clearing the name does not restore trust in old bytes.")
  in
  Cmd.v
    (Cmd.info "workers"
       ~doc:"List a daemon's fleet workers, dispute counts and quarantines"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "The trust ledger of a running $(b,ftb serve) daemon: every \
              attached worker with its lifetime committed / failed / \
              disputed shard counts, plus the names currently barred by \
              quarantine. A worker is quarantined when spot audits \
              (re-execution of committed shards, $(b,--audit-rate)) dispute \
              too many of its results ($(b,--quarantine-after)).";
         ])
    Term.(const workers_run $ logs_term $ socket_arg $ json_arg $ clear_arg)

(* ------------------------------------------------------------------ *)
(* ftb boundary query/list/export/gc: the servable boundary store.     *)

module Bstore = Ftb_plan.Boundary_store

let open_bstore state =
  Bstore.open_ ~root:(Service.Server.boundaries_dir ~state_dir:state)

let bstore_model_arg =
  Arg.(
    value
    & opt (some model_conv) None
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          "Restrict the lookup to boundaries of this fault model (default: the \
           newest stored entry of any model).")

let find_latest_or_die bs name model =
  match Bstore.find_latest bs ~bench:name ?spec:model () with
  | Some entry -> entry
  | None ->
      Printf.eprintf
        "no stored boundary for %s under %s (run `ftb submit %s --adaptive` first)\n"
        name (Bstore.root bs) name;
      exit 1

let boundary_entry_line (e : Bstore.entry) =
  Printf.sprintf "%-10s %-14s %6d %7d %8d %-14s %-8s %s" e.Bstore.bench
    (Ftb_inject.Models.spec_to_string e.Bstore.spec)
    e.Bstore.sites e.Bstore.rounds e.Bstore.samples
    (Ftb_core.Adaptive.stop_reason_to_string e.Bstore.stop)
    (pct e.Bstore.uncertainty) e.Bstore.key

let boundary_query_cmd =
  let site_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "site" ] ~docv:"I" ~doc:"Dynamic instruction (injection site) to query.")
  in
  let bit_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "bit" ] ~docv:"B"
          ~doc:
            "Case index within the model's per-site width (the flipped bit for \
             bit-flip models).")
  in
  let run () state name site bit model =
    let bs = open_bstore state in
    let entry = find_latest_or_die bs name model in
    match Bstore.query entry ~site ~bit with
    | exception Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    | p ->
        Printf.printf "%s (%s): site %d bit %d -> %s\n" name
          (Ftb_inject.Models.spec_to_string entry.Bstore.spec)
          site bit
          (match p.Bstore.outcome with `Masked -> "masked" | `Sdc -> "sdc");
        Printf.printf "  injected error %g vs site threshold %g\n" p.Bstore.injected_error
          p.Bstore.threshold;
        Printf.printf "  site support: %d masked observations; entry uncertainty %s\n"
          p.Bstore.site_support
          (pct p.Bstore.entry_uncertainty);
        Printf.printf
          "  from a %d-round adaptive campaign: %d samples (%s of the space), %s, \
           seed %d, provenance %s\n"
          entry.Bstore.rounds entry.Bstore.samples
          (pct entry.Bstore.sample_fraction)
          (Ftb_core.Adaptive.stop_reason_to_string entry.Bstore.stop)
          entry.Bstore.seed entry.Bstore.prov
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Predict one (site, bit) case from a stored boundary — zero kernel execution")
    Term.(
      const run $ logs_term $ state_arg $ bench_arg $ site_arg $ bit_arg
      $ bstore_model_arg)

let boundary_list_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the entry list as JSON.")
  in
  let run () state json =
    let bs = open_bstore state in
    let entries = Bstore.list bs in
    if json then begin
      let module J = Service.Json in
      print_endline
        (J.to_string
           (J.List
              (List.map
                 (fun (e : Bstore.entry) ->
                   J.Obj
                     [
                       ("key", J.String e.Bstore.key);
                       ("bench", J.String e.Bstore.bench);
                       ("model", J.String (Ftb_inject.Models.spec_to_string e.Bstore.spec));
                       ("sites", J.Int e.Bstore.sites);
                       ("seed", J.Int e.Bstore.seed);
                       ("rounds", J.Int e.Bstore.rounds);
                       ("samples", J.Int e.Bstore.samples);
                       ("sample_fraction", J.Float e.Bstore.sample_fraction);
                       ("uncertainty", J.Float e.Bstore.uncertainty);
                       ( "stop",
                         J.String (Ftb_core.Adaptive.stop_reason_to_string e.Bstore.stop)
                       );
                       ("prov", J.String e.Bstore.prov);
                       ("created", J.Float e.Bstore.created);
                     ])
                 entries)))
    end
    else if entries = [] then print_endline "no stored boundaries"
    else begin
      Printf.printf "%-10s %-14s %6s %7s %8s %-14s %-8s %s\n" "bench" "model" "sites"
        "rounds" "samples" "stop" "uncert" "key";
      List.iter (fun e -> print_endline (boundary_entry_line e)) entries
    end
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every stored adaptive boundary")
    Term.(const run $ logs_term $ state_arg $ json_arg)

let boundary_export_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON export here instead of stdout.")
  in
  let run () state name model out =
    let bs = open_bstore state in
    let e = find_latest_or_die bs name model in
    let module J = Service.Json in
    let floats a = J.List (List.map (fun f -> J.Float f) (Array.to_list a)) in
    let json =
      J.Obj
        [
          ("key", J.String e.Bstore.key);
          ("bench", J.String e.Bstore.bench);
          ("fingerprint", J.String e.Bstore.fingerprint);
          ("model", J.String (Ftb_inject.Models.spec_to_string e.Bstore.spec));
          ( "fuel",
            match e.Bstore.fuel with Some n -> J.Int n | None -> J.Null );
          ("round_fraction", J.Float e.Bstore.config.Ftb_core.Adaptive.round_fraction);
          ( "stop_sdc_fraction",
            J.Float e.Bstore.config.Ftb_core.Adaptive.stop_sdc_fraction );
          ("max_rounds", J.Int e.Bstore.config.Ftb_core.Adaptive.max_rounds);
          ("filter", J.Bool e.Bstore.config.Ftb_core.Adaptive.filter);
          ("bias", J.Bool e.Bstore.config.Ftb_core.Adaptive.bias);
          ("seed", J.Int e.Bstore.seed);
          ("sites", J.Int e.Bstore.sites);
          ("rounds", J.Int e.Bstore.rounds);
          ("samples", J.Int e.Bstore.samples);
          ("masked", J.Int e.Bstore.masked);
          ("sdc", J.Int e.Bstore.sdc);
          ("crash", J.Int e.Bstore.crash);
          ("sample_fraction", J.Float e.Bstore.sample_fraction);
          ("uncertainty", J.Float e.Bstore.uncertainty);
          ("stop", J.String (Ftb_core.Adaptive.stop_reason_to_string e.Bstore.stop));
          ("prov", J.String e.Bstore.prov);
          ("created", J.Float e.Bstore.created);
          ("thresholds", floats e.Bstore.thresholds);
          ( "support",
            J.List (List.map (fun n -> J.Int n) (Array.to_list e.Bstore.support)) );
          ("golden_values", floats e.Bstore.golden_values);
        ]
    in
    match out with
    | None -> print_endline (J.to_string json)
    | Some path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (J.to_string json);
            output_char oc '\n');
        Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Export a stored boundary (thresholds, support, golden values, provenance) \
          as JSON")
    Term.(const run $ logs_term $ state_arg $ bench_arg $ bstore_model_arg $ out_arg)

let boundary_gc_cmd =
  let keep_arg =
    Arg.(
      value & opt int 1024
      & info [ "keep" ] ~docv:"N" ~doc:"Keep the N most recently created entries.")
  in
  let run () state keep =
    if keep < 0 then begin
      Printf.eprintf "--keep must be non-negative (got %d)\n" keep;
      exit 2
    end;
    let removed = Bstore.gc (open_bstore state) ~keep in
    Printf.printf "boundary gc: removed %d entr%s, kept the newest %d\n" removed
      (if removed = 1 then "y" else "ies")
      keep
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"Drop all but the newest N stored boundaries")
    Term.(const run $ logs_term $ state_arg $ keep_arg)

let boundary_infer_cmd =
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Infer a fault tolerance boundary from a fresh random sample")
    boundary_infer_term

let boundary_cmd =
  Cmd.group
    ~default:boundary_infer_term
    (Cmd.info "boundary"
       ~doc:
         "Infer a boundary from a random sample, or query the daemon's servable \
          boundary store"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "$(b,infer) samples the kernel fresh and infers a fault tolerance \
              boundary from the sample. The other subcommands instead read the \
              boundary store a daemon keeps under $(b,<state>/boundaries): every \
              completed adaptive job publishes its converged boundary there \
              (thresholds, per-site support, sec. 3.6 uncertainty, fault model, \
              golden fingerprint, sample fraction, provenance) as a CRC-enveloped \
              content-addressed artifact. $(b,query) answers one (site, bit) case \
              with zero kernel execution; $(b,list), $(b,export) and $(b,gc) \
              inspect and bound the store.";
         ])
    [
      boundary_infer_cmd;
      boundary_query_cmd;
      boundary_list_cmd;
      boundary_export_cmd;
      boundary_gc_cmd;
    ]

(* ------------------------------------------------------------------ *)

let ir_cmd =
  let run () name dump pass_stats =
    let ir =
      match Ftb_kernels.Ir_kernels.find name with
      | ir -> ir
      | exception Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
    in
    let optimized, stats = Ftb_ir.Pipeline.optimize_with_report ir in
    if pass_stats then begin
      Printf.printf "%-8s %6s %6s %8s %6s %6s %8s\n" "pass" "stmts" "stmts'" "delta" "ops"
        "ops'" "delta";
      List.iter
        (fun s ->
          Printf.printf "%-8s %6d %6d %8d %6d %6d %8d\n" s.Ftb_ir.Pipeline.pass_name
            s.Ftb_ir.Pipeline.stmts_before s.Ftb_ir.Pipeline.stmts_after
            (s.Ftb_ir.Pipeline.stmts_after - s.Ftb_ir.Pipeline.stmts_before)
            s.Ftb_ir.Pipeline.ops_before s.Ftb_ir.Pipeline.ops_after
            (s.Ftb_ir.Pipeline.ops_after - s.Ftb_ir.Pipeline.ops_before))
        stats;
      Printf.printf "%-8s %6d %6d %8d %6d %6d %8d\n" "total"
        (Ftb_ir.Passes.stmt_count ir)
        (Ftb_ir.Passes.stmt_count optimized)
        (Ftb_ir.Passes.stmt_count optimized - Ftb_ir.Passes.stmt_count ir)
        (Ftb_ir.Passes.op_count ir)
        (Ftb_ir.Passes.op_count optimized)
        (Ftb_ir.Passes.op_count optimized - Ftb_ir.Passes.op_count ir)
    end;
    if dump || not pass_stats then begin
      if pass_stats then print_newline ();
      print_string (Ftb_ir.Ir.to_string optimized)
    end
  in
  let kernel_arg =
    let doc =
      Printf.sprintf "IR kernel to inspect. One of: %s."
        (String.concat ", " (List.map fst Ftb_kernels.Ir_kernels.suite))
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)
  in
  let dump_arg =
    Arg.(
      value & flag
      & info [ "dump" ]
          ~doc:
            "Print the optimized IR listing (the program the batched campaign executor \
             actually runs). This is the default when $(b,--pass-stats) is not given.")
  in
  let pass_stats_arg =
    Arg.(
      value & flag
      & info [ "pass-stats" ]
          ~doc:
            "Print a per-pass table of static statement and expression-node counts \
             before/after each optimization pass.")
  in
  Cmd.v
    (Cmd.info "ir"
       ~doc:"Inspect an IR kernel after the optimizing pipeline"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Builds the named kernel's IR at its campaign configuration, runs the \
              optimizing pass pipeline with the structural validator between passes \
              (exactly what the kernel suite does when lowering), and prints the \
              result. The dynamic event stream — the fault-injection site space — is \
              preserved bitwise by construction, so what this prints is \
              site-for-site comparable with the unoptimized form.";
         ])
    Term.(const run $ logs_term $ kernel_arg $ dump_arg $ pass_stats_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "fault tolerance boundary analysis (PPoPP'21 reproduction)" in
  Cmd.group (Cmd.info "ftb" ~version:"1.0.0" ~doc)
    [
      list_cmd; campaign_cmd; boundary_cmd; adaptive_cmd; protect_cmd; models_cmd;
      propagation_cmd; report_cmd; ir_cmd; serve_cmd; worker_cmd; submit_cmd;
      jobs_cmd; watch_cmd; cancel_cmd; cache_cmd; workers_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
