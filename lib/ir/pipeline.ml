(* The optimizing pipeline: run passes in sequence, and between every two
   passes re-check the properties that make an optimized program a valid
   stand-in for the original in a fault-injection campaign:

   1. the static validator still accepts the program (def-before-use on
      every path, constant indices in bounds);
   2. the distinct instruction labels, in first-appearance order, are
      unchanged — [Ir.to_program] numbers static tags in exactly that
      order, so this pins the tag <-> label mapping;
   3. the dynamic event stream (labels and bit-exact values of every
      record and guard, in execution order) is unchanged — the stream is
      the injection-site space itself.

   Any violation raises [Pipeline_error] naming the offending pass: a
   miscompile must never silently change campaign ground truth. *)

exception Pipeline_error of string

let labels_of t =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let register label =
    if not (Hashtbl.mem seen label) then begin
      Hashtbl.replace seen label ();
      out := label :: !out
    end
  in
  let rec collect s =
    match s with
    | Ir.Fassign (_, _, label) | Ir.Store (_, _, _, label) -> register label
    | Ir.Flet _ | Ir.Iassign _ | Ir.Guard _ -> ()
    | Ir.For (_, _, _, body) -> List.iter collect body
    | Ir.If (_, a, b) ->
        List.iter collect a;
        List.iter collect b
  in
  List.iter collect (Ir.body t);
  List.rev !out

let stream_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (l1, v1) (l2, v2) ->
         String.equal l1 l2 && Int64.equal (Int64.bits_of_float v1) (Int64.bits_of_float v2))
       a b

type pass_stat = {
  pass_name : string;
  stmts_before : int;
  stmts_after : int;
  ops_before : int;
  ops_after : int;
}

let default_passes = Passes.all

let check ~pass_name ~ref_labels ~ref_stream t =
  (match Ir.validate t with
  | Ok () -> ()
  | Error problems ->
      raise
        (Pipeline_error
           (Printf.sprintf "pass %s broke validation: %s" pass_name
              (String.concat "; " problems))));
  if not (List.equal String.equal ref_labels (labels_of t)) then
    raise
      (Pipeline_error
         (Printf.sprintf "pass %s changed the static label sequence" pass_name));
  if not (stream_equal ref_stream (Ir.event_stream t)) then
    raise
      (Pipeline_error
         (Printf.sprintf "pass %s changed the dynamic event stream" pass_name))

let optimize_with_report ?(passes = default_passes) ?(verify = true) t =
  let ref_labels = if verify then labels_of t else [] in
  let ref_stream = if verify then Ir.event_stream t else [] in
  let t, rev_stats =
    List.fold_left
      (fun (t, stats) { Passes.pass_name; run } ->
        let stmts_before = Passes.stmt_count t and ops_before = Passes.op_count t in
        let t' = run t in
        if verify then check ~pass_name ~ref_labels ~ref_stream t';
        let stat =
          {
            pass_name;
            stmts_before;
            stmts_after = Passes.stmt_count t';
            ops_before;
            ops_after = Passes.op_count t';
          }
        in
        (t', stat :: stats))
      (t, []) passes
  in
  (t, List.rev rev_stats)

let optimize ?passes ?verify t = fst (optimize_with_report ?passes ?verify t)

let to_program ?passes ?verify t =
  let t = optimize ?passes ?verify t in
  let program = Ir.to_program t in
  (* The cone analysis is expensive relative to one golden run, so it is
     built on first demand and memoized. A plain [Lazy.t] is not safe to
     force from several domains; a mutex-guarded cell is. *)
  let lock = Mutex.create () in
  let cell = ref None in
  let force () =
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match !cell with
        | Some plan -> plan
        | None ->
            let plan = try Some (Cone.plan t) with _ -> None in
            cell := Some plan;
            plan)
  in
  Ftb_trace.Program.with_cone program force
