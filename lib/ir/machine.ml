module Ctx = Ftb_trace.Ctx

(* A flat register machine with an explicit program counter and explicit
   loop bookkeeping. The structured IR interpreter in [Ir] executes loops
   as native OCaml recursion, which makes its execution position
   uncapturable; this machine makes the complete interpreter state a plain
   record of arrays, so the batched campaign executor can snapshot it at an
   injection site and replay only the suffix for each of the site's 64 bit
   flips.

   Expressions are compiled once into closures over the state (no AST
   walking on the hot path); control flow is compiled into jumps; counted
   loops own a (current, limit) slot pair so their progress is part of the
   snapshot. Evaluation order matches [Ir.exec] exactly — bit-identical
   float streams are a correctness requirement, not a nicety. *)

type state = {
  mutable pc : int;
  fregs : float array;
  freg_set : bool array;
  iregs : int array;
  ireg_set : bool array;
  arrays : float array array;
  loop_cur : int array;
  loop_limit : int array;
}

type instr =
  | Record_reg of { reg : int; eval : state -> float; tag : int }
      (** [Fassign]: one dynamic instruction *)
  | Record_store of {
      array_id : int;
      index : state -> int;  (** evaluates and bounds-checks the index *)
      eval : state -> float;
      tag : int;
    }  (** [Store]: one dynamic instruction *)
  | Assign_int of { reg : int; eval : state -> int }
  | Assign_float of { reg : int; eval : state -> float }
      (** [Flet]: float scratch assignment, not a dynamic instruction *)
  | Guard of { eval : state -> float; what : string }
  | Jump of int
  | Branch_false of { cond : state -> bool; target : int }
  | Loop_init of { slot : int; lo : state -> int; hi : state -> int }
  | Loop_head of { slot : int; reg : int; exit : int }
  | Loop_next of { slot : int; head : int }

type t = {
  instrs : instr array;
  n_fregs : int;
  n_iregs : int;
  n_loops : int;
  init_arrays : float array array;
  output : int;
}

let create ~instrs ~fregs ~iregs ~loops ~arrays ~output =
  if output < 0 || output >= Array.length arrays then
    invalid_arg "Machine.create: output array out of range";
  {
    instrs;
    n_fregs = max 1 fregs;
    n_iregs = max 1 iregs;
    n_loops = max 1 loops;
    init_arrays = arrays;
    output;
  }

let fresh_state m =
  {
    pc = 0;
    fregs = Array.make m.n_fregs 0.;
    freg_set = Array.make m.n_fregs false;
    iregs = Array.make m.n_iregs 0;
    ireg_set = Array.make m.n_iregs false;
    arrays = Array.map Array.copy m.init_arrays;
    loop_cur = Array.make m.n_loops 0;
    loop_limit = Array.make m.n_loops 0;
  }

type snapshot = state  (* an exclusive deep copy, never executed in place *)

let copy_state st =
  {
    pc = st.pc;
    fregs = Array.copy st.fregs;
    freg_set = Array.copy st.freg_set;
    iregs = Array.copy st.iregs;
    ireg_set = Array.copy st.ireg_set;
    arrays = Array.map Array.copy st.arrays;
    loop_cur = Array.copy st.loop_cur;
    loop_limit = Array.copy st.loop_limit;
  }

let step m st ctx =
  match m.instrs.(st.pc) with
  | Record_reg { reg; eval; tag } ->
      st.fregs.(reg) <- Ctx.record ctx ~tag (eval st);
      st.freg_set.(reg) <- true;
      st.pc <- st.pc + 1
  | Record_store { array_id; index; eval; tag } ->
      let i = index st in
      st.arrays.(array_id).(i) <- Ctx.record ctx ~tag (eval st);
      st.pc <- st.pc + 1
  | Assign_int { reg; eval } ->
      st.iregs.(reg) <- eval st;
      st.ireg_set.(reg) <- true;
      st.pc <- st.pc + 1
  | Assign_float { reg; eval } ->
      st.fregs.(reg) <- eval st;
      st.freg_set.(reg) <- true;
      st.pc <- st.pc + 1
  | Guard { eval; what } ->
      ignore (Ctx.guard_finite ctx what (eval st));
      st.pc <- st.pc + 1
  | Jump target -> st.pc <- target
  | Branch_false { cond; target } -> st.pc <- (if cond st then st.pc + 1 else target)
  | Loop_init { slot; lo; hi } ->
      (* Bounds are evaluated once at loop entry, limit first — the order
         of [let lo = ... and hi = ...] in the structured interpreter. *)
      let limit = hi st in
      let cur = lo st in
      st.loop_limit.(slot) <- limit;
      st.loop_cur.(slot) <- cur;
      st.pc <- st.pc + 1
  | Loop_head { slot; reg; exit } ->
      if st.loop_cur.(slot) >= st.loop_limit.(slot) then st.pc <- exit
      else begin
        (* The loop variable is rebound from the slot every iteration, so a
           corrupted body write to it cannot change the trip count — same
           as the native [for] of the structured interpreter. *)
        st.iregs.(reg) <- st.loop_cur.(slot);
        st.ireg_set.(reg) <- true;
        st.pc <- st.pc + 1
      end
  | Loop_next { slot; head } ->
      st.loop_cur.(slot) <- st.loop_cur.(slot) + 1;
      st.pc <- head

let finish m st ctx =
  let len = Array.length m.instrs in
  while st.pc < len do
    step m st ctx
  done;
  Array.copy st.arrays.(m.output)

let exec m ctx = finish m (fresh_state m) ctx

let is_record = function
  | Record_reg _ | Record_store _ -> true
  | Assign_int _ | Assign_float _ | Guard _ | Jump _ | Branch_false _ | Loop_init _
  | Loop_head _ | Loop_next _ ->
      false

let prefix m ctx ~stop_at =
  if stop_at < 0 then invalid_arg "Machine.prefix: negative stop_at";
  let st = fresh_state m in
  let len = Array.length m.instrs in
  let rec go () =
    if st.pc >= len then `Done (Array.copy st.arrays.(m.output))
    else if Ctx.length ctx = stop_at && is_record m.instrs.(st.pc) then
      (* About to issue dynamic instruction [stop_at]: everything executed
         so far is the shared, injection-free prefix. *)
      `Paused (copy_state st)
    else begin
      step m st ctx;
      go ()
    end
  in
  go ()

let resume m snapshot ctx = finish m (copy_state snapshot) ctx
