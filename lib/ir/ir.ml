module Ctx = Ftb_trace.Ctx
module Static = Ftb_trace.Static

type freg = int
type ireg = int
type array_id = int

type fexpr =
  | Fconst of float
  | Freg of freg
  | Fload of array_id * iexpr
  | Fadd of fexpr * fexpr
  | Fsub of fexpr * fexpr
  | Fmul of fexpr * fexpr
  | Fdiv of fexpr * fexpr
  | Fneg of fexpr
  | Fabs of fexpr
  | Fsqrt of fexpr

and iexpr = Iconst of int | Ireg of ireg | Iadd of iexpr * iexpr | Isub of iexpr * iexpr | Imul of iexpr * iexpr

type cond =
  | Fcmp of [ `Lt | `Le | `Gt | `Ge ] * fexpr * fexpr
  | Icmp of [ `Lt | `Le | `Eq | `Ne ] * iexpr * iexpr

type stmt =
  | Fassign of freg * fexpr * string
  | Store of array_id * iexpr * fexpr * string
  | Flet of freg * fexpr
  | Iassign of ireg * iexpr
  | For of ireg * iexpr * iexpr * stmt list
  | If of cond * stmt list * stmt list
  | Guard of fexpr * string

exception Ir_error of string

type t = {
  name : string;
  tolerance : float;
  mutable next_freg : int;
  mutable next_ireg : int;
  mutable arrays : (string * float array) list;  (* reverse order of declaration *)
  mutable output : array_id option;
  mutable body : stmt list option;
}

let create ~name ~tolerance =
  {
    name;
    tolerance;
    next_freg = 0;
    next_ireg = 0;
    arrays = [];
    output = None;
    body = None;
  }

let freg t =
  let r = t.next_freg in
  t.next_freg <- r + 1;
  r

let ireg t =
  let r = t.next_ireg in
  t.next_ireg <- r + 1;
  r

let array t ~name ~init =
  let id = List.length t.arrays in
  t.arrays <- (name, Array.copy init) :: t.arrays;
  id

let output_array t id =
  (match t.output with
  | Some _ -> invalid_arg "Ir.output_array: output already set"
  | None -> ());
  if id < 0 || id >= List.length t.arrays then invalid_arg "Ir.output_array: unknown array";
  t.output <- Some id

let set_body t body = t.body <- Some body

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

type env = {
  fregs : float array;
  freg_set : bool array;
  iregs : int array;
  ireg_set : bool array;
  arrays : float array array;  (* indexed by array_id *)
  record : string -> float -> float;
  guard : string -> float -> float;
}

let rec eval_i env = function
  | Iconst n -> n
  | Ireg r ->
      if not env.ireg_set.(r) then raise (Ir_error "read of unassigned integer register");
      env.iregs.(r)
  | Iadd (a, b) -> eval_i env a + eval_i env b
  | Isub (a, b) -> eval_i env a - eval_i env b
  | Imul (a, b) -> eval_i env a * eval_i env b

let rec eval_f env = function
  | Fconst v -> v
  | Freg r ->
      if not env.freg_set.(r) then raise (Ir_error "read of unassigned float register");
      env.fregs.(r)
  | Fload (a, ie) ->
      let arr = env.arrays.(a) in
      let i = eval_i env ie in
      if i < 0 || i >= Array.length arr then
        raise (Ir_error (Printf.sprintf "load out of bounds: index %d of array length %d" i (Array.length arr)));
      arr.(i)
  | Fadd (a, b) -> eval_f env a +. eval_f env b
  | Fsub (a, b) -> eval_f env a -. eval_f env b
  | Fmul (a, b) -> eval_f env a *. eval_f env b
  | Fdiv (a, b) -> eval_f env a /. eval_f env b
  | Fneg a -> -.eval_f env a
  | Fabs a -> abs_float (eval_f env a)
  | Fsqrt a -> sqrt (eval_f env a)

let eval_cond env = function
  | Fcmp (op, a, b) -> (
      let x = eval_f env a and y = eval_f env b in
      match op with `Lt -> x < y | `Le -> x <= y | `Gt -> x > y | `Ge -> x >= y)
  | Icmp (op, a, b) -> (
      let x = eval_i env a and y = eval_i env b in
      match op with `Lt -> x < y | `Le -> x <= y | `Eq -> x = y | `Ne -> x <> y)

let rec exec env stmt =
  match stmt with
  | Fassign (r, e, label) ->
      env.fregs.(r) <- env.record label (eval_f env e);
      env.freg_set.(r) <- true
  | Store (a, ie, fe, label) ->
      let arr = env.arrays.(a) in
      let i = eval_i env ie in
      if i < 0 || i >= Array.length arr then
        raise (Ir_error (Printf.sprintf "store out of bounds: index %d of array length %d" i (Array.length arr)));
      arr.(i) <- env.record label (eval_f env fe)
  | Flet (r, e) ->
      env.fregs.(r) <- eval_f env e;
      env.freg_set.(r) <- true
  | Iassign (r, e) ->
      env.iregs.(r) <- eval_i env e;
      env.ireg_set.(r) <- true
  | For (r, lo_e, hi_e, body) ->
      let lo = eval_i env lo_e and hi = eval_i env hi_e in
      for i = lo to hi - 1 do
        env.iregs.(r) <- i;
        env.ireg_set.(r) <- true;
        List.iter (exec env) body
      done
  | If (c, then_body, else_body) ->
      if eval_cond env c then List.iter (exec env) then_body
      else List.iter (exec env) else_body
  | Guard (e, what) -> ignore (env.guard what (eval_f env e))

let check_complete t =
  let body = match t.body with Some b -> b | None -> invalid_arg "Ir: program has no body" in
  let output = match t.output with Some o -> o | None -> invalid_arg "Ir: no output array" in
  (body, output)

let make_env (t : t) ~record ~guard =
  let arrays =
    (* t.arrays is in reverse declaration order; array_id i is the i-th
       declared. *)
    let declared = List.rev t.arrays in
    Array.of_list (List.map (fun (_, init) -> Array.copy init) declared)
  in
  {
    fregs = Array.make (max 1 t.next_freg) 0.;
    freg_set = Array.make (max 1 t.next_freg) false;
    iregs = Array.make (max 1 t.next_ireg) 0;
    ireg_set = Array.make (max 1 t.next_ireg) false;
    arrays;
    record;
    guard;
  }

let interpret_plain t =
  let body, output = check_complete t in
  let env = make_env t ~record:(fun _ v -> v) ~guard:(fun _ v -> v) in
  List.iter (exec env) body;
  Array.copy env.arrays.(output)

(* ------------------------------------------------------------------ *)
(* Compilation to the flat machine (Machine): expressions become closures
   over the machine state, control flow becomes jumps, loops get explicit
   (current, limit) slots. Must mirror the structured interpreter above
   operation for operation — the machine's dynamic instruction stream and
   float results are required to be bit-identical to [exec]'s. *)

module M = Machine

let rec compile_i = function
  | Iconst n -> fun (_ : M.state) -> n
  | Ireg r ->
      fun st ->
        if not st.M.ireg_set.(r) then
          raise (Ir_error "read of unassigned integer register");
        st.M.iregs.(r)
  | Iadd (a, b) ->
      let ca = compile_i a and cb = compile_i b in
      fun st -> ca st + cb st
  | Isub (a, b) ->
      let ca = compile_i a and cb = compile_i b in
      fun st -> ca st - cb st
  | Imul (a, b) ->
      let ca = compile_i a and cb = compile_i b in
      fun st -> ca st * cb st

let rec compile_f = function
  | Fconst v -> fun (_ : M.state) -> v
  | Freg r ->
      fun st ->
        if not st.M.freg_set.(r) then
          raise (Ir_error "read of unassigned float register");
        st.M.fregs.(r)
  | Fload (a, ie) ->
      let ci = compile_i ie in
      fun st ->
        let arr = st.M.arrays.(a) in
        let i = ci st in
        if i < 0 || i >= Array.length arr then
          raise
            (Ir_error
               (Printf.sprintf "load out of bounds: index %d of array length %d" i
                  (Array.length arr)));
        arr.(i)
  | Fadd (a, b) ->
      let ca = compile_f a and cb = compile_f b in
      fun st -> ca st +. cb st
  | Fsub (a, b) ->
      let ca = compile_f a and cb = compile_f b in
      fun st -> ca st -. cb st
  | Fmul (a, b) ->
      let ca = compile_f a and cb = compile_f b in
      fun st -> ca st *. cb st
  | Fdiv (a, b) ->
      let ca = compile_f a and cb = compile_f b in
      fun st -> ca st /. cb st
  | Fneg a ->
      let ca = compile_f a in
      fun st -> -.(ca st)
  | Fabs a ->
      let ca = compile_f a in
      fun st -> abs_float (ca st)
  | Fsqrt a ->
      let ca = compile_f a in
      fun st -> sqrt (ca st)

let compile_cond = function
  | Fcmp (op, a, b) -> (
      let ca = compile_f a and cb = compile_f b in
      match op with
      | `Lt -> fun st -> ca st < cb st
      | `Le -> fun st -> ca st <= cb st
      | `Gt -> fun st -> ca st > cb st
      | `Ge -> fun st -> ca st >= cb st)
  | Icmp (op, a, b) -> (
      let ca = compile_i a and cb = compile_i b in
      match op with
      | `Lt -> fun st -> ca st < cb st
      | `Le -> fun st -> ca st <= cb st
      | `Eq -> fun st -> ca st = cb st
      | `Ne -> fun st -> ca st <> cb st)

let compile_machine (t : t) tags =
  let body, output = check_complete t in
  let arrays = Array.of_list (List.map snd (List.rev t.arrays)) in
  let code = ref (Array.make 64 (M.Jump 0)) in
  let len = ref 0 in
  let emit instr =
    if !len = Array.length !code then begin
      let grown = Array.make (2 * !len) (M.Jump 0) in
      Array.blit !code 0 grown 0 !len;
      code := grown
    end;
    !code.(!len) <- instr;
    incr len;
    !len - 1
  in
  let patch at instr = !code.(at) <- instr in
  let here () = !len in
  let n_loops = ref 0 in
  let rec compile_stmt stmt =
    match stmt with
    | Fassign (r, e, label) ->
        ignore
          (emit (M.Record_reg { reg = r; eval = compile_f e; tag = Hashtbl.find tags label }))
    | Store (a, ie, fe, label) ->
        let ci = compile_i ie in
        let index st =
          let arr = st.M.arrays.(a) in
          let i = ci st in
          if i < 0 || i >= Array.length arr then
            raise
              (Ir_error
                 (Printf.sprintf "store out of bounds: index %d of array length %d" i
                    (Array.length arr)));
          i
        in
        ignore
          (emit
             (M.Record_store
                { array_id = a; index; eval = compile_f fe; tag = Hashtbl.find tags label }))
    | Flet (r, e) -> ignore (emit (M.Assign_float { reg = r; eval = compile_f e }))
    | Iassign (r, e) -> ignore (emit (M.Assign_int { reg = r; eval = compile_i e }))
    | Guard (e, what) -> ignore (emit (M.Guard { eval = compile_f e; what }))
    | For (r, lo, hi, loop_body) ->
        let slot = !n_loops in
        incr n_loops;
        ignore (emit (M.Loop_init { slot; lo = compile_i lo; hi = compile_i hi }));
        let head = here () in
        let head_at = emit (M.Jump 0) in
        List.iter compile_stmt loop_body;
        ignore (emit (M.Loop_next { slot; head }));
        patch head_at (M.Loop_head { slot; reg = r; exit = here () })
    | If (c, then_body, else_body) -> (
        let cond = compile_cond c in
        let branch_at = emit (M.Jump 0) in
        List.iter compile_stmt then_body;
        match else_body with
        | [] -> patch branch_at (M.Branch_false { cond; target = here () })
        | _ ->
            let jump_at = emit (M.Jump 0) in
            patch branch_at (M.Branch_false { cond; target = here () });
            List.iter compile_stmt else_body;
            patch jump_at (M.Jump (here ())))
  in
  List.iter compile_stmt body;
  M.create ~instrs:(Array.sub !code 0 !len) ~fregs:t.next_freg ~iregs:t.next_ireg
    ~loops:!n_loops ~arrays ~output

let to_program t =
  let body, _output = check_complete t in
  let statics = Static.create_table () in
  (* Pre-register every static instruction so tags are stable across runs. *)
  let tags = Hashtbl.create 64 in
  let register label =
    if not (Hashtbl.mem tags label) then
      Hashtbl.replace tags label (Static.register statics ~phase:t.name ~label)
  in
  let rec collect stmt =
    match stmt with
    | Fassign (_, _, label) | Store (_, _, _, label) -> register label
    | Flet _ | Iassign _ | Guard _ -> ()
    | For (_, _, _, stmts) -> List.iter collect stmts
    | If (_, a, b) ->
        List.iter collect a;
        List.iter collect b
  in
  List.iter collect body;
  let machine = compile_machine t tags in
  (* Every mode — golden, outcome-only, propagation AND the batched
     prefix/resume path — runs through the one compiled machine, so the
     snapshot executor shares its engine with full re-execution. *)
  let run ctx = M.exec machine ctx in
  let resumable ctx ~stop_at =
    match M.prefix machine ctx ~stop_at with
    | `Done output -> Ftb_trace.Program.Completed output
    | `Paused snapshot ->
        Ftb_trace.Program.Paused (fun ctx' -> M.resume machine snapshot ctx')
  in
  Ftb_trace.Program.make ~resumable ~name:t.name
    ~description:(Printf.sprintf "IR program %s" t.name)
    ~tolerance:t.tolerance ~statics run

let to_program_interpreted t =
  let body, output = check_complete t in
  let statics = Static.create_table () in
  let tags = Hashtbl.create 64 in
  let register label =
    if not (Hashtbl.mem tags label) then
      Hashtbl.replace tags label (Static.register statics ~phase:t.name ~label)
  in
  let rec collect stmt =
    match stmt with
    | Fassign (_, _, label) | Store (_, _, _, label) -> register label
    | Flet _ | Iassign _ | Guard _ -> ()
    | For (_, _, _, stmts) -> List.iter collect stmts
    | If (_, a, b) ->
        List.iter collect a;
        List.iter collect b
  in
  List.iter collect body;
  let run ctx =
    let env =
      make_env t
        ~record:(fun label v -> Ctx.record ctx ~tag:(Hashtbl.find tags label) v)
        ~guard:(fun what v -> Ctx.guard_finite ctx what v)
    in
    List.iter (exec env) body;
    Array.copy env.arrays.(output)
  in
  Ftb_trace.Program.make ~name:t.name
    ~description:(Printf.sprintf "IR program %s (tree-walking engine)" t.name)
    ~tolerance:t.tolerance ~statics run

let to_machine t =
  let tags = Hashtbl.create 64 in
  let next = ref 0 in
  let register label =
    if not (Hashtbl.mem tags label) then begin
      Hashtbl.replace tags label !next;
      incr next
    end
  in
  (match t.body with
  | Some body ->
      let rec collect stmt =
        match stmt with
        | Fassign (_, _, label) | Store (_, _, _, label) -> register label
        | Flet _ | Iassign _ | Guard _ -> ()
        | For (_, _, _, stmts) -> List.iter collect stmts
        | If (_, a, b) ->
            List.iter collect a;
            List.iter collect b
      in
      List.iter collect body
  | None -> ());
  compile_machine t tags

(* ------------------------------------------------------------------ *)
(* Pretty-printer                                                      *)

let rec pp_iexpr ppf = function
  | Iconst n -> Format.fprintf ppf "%d" n
  | Ireg r -> Format.fprintf ppf "i%d" r
  | Iadd (a, b) -> Format.fprintf ppf "(%a + %a)" pp_iexpr a pp_iexpr b
  | Isub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_iexpr a pp_iexpr b
  | Imul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_iexpr a pp_iexpr b

let array_name (t : t) id =
  match List.nth_opt (List.rev t.arrays) id with
  | Some (name, _) -> name
  | None -> Printf.sprintf "a%d" id

let rec pp_fexpr t ppf = function
  | Fconst v -> Format.fprintf ppf "%g" v
  | Freg r -> Format.fprintf ppf "f%d" r
  | Fload (a, i) -> Format.fprintf ppf "%s[%a]" (array_name t a) pp_iexpr i
  | Fadd (a, b) -> Format.fprintf ppf "(%a + %a)" (pp_fexpr t) a (pp_fexpr t) b
  | Fsub (a, b) -> Format.fprintf ppf "(%a - %a)" (pp_fexpr t) a (pp_fexpr t) b
  | Fmul (a, b) -> Format.fprintf ppf "(%a * %a)" (pp_fexpr t) a (pp_fexpr t) b
  | Fdiv (a, b) -> Format.fprintf ppf "(%a / %a)" (pp_fexpr t) a (pp_fexpr t) b
  | Fneg a -> Format.fprintf ppf "(-%a)" (pp_fexpr t) a
  | Fabs a -> Format.fprintf ppf "abs(%a)" (pp_fexpr t) a
  | Fsqrt a -> Format.fprintf ppf "sqrt(%a)" (pp_fexpr t) a

let pp_cond t ppf = function
  | Fcmp (op, a, b) ->
      let sym = match op with `Lt -> "<" | `Le -> "<=" | `Gt -> ">" | `Ge -> ">=" in
      Format.fprintf ppf "%a %s %a" (pp_fexpr t) a sym (pp_fexpr t) b
  | Icmp (op, a, b) ->
      let sym = match op with `Lt -> "<" | `Le -> "<=" | `Eq -> "==" | `Ne -> "!=" in
      Format.fprintf ppf "%a %s %a" pp_iexpr a sym pp_iexpr b

let rec pp_stmt t ~indent ppf stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Fassign (r, e, label) ->
      Format.fprintf ppf "%sf%d = %a        ; %s@." pad r (pp_fexpr t) e label
  | Store (a, i, e, label) ->
      Format.fprintf ppf "%s%s[%a] = %a        ; %s@." pad (array_name t a) pp_iexpr i
        (pp_fexpr t) e label
  | Flet (r, e) -> Format.fprintf ppf "%sf%d := %a@." pad r (pp_fexpr t) e
  | Iassign (r, e) -> Format.fprintf ppf "%si%d = %a@." pad r pp_iexpr e
  | For (r, lo, hi, body) ->
      Format.fprintf ppf "%sfor i%d = %a to %a - 1 {@." pad r pp_iexpr lo pp_iexpr hi;
      List.iter (pp_stmt t ~indent:(indent + 2) ppf) body;
      Format.fprintf ppf "%s}@." pad
  | If (c, then_body, else_body) ->
      Format.fprintf ppf "%sif %a {@." pad (pp_cond t) c;
      List.iter (pp_stmt t ~indent:(indent + 2) ppf) then_body;
      (match else_body with
      | [] -> Format.fprintf ppf "%s}@." pad
      | _ ->
          Format.fprintf ppf "%s} else {@." pad;
          List.iter (pp_stmt t ~indent:(indent + 2) ppf) else_body;
          Format.fprintf ppf "%s}@." pad)
  | Guard (e, what) -> Format.fprintf ppf "%sguard %a        ; %s@." pad (pp_fexpr t) e what

let pp ppf (t : t) =
  Format.fprintf ppf "program %s (tolerance %g)@." t.name t.tolerance;
  List.iteri
    (fun i (name, init) ->
      Format.fprintf ppf "  array %s[%d]%s@." name (Array.length init)
        (match t.output with Some o when o = i -> "  ; output" | _ -> ""))
    (List.rev t.arrays);
  match t.body with
  | None -> Format.fprintf ppf "  (no body)@."
  | Some body -> List.iter (pp_stmt t ~indent:2 ppf) body

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Static validator                                                    *)

module Iset = Set.Make (Int)

let validate (t : t) =
  let problems = ref [] in
  let flag fmt = Printf.ksprintf (fun msg -> problems := msg :: !problems) fmt in
  (match t.body with None -> flag "program has no body" | Some _ -> ());
  (match t.output with None -> flag "no output array designated" | Some _ -> ());
  let arrays = Array.of_list (List.rev t.arrays) in
  let check_const_index a idx context =
    match idx with
    | Iconst i ->
        let _, init = arrays.(a) in
        if i < 0 || i >= Array.length init then
          flag "%s: constant index %d out of bounds for array %s[%d]" context i
            (fst arrays.(a)) (Array.length init)
    | Ireg _ | Iadd _ | Isub _ | Imul _ -> ()
  in
  (* Walk expressions collecting register reads. *)
  let rec iexpr_reads acc = function
    | Iconst _ -> acc
    | Ireg r -> (`I r) :: acc
    | Iadd (a, b) | Isub (a, b) | Imul (a, b) -> iexpr_reads (iexpr_reads acc a) b
  in
  let rec fexpr_reads context acc = function
    | Fconst _ -> acc
    | Freg r -> (`F r) :: acc
    | Fload (a, i) ->
        check_const_index a i context;
        iexpr_reads acc i
    | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) ->
        fexpr_reads context (fexpr_reads context acc a) b
    | Fneg a | Fabs a | Fsqrt a -> fexpr_reads context acc a
  in
  let check_reads context (fdef, idef) reads =
    List.iter
      (fun read ->
        match read with
        | `F r ->
            if not (Iset.mem r fdef) then
              flag "%s: float register f%d may be read before assignment" context r
        | `I r ->
            if not (Iset.mem r idef) then
              flag "%s: integer register i%d may be read before assignment" context r)
      reads
  in
  (* Forward dataflow over the structured body: returns the registers
     definitely assigned after the statement list. Loop bodies may run
     zero times, so their definitions do not escape; If branches
     contribute the intersection of both arms. *)
  let rec flow (fdef, idef) stmts =
    List.fold_left
      (fun (fdef, idef) stmt ->
        match stmt with
        | Fassign (r, e, label) ->
            check_reads label (fdef, idef) (fexpr_reads label [] e);
            (Iset.add r fdef, idef)
        | Store (a, i, e, label) ->
            check_const_index a i label;
            check_reads label (fdef, idef) (fexpr_reads label (iexpr_reads [] i) e);
            (fdef, idef)
        | Flet (r, e) ->
            check_reads "flet" (fdef, idef) (fexpr_reads "flet" [] e);
            (Iset.add r fdef, idef)
        | Iassign (r, e) ->
            check_reads "iassign" (fdef, idef) (iexpr_reads [] e);
            (fdef, Iset.add r idef)
        | For (r, lo, hi, body) ->
            check_reads "for bounds" (fdef, idef) (iexpr_reads (iexpr_reads [] lo) hi);
            (match (lo, hi) with
            | Iconst l, Iconst h when l > h -> flag "for i%d: constant bounds %d > %d" r l h
            | _ -> ());
            ignore (flow (fdef, Iset.add r idef) body);
            (fdef, idef)
        | If (c, then_body, else_body) ->
            (match c with
            | Fcmp (_, a, b) ->
                check_reads "if condition" (fdef, idef)
                  (fexpr_reads "if condition" (fexpr_reads "if condition" [] a) b)
            | Icmp (_, a, b) ->
                check_reads "if condition" (fdef, idef) (iexpr_reads (iexpr_reads [] a) b));
            let f1, i1 = flow (fdef, idef) then_body in
            let f2, i2 = flow (fdef, idef) else_body in
            (Iset.inter f1 f2, Iset.inter i1 i2)
        | Guard (e, what) ->
            check_reads what (fdef, idef) (fexpr_reads what [] e);
            (fdef, idef))
      (fdef, idef) stmts
  in
  (match t.body with
  | Some body -> ignore (flow (Iset.empty, Iset.empty) body)
  | None -> ());
  match List.rev !problems with [] -> Ok () | list -> Error list

(* ------------------------------------------------------------------ *)
(* Introspection: the optimizer (Passes / Pipeline) and the cone
   analysis (Cone) live in sibling modules and manipulate the body as a
   value. *)

let name (t : t) = t.name
let tolerance (t : t) = t.tolerance
let n_fregs (t : t) = t.next_freg
let n_iregs (t : t) = t.next_ireg
let body t = fst (check_complete t)
let output_id t = snd (check_complete t)
let arrays (t : t) = List.rev t.arrays

let with_body (t : t) body =
  {
    name = t.name;
    tolerance = t.tolerance;
    next_freg = t.next_freg;
    next_ireg = t.next_ireg;
    arrays = t.arrays;
    output = t.output;
    body = Some body;
  }

let event_stream t =
  let body, _output = check_complete t in
  let events = ref [] in
  let env =
    make_env t
      ~record:(fun label v ->
        events := (label, v) :: !events;
        v)
      ~guard:(fun what v ->
        events := ("guard:" ^ what, v) :: !events;
        v)
  in
  List.iter (exec env) body;
  List.rev !events

(* ------------------------------------------------------------------ *)
(* Sectioned golden interpretation (Ftb_compose).

   The compositional profile cache splits a body into statement groups and
   keys each group's cached profile by the interpreter state at group
   entry plus the canonical text of the remaining groups. The state
   serialization is bit-exact (little-endian [Int64.bits_of_float] per
   float) and covers everything the remaining computation can observe:
   every register with its assigned flag and every array's full contents.
   Unset registers serialize as zero — their stored value is unobservable
   (reading one raises [Ir_error]), so normalizing removes spurious key
   differences between programs that only differ in dead register
   residue. *)

let serialize_env (env : env) =
  let buf = Buffer.create 1024 in
  let add_float v = Buffer.add_int64_le buf (Int64.bits_of_float v) in
  Buffer.add_string buf "f:";
  Array.iteri
    (fun i v ->
      let set = env.freg_set.(i) in
      Buffer.add_char buf (if set then '\001' else '\000');
      add_float (if set then v else 0.))
    env.fregs;
  Buffer.add_string buf "i:";
  Array.iteri
    (fun i v ->
      let set = env.ireg_set.(i) in
      Buffer.add_char buf (if set then '\001' else '\000');
      Buffer.add_int64_le buf (Int64.of_int (if set then v else 0)))
    env.iregs;
  Buffer.add_string buf "a:";
  Array.iter
    (fun arr ->
      Buffer.add_int64_le buf (Int64.of_int (Array.length arr));
      Array.iter add_float arr)
    env.arrays;
  Buffer.contents buf

let initial_state t =
  ignore (check_complete t);
  serialize_env (make_env t ~record:(fun _ v -> v) ~guard:(fun _ v -> v))

type sectioned_run = {
  sec_entries : string array;
  sec_sites : int array;
  sec_values : float array;
  sec_output : float array;
  sec_exit : string;
}

let run_sectioned t ~groups =
  let _body, output = check_complete t in
  let values = ref [] and count = ref 0 in
  let env =
    make_env t
      ~record:(fun _ v ->
        values := v :: !values;
        incr count;
        v)
      ~guard:(fun _ v -> v)
  in
  let n = List.length groups in
  let entries = Array.make n "" and sites = Array.make n 0 in
  List.iteri
    (fun i group ->
      entries.(i) <- serialize_env env;
      let before = !count in
      List.iter (exec env) group;
      sites.(i) <- !count - before)
    groups;
  {
    sec_entries = entries;
    sec_sites = sites;
    sec_values = Array.of_list (List.rev !values);
    sec_output = Array.copy env.arrays.(output);
    sec_exit = serialize_env env;
  }
