(** A small structured register IR for numerical kernels.

    The paper deploys its instrumentation at the LLVM-IR level; this module
    shows the library is frontend-agnostic by providing a miniature typed
    IR whose interpreter emits the same dynamic-instruction stream as the
    hand-instrumented kernels. Floating-point assignments and array stores
    are dynamic instructions (fault injection sites); integer index
    arithmetic and control flow are not, matching the paper's data-element
    fault model (§2.1).

    Programs are structured (counted loops, if/else) rather than arbitrary
    CFGs: every well-typed program terminates, and a corrupted float can
    still change control flow through {!Fcmp} conditions — exercising the
    divergence machinery. *)

type freg = private int
(** A floating-point virtual register. *)

type ireg = private int
(** An integer virtual register (index arithmetic; never a fault site). *)

type array_id = private int
(** A named float array. *)

(** Float expressions. *)
type fexpr =
  | Fconst of float
  | Freg of freg
  | Fload of array_id * iexpr  (** [a.(i)] — bounds-checked at runtime *)
  | Fadd of fexpr * fexpr
  | Fsub of fexpr * fexpr
  | Fmul of fexpr * fexpr
  | Fdiv of fexpr * fexpr
  | Fneg of fexpr
  | Fabs of fexpr
  | Fsqrt of fexpr

(** Integer expressions. *)
and iexpr =
  | Iconst of int
  | Ireg of ireg
  | Iadd of iexpr * iexpr
  | Isub of iexpr * iexpr
  | Imul of iexpr * iexpr

(** Conditions. *)
type cond =
  | Fcmp of [ `Lt | `Le | `Gt | `Ge ] * fexpr * fexpr
      (** float comparison — corrupted data can redirect control flow *)
  | Icmp of [ `Lt | `Le | `Eq | `Ne ] * iexpr * iexpr

(** Statements. [label] strings identify static instructions for tracing. *)
type stmt =
  | Fassign of freg * fexpr * string  (** recorded dynamic instruction *)
  | Store of array_id * iexpr * fexpr * string  (** recorded dynamic instruction *)
  | Flet of freg * fexpr
      (** float scratch assignment — {e not} a dynamic instruction, so it is
          never an injection site. The optimizer introduces these for
          hoisted/shared subexpressions; kernels may also use them for
          temporaries that the paper's fault model would not cover. *)
  | Iassign of ireg * iexpr
  | For of ireg * iexpr * iexpr * stmt list
      (** [For (i, lo, hi, body)]: i = lo, lo+1, ..., hi-1 *)
  | If of cond * stmt list * stmt list
  | Guard of fexpr * string  (** crash (NaN trap) when the value is non-finite *)

(** {1 Program construction} *)

type t
(** An IR program under construction / ready to run. *)

val create : name:string -> tolerance:float -> t
(** Fresh program. [tolerance] is the acceptance threshold [T]. *)

val freg : t -> freg
(** Allocate a float register. *)

val ireg : t -> ireg
(** Allocate an integer register. *)

val array : t -> name:string -> init:float array -> array_id
(** Declare an input/working array with initial contents (copied at every
    run). *)

val output_array : t -> array_id -> unit
(** Designate the array whose final contents are the program output.
    Must be called exactly once before running. *)

val set_body : t -> stmt list -> unit
(** Attach the program body. *)

val to_program : t -> Ftb_trace.Program.t
(** Lower to an instrumented {!Ftb_trace.Program.t}: the body is compiled
    once to the flat {!Machine} and every run executes the compiled form,
    so golden runs, campaigns, boundaries and studies all work unchanged.
    The resulting program carries the [resumable] prefix-snapshot
    capability — exhaustive campaigns on IR programs run each injection
    site's shared prefix once and replay only the suffix per bit flip
    ([Ftb_inject.Executor]). Raises [Invalid_argument] if the program has
    no body or no output array, or [Ir_error] at run time for
    out-of-bounds accesses and reads of unassigned registers. *)

val to_program_interpreted : t -> Ftb_trace.Program.t
(** Lower via the structured tree-walking interpreter instead of the
    compiled machine: the reference engine. No [resumable] capability, no
    compilation — every run walks the AST. Campaign outcomes must be
    bit-identical to {!to_program}'s; kept as the differential-testing
    oracle and as the pre-optimization baseline of the campaign throughput
    benchmark. *)

val to_machine : t -> Machine.t
(** Compile to the flat machine without building a {!Ftb_trace.Program.t}
    (tags are numbered per distinct label in first-appearance order).
    Mostly for tests and tools that want to drive {!Machine.prefix} /
    {!Machine.resume} directly. *)

exception Ir_error of string
(** Runtime error of the interpreter (out-of-bounds store, negative loop
    bound, etc.). Distinct from {!Ftb_trace.Ctx.Crash}, which models the
    program's own NaN traps. *)

(** {1 Convenience} *)

val interpret_plain : t -> float array
(** Run the IR without instrumentation (oracle for tests). *)

val pp : Format.formatter -> t -> unit
(** Pretty-print a program: array declarations with sizes, the output
    designation, and an indented statement listing. Stable output (useful
    for golden tests and debugging generated IR). *)

val to_string : t -> string
(** [Format.asprintf "%a" pp]. *)

(** {1 Introspection}

    The optimizer ({!Passes}, {!Pipeline}) and the dependent-cone analysis
    ({!Cone}) treat a program as a value: read the body, rewrite it, build
    a structurally-shared copy. *)

val name : t -> string
val tolerance : t -> float

val n_fregs : t -> int
(** Number of float registers allocated so far (fresh ids are [>= n_fregs]). *)

val n_iregs : t -> int

val body : t -> stmt list
(** The attached body. Raises [Invalid_argument] when none is set. *)

val output_id : t -> array_id
(** The designated output array. Raises [Invalid_argument] when unset. *)

val arrays : t -> (string * float array) list
(** Declared arrays in declaration order; position is the [array_id]. The
    initial contents are the live backing store — treat as read-only. *)

val with_body : t -> stmt list -> t
(** Functional copy with a new body. Register allocation on the copy (for
    optimizer temporaries) does not disturb the original. *)

val event_stream : t -> (string * float) list
(** Run the structured interpreter uninstrumented and return the dynamic
    event stream in execution order: [(label, value)] per recorded
    instruction and [("guard:" ^ what, value)] per guard evaluation. The
    stream {e is} the injection-site space, so an optimization pass is
    legal iff it preserves this list with bitwise-equal floats — the
    {!Pipeline} validator compares exactly this. *)

(** {1 Sectioned interpretation}

    Support for the compositional profile cache ({!Ftb_compose}): run the
    structured interpreter over a body partitioned into statement groups,
    capturing the full interpreter state at each group boundary. The state
    serialization is bit-exact (little-endian [Int64.bits_of_float] per
    float; every register with its assigned flag; every array's contents),
    so two serializations are equal iff the remaining computation cannot
    distinguish the two states. *)

val initial_state : t -> string
(** Serialized interpreter state before the first statement runs: all
    registers unset, arrays at their declared initial contents. Computable
    without executing the program — the basis of the whole-boundary cache
    key, so a byte-identical resubmission is recognized without running
    anything. *)

type sectioned_run = {
  sec_entries : string array;
      (** serialized interpreter state at each group's entry; index 0
          equals {!initial_state} *)
  sec_sites : int array;  (** recorded dynamic instructions per group *)
  sec_values : float array;
      (** every recorded value in execution order — must match the golden
          trace bit-exactly or the grouping is unsound *)
  sec_output : float array;  (** final contents of the output array *)
  sec_exit : string;  (** serialized state after the last group *)
}

val run_sectioned : t -> groups:stmt list list -> sectioned_run
(** Interpret the concatenation of [groups] as the program body (the
    caller asserts it is semantically the body — e.g. a peeled loop) and
    capture per-group entry states and site counts. Raises {!Ir_error}
    exactly where {!interpret_plain} would. *)

val validate : t -> (unit, string list) Result.t
(** Static checks, each reported as a human-readable message:
    - the program has a body and an output array;
    - every register read is preceded by an assignment on every path
      (loop bodies are assumed to execute at least zero times, so a
      definition that only happens inside a loop does not count for code
      after it — conservative, like an uninitialised-variable lint);
    - constant array indices are within bounds;
    - [For] loops with constant bounds have [lo <= hi].
    [Ok ()] when nothing is flagged. *)
