(** The IR optimizing pipeline and its structural validator.

    Runs {!Passes} in sequence; after every pass, re-checks that the
    program still validates, that the distinct instruction labels in
    first-appearance order are unchanged (this pins [Ir.to_program]'s
    tag numbering, keeping campaign ground truth comparable), and that
    the dynamic event stream is preserved with bitwise-equal floats.
    Any violation raises {!Pipeline_error} naming the offending pass. *)

exception Pipeline_error of string

type pass_stat = {
  pass_name : string;
  stmts_before : int;
  stmts_after : int;
  ops_before : int;
  ops_after : int;
}

val default_passes : Passes.pass list
(** {!Passes.all}. *)

val labels_of : Ir.t -> string list
(** Distinct instruction labels in first-appearance order — exactly the
    order [Ir.to_program] registers static tags in. *)

val optimize : ?passes:Passes.pass list -> ?verify:bool -> Ir.t -> Ir.t
(** Apply the pass list (default {!default_passes}) with inter-pass
    verification (default [true]). *)

val optimize_with_report :
  ?passes:Passes.pass list -> ?verify:bool -> Ir.t -> Ir.t * pass_stat list
(** {!optimize}, also returning per-pass static size deltas for
    [ftb ir --dump --pass-stats]. *)

val to_program : ?passes:Passes.pass list -> ?verify:bool -> Ir.t -> Ftb_trace.Program.t
(** [optimize] followed by [Ir.to_program], with the dependent-cone
    capability ({!Cone.plan}, built lazily on first use and memoized
    behind a mutex — safe to force from multiple domains) attached. This
    is the constructor the kernel suite uses: batched campaigns on the
    result take the cone fast path wherever the analysis is exact and
    fall back to prefix-snapshot replay elsewhere, byte-identical either
    way. *)
