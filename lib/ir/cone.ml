module Ctx = Ftb_trace.Ctx
module Program = Ftb_trace.Program

(* Dependent-cone replay: the site-suffix specializer.

   The batched executor already shares a site's injection-free prefix
   across its cases; this analysis removes the *suffix* replay too. One
   instrumented-free analysis run over the structured IR records, for
   every float-producing execution step (an "event": a recorded Fassign or
   Store, or a scratch Flet), which earlier events produced the values it
   reads, the golden values it read, and the golden value it produced.
   That is a complete dataflow graph of the golden execution.

   Corrupting site k can then only change the events reachable from k's
   event through producer->consumer edges — the dependent cone (forward
   slice). Everything outside the cone recomputes its golden value
   bit-identically, so a case's outcome is a pure function of the
   corrupted seed value and the cone: recompute cone events in execution
   order against a mix of recomputed (in-cone) and golden (out-of-cone)
   operands, re-evaluate the guards the cone feeds, and measure the L∞
   deviation of the output elements whose final writers sit in the cone.
   No prefix run, no suffix replay, no output-array copy.

   The specialization is exact only while the corrupted run follows the
   golden control-flow path. Integer state is untaintable by construction
   (fexpr and iexpr are disjoint), so loops cannot diverge; [Fcmp]
   branches can. A cone that feeds any float branch condition is
   therefore rejected ([cone_case] returns [None]) and the executor falls
   back to prefix-snapshot replay, as it does for oversized cones (no win
   over suffix replay) and for sites past the plan's horizon. Guards are
   *not* a rejection reason: a tainted guard is re-evaluated in execution
   order, and the first non-finite value reproduces the full run's crash
   reason exactly — mirroring [Ctx.guard_finite] (NaN before Inf) and
   [Runner.classify] (NaN anywhere in the output dominates, saturated
   finite differences count as Inf). *)

type fnode = { eval_flat : float array -> float; n_leaves : int }

(* Compile an fexpr against a flat buffer of leaf values: leaf k (in
   left-to-right evaluation order) reads [vals.(k)]. The arithmetic is the
   same IEEE operation sequence as the interpreter's, so results are
   bit-identical given bit-identical operands. *)
let compile_flat e =
  let n = ref 0 in
  let rec go e =
    match e with
    | Ir.Fconst v -> fun (_ : float array) -> v
    | Ir.Freg _ | Ir.Fload _ ->
        let k = !n in
        incr n;
        fun vals -> vals.(k)
    | Ir.Fadd (a, b) ->
        let ca = go a in
        let cb = go b in
        fun v -> ca v +. cb v
    | Ir.Fsub (a, b) ->
        let ca = go a in
        let cb = go b in
        fun v -> ca v -. cb v
    | Ir.Fmul (a, b) ->
        let ca = go a in
        let cb = go b in
        fun v -> ca v *. cb v
    | Ir.Fdiv (a, b) ->
        let ca = go a in
        let cb = go b in
        fun v -> ca v /. cb v
    | Ir.Fneg a ->
        let ca = go a in
        fun v -> -.ca v
    | Ir.Fabs a ->
        let ca = go a in
        fun v -> abs_float (ca v)
    | Ir.Fsqrt a ->
        let ca = go a in
        fun v -> sqrt (ca v)
  in
  let eval = go e in
  { eval_flat = eval; n_leaves = !n }

(* Body pre-compiled once: every float expression carries its fnode so the
   analysis walk does not recompile per dynamic execution. *)
type cstmt =
  | CReg of int * Ir.fexpr * fnode * bool  (* reg, expr, node, recorded *)
  | CStore of int * Ir.iexpr * Ir.fexpr * fnode
  | CIassign of int * Ir.iexpr
  | CFor of int * Ir.iexpr * Ir.iexpr * cstmt list
  | CIfF of [ `Lt | `Le | `Gt | `Ge ] * Ir.fexpr * Ir.fexpr * cstmt list * cstmt list
  | CIfI of [ `Lt | `Le | `Eq | `Ne ] * Ir.iexpr * Ir.iexpr * cstmt list * cstmt list
  | CGuard of Ir.fexpr * fnode * string

let rec compile_stmt = function
  | Ir.Fassign (r, e, _) -> CReg ((r :> int), e, compile_flat e, true)
  | Ir.Flet (r, e) -> CReg ((r :> int), e, compile_flat e, false)
  | Ir.Store (a, i, e, _) -> CStore ((a :> int), i, e, compile_flat e)
  | Ir.Iassign (r, e) -> CIassign ((r :> int), e)
  | Ir.For (r, lo, hi, b) -> CFor ((r :> int), lo, hi, List.map compile_stmt b)
  | Ir.If (Ir.Fcmp (op, a, b), yes, no) ->
      CIfF (op, a, b, List.map compile_stmt yes, List.map compile_stmt no)
  | Ir.If (Ir.Icmp (op, a, b), yes, no) ->
      CIfI (op, a, b, List.map compile_stmt yes, List.map compile_stmt no)
  | Ir.Guard (e, w) -> CGuard (e, compile_flat e, w)

type ev = {
  node : fnode;
  reads : int array;  (* per leaf: producer event id, -1 = initial data *)
  read_vals : float array;  (* per leaf: golden value *)
  golden : float;
  mutable out_elem : int;  (* output element this event finally writes, -1 *)
}

type guard_rec = {
  g_node : fnode;
  g_reads : int array;
  g_read_vals : float array;
}

type walk = {
  mutable rev_events : ev list;
  mutable n_events : int;
  mutable edges : (int * int) list;  (* producer event -> consumer event *)
  mutable rev_guards : guard_rec list;
  mutable n_guards : int;
  mutable g_edges : (int * int) list;  (* producer event -> guard index *)
  mutable branch_feeders : int list;
  mutable rev_sites : int list;
  fregs : float array;
  freg_prod : int array;
  iregs : int array;
  arrays : float array array;
  elem_prod : int array array;
}

let rec eval_i w = function
  | Ir.Iconst n -> n
  | Ir.Ireg r -> w.iregs.((r :> int))
  | Ir.Iadd (a, b) -> eval_i w a + eval_i w b
  | Ir.Isub (a, b) -> eval_i w a - eval_i w b
  | Ir.Imul (a, b) -> eval_i w a * eval_i w b

(* Evaluate an fexpr, capturing per leaf (left-to-right, matching
   [compile_flat]'s numbering) the producer event and golden value. *)
let eval_obs w e =
  let leaves = ref [] in
  let rec go = function
    | Ir.Fconst v -> v
    | Ir.Freg r ->
        let ri = (r :> int) in
        let v = w.fregs.(ri) in
        leaves := (w.freg_prod.(ri), v) :: !leaves;
        v
    | Ir.Fload (a, ie) ->
        let ai = (a :> int) in
        let i = eval_i w ie in
        let v = w.arrays.(ai).(i) in
        leaves := (w.elem_prod.(ai).(i), v) :: !leaves;
        v
    | Ir.Fadd (a, b) ->
        let x = go a in
        let y = go b in
        x +. y
    | Ir.Fsub (a, b) ->
        let x = go a in
        let y = go b in
        x -. y
    | Ir.Fmul (a, b) ->
        let x = go a in
        let y = go b in
        x *. y
    | Ir.Fdiv (a, b) ->
        let x = go a in
        let y = go b in
        x /. y
    | Ir.Fneg a -> -.go a
    | Ir.Fabs a -> abs_float (go a)
    | Ir.Fsqrt a -> sqrt (go a)
  in
  let v = go e in
  let l = List.rev !leaves in
  (v, Array.of_list (List.map fst l), Array.of_list (List.map snd l))

let push_event w node reads read_vals golden =
  let id = w.n_events in
  w.rev_events <- { node; reads; read_vals; golden; out_elem = -1 } :: w.rev_events;
  w.n_events <- id + 1;
  Array.iter (fun p -> if p >= 0 then w.edges <- (p, id) :: w.edges) reads;
  id

let rec exec_c w s =
  match s with
  | CReg (r, e, node, recorded) ->
      let v, reads, read_vals = eval_obs w e in
      let id = push_event w node reads read_vals v in
      w.fregs.(r) <- v;
      w.freg_prod.(r) <- id;
      if recorded then w.rev_sites <- id :: w.rev_sites
  | CStore (a, ie, e, node) ->
      let i = eval_i w ie in
      let v, reads, read_vals = eval_obs w e in
      let id = push_event w node reads read_vals v in
      w.arrays.(a).(i) <- v;
      w.elem_prod.(a).(i) <- id;
      w.rev_sites <- id :: w.rev_sites
  | CIassign (r, e) -> w.iregs.(r) <- eval_i w e
  | CFor (r, lo, hi, body) ->
      let lo = eval_i w lo and hi = eval_i w hi in
      for i = lo to hi - 1 do
        w.iregs.(r) <- i;
        List.iter (exec_c w) body
      done
  | CIfF (op, a, b, yes, no) ->
      let x, reads_a, _ = eval_obs w a in
      let y, reads_b, _ = eval_obs w b in
      let mark reads =
        Array.iter (fun p -> if p >= 0 then w.branch_feeders <- p :: w.branch_feeders) reads
      in
      mark reads_a;
      mark reads_b;
      let taken = match op with `Lt -> x < y | `Le -> x <= y | `Gt -> x > y | `Ge -> x >= y in
      List.iter (exec_c w) (if taken then yes else no)
  | CIfI (op, a, b, yes, no) ->
      let x = eval_i w a and y = eval_i w b in
      let taken = match op with `Lt -> x < y | `Le -> x <= y | `Eq -> x = y | `Ne -> x <> y in
      List.iter (exec_c w) (if taken then yes else no)
  | CGuard (e, node, _what) ->
      let _v, reads, read_vals = eval_obs w e in
      let gid = w.n_guards in
      w.rev_guards <- { g_node = node; g_reads = reads; g_read_vals = read_vals } :: w.rev_guards;
      w.n_guards <- gid + 1;
      Array.iter (fun p -> if p >= 0 then w.g_edges <- (p, gid) :: w.g_edges) reads

(* Bucket an edge list into CSR adjacency. *)
let csr ~rows edges =
  let deg = Array.make (rows + 1) 0 in
  List.iter (fun (p, _) -> deg.(p + 1) <- deg.(p + 1) + 1) edges;
  for i = 1 to rows do
    deg.(i) <- deg.(i) + deg.(i - 1)
  done;
  let fill = Array.copy deg in
  let cols = Array.make (List.length edges) 0 in
  List.iter
    (fun (p, c) ->
      cols.(fill.(p)) <- c;
      fill.(p) <- fill.(p) + 1)
    edges;
  (deg, cols)

let plan (t : Ir.t) : Program.cone_plan =
  let body = Ir.body t in
  let output = (Ir.output_id t :> int) in
  let tolerance = Ir.tolerance t in
  let arrays =
    Array.of_list (List.map (fun (_, init) -> Array.copy init) (Ir.arrays t))
  in
  let w =
    {
      rev_events = [];
      n_events = 0;
      edges = [];
      rev_guards = [];
      n_guards = 0;
      g_edges = [];
      branch_feeders = [];
      rev_sites = [];
      fregs = Array.make (max 1 (Ir.n_fregs t)) 0.;
      freg_prod = Array.make (max 1 (Ir.n_fregs t)) (-1);
      iregs = Array.make (max 1 (Ir.n_iregs t)) 0;
      arrays;
      elem_prod = Array.map (fun a -> Array.make (Array.length a) (-1)) arrays;
    }
  in
  List.iter (exec_c w) (List.map compile_stmt body);
  let events = Array.of_list (List.rev w.rev_events) in
  let n = w.n_events in
  Array.iteri (fun j p -> if p >= 0 then events.(p).out_elem <- j) w.elem_prod.(output);
  let row_ptr, consumers = csr ~rows:n w.edges in
  let g_row_ptr, g_consumers = csr ~rows:n w.g_edges in
  let feeds_branch = Array.make (max 1 n) false in
  List.iter (fun p -> feeds_branch.(p) <- true) w.branch_feeders;
  let site_events = Array.of_list (List.rev w.rev_sites) in
  let guards = Array.of_list (List.rev w.rev_guards) in
  let n_guards = Array.length guards in
  let max_leaves =
    let m = Array.fold_left (fun m ev -> max m ev.node.n_leaves) 1 events in
    Array.fold_left (fun m g -> max m g.g_node.n_leaves) m guards
  in
  let cone_case ~site =
    if site < 0 || site >= Array.length site_events then None
    else begin
      let seed = site_events.(site) in
      (* Below this, cone replay cannot beat suffix replay; fall back. *)
      let limit = max 32 ((n - seed) / 2) in
      let in_cone = Array.make n false in
      let rec grow acc count stack =
        match stack with
        | [] -> Some (acc, count)
        | e :: rest ->
            if in_cone.(e) then grow acc count rest
            else if feeds_branch.(e) || count >= limit then None
            else begin
              in_cone.(e) <- true;
              let stack = ref rest in
              for k = row_ptr.(e) to row_ptr.(e + 1) - 1 do
                let c = consumers.(k) in
                if not in_cone.(c) then stack := c :: !stack
              done;
              grow (e :: acc) (count + 1) !stack
            end
      in
      match grow [] 0 [ seed ] with
      | None -> None
      | Some (members, _count) ->
          let members = Array.of_list members in
          Array.sort compare members;
          let tainted_guards =
            if n_guards = 0 then [||]
            else begin
              let mark = Array.make n_guards false in
              Array.iter
                (fun e ->
                  for k = g_row_ptr.(e) to g_row_ptr.(e + 1) - 1 do
                    mark.(g_consumers.(k)) <- true
                  done)
                members;
              let out = ref [] in
              for gi = n_guards - 1 downto 0 do
                if mark.(gi) then out := gi :: !out
              done;
              Array.of_list !out
            end
          in
          (* Scratch shared by all cases of this site (single-threaded). *)
          let value = Array.make n 0. in
          let buf = Array.make max_leaves 0. in
          let fill_buf node reads read_vals =
            for k = 0 to node.n_leaves - 1 do
              let p = reads.(k) in
              buf.(k) <- (if p >= 0 && in_cone.(p) then value.(p) else read_vals.(k))
            done
          in
          Some
            (fun corrupt ->
              value.(seed) <- corrupt events.(seed).golden;
              Array.iter
                (fun e ->
                  if e <> seed then begin
                    let ev = events.(e) in
                    fill_buf ev.node ev.reads ev.read_vals;
                    value.(e) <- ev.node.eval_flat buf
                  end)
                members;
              let crash = ref None in
              (try
                 Array.iter
                   (fun gi ->
                     let g = guards.(gi) in
                     fill_buf g.g_node g.g_reads g.g_read_vals;
                     let v = g.g_node.eval_flat buf in
                     if not (Ftb_util.Bits.is_finite v) then begin
                       crash :=
                         Some (if Float.is_nan v then Ctx.Nan_value else Ctx.Inf_value);
                       raise Exit
                     end)
                   tainted_guards
               with Exit -> ());
              match !crash with
              | Some reason -> Program.Cone_crash reason
              | None ->
                  let err = ref 0. and nan_seen = ref false in
                  Array.iter
                    (fun e ->
                      let ev = events.(e) in
                      if ev.out_elem >= 0 then begin
                        let v = value.(e) in
                        if Float.is_nan v then nan_seen := true;
                        let d = abs_float (v -. ev.golden) in
                        let d = if Float.is_nan d then infinity else d in
                        if d > !err then err := d
                      end)
                    members;
                  if !err = infinity then
                    Program.Cone_crash (if !nan_seen then Ctx.Nan_value else Ctx.Inf_value)
                  else if !err <= tolerance then Program.Cone_masked
                  else Program.Cone_sdc)
    end
  in
  { Program.cone_sites = Array.length site_events; cone_case }
