open Ir

(* Optimization passes over the structured IR.

   Legality is stricter than classical compiler correctness: the dynamic
   event stream (count, order, labels and bit-exact values of every
   recorded instruction and guard) IS the fault-injection sample space, so
   a pass must preserve it exactly — and must also preserve *injection*
   semantics: a recorded register/array element may hold a corrupted value
   at run time, so a pass may never substitute a recorded location with a
   recomputation (or vice versa), and may only reuse a scratch ([Flet])
   value across program points when nothing the defining expression reads
   can change — in any run, golden or corrupted — between definition and
   use. That is why:

   - constant folding performs no float identities (x +. 0. is not x for
     -0.; x *. 1. is bit-safe but kept out for uniformity) — only
     compile-time evaluation of all-constant subtrees, which is the same
     IEEE operation the interpreter would perform;
   - CSE introduces non-recorded [Flet] temporaries only, and kills
     availability on every write to anything an expression reads
     (register, array, index register) — a recorded write is a potential
     corruption point;
   - availability never crosses [For]/[If] boundaries, so control-flow
     divergence under a corrupted [Fcmp] cannot invalidate a reuse;
   - passes assume a validated program (reads are def-before-use on every
     path), which makes dropping integer subexpressions and dead code
     side-effect free. *)

let is_leaf = function Fconst _ | Freg _ -> true | Fload _ | Fadd _ | Fsub _ | Fmul _ | Fdiv _ | Fneg _ | Fabs _ | Fsqrt _ -> false

(* Structural equality with bitwise float comparison: Fconst nan must
   equal Fconst nan, and Fconst 0. must NOT equal Fconst (-0.) — the
   polymorphic [=] gets both wrong for this purpose. *)
let rec fexpr_eq a b =
  match (a, b) with
  | Fconst x, Fconst y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Freg x, Freg y -> x = y
  | Fload (ax, ix), Fload (ay, iy) -> ax = ay && iexpr_eq ix iy
  | Fadd (x1, y1), Fadd (x2, y2)
  | Fsub (x1, y1), Fsub (x2, y2)
  | Fmul (x1, y1), Fmul (x2, y2)
  | Fdiv (x1, y1), Fdiv (x2, y2) ->
      fexpr_eq x1 x2 && fexpr_eq y1 y2
  | Fneg x, Fneg y | Fabs x, Fabs y | Fsqrt x, Fsqrt y -> fexpr_eq x y
  | ( ( Fconst _ | Freg _ | Fload _ | Fadd _ | Fsub _ | Fmul _ | Fdiv _ | Fneg _ | Fabs _
      | Fsqrt _ ),
      _ ) ->
      false

and iexpr_eq a b =
  match (a, b) with
  | Iconst x, Iconst y -> x = y
  | Ireg x, Ireg y -> x = y
  | Iadd (x1, y1), Iadd (x2, y2) | Isub (x1, y1), Isub (x2, y2) | Imul (x1, y1), Imul (x2, y2)
    ->
      iexpr_eq x1 x2 && iexpr_eq y1 y2
  | (Iconst _ | Ireg _ | Iadd _ | Isub _ | Imul _), _ -> false

let rec i_reads_ireg r = function
  | Iconst _ -> false
  | Ireg r' -> r' = r
  | Iadd (a, b) | Isub (a, b) | Imul (a, b) -> i_reads_ireg r a || i_reads_ireg r b

let rec f_reads_freg r = function
  | Fconst _ | Fload _ -> false
  | Freg r' -> r' = r
  | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) ->
      f_reads_freg r a || f_reads_freg r b
  | Fneg a | Fabs a | Fsqrt a -> f_reads_freg r a

let rec f_reads_ireg r = function
  | Fconst _ | Freg _ -> false
  | Fload (_, i) -> i_reads_ireg r i
  | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) ->
      f_reads_ireg r a || f_reads_ireg r b
  | Fneg a | Fabs a | Fsqrt a -> f_reads_ireg r a

let rec f_loads_array a = function
  | Fconst _ | Freg _ -> false
  | Fload (a', _) -> a' = a
  | Fadd (x, y) | Fsub (x, y) | Fmul (x, y) | Fdiv (x, y) ->
      f_loads_array a x || f_loads_array a y
  | Fneg x | Fabs x | Fsqrt x -> f_loads_array a x

let rec isize = function
  | Iconst _ | Ireg _ -> 1
  | Iadd (a, b) | Isub (a, b) | Imul (a, b) -> 1 + isize a + isize b

let rec fsize = function
  | Fconst _ | Freg _ -> 1
  | Fload (_, i) -> 1 + isize i
  | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) -> 1 + fsize a + fsize b
  | Fneg a | Fabs a | Fsqrt a -> 1 + fsize a

(* Replace every subtree structurally equal to [target] with [repl]. *)
let rec fsubst ~target ~repl e =
  if fexpr_eq e target then repl
  else
    match e with
    | Fconst _ | Freg _ | Fload _ -> e
    | Fadd (a, b) -> Fadd (fsubst ~target ~repl a, fsubst ~target ~repl b)
    | Fsub (a, b) -> Fsub (fsubst ~target ~repl a, fsubst ~target ~repl b)
    | Fmul (a, b) -> Fmul (fsubst ~target ~repl a, fsubst ~target ~repl b)
    | Fdiv (a, b) -> Fdiv (fsubst ~target ~repl a, fsubst ~target ~repl b)
    | Fneg a -> Fneg (fsubst ~target ~repl a)
    | Fabs a -> Fabs (fsubst ~target ~repl a)
    | Fsqrt a -> Fsqrt (fsubst ~target ~repl a)

let subst_cond ~target ~repl = function
  | Fcmp (op, a, b) -> Fcmp (op, fsubst ~target ~repl a, fsubst ~target ~repl b)
  | Icmp _ as c -> c

let rec subst_stmt ~target ~repl s =
  match s with
  | Fassign (r, e, l) -> Fassign (r, fsubst ~target ~repl e, l)
  | Store (a, i, e, l) -> Store (a, i, fsubst ~target ~repl e, l)
  | Flet (r, e) -> Flet (r, fsubst ~target ~repl e)
  | Iassign _ -> s
  | Guard (e, w) -> Guard (fsubst ~target ~repl e, w)
  | For (r, lo, hi, b) -> For (r, lo, hi, List.map (subst_stmt ~target ~repl) b)
  | If (c, a, b) ->
      If
        ( subst_cond ~target ~repl c,
          List.map (subst_stmt ~target ~repl) a,
          List.map (subst_stmt ~target ~repl) b )

let rec block_has_label stmts = List.exists stmt_has_label stmts

and stmt_has_label = function
  | Fassign _ | Store _ -> true
  | Flet _ | Iassign _ | Guard _ -> false
  | For (_, _, _, b) -> block_has_label b
  | If (_, a, b) -> block_has_label a || block_has_label b

type pass = { pass_name : string; run : Ir.t -> Ir.t }

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)

let rec fold_i e =
  match e with
  | Iconst _ | Ireg _ -> e
  | Iadd (a, b) -> (
      match (fold_i a, fold_i b) with
      | Iconst x, Iconst y -> Iconst (x + y)
      | Iconst 0, e | e, Iconst 0 -> e
      | a, b -> Iadd (a, b))
  | Isub (a, b) -> (
      match (fold_i a, fold_i b) with
      | Iconst x, Iconst y -> Iconst (x - y)
      | e, Iconst 0 -> e
      | a, b -> Isub (a, b))
  | Imul (a, b) -> (
      match (fold_i a, fold_i b) with
      | Iconst x, Iconst y -> Iconst (x * y)
      | Iconst 0, _ | _, Iconst 0 -> Iconst 0
      | Iconst 1, e | e, Iconst 1 -> e
      | a, b -> Imul (a, b))

(* Float folding performs exactly the operation the interpreter would —
   same IEEE op on the same operands, just at compile time — so the result
   is bit-identical, including NaN/inf production. No algebraic identities
   on non-constant operands. *)
let rec fold_f e =
  match e with
  | Fconst _ | Freg _ -> e
  | Fload (a, i) -> Fload (a, fold_i i)
  | Fadd (a, b) -> (
      match (fold_f a, fold_f b) with
      | Fconst x, Fconst y -> Fconst (x +. y)
      | a, b -> Fadd (a, b))
  | Fsub (a, b) -> (
      match (fold_f a, fold_f b) with
      | Fconst x, Fconst y -> Fconst (x -. y)
      | a, b -> Fsub (a, b))
  | Fmul (a, b) -> (
      match (fold_f a, fold_f b) with
      | Fconst x, Fconst y -> Fconst (x *. y)
      | a, b -> Fmul (a, b))
  | Fdiv (a, b) -> (
      match (fold_f a, fold_f b) with
      | Fconst x, Fconst y -> Fconst (x /. y)
      | a, b -> Fdiv (a, b))
  | Fneg a -> ( match fold_f a with Fconst x -> Fconst (-.x) | a -> Fneg a)
  | Fabs a -> ( match fold_f a with Fconst x -> Fconst (abs_float x) | a -> Fabs a)
  | Fsqrt a -> ( match fold_f a with Fconst x -> Fconst (sqrt x) | a -> Fsqrt a)

let fold_cond = function
  | Fcmp (op, a, b) -> Fcmp (op, fold_f a, fold_f b)
  | Icmp (op, a, b) -> Icmp (op, fold_i a, fold_i b)

let const_cond = function
  | Icmp (op, Iconst x, Iconst y) ->
      Some (match op with `Lt -> x < y | `Le -> x <= y | `Eq -> x = y | `Ne -> x <> y)
  | Fcmp (op, Fconst x, Fconst y) ->
      Some (match op with `Lt -> x < y | `Le -> x <= y | `Gt -> x > y | `Ge -> x >= y)
  | Fcmp _ | Icmp _ -> None

let rec fold_stmt s =
  match s with
  | Fassign (r, e, l) -> [ Fassign (r, fold_f e, l) ]
  | Store (a, i, e, l) -> [ Store (a, fold_i i, fold_f e, l) ]
  | Flet (r, e) -> [ Flet (r, fold_f e) ]
  | Iassign (r, e) -> [ Iassign (r, fold_i e) ]
  | Guard (e, w) -> [ Guard (fold_f e, w) ]
  | For (r, lo, hi, body) -> (
      let lo = fold_i lo and hi = fold_i hi in
      let body = fold_block body in
      match (lo, hi) with
      (* Dead loops disappear only when that removes no label: the static
         instruction table (and hence tag numbering) must not change. *)
      | Iconst l, Iconst h when l >= h && not (block_has_label body) -> []
      | _ -> [ For (r, lo, hi, body) ])
  | If (c, yes, no) -> (
      let c = fold_cond c in
      let yes = fold_block yes and no = fold_block no in
      match const_cond c with
      | Some true when not (block_has_label no) -> yes
      | Some false when not (block_has_label yes) -> no
      | _ -> [ If (c, yes, no) ])

and fold_block stmts = List.concat_map fold_stmt stmts

let fold = { pass_name = "fold"; run = (fun t -> Ir.with_body t (fold_block (Ir.body t))) }

(* ------------------------------------------------------------------ *)
(* Common-subexpression elimination                                    *)

(* Availability: [(e, r)] means scratch register [r] currently holds the
   value [e] would evaluate to — in every run, including corrupted ones,
   because every write to anything [e] reads kills the entry. *)
type avail = (fexpr * freg) list

let kill_freg r (av : avail) =
  List.filter (fun (e, br) -> br <> r && not (f_reads_freg r e)) av

let kill_ireg r (av : avail) = List.filter (fun (e, _) -> not (f_reads_ireg r e)) av
let kill_array a (av : avail) = List.filter (fun (e, _) -> not (f_loads_array a e)) av

let rec rewrite_avail (av : avail) e =
  match List.find_opt (fun (ae, _) -> fexpr_eq ae e) av with
  | Some (_, r) -> Freg r
  | None -> (
      match e with
      | Fconst _ | Freg _ | Fload _ -> e
      | Fadd (a, b) -> Fadd (rewrite_avail av a, rewrite_avail av b)
      | Fsub (a, b) -> Fsub (rewrite_avail av a, rewrite_avail av b)
      | Fmul (a, b) -> Fmul (rewrite_avail av a, rewrite_avail av b)
      | Fdiv (a, b) -> Fdiv (rewrite_avail av a, rewrite_avail av b)
      | Fneg a -> Fneg (rewrite_avail av a)
      | Fabs a -> Fabs (rewrite_avail av a)
      | Fsqrt a -> Fsqrt (rewrite_avail av a))

let collect_subexprs acc e =
  let rec go acc e =
    let acc = if is_leaf e then acc else e :: acc in
    match e with
    | Fconst _ | Freg _ | Fload _ -> acc
    | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) -> go (go acc a) b
    | Fneg a | Fabs a | Fsqrt a -> go acc a
  in
  go acc e

(* Hoist subexpressions appearing >= 2 times across [exprs] (the float
   expressions of one statement, jointly) into fresh Flet temporaries,
   largest first. Within one statement no state changes between the
   evaluations, so sharing is bit-safe even across a record. *)
let hoist_common t exprs =
  let rec loop lets exprs added =
    let subs = List.fold_left collect_subexprs [] exprs in
    let repeated =
      List.filter
        (fun e -> List.length (List.filter (fexpr_eq e) subs) >= 2)
        subs
    in
    match List.sort (fun a b -> compare (fsize b) (fsize a)) repeated with
    | [] -> (List.rev lets, exprs, added)
    | best :: _ ->
        let r = Ir.freg t in
        let repl = Freg r in
        let exprs = List.map (fsubst ~target:best ~repl) exprs in
        loop (Flet (r, best) :: lets) exprs ((best, r) :: added)
  in
  loop [] exprs []

let rec cse_block t (av : avail) stmts =
  match stmts with
  | [] -> []
  | s :: rest ->
      let out, av = cse_stmt t av s in
      out @ cse_block t av rest

and cse_stmt t (av : avail) s =
  match s with
  | Fassign (r, e, l) ->
      let e = rewrite_avail av e in
      let lets, es, added = hoist_common t [ e ] in
      let e = List.hd es in
      (* The recorded register may be corrupted at run time: never make
         its expression available, and kill everything reading it. *)
      let av = kill_freg r (added @ av) in
      (lets @ [ Fassign (r, e, l) ], av)
  | Store (a, i, e, l) ->
      let e = rewrite_avail av e in
      let lets, es, added = hoist_common t [ e ] in
      let e = List.hd es in
      let av = kill_array a (added @ av) in
      (lets @ [ Store (a, i, e, l) ], av)
  | Flet (r, e) ->
      let e = rewrite_avail av e in
      let lets, es, added = hoist_common t [ e ] in
      let e = List.hd es in
      let av = kill_freg r (added @ av) in
      let av = if is_leaf e || f_reads_freg r e then av else (e, r) :: av in
      (lets @ [ Flet (r, e) ], av)
  | Iassign (r, _) -> ([ s ], kill_ireg r av)
  | Guard (e, w) ->
      let e = rewrite_avail av e in
      let lets, es, added = hoist_common t [ e ] in
      let e = List.hd es in
      (lets @ [ Guard (e, w) ], added @ av)
  | If (c, yes, no) ->
      let c, lets, added =
        match c with
        | Fcmp (op, a, b) ->
            let a = rewrite_avail av a and b = rewrite_avail av b in
            let lets, es, added = hoist_common t [ a; b ] in
            let a, b = match es with [ a; b ] -> (a, b) | _ -> assert false in
            (Fcmp (op, a, b), lets, added)
        | Icmp _ -> (c, [], [])
      in
      ignore added;
      let yes = cse_block t [] yes and no = cse_block t [] no in
      (* Branches may write anything; drop all availability. *)
      (lets @ [ If (c, yes, no) ], [])
  | For (r, lo, hi, body) ->
      let body = cse_block t [] body in
      ([ For (r, lo, hi, body) ], [])

let cse =
  {
    pass_name = "cse";
    run =
      (fun t ->
        let t = Ir.with_body t (Ir.body t) in
        let body = cse_block t [] (Ir.body t) in
        Ir.with_body t body);
  }

(* ------------------------------------------------------------------ *)
(* Loop-invariant code motion                                          *)

let rec block_writes acc stmts = List.fold_left stmt_writes acc stmts

and stmt_writes ((fs, is, arrs) as acc) = function
  | Fassign (r, _, _) | Flet (r, _) -> (r :: fs, is, arrs)
  | Store (a, _, _, _) -> (fs, is, a :: arrs)
  | Iassign (r, _) -> (fs, r :: is, arrs)
  | For (r, _, _, b) -> block_writes (fs, r :: is, arrs) b
  | If (_, a, b) -> block_writes (block_writes acc a) b
  | Guard _ -> acc

let rec i_invariant ~is e =
  match e with
  | Iconst _ -> true
  | Ireg r -> not (List.mem r is)
  | Iadd (a, b) | Isub (a, b) | Imul (a, b) -> i_invariant ~is a && i_invariant ~is b

let rec f_invariant ~fs ~is ~arrs ~allow_loads e =
  match e with
  | Fconst _ -> true
  | Freg r -> not (List.mem r fs)
  | Fload (a, i) -> allow_loads && (not (List.mem a arrs)) && i_invariant ~is i
  | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) ->
      f_invariant ~fs ~is ~arrs ~allow_loads a && f_invariant ~fs ~is ~arrs ~allow_loads b
  | Fneg a | Fabs a | Fsqrt a -> f_invariant ~fs ~is ~arrs ~allow_loads a

let rec licm_block t stmts = List.concat_map (licm_stmt t) stmts

and licm_stmt t s =
  match s with
  | If (c, yes, no) -> [ If (c, licm_block t yes, licm_block t no) ]
  | For (r, lo, hi, body0) ->
      let body = licm_block t body0 in
      let fs, is, arrs = block_writes ([], [ r ], []) body in
      (* Zero-trip safety: a hoisted expression is evaluated even when the
         loop would not run. Pure register arithmetic cannot raise (the
         validator guarantees def-before-use), but a load's bounds check
         can — so loads only move when the loop provably runs, and only
         from definitely-executed positions (a load under a nested [If]
         may be guarded by its condition). *)
      let guaranteed =
        match (lo, hi) with Iconst l, Iconst h -> l < h | _ -> false
      in
      let cands = ref [] in
      let rec add ~definitely e =
        let allow_loads = guaranteed && definitely in
        if (not (is_leaf e)) && f_invariant ~fs ~is ~arrs ~allow_loads e then begin
          if not (List.exists (fexpr_eq e) !cands) then cands := e :: !cands
        end
        else
          match e with
          | Fconst _ | Freg _ | Fload _ -> ()
          | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) ->
              add ~definitely a;
              add ~definitely b
          | Fneg a | Fabs a | Fsqrt a -> add ~definitely a
      in
      let rec scan ~definitely stmts =
        List.iter
          (fun s ->
            match s with
            | Fassign (_, e, _) | Flet (_, e) | Guard (e, _) | Store (_, _, e, _) ->
                add ~definitely e
            | Iassign _ -> ()
            | If (c, a, b) ->
                (match c with
                | Fcmp (_, x, y) ->
                    add ~definitely x;
                    add ~definitely y
                | Icmp _ -> ());
                scan ~definitely:false a;
                scan ~definitely:false b
            | For (_, _, _, b) -> scan ~definitely:false b)
          stmts
      in
      scan ~definitely:true body;
      let lets, body =
        List.fold_left
          (fun (lets, body) e ->
            let tmp = Ir.freg t in
            let body = List.map (subst_stmt ~target:e ~repl:(Freg tmp)) body in
            (Flet (tmp, e) :: lets, body))
          ([], body) (List.rev !cands)
      in
      List.rev_append lets [ For (r, lo, hi, body) ]
  | Fassign _ | Store _ | Flet _ | Iassign _ | Guard _ -> [ s ]

let licm =
  {
    pass_name = "licm";
    run =
      (fun t ->
        let t = Ir.with_body t (Ir.body t) in
        let body = licm_block t (Ir.body t) in
        Ir.with_body t body);
  }

(* ------------------------------------------------------------------ *)
(* Producer/consumer fusion + dead scratch elimination                 *)

let count_expr_reads counts e =
  let bump r = Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r)) in
  let rec go = function
    | Fconst _ | Fload _ -> ()
    | Freg r -> bump r
    | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) ->
        go a;
        go b
    | Fneg a | Fabs a | Fsqrt a -> go a
  in
  go e

let rec count_stmt_reads counts = function
  | Fassign (_, e, _) | Store (_, _, e, _) | Flet (_, e) | Guard (e, _) ->
      count_expr_reads counts e
  | Iassign _ -> ()
  | For (_, _, _, b) -> List.iter (count_stmt_reads counts) b
  | If (c, a, b) ->
      (match c with
      | Fcmp (_, x, y) ->
          count_expr_reads counts x;
          count_expr_reads counts y
      | Icmp _ -> ());
      List.iter (count_stmt_reads counts) a;
      List.iter (count_stmt_reads counts) b

let rec count_stmt_assigns counts = function
  | Fassign (r, _, _) | Flet (r, _) ->
      Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  | Store _ | Iassign _ | Guard _ -> ()
  | For (_, _, _, b) -> List.iter (count_stmt_assigns counts) b
  | If (_, a, b) ->
      List.iter (count_stmt_assigns counts) a;
      List.iter (count_stmt_assigns counts) b

let rec count_freg_in r e =
  match e with
  | Fconst _ | Fload _ -> 0
  | Freg r' -> if r' = r then 1 else 0
  | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) ->
      count_freg_in r a + count_freg_in r b
  | Fneg a | Fabs a | Fsqrt a -> count_freg_in r a

let fuse_pass t =
  let body = Ir.body t in
  let reads = Hashtbl.create 64 and assigns = Hashtbl.create 64 in
  List.iter (count_stmt_reads reads) body;
  List.iter (count_stmt_assigns assigns) body;
  let reads_of r = Option.value ~default:0 (Hashtbl.find_opt reads r) in
  let assigns_of r = Option.value ~default:0 (Hashtbl.find_opt assigns r) in
  (* Counts are computed once; fusion/DCE only ever *removes* reads, so a
     stale count over-approximates — which can only suppress a rewrite,
     never enable an unsound one (the in-statement occurrence is checked
     directly). *)
  let rec fuse_block stmts =
    match stmts with
    | [] -> []
    | Flet (r, _) :: rest when assigns_of r = 1 && reads_of r = 0 ->
        (* Dead scratch: the expression is pure (loads in an executed Flet
           cannot fault under a data-only corruption), so drop it. *)
        fuse_block rest
    | Flet (r, e) :: next :: rest
      when assigns_of r = 1 && reads_of r = 1
           &&
           let c =
             match next with
             | Fassign (_, e2, _) | Store (_, _, e2, _) | Flet (_, e2) | Guard (e2, _) ->
                 count_freg_in r e2
             | Iassign _ | For _ | If _ -> 0
           in
           c = 1 ->
        let target = Freg r and repl = e in
        let next =
          match next with
          | Fassign (r2, e2, l) -> Fassign (r2, fsubst ~target ~repl e2, l)
          | Store (a, i, e2, l) -> Store (a, i, fsubst ~target ~repl e2, l)
          | Flet (r2, e2) -> Flet (r2, fsubst ~target ~repl e2)
          | Guard (e2, w) -> Guard (fsubst ~target ~repl e2, w)
          | Iassign _ | For _ | If _ -> assert false
        in
        fuse_block (next :: rest)
    | For (r, lo, hi, b) :: rest -> For (r, lo, hi, fuse_block b) :: fuse_block rest
    | If (c, a, b) :: rest -> If (c, fuse_block a, fuse_block b) :: fuse_block rest
    | s :: rest -> s :: fuse_block rest
  in
  Ir.with_body t (fuse_block body)

let fuse = { pass_name = "fuse"; run = fuse_pass }

let all = [ fold; cse; licm; fuse ]

(* ------------------------------------------------------------------ *)
(* Static size metrics (for --pass-stats)                              *)

let rec stmt_count_of stmts =
  List.fold_left
    (fun n s ->
      n
      +
      match s with
      | Fassign _ | Store _ | Flet _ | Iassign _ | Guard _ -> 1
      | For (_, _, _, b) -> 1 + stmt_count_of b
      | If (_, a, b) -> 1 + stmt_count_of a + stmt_count_of b)
    0 stmts

let rec op_count_of stmts =
  let cond_size = function
    | Fcmp (_, a, b) -> 1 + fsize a + fsize b
    | Icmp (_, a, b) -> 1 + isize a + isize b
  in
  List.fold_left
    (fun n s ->
      n
      +
      match s with
      | Fassign (_, e, _) | Flet (_, e) | Guard (e, _) -> fsize e
      | Store (_, i, e, _) -> isize i + fsize e
      | Iassign (_, e) -> isize e
      | For (_, lo, hi, b) -> isize lo + isize hi + op_count_of b
      | If (c, a, b) -> cond_size c + op_count_of a + op_count_of b)
    0 stmts

let stmt_count t = stmt_count_of (Ir.body t)
let op_count t = op_count_of (Ir.body t)
