(** Optimization passes over the structured IR.

    Legality here is stricter than ordinary compiler correctness: the
    dynamic event stream — count, order, labels and {e bit-exact} values
    of every recorded instruction and guard — is the fault-injection
    sample space, and a recorded location may hold a corrupted value at
    run time. A legal pass therefore preserves the stream exactly (the
    {!Pipeline} validator enforces this between passes) and also preserves
    injection semantics: it never trades a read of a recorded location for
    a recomputation or vice versa, and only reuses a scratch ([Flet])
    value where nothing its defining expression reads can change between
    definition and use, in any run. See the pass implementations for the
    per-pass arguments. *)

type pass = { pass_name : string; run : Ir.t -> Ir.t }

val fold : pass
(** Constant folding: full integer folding with safe identities, float
    folding restricted to all-constant subtrees (the same IEEE operation
    the interpreter would perform — no float identities, which would break
    bit-exactness for [-0.]/NaN), branch/loop elimination for constant
    conditions and empty ranges when that removes no instruction label. *)

val cse : pass
(** Common-subexpression elimination into fresh non-recorded [Flet]
    temporaries: repeated subexpressions within a statement are shared,
    and scratch values are reused across statements under a kill-based
    availability analysis (any write to a register, index register or
    array an expression reads — including potentially corrupted recorded
    writes — invalidates it; availability never crosses control flow). *)

val licm : pass
(** Loop-invariant code motion: invariant non-leaf subexpressions move out
    of [For] bodies into [Flet] temporaries before the loop. Loads hoist
    only out of loops with constant non-empty bounds and from
    definitely-executed positions (a hoisted bounds check must not fire
    where the original could not); pure register arithmetic hoists from
    anywhere in the body. *)

val fuse : pass
(** Producer/consumer fusion: a [Flet] whose value is consumed exactly
    once, by the immediately following simple statement, is inlined into
    its consumer; dead scratch definitions are removed. Cleans up after
    {!cse}/{!licm} and shrinks the compiled instruction count. *)

val all : pass list
(** [[fold; cse; licm; fuse]] — the default pipeline order. *)

val stmt_count : Ir.t -> int
(** Static statement count of the body (loops and branches count once). *)

val op_count : Ir.t -> int
(** Static expression-node count over the whole body — the instruction
    metric reported by [ftb ir --pass-stats]. *)
