(** Flat register machine: the snapshot-capable IR executor.

    The structured interpreter in {!Ir} runs loops as native OCaml
    recursion — its execution position cannot be captured mid-run. This
    machine compiles an IR body into a flat instruction array with an
    explicit program counter and explicit loop (current, limit) slots, so
    the {e complete} interpreter state is a plain record of scalars and
    arrays. That is what makes prefix-snapshot bit batching possible: for
    each injection site the campaign executor runs the shared prefix once,
    snapshots, and replays only the suffix for each of the site's 64 bit
    flips (see [Ftb_inject.Executor]).

    Execution is bit-identical to the structured interpreter: expression
    evaluation order, bounds checks, unassigned-register checks, loop
    semantics (bounds evaluated once at entry; the loop variable rebound
    each iteration) and the dynamic-instruction stream all match
    [Ir.exec]. [Ir.to_program] runs every mode — golden, outcome-only,
    propagation — through this machine, so the batched and the full path
    share one engine. *)

type state = {
  mutable pc : int;
  fregs : float array;
  freg_set : bool array;
  iregs : int array;
  ireg_set : bool array;
  arrays : float array array;
  loop_cur : int array;
  loop_limit : int array;
}
(** Mutable execution state. Exposed so {!Ir} can compile expressions into
    closures over it; not intended for direct use elsewhere. *)

(** One flat instruction. [Record_reg]/[Record_store] are the dynamic
    instructions (fault-injection sites); everything else is control flow
    or integer bookkeeping. *)
type instr =
  | Record_reg of { reg : int; eval : state -> float; tag : int }
  | Record_store of {
      array_id : int;
      index : state -> int;
      eval : state -> float;
      tag : int;
    }
  | Assign_int of { reg : int; eval : state -> int }
  | Assign_float of { reg : int; eval : state -> float }
  | Guard of { eval : state -> float; what : string }
  | Jump of int
  | Branch_false of { cond : state -> bool; target : int }
  | Loop_init of { slot : int; lo : state -> int; hi : state -> int }
  | Loop_head of { slot : int; reg : int; exit : int }
  | Loop_next of { slot : int; head : int }

type t
(** A compiled program: instructions plus initial array images. *)

val create :
  instrs:instr array ->
  fregs:int ->
  iregs:int ->
  loops:int ->
  arrays:float array array ->
  output:int ->
  t
(** Assemble a machine. [arrays] are the initial array contents (copied
    into every fresh state); [output] designates the result array. Raises
    [Invalid_argument] when [output] is out of range. *)

val exec : t -> Ftb_trace.Ctx.t -> float array
(** Run the program to completion under the given context and return a
    copy of the output array. *)

type snapshot
(** A deep copy of the machine state at a pause point. Immutable from the
    outside; every {!resume} replays a fresh copy, so one snapshot serves
    any number of replays. *)

val prefix :
  t ->
  Ftb_trace.Ctx.t ->
  stop_at:int ->
  [ `Done of float array | `Paused of snapshot ]
(** Execute from the start until the machine is about to issue dynamic
    instruction number [stop_at] (i.e. the context has recorded exactly
    [stop_at] values and the next instruction is a record). Returns the
    snapshot at that point, or [`Done output] if the program finished
    earlier. Raises [Invalid_argument] when [stop_at < 0]; context crashes
    (e.g. fuel exhaustion inside the prefix) propagate. *)

val resume : t -> snapshot -> Ftb_trace.Ctx.t -> float array
(** Replay a paused execution to completion under a new context (typically
    {!Ftb_trace.Ctx.resume_outcome} carrying the injection). The snapshot
    itself is not mutated. *)
