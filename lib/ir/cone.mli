(** Dependent-cone replay: the site-suffix specializer.

    One uninstrumented analysis run over the structured IR records the
    complete dataflow graph of the golden execution: per float-producing
    step (recorded [Fassign]/[Store], scratch [Flet]) the producers and
    golden values of its operands and the golden value it produced. An
    injection at site [k] can then be classified by recomputing only the
    forward slice (dependent cone) of [k]'s event against precomputed
    golden operands — no prefix run, no suffix replay, no output copy.

    Exactness relies on the corrupted run following the golden control
    path: integer state is untaintable (fexpr/iexpr are disjoint), so a
    plan only declines ([cone_case ~site] = [None]) when the cone feeds a
    float [Fcmp] branch, when the cone is too large to beat suffix
    replay, or for out-of-range sites. Tainted guards are re-evaluated in
    execution order and reproduce the full run's crash reason exactly.
    Outcomes are bit-identical to full replay by construction; the
    differential tests in [test/test_cone.ml] enforce this per fault
    model. *)

val plan : Ir.t -> Ftb_trace.Program.cone_plan
(** Run the analysis (one golden-equivalent execution of the body) and
    build the plan. Raises (like the interpreter would) on invalid
    programs; callers that attach the capability wrap the call and treat
    failure as "no plan" ({!Pipeline.to_program} does). *)
