module Persist = Ftb_inject.Persist
module Fingerprint = Ftb_util.Fingerprint

type t = { root : string }

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~root =
  mkdir_p root;
  { root }

let root t = t.root

(* Entries shard by the key's first two hex chars: <root>/ab/<key>. Keeps
   directories small under heavy traffic and gives Persist.quarantine a
   natural sibling (<root>/ab/quarantine/) that the scan below can
   count. *)
let shard_dir t key = Filename.concat t.root (String.sub key 0 2)
let path_of_key t key = Filename.concat (shard_dir t key) key

let entries_of_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun name -> Fingerprint.is_hex name)
      |> List.map (Filename.concat dir)

let shard_dirs t =
  match Sys.readdir t.root with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun name ->
             String.length name = 2
             && String.for_all
                  (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
                  name)
      |> List.map (Filename.concat t.root)

let all_entries t = List.concat_map entries_of_dir (shard_dirs t)

let find t ~key =
  if not (Fingerprint.is_hex key) then None
  else
    let path = path_of_key t key in
    if not (Sys.file_exists path) then None
    else
      (* Any failure between here and a fully-validated profile means the
         artifact cannot be trusted: quarantine it as evidence (the next
         campaign rebuilds it) and report a miss. A corrupt cache entry
         costs a re-execution, never a wrong byte. *)
      match Persist.load_enveloped ~path with
      | exception (Persist.Format_error _ | Sys_error _) ->
          ignore (Persist.quarantine ~path : string option);
          None
      | contents -> (
          match Profile.parse ~path contents with
          | exception Persist.Format_error _ ->
              ignore (Persist.quarantine ~path : string option);
              None
          | profile ->
              if Profile.key profile = key then Some profile
              else begin
                ignore (Persist.quarantine ~path : string option);
                None
              end)

let put t profile =
  let key = Profile.key profile in
  mkdir_p (shard_dir t key);
  Persist.save_enveloped ~path:(path_of_key t key) (Profile.write profile)

(* Read-only decode used by stats and the provenance purge: never
   quarantines (these are bulk scans, not serving paths — [find] owns the
   quarantine policy). *)
let profile_of_path path =
  match Persist.load_enveloped ~path with
  | exception (Persist.Format_error _ | Sys_error _) -> None
  | contents -> (
      match Profile.parse ~path contents with
      | exception Persist.Format_error _ -> None
      | profile -> Some profile)

type stats = {
  entries : int;
  bytes : int;
  sections : int;
  boundaries : int;
  quarantined : int;
  unaudited : int;
}

let stats t =
  let entries = ref 0 and bytes = ref 0 in
  let sections = ref 0 and boundaries = ref 0 and unaudited = ref 0 in
  List.iter
    (fun path ->
      match Unix.stat path with
      | exception Unix.Unix_error _ -> ()
      | st -> (
          incr entries;
          bytes := !bytes + st.Unix.st_size;
          (* A file that no longer decodes counts as an entry (it occupies
             the namespace) but as neither kind. *)
          match profile_of_path path with
          | None -> ()
          | Some profile ->
              (match profile with
              | Profile.Section _ -> incr sections
              | Profile.Boundary _ -> incr boundaries);
              if not (Profile.prov_trusted (Profile.prov_of profile)) then
                incr unaudited))
    (all_entries t);
  let quarantined =
    List.fold_left
      (fun acc dir ->
        match Sys.readdir (Filename.concat dir "quarantine") with
        | exception Sys_error _ -> acc
        | names -> acc + Array.length names)
      0 (shard_dirs t)
  in
  {
    entries = !entries;
    bytes = !bytes;
    sections = !sections;
    boundaries = !boundaries;
    quarantined;
    unaudited = !unaudited;
  }

let remove path = try Sys.remove path with Sys_error _ -> ()

let invalidate t ~prefix =
  let victims =
    List.filter
      (fun path -> String.starts_with ~prefix (Filename.basename path))
      (all_entries t)
  in
  List.iter remove victims;
  List.length victims

(* Provenance purge: everything a (typically later-quarantined) worker
   contributed to goes, trusted-or-not — its audited shards may have been
   verified, but the blast-radius call is the operator's, and rebuild is
   always safe. Entries that no longer decode are left for [find]'s
   quarantine policy. *)
let invalidate_worker t ~worker =
  let victims =
    List.filter
      (fun path ->
        match profile_of_path path with
        | Some profile ->
            List.mem worker (Profile.prov_workers (Profile.prov_of profile))
        | None -> false)
      (all_entries t)
  in
  List.iter remove victims;
  List.length victims

let gc t ~keep =
  if keep < 0 then invalid_arg "Store.gc: keep must be non-negative";
  let dated =
    List.filter_map
      (fun path ->
        match Unix.stat path with
        | exception Unix.Unix_error _ -> None
        | st -> Some (st.Unix.st_mtime, path))
      (all_entries t)
    |> List.sort (fun (a, _) (b, _) -> compare b a)  (* newest first *)
  in
  let victims = List.filteri (fun i _ -> i >= keep) dated in
  List.iter (fun (_, path) -> remove path) victims;
  List.length victims
