module Ir = Ftb_ir.Ir
module Golden = Ftb_trace.Golden
module Models = Ftb_inject.Models
module Executor = Ftb_inject.Executor
module Ground_truth = Ftb_inject.Ground_truth
module Checkpoint = Ftb_campaign.Checkpoint

type status = Hit of Profile.section | Miss

type planned = {
  plan : Section.plan;
  statuses : status array;
  hit_sections : int;
  miss_sections : int;
  hit_cases : int;
  total_cases : int;
}

let full_hit p = p.miss_sections = 0
let any_hit p = p.hit_sections > 0 && p.plan.Section.sites > 0

(* A cached section profile is accepted only if every redundant field
   agrees with the plan — the key already implies all of this, but a
   store is an external artifact and the cost of re-checking is nil
   compared to the cost of composing a wrong byte. The exit-fingerprint
   chain check (profile exit = plan's golden exit for that section)
   additionally rejects a consistent-but-stale artifact should the key
   scheme ever change shape without a version bump. *)
let accept (plan : Section.plan) (s : Section.section) (p : Profile.section) =
  p.Profile.model = Models.spec_to_string plan.Section.model
  && p.Profile.width = plan.Section.width
  && p.Profile.site_lo = s.Section.site_lo
  && p.Profile.sites = s.Section.site_hi - s.Section.site_lo
  && p.Profile.entry_fp = s.Section.entry_fp
  && p.Profile.exit_fp = s.Section.exit_fp

let probe ?(trust_unaudited = false) store ~ir ~golden ~model ~fuel =
  match Section.sectionize ~ir ~golden ~model ~fuel with
  | None -> None
  | Some plan ->
      let statuses =
        Array.map
          (fun (s : Section.section) ->
            if s.Section.site_hi = s.Section.site_lo then
              (* Zero-site section: nothing to cache or execute. *)
              Hit
                {
                  Profile.key = s.Section.key;
                  model = Models.spec_to_string model;
                  width = plan.Section.width;
                  site_lo = s.Section.site_lo;
                  sites = 0;
                  entry_fp = s.Section.entry_fp;
                  exit_fp = s.Section.exit_fp;
                  prov = Profile.prov_local;
                  outcomes = "";
                }
            else
              match Store.find store ~key:s.Section.key with
              | Some (Profile.Section p)
                when accept plan s p
                     && (trust_unaudited || Profile.prov_trusted p.Profile.prov)
                ->
                  Hit p
              | Some _ | None -> Miss)
          plan.Section.sections
      in
      let hit_sections = ref 0 and miss_sections = ref 0 and hit_cases = ref 0 in
      Array.iteri
        (fun i status ->
          let s = plan.Section.sections.(i) in
          let cases = (s.Section.site_hi - s.Section.site_lo) * plan.Section.width in
          match status with
          | Hit _ ->
              incr hit_sections;
              hit_cases := !hit_cases + cases
          | Miss -> incr miss_sections)
        statuses;
      Some
        {
          plan;
          statuses;
          hit_sections = !hit_sections;
          miss_sections = !miss_sections;
          hit_cases = !hit_cases;
          total_cases = plan.Section.sites * plan.Section.width;
        }

(* ------------------------------------------------------------------ *)
(* Boundary profiles: the full-hit fast path. *)

let probe_boundary ?(trust_unaudited = false) store ~ir ~model ~fuel =
  match Section.boundary_key ~ir ~model ~fuel with
  | exception Invalid_argument _ -> None
  | key -> (
      match Store.find store ~key with
      | Some (Profile.Boundary b)
        when b.Profile.bmodel = Models.spec_to_string model
             && b.Profile.bwidth = Models.spec_width model
             && (trust_unaudited || Profile.prov_trusted b.Profile.bprov) ->
          Some b
      | Some _ | None -> None)

let checkpoint_of_boundary (b : Profile.boundary) ~program ~shard_size =
  if shard_size <= 0 then invalid_arg "Compose.checkpoint_of_boundary: shard_size";
  let model =
    match Models.spec_of_string b.Profile.bmodel with
    | Ok model -> model
    | Error msg -> invalid_arg ("Compose.checkpoint_of_boundary: " ^ msg)
  in
  let total = b.Profile.bsites * b.Profile.bwidth in
  let shards = (total + shard_size - 1) / shard_size in
  {
    Checkpoint.program;
    sites = b.Profile.bsites;
    shard_size;
    model;
    fingerprint = b.Profile.golden_fp;
    completed = Array.make shards true;
    outcomes = Bytes.of_string b.Profile.boutcomes;
  }

let put_boundary ?(prov = Profile.prov_local) store ~ir ~model ~fuel ~golden_fp
    ~sites ~outcomes =
  match Section.boundary_key ~ir ~model ~fuel with
  | exception Invalid_argument _ -> ()
  | key ->
      let masked, sdc, crash = Profile.count_outcomes (Bytes.to_string outcomes) in
      Store.put store
        (Profile.Boundary
           {
             Profile.bkey = key;
             bmodel = Models.spec_to_string model;
             bwidth = Models.spec_width model;
             bsites = sites;
             golden_fp;
             masked;
             sdc;
             crash;
             bprov = prov;
             boutcomes = Bytes.to_string outcomes;
           })

(* ------------------------------------------------------------------ *)
(* Checkpoint seeding: partial hits ride the existing resume machinery.

   Cached sections' bytes are blitted into a fresh checkpoint and every
   shard that lies entirely inside cached case ranges is marked
   completed. The engine then schedules only the remaining shards — a
   reduced campaign that the daemon's pool, or the fleet's leases, drain
   exactly like a resumed one; a fully-seeded checkpoint schedules zero
   waves. Hit cases inside a straddling shard are recomputed (bytes
   land identically), so seeding never affects correctness, only work. *)

let seed_checkpoint p golden ~shard_size =
  let plan = p.plan in
  let cp = Checkpoint.create ~model:plan.Section.model golden ~shard_size in
  let width = plan.Section.width in
  Array.iteri
    (fun i status ->
      match status with
      | Miss -> ()
      | Hit prof ->
          let s = plan.Section.sections.(i) in
          let off = s.Section.site_lo * width in
          Bytes.blit_string prof.Profile.outcomes 0 cp.Checkpoint.outcomes off
            (String.length prof.Profile.outcomes))
    p.statuses;
  (* Coverage bitmap over cases, then a shard is completed iff all its
     cases are covered. Sections are few and contiguous; this is O(total)
     once per submission, dwarfed by a single executed shard. *)
  let total = plan.Section.sites * width in
  let covered = Bytes.make total '\000' in
  Array.iteri
    (fun i status ->
      match status with
      | Miss -> ()
      | Hit _ ->
          let s = plan.Section.sections.(i) in
          Bytes.fill covered (s.Section.site_lo * width)
            ((s.Section.site_hi - s.Section.site_lo) * width)
            '\001')
    p.statuses;
  Array.iteri
    (fun shard _ ->
      let lo = shard * shard_size in
      let hi = min total (lo + shard_size) in
      let all = ref (hi > lo) in
      for case = lo to hi - 1 do
        if Bytes.get covered case = '\000' then all := false
      done;
      if !all then cp.Checkpoint.completed.(shard) <- true)
    cp.Checkpoint.completed;
  cp

let harvest ?(prov = Profile.prov_local) store p ~outcomes =
  let plan = p.plan in
  let width = plan.Section.width in
  Array.iteri
    (fun i status ->
      match status with
      | Hit _ -> ()
      | Miss ->
          let s = plan.Section.sections.(i) in
          let lo = s.Section.site_lo * width in
          let len = (s.Section.site_hi - s.Section.site_lo) * width in
          Store.put store
            (Profile.Section
               {
                 Profile.key = s.Section.key;
                 model = Models.spec_to_string plan.Section.model;
                 width;
                 site_lo = s.Section.site_lo;
                 sites = s.Section.site_hi - s.Section.site_lo;
                 entry_fp = s.Section.entry_fp;
                 exit_fp = s.Section.exit_fp;
                 prov;
                 outcomes = Bytes.sub_string outcomes lo len;
               }))
    p.statuses

(* ------------------------------------------------------------------ *)
(* Direct composed campaign (CLI, bench, tests). *)

type provenance = Cold | Partial | Full

type report = {
  outcomes : Bytes.t;
  sites : int;
  width : int;
  provenance : provenance;
  sections_total : int;
  sections_hit : int;
  cases_reused : int;
  cases_executed : int;
}

let provenance_name = function Cold -> "cold" | Partial -> "partial" | Full -> "full"

let run ?fuel ?(model = Models.default_spec) store ~ir golden =
  let width = Models.spec_width model in
  let sites = Golden.sites golden in
  let golden_fp = Checkpoint.fingerprint_of_golden golden in
  let finish ~outcomes ~provenance ~sections_total ~sections_hit ~cases_reused
      ~cases_executed =
    (* Keep the boundary artifact fresh on every path — a later
       byte-identical resubmission is then a single store read. *)
    put_boundary store ~ir ~model ~fuel ~golden_fp ~sites ~outcomes;
    {
      outcomes;
      sites;
      width;
      provenance;
      sections_total;
      sections_hit;
      cases_reused;
      cases_executed;
    }
  in
  match probe_boundary store ~ir ~model ~fuel with
  | Some b when b.Profile.bsites = sites && b.Profile.golden_fp = golden_fp ->
      {
        outcomes = Bytes.of_string b.Profile.boutcomes;
        sites;
        width;
        provenance = Full;
        sections_total = 0;
        sections_hit = 0;
        cases_reused = sites * width;
        cases_executed = 0;
      }
  | _ -> (
      match probe store ~ir ~golden ~model ~fuel with
      | None ->
          (* Unsectionizable: plain from-scratch campaign; the boundary
             profile still gets stored, so resubmissions hit. *)
          let gt = Executor.ground_truth_model ?fuel model golden in
          finish ~outcomes:(Bytes.copy gt.Ground_truth.outcomes) ~provenance:Cold
            ~sections_total:0 ~sections_hit:0 ~cases_reused:0
            ~cases_executed:(sites * width)
      | Some p ->
          let total = p.total_cases in
          let outcomes = Bytes.make total '\000' in
          Array.iteri
            (fun i status ->
              let s = p.plan.Section.sections.(i) in
              let lo = s.Section.site_lo * width and hi = s.Section.site_hi * width in
              match status with
              | Hit prof ->
                  Bytes.blit_string prof.Profile.outcomes 0 outcomes lo (hi - lo)
              | Miss -> Executor.range_into_model ?fuel model golden ~lo ~hi outcomes ~off:lo)
            p.statuses;
          harvest store p ~outcomes;
          let provenance =
            if full_hit p then Full else if any_hit p then Partial else Cold
          in
          finish ~outcomes ~provenance ~sections_total:(Array.length p.statuses)
            ~sections_hit:p.hit_sections ~cases_reused:p.hit_cases
            ~cases_executed:(total - p.hit_cases))
