(** Sectionizer: stable statement-group sections with content keys.

    Splits an {!Ftb_ir.Ir} body into top-level statement groups (each
    loop its own group, maximal runs of other statements one group),
    additionally {e peeling} small constant-trip top-level loops into one
    specialized group per iteration, and computes a content key per
    section. A section's key is the fingerprint of everything the outcome
    bytes of its cases depend on: the bit-exact interpreter state at
    section entry (live-in values), the canonical text of this section
    {e and every later one} (an injected error propagates arbitrarily far
    forward), the site offset, the fault model, the fuel budget and the
    SDC tolerance. Equal keys therefore imply byte-identical case
    outcomes; the converse is not required.

    Grouping is validated by replay: the grouped interpretation must
    reproduce the golden trace and output bit-for-bit or {!sectionize}
    returns [None] and the caller degrades to a cold campaign — a
    sectionizer bug can cost time, never bytes. *)

type section = {
  index : int;  (** position in the plan, 0-based *)
  label : string;  (** human-readable: ["loop"], ["stmts"], ["iter[i3=2]"] *)
  site_lo : int;  (** first dynamic site of the section *)
  site_hi : int;  (** one past the last site; cases are
                      [[site_lo * width, site_hi * width)] *)
  key : string;  (** content key of the section's cached profile *)
  entry_fp : string;  (** fingerprint of the entry state (diagnostic) *)
  exit_fp : string;
      (** fingerprint of the golden exit state — the section's
          output-perturbation signature; equals the next section's entry
          fingerprint in any consistent composition *)
}

type plan = {
  model : Ftb_inject.Models.spec;
  fuel : int option;
  width : int;  (** [Models.spec_width model] *)
  sites : int;  (** total dynamic sites; sections partition [0, sites) *)
  golden_fp : string;  (** {!Ftb_campaign.Checkpoint.fingerprint_of_golden} image *)
  sections : section array;
}

val sectionize :
  ir:Ftb_ir.Ir.t ->
  golden:Ftb_trace.Golden.t ->
  model:Ftb_inject.Models.spec ->
  fuel:int option ->
  plan option
(** Section the program and key every section. [None] when the program
    has no body/output or when replay validation fails — callers must
    fall back to a from-scratch campaign. [golden] must be the golden run
    of the very program being sectioned (any lowering of it: the grouped
    interpretation is compared bit-for-bit against its trace). *)

val boundary_key :
  ir:Ftb_ir.Ir.t -> model:Ftb_inject.Models.spec -> fuel:int option -> string
(** Whole-boundary content key: fingerprint of the initial interpreter
    state (embedding every array's declared contents) plus the canonical
    text of the entire body, the model, fuel and tolerance. Computable
    {e without executing the program} — recognizing a byte-identical
    resubmission costs one hash and one store lookup. *)

val canon_text : Ftb_ir.Ir.stmt list -> string
(** The canonical text used in keys: registers and arrays as integer ids,
    float constants as the hex image of their bits, labels verbatim.
    Exposed for tests and debugging. *)

val max_peel_trip : int
(** Largest constant trip count a top-level loop may have and still be
    peeled into per-iteration sections (currently 32). *)
