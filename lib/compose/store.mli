(** Content-addressed on-disk profile store.

    Layout: [<root>/<k0k1>/<key>] — entries shard by the key's first two
    hex characters so directories stay small under heavy traffic. Every
    entry is a {!Profile} payload wrapped in the CRC32 integrity envelope
    ({!Ftb_inject.Persist.save_enveloped}) and written atomically.

    Corruption policy is quarantine-and-rebuild: an entry that fails the
    envelope check, no longer parses, or does not carry the key it is
    filed under is moved to the shard's [quarantine/] sibling (preserved
    as evidence) and reported as a miss — the next campaign re-executes
    the section and {!put} rebuilds the entry. A corrupt cache entry can
    cost a re-execution, never a wrong byte. *)

type t

val open_ : root:string -> t
(** Open (creating [root] if needed). *)

val root : t -> string

val find : t -> key:string -> Profile.t option
(** Look a profile up by content key. [None] on miss or on a corrupt /
    mis-keyed entry (which is quarantined as a side effect). *)

val put : t -> Profile.t -> unit
(** Insert or overwrite, atomically, under the profile's own key. *)

val path_of_key : t -> string -> string
(** Where a key lives (exposed for tests that corrupt entries). *)

type stats = {
  entries : int;  (** live entries *)
  bytes : int;  (** their total on-disk size *)
  sections : int;  (** entries that are section profiles *)
  boundaries : int;  (** entries that are boundary profiles *)
  quarantined : int;  (** files preserved in quarantine/ dirs *)
  unaudited : int;  (** entries whose provenance is not trusted
                        ({!Profile.prov_trusted}) *)
}

val stats : t -> stats

val invalidate : t -> prefix:string -> int
(** Delete every entry whose key starts with [prefix] (the empty prefix
    empties the store); returns the number deleted. *)

val invalidate_worker : t -> worker:string -> int
(** Delete every entry whose provenance names [worker] — audited entries
    included (the operator purging a quarantined worker owns the
    blast-radius call; a rebuild is always safe). Returns the number
    deleted. *)

val gc : t -> keep:int -> int
(** Keep the [keep] most-recently-written entries, delete the rest;
    returns the number deleted. *)
