module Ir = Ftb_ir.Ir
module Golden = Ftb_trace.Golden
module Models = Ftb_inject.Models
module Fingerprint = Ftb_util.Fingerprint

(* ------------------------------------------------------------------ *)
(* Canonical text.

   A printer for statement lists whose output is a pure function of
   program structure: registers and arrays print as their integer ids,
   floats as the hex image of their bits (never [%g], which merges
   distinct constants), labels and guard names verbatim. Two statement
   lists have equal canonical text iff they are structurally identical —
   the textual half of every cache key. *)

let bpf = Printf.bprintf

let rec canon_i buf (e : Ir.iexpr) =
  match e with
  | Iconst n -> bpf buf "%d" n
  | Ireg r -> bpf buf "i%d" (r :> int)
  | Iadd (a, b) -> bpf buf "(+ %a %a)" canon_i a canon_i b
  | Isub (a, b) -> bpf buf "(- %a %a)" canon_i a canon_i b
  | Imul (a, b) -> bpf buf "(* %a %a)" canon_i a canon_i b

let rec canon_f buf (e : Ir.fexpr) =
  match e with
  | Fconst v -> bpf buf "%Lx" (Int64.bits_of_float v)
  | Freg r -> bpf buf "f%d" (r :> int)
  | Fload (a, ie) -> bpf buf "(ld a%d %a)" (a :> int) canon_i ie
  | Fadd (a, b) -> bpf buf "(+. %a %a)" canon_f a canon_f b
  | Fsub (a, b) -> bpf buf "(-. %a %a)" canon_f a canon_f b
  | Fmul (a, b) -> bpf buf "(*. %a %a)" canon_f a canon_f b
  | Fdiv (a, b) -> bpf buf "(/. %a %a)" canon_f a canon_f b
  | Fneg a -> bpf buf "(neg %a)" canon_f a
  | Fabs a -> bpf buf "(abs %a)" canon_f a
  | Fsqrt a -> bpf buf "(sqrt %a)" canon_f a

let canon_cond buf (c : Ir.cond) =
  match c with
  | Fcmp (op, a, b) ->
      let op = match op with `Lt -> "<." | `Le -> "<=." | `Gt -> ">." | `Ge -> ">=." in
      bpf buf "(%s %a %a)" op canon_f a canon_f b
  | Icmp (op, a, b) ->
      let op = match op with `Lt -> "<" | `Le -> "<=" | `Eq -> "=" | `Ne -> "<>" in
      bpf buf "(%s %a %a)" op canon_i a canon_i b

let rec canon_stmt buf (s : Ir.stmt) =
  match s with
  | Fassign (r, e, label) -> bpf buf "(fassign f%d %a %S)\n" (r :> int) canon_f e label
  | Store (a, ie, fe, label) ->
      bpf buf "(store a%d %a %a %S)\n" (a :> int) canon_i ie canon_f fe label
  | Flet (r, e) -> bpf buf "(flet f%d %a)\n" (r :> int) canon_f e
  | Iassign (r, e) -> bpf buf "(iassign i%d %a)\n" (r :> int) canon_i e
  | For (r, lo, hi, body) ->
      bpf buf "(for i%d %a %a\n%a)\n" (r :> int) canon_i lo canon_i hi canon_stmts body
  | If (c, then_body, else_body) ->
      bpf buf "(if %a\n%a else\n%a)\n" canon_cond c canon_stmts then_body canon_stmts
        else_body
  | Guard (e, what) -> bpf buf "(guard %a %S)\n" canon_f e what

and canon_stmts buf stmts = List.iter (canon_stmt buf) stmts

let canon_text stmts =
  let buf = Buffer.create 512 in
  canon_stmts buf stmts;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Peel-and-specialize.

   Section granularity is top-level statement groups: each top-level loop
   is a group, maximal runs of other statements are a group. A top-level
   counted loop with constant bounds and a small trip count whose body
   never reassigns the induction variable is additionally {e peeled} into
   one group per iteration, each specialized on its concrete index —
   substituting the index register with the constant, folding the integer
   arithmetic it feeds, and pruning [If] branches whose condition becomes
   a constant integer comparison. Pruning removes statements (which
   {!Ftb_ir.Passes.fold} refuses to do), and that is sound exactly here:
   under the concrete iteration index the dead branch provably never
   executes, and {!sectionize}'s replay validation re-checks the whole
   grouping against the golden trace bit-for-bit before any key is
   trusted. Peeling is what makes an edit to one iteration's slice of a
   blocked kernel (e.g. one [kb] panel of [ir.gemm]) invalidate only that
   iteration's section. *)

let max_peel_trip = 32

let rec assigns_ireg (r : Ir.ireg) stmts =
  List.exists
    (fun (s : Ir.stmt) ->
      match s with
      | Iassign (r', _) -> r' = r
      | For (r', _, _, body) -> r' = r || assigns_ireg r body
      | If (_, a, b) -> assigns_ireg r a || assigns_ireg r b
      | Fassign _ | Store _ | Flet _ | Guard _ -> false)
    stmts

let rec contains_record stmts =
  List.exists
    (fun (s : Ir.stmt) ->
      match s with
      | Fassign _ | Store _ -> true
      | For (_, _, _, body) -> contains_record body
      | If (_, a, b) -> contains_record a || contains_record b
      | Flet _ | Iassign _ | Guard _ -> false)
    stmts

let icmp_holds op x y =
  match op with `Lt -> x < y | `Le -> x <= y | `Eq -> x = y | `Ne -> x <> y

let rec spec_i r k (e : Ir.iexpr) : Ir.iexpr =
  match e with
  | Iconst _ -> e
  | Ireg r' -> if r' = r then Iconst k else e
  | Iadd (a, b) -> (
      match (spec_i r k a, spec_i r k b) with
      | Iconst x, Iconst y -> Iconst (x + y)
      | a, b -> Iadd (a, b))
  | Isub (a, b) -> (
      match (spec_i r k a, spec_i r k b) with
      | Iconst x, Iconst y -> Iconst (x - y)
      | a, b -> Isub (a, b))
  | Imul (a, b) -> (
      match (spec_i r k a, spec_i r k b) with
      | Iconst x, Iconst y -> Iconst (x * y)
      | a, b -> Imul (a, b))

let rec spec_f r k (e : Ir.fexpr) : Ir.fexpr =
  match e with
  | Fconst _ | Freg _ -> e
  | Fload (a, ie) -> Fload (a, spec_i r k ie)
  | Fadd (a, b) -> Fadd (spec_f r k a, spec_f r k b)
  | Fsub (a, b) -> Fsub (spec_f r k a, spec_f r k b)
  | Fmul (a, b) -> Fmul (spec_f r k a, spec_f r k b)
  | Fdiv (a, b) -> Fdiv (spec_f r k a, spec_f r k b)
  | Fneg a -> Fneg (spec_f r k a)
  | Fabs a -> Fabs (spec_f r k a)
  | Fsqrt a -> Fsqrt (spec_f r k a)

let spec_cond r k (c : Ir.cond) : Ir.cond =
  match c with
  | Fcmp (op, a, b) -> Fcmp (op, spec_f r k a, spec_f r k b)
  | Icmp (op, a, b) -> Icmp (op, spec_i r k a, spec_i r k b)

let rec spec_stmts r k stmts = List.concat_map (spec_stmt r k) stmts

and spec_stmt r k (s : Ir.stmt) : Ir.stmt list =
  match s with
  | Fassign (fr, e, label) -> [ Fassign (fr, spec_f r k e, label) ]
  | Store (a, ie, fe, label) -> [ Store (a, spec_i r k ie, spec_f r k fe, label) ]
  | Flet (fr, e) -> [ Flet (fr, spec_f r k e) ]
  | Iassign (r', e) -> [ Iassign (r', spec_i r k e) ]
  | For (r', lo, hi, body) ->
      (* [r' <> r] by the peel precondition (a [For] binding [r] counts as
         an assignment), so specializing the body is sound. *)
      [ For (r', spec_i r k lo, spec_i r k hi, spec_stmts r k body) ]
  | If (c, then_body, else_body) -> (
      match spec_cond r k c with
      | Icmp (op, Iconst x, Iconst y) ->
          spec_stmts r k (if icmp_holds op x y then then_body else else_body)
      | c -> [ If (c, spec_stmts r k then_body, spec_stmts r k else_body) ])
  | Guard (e, what) -> [ Guard (spec_f r k e, what) ]

type group = { glabel : string; stmts : Ir.stmt list }

let split_body body =
  let groups = ref [] and run = ref [] in
  let flush () =
    if !run <> [] then begin
      groups := { glabel = "stmts"; stmts = List.rev !run } :: !groups;
      run := []
    end
  in
  List.iter
    (fun (s : Ir.stmt) ->
      match s with
      | For (r, Iconst lo, Iconst hi, fbody)
        when hi - lo >= 2 && hi - lo <= max_peel_trip
             && (not (assigns_ireg r fbody))
             && contains_record fbody ->
          flush ();
          for k = lo to hi - 1 do
            groups :=
              {
                glabel = Printf.sprintf "iter[i%d=%d]" (r :> int) k;
                stmts = Ir.Iassign (r, Ir.Iconst k) :: spec_stmts r k fbody;
              }
              :: !groups
          done
      | For _ ->
          flush ();
          groups := { glabel = "loop"; stmts = [ s ] } :: !groups
      | s -> run := s :: !run)
    body;
  flush ();
  List.rev !groups

(* ------------------------------------------------------------------ *)
(* Keys and plans. *)

type section = {
  index : int;
  label : string;
  site_lo : int;
  site_hi : int;
  key : string;
  entry_fp : string;
  exit_fp : string;
}

type plan = {
  model : Models.spec;
  fuel : int option;
  width : int;
  sites : int;
  golden_fp : string;
  sections : section array;
}

let add_key_header buf ~what ~ir ~(model : Models.spec) ~fuel =
  bpf buf "ftb-%s-key-v1\nmodel %s\nfuel %s\ntolerance %Lx\noutput a%d\n" what
    (Models.spec_to_string model)
    (match fuel with Some n -> string_of_int n | None -> "none")
    (Int64.bits_of_float (Ir.tolerance ir))
    (Ir.output_id ir :> int)

(* The whole-boundary key: everything a campaign's outcome bytes depend
   on, computable without executing the program — initial interpreter
   state (which embeds every array's declared contents) plus the
   canonical text of the whole body. Serving a byte-identical
   resubmission costs one hash and one store read. *)
let boundary_key ~ir ~model ~fuel =
  let buf = Buffer.create 4096 in
  add_key_header buf ~what:"boundary" ~ir ~model ~fuel;
  Buffer.add_string buf (Ir.initial_state ir);
  Buffer.add_char buf '\n';
  canon_stmts buf (Ir.body ir);
  Fingerprint.of_buffer buf

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i v -> if Int64.bits_of_float v <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

(* A section's key covers everything its cases' outcome bytes depend on:
   the interpreter state at section entry, the canonical text of this and
   every later section (an injected error propagates arbitrarily far
   forward, so the whole suffix is outcome-relevant — never just the
   section's own text), the site offset (remaining fuel at entry is
   [fuel - site_lo]: the fuel meter counts recorded instructions), the
   fault model, the fuel budget and the SDC tolerance. *)
let sectionize ~ir ~(golden : Golden.t) ~model ~fuel =
  match split_body (Ir.body ir) with
  | exception Invalid_argument _ -> None
  | groups -> (
      let n = List.length groups in
      if n = 0 then None
      else
        match Ir.run_sectioned ir ~groups:(List.map (fun g -> g.stmts) groups) with
        | exception (Ir.Ir_error _ | Invalid_argument _) -> None
        | run ->
            (* Replay validation: the grouped interpretation must reproduce
               the golden trace and output bit-for-bit, or the grouping
               (peeling, specialization, branch pruning) is unsound for
               this program and no key may be trusted. Degrading to the
               cold path can only cost time, never correctness. *)
            if
              not
                (bits_equal run.Ir.sec_values golden.Golden.values
                && bits_equal run.Ir.sec_output golden.Golden.output)
            then None
            else begin
              let width = Models.spec_width model in
              let texts =
                Array.of_list (List.map (fun g -> canon_text g.stmts) groups)
              in
              let labels = Array.of_list (List.map (fun g -> g.glabel) groups) in
              let sections = Array.make n None in
              let site_hi = ref (Array.fold_left ( + ) 0 run.Ir.sec_sites) in
              let sites = !site_hi in
              (* Build from the right so each section's key buffer appends
                 its suffix text once. *)
              for j = n - 1 downto 0 do
                let site_lo = !site_hi - run.Ir.sec_sites.(j) in
                let buf = Buffer.create 4096 in
                add_key_header buf ~what:"section" ~ir ~model ~fuel;
                bpf buf "site_lo %d\n" site_lo;
                Buffer.add_string buf run.Ir.sec_entries.(j);
                Buffer.add_char buf '\n';
                for jj = j to n - 1 do
                  Buffer.add_string buf texts.(jj)
                done;
                let exit_state =
                  if j = n - 1 then run.Ir.sec_exit else run.Ir.sec_entries.(j + 1)
                in
                sections.(j) <-
                  Some
                    {
                      index = j;
                      label = labels.(j);
                      site_lo;
                      site_hi = !site_hi;
                      key = Fingerprint.of_buffer buf;
                      entry_fp = Fingerprint.of_string run.Ir.sec_entries.(j);
                      exit_fp = Fingerprint.of_string exit_state;
                    };
                site_hi := site_lo
              done;
              Some
                {
                  model;
                  fuel;
                  width;
                  sites;
                  golden_fp = Fingerprint.of_floats golden.Golden.values;
                  sections = Array.map Option.get sections;
                }
            end)
