(** The composer: stitch cached section profiles into whole boundaries.

    Three paths, fastest first:
    - {b full hit}: a boundary profile exists under the program's
      {!Section.boundary_key} — the whole campaign's bytes are served by
      one hash and one store read, without executing anything (not even a
      golden run);
    - {b partial hit}: some sections' profiles are cached — their bytes
      are reused and only missed sections' cases execute, through the
      PR 7 dependent-cone replay fast path;
    - {b cold}: nothing cached (or the program is unsectionizable) — a
      from-scratch campaign, after which every section and the boundary
      are harvested into the store.

    Every path is byte-identical to the from-scratch campaign by
    construction: keys cover everything outcomes depend on, replay
    validation vetoes unsound groupings, and accepted profiles are
    re-checked field-by-field against the plan. *)

type status = Hit of Profile.section | Miss

type planned = {
  plan : Section.plan;
  statuses : status array;  (** one per plan section *)
  hit_sections : int;
  miss_sections : int;
  hit_cases : int;
  total_cases : int;
}

val full_hit : planned -> bool
val any_hit : planned -> bool

val probe :
  ?trust_unaudited:bool ->
  Store.t ->
  ir:Ftb_ir.Ir.t ->
  golden:Ftb_trace.Golden.t ->
  model:Ftb_inject.Models.spec ->
  fuel:int option ->
  planned option
(** Sectionize and look every section up in the store. [None] when the
    program cannot be sectionized (callers run cold). Accepted profiles
    passed every consistency check (model, width, range, entry/exit
    fingerprint chain) {e and} carry trusted provenance
    ({!Profile.prov_trusted}) — unaudited fleet-harvested profiles are
    treated as misses unless [trust_unaudited] (default [false]). *)

val probe_boundary :
  ?trust_unaudited:bool ->
  Store.t ->
  ir:Ftb_ir.Ir.t ->
  model:Ftb_inject.Models.spec ->
  fuel:int option ->
  Profile.boundary option
(** Whole-boundary lookup by {!Section.boundary_key}; requires no golden
    run — the submit-time fast path. Refuses a boundary with untrusted
    provenance unless [trust_unaudited] (default [false]): a full hit
    executes {e nothing}, so it is exactly the path a poisoned profile
    would ride. *)

val checkpoint_of_boundary :
  Profile.boundary -> program:string -> shard_size:int -> Ftb_campaign.Checkpoint.t
(** A fully-completed synthetic checkpoint carrying the cached bytes,
    counts and golden fingerprint — what the daemon persists for a job it
    served from the cache, so [watch]/result fetch and crash-restart see
    exactly what a real run would have written. *)

val seed_checkpoint :
  planned -> Ftb_trace.Golden.t -> shard_size:int -> Ftb_campaign.Checkpoint.t
(** A fresh checkpoint with every cached section's bytes blitted in and
    every fully-covered shard marked completed. Run through
    {!Ftb_campaign.Engine.run} with [resume], the engine schedules only
    the remaining shards — the reduced campaign that the pool or the
    worker fleet drains; a fully-seeded checkpoint schedules zero waves. *)

val harvest : ?prov:string -> Store.t -> planned -> outcomes:Bytes.t -> unit
(** Store the profile of every {e missed} section out of a completed
    campaign's outcome bytes (hits are already stored). [prov] (default
    {!Profile.prov_local}) records who computed the bytes — fleet jobs
    pass {!Profile.prov_fleet} of the contributing workers. *)

val put_boundary :
  ?prov:string ->
  Store.t ->
  ir:Ftb_ir.Ir.t ->
  model:Ftb_inject.Models.spec ->
  fuel:int option ->
  golden_fp:string ->
  sites:int ->
  outcomes:Bytes.t ->
  unit
(** Store/refresh the whole-boundary profile of a completed campaign;
    [prov] as in {!harvest}. *)

type provenance = Cold | Partial | Full

val provenance_name : provenance -> string

type report = {
  outcomes : Bytes.t;  (** the composed boundary, dense case order *)
  sites : int;
  width : int;
  provenance : provenance;
  sections_total : int;  (** 0 when served whole or unsectionizable *)
  sections_hit : int;
  cases_reused : int;
  cases_executed : int;
}

val run :
  ?fuel:int ->
  ?model:Ftb_inject.Models.spec ->
  Store.t ->
  ir:Ftb_ir.Ir.t ->
  Ftb_trace.Golden.t ->
  report
(** Direct composed campaign (no daemon): serve from the boundary
    profile when possible, else compose hits and execute misses via
    {!Ftb_inject.Executor.range_into_model}, then harvest everything.
    [golden] must be the golden run of (a lowering of) [ir]. Outcome
    bytes are byte-identical to
    {!Ftb_inject.Executor.ground_truth_model} on every path. *)
