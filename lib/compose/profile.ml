module Persist = Ftb_inject.Persist
module Fingerprint = Ftb_util.Fingerprint

type section = {
  key : string;
  model : string;
  width : int;
  site_lo : int;
  sites : int;
  entry_fp : string;
  exit_fp : string;
  prov : string;
  outcomes : string;  (* sites * width outcome bytes *)
}

type boundary = {
  bkey : string;
  bmodel : string;
  bwidth : int;
  bsites : int;
  golden_fp : string;
  masked : int;
  sdc : int;
  crash : int;
  bprov : string;
  boutcomes : string;  (* bsites * bwidth outcome bytes *)
}

type t = Section of section | Boundary of boundary

let key = function Section s -> s.key | Boundary b -> b.bkey
let prov_of = function Section s -> s.prov | Boundary b -> b.bprov

(* ------------------------------------------------------------------ *)
(* Provenance tokens. The lattice, most to least trusted:
     local                         computed (or audit-adjudicated) here
     fleet:audited:n1,n2           every surviving remote shard verified
     fleet:unaudited:n1,n2         remote shards only sample-audited
   One space-free token so it slots into the space-split headers; worker
   names are sanitized to [A-Za-z0-9._-] at registration, so ',' and ':'
   are safe separators. *)

let prov_local = "local"

let name_valid n =
  n <> ""
  && String.for_all
       (function 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       n

let prov_fleet ~audited ~workers =
  match workers with
  | [] -> prov_local
  | ws ->
      List.iter
        (fun w -> if not (name_valid w) then invalid_arg ("Profile.prov_fleet: bad worker name " ^ w))
        ws;
      Printf.sprintf "fleet:%s:%s"
        (if audited then "audited" else "unaudited")
        (String.concat "," ws)

let prov_workers p =
  match String.split_on_char ':' p with
  | [ "fleet"; ("audited" | "unaudited"); names ] -> String.split_on_char ',' names
  | _ -> []

let prov_trusted p =
  p = prov_local
  ||
  match String.split_on_char ':' p with
  | [ "fleet"; "audited"; _ ] -> true
  | _ -> false

let prov_valid p =
  p = prov_local
  ||
  match String.split_on_char ':' p with
  | [ "fleet"; ("audited" | "unaudited"); names ] ->
      names <> "" && List.for_all name_valid (String.split_on_char ',' names)
  | _ -> false

(* v2 appends the provenance token; v1 artifacts (pre-provenance stores)
   still parse, as [local] — they were written before fleet harvests
   recorded origin, and an operator who distrusts such a store clears
   it wholesale. *)
let section_magic = "ftb-section-profile-v2"
let boundary_magic = "ftb-boundary-profile-v2"
let section_magic_v1 = "ftb-section-profile-v1"
let boundary_magic_v1 = "ftb-boundary-profile-v1"

(* Outcome bytes use the ground-truth taxonomy encoding '\000'..'\005'
   (Ftb_inject.Ground_truth.byte_of_result); anything else in a decoded
   payload is corruption the CRC failed to catch (or a format bug) and
   must not be composed into a result. *)
(* Hot path: runs over every payload byte on each cache probe. *)
let outcomes_valid s =
  let ok = ref true in
  for i = 0 to String.length s - 1 do
    if Char.code (String.unsafe_get s i) > 5 then ok := false
  done;
  !ok

let write t buf =
  match t with
  | Section s ->
      Printf.bprintf buf "%s %s %s %d %d %d %s %s %s\n" section_magic s.key s.model
        s.width s.site_lo s.sites s.entry_fp s.exit_fp s.prov;
      Buffer.add_string buf s.outcomes
  | Boundary b ->
      Printf.bprintf buf "%s %s %s %d %d %s %d %d %d %s\n" boundary_magic b.bkey b.bmodel
        b.bwidth b.bsites b.golden_fp b.masked b.sdc b.crash b.bprov;
      Buffer.add_string buf b.boutcomes

let fail path fmt =
  Printf.ksprintf (fun msg -> raise (Persist.Format_error (path ^ ": " ^ msg))) fmt

let int_field path what s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> n
  | _ -> fail path "bad %s field %S" what s

let fp_field path what s =
  if Fingerprint.is_hex s then s else fail path "bad %s fingerprint %S" what s

let parse ~path contents =
  match String.index_opt contents '\n' with
  | None -> fail path "missing profile header"
  | Some nl -> (
      let header = String.sub contents 0 nl in
      let body = String.sub contents (nl + 1) (String.length contents - nl - 1) in
      let check_body ~sites ~width =
        if String.length body <> sites * width then
          fail path "outcome payload is %d bytes, expected %d (%d sites x width %d)"
            (String.length body) (sites * width) sites width;
        if not (outcomes_valid body) then fail path "invalid outcome byte in payload"
      in
      let prov_field p = if prov_valid p then p else fail path "bad provenance token %S" p in
      let section_of ~key ~model ~width ~site_lo ~sites ~entry_fp ~exit_fp ~prov =
        let width = int_field path "width" width in
        let sites = int_field path "sites" sites in
        if width <= 0 then fail path "width must be positive";
        check_body ~sites ~width;
        Section
          {
            key = fp_field path "key" key;
            model;
            width;
            site_lo = int_field path "site_lo" site_lo;
            sites;
            entry_fp = fp_field path "entry" entry_fp;
            exit_fp = fp_field path "exit" exit_fp;
            prov = prov_field prov;
            outcomes = body;
          }
      in
      let boundary_of ~key ~model ~width ~sites ~golden_fp ~masked ~sdc ~crash ~prov =
        let width = int_field path "width" width in
        let sites = int_field path "sites" sites in
        if width <= 0 then fail path "width must be positive";
        if sites <= 0 then fail path "sites must be positive";
        check_body ~sites ~width;
        let masked = int_field path "masked" masked in
        let sdc = int_field path "sdc" sdc in
        let crash = int_field path "crash" crash in
        if masked + sdc + crash <> sites * width then
          fail path "outcome counts %d+%d+%d do not sum to %d cases" masked sdc crash
            (sites * width);
        Boundary
          {
            bkey = fp_field path "key" key;
            bmodel = model;
            bwidth = width;
            bsites = sites;
            golden_fp = fp_field path "golden" golden_fp;
            masked;
            sdc;
            crash;
            bprov = prov_field prov;
            boutcomes = body;
          }
      in
      match String.split_on_char ' ' header with
      | [ magic; key; model; width; site_lo; sites; entry_fp; exit_fp; prov ]
        when magic = section_magic ->
          section_of ~key ~model ~width ~site_lo ~sites ~entry_fp ~exit_fp ~prov
      | [ magic; key; model; width; site_lo; sites; entry_fp; exit_fp ]
        when magic = section_magic_v1 ->
          section_of ~key ~model ~width ~site_lo ~sites ~entry_fp ~exit_fp
            ~prov:prov_local
      | [ magic; key; model; width; sites; golden_fp; masked; sdc; crash; prov ]
        when magic = boundary_magic ->
          boundary_of ~key ~model ~width ~sites ~golden_fp ~masked ~sdc ~crash ~prov
      | [ magic; key; model; width; sites; golden_fp; masked; sdc; crash ]
        when magic = boundary_magic_v1 ->
          boundary_of ~key ~model ~width ~sites ~golden_fp ~masked ~sdc ~crash
            ~prov:prov_local
      | magic :: _ -> fail path "unknown profile magic %S" magic
      | [] -> fail path "empty profile header")

let count_outcomes s =
  let masked = ref 0 and sdc = ref 0 and crash = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '\000' -> incr masked
      | '\001' -> incr sdc
      | _ -> incr crash)
    s;
  (!masked, !sdc, !crash)
