(** Cached profile artifacts: the store's two payload kinds.

    A {e section} profile holds the outcome byte per (site, case) of one
    section — the dense slice [[site_lo * width, (site_lo + sites) *
    width)] of a complete campaign — plus the section's entry-state and
    exit-state fingerprints (the exit fingerprint is the section's
    output-perturbation signature: composing section [j]'s profile before
    section [j+1]'s is consistent iff [j]'s exit fingerprint equals
    [j+1]'s entry fingerprint).

    A {e boundary} profile holds a whole campaign's outcome bytes plus
    its golden fingerprint and outcome counts, keyed by
    {!Section.boundary_key} — the artifact that serves a byte-identical
    resubmission without executing anything.

    On disk both are a single space-split text header line followed by
    the raw outcome bytes, wrapped in the CRC32 envelope by {!Store}:
    {v
    ftb-section-profile-v1 <key> <model> <width> <site_lo> <sites> <entry-fp> <exit-fp>
    ftb-boundary-profile-v1 <key> <model> <width> <sites> <golden-fp> <masked> <sdc> <crash>
    v} *)

type section = {
  key : string;
  model : string;  (** [Models.spec_to_string] of the campaign's model *)
  width : int;
  site_lo : int;
  sites : int;
  entry_fp : string;
  exit_fp : string;  (** output-perturbation signature *)
  outcomes : string;  (** [sites * width] taxonomy bytes *)
}

type boundary = {
  bkey : string;
  bmodel : string;
  bwidth : int;
  bsites : int;
  golden_fp : string;
  masked : int;
  sdc : int;
  crash : int;
  boutcomes : string;  (** [bsites * bwidth] taxonomy bytes *)
}

type t = Section of section | Boundary of boundary

val key : t -> string

val write : t -> Buffer.t -> unit
(** Serialize (header + raw bytes); the store wraps this in the CRC32
    envelope. *)

val parse : path:string -> string -> t
(** Decode a payload; raises {!Ftb_inject.Persist.Format_error} (message
    carries [path]) on any malformation — wrong field count, non-integer
    fields, payload length mismatch, or an outcome byte outside the
    taxonomy. *)

val count_outcomes : string -> int * int * int
(** [(masked, sdc, crash)] tallies of an outcome byte string (crash sums
    the whole crash taxonomy). *)
