(** Cached profile artifacts: the store's two payload kinds.

    A {e section} profile holds the outcome byte per (site, case) of one
    section — the dense slice [[site_lo * width, (site_lo + sites) *
    width)] of a complete campaign — plus the section's entry-state and
    exit-state fingerprints (the exit fingerprint is the section's
    output-perturbation signature: composing section [j]'s profile before
    section [j+1]'s is consistent iff [j]'s exit fingerprint equals
    [j+1]'s entry fingerprint).

    A {e boundary} profile holds a whole campaign's outcome bytes plus
    its golden fingerprint and outcome counts, keyed by
    {!Section.boundary_key} — the artifact that serves a byte-identical
    resubmission without executing anything.

    On disk both are a single space-split text header line followed by
    the raw outcome bytes, wrapped in the CRC32 envelope by {!Store}:
    {v
    ftb-section-profile-v2 <key> <model> <width> <site_lo> <sites> <entry-fp> <exit-fp> <prov>
    ftb-boundary-profile-v2 <key> <model> <width> <sites> <golden-fp> <masked> <sdc> <crash> <prov>
    v}
    The v1 headers (no provenance token) still parse, as [local]. *)

type section = {
  key : string;
  model : string;  (** [Models.spec_to_string] of the campaign's model *)
  width : int;
  site_lo : int;
  sites : int;
  entry_fp : string;
  exit_fp : string;  (** output-perturbation signature *)
  prov : string;  (** provenance token, see {!prov_fleet} *)
  outcomes : string;  (** [sites * width] taxonomy bytes *)
}

type boundary = {
  bkey : string;
  bmodel : string;
  bwidth : int;
  bsites : int;
  golden_fp : string;
  masked : int;
  sdc : int;
  crash : int;
  bprov : string;  (** provenance token, see {!prov_fleet} *)
  boutcomes : string;  (** [bsites * bwidth] taxonomy bytes *)
}

type t = Section of section | Boundary of boundary

val key : t -> string
val prov_of : t -> string

(** {1 Provenance tokens}

    Who computed the bytes, as a trust lattice:
    [local] (computed or audit-adjudicated by this daemon) >
    [fleet:audited:n1,n2] (remote, every surviving shard verified) >
    [fleet:unaudited:n1,n2] (remote, only sample-audited). Consumers
    refuse untrusted tokens unless the operator opts in, and a
    quarantined worker's name indexes the purge
    ({!Store.invalidate_worker}). *)

val prov_local : string

val prov_fleet : audited:bool -> workers:string list -> string
(** [prov_local] when [workers] is empty. Raises [Invalid_argument] on a
    name outside [[A-Za-z0-9._-]+] (registration sanitizes, so this only
    trips on caller bugs). *)

val prov_trusted : string -> bool
(** [local] and [fleet:audited:*] tokens. *)

val prov_workers : string -> string list
(** Worker names in a fleet token; [[]] for [local]. *)

val prov_valid : string -> bool

val write : t -> Buffer.t -> unit
(** Serialize (header + raw bytes); the store wraps this in the CRC32
    envelope. *)

val parse : path:string -> string -> t
(** Decode a payload; raises {!Ftb_inject.Persist.Format_error} (message
    carries [path]) on any malformation — wrong field count, non-integer
    fields, payload length mismatch, or an outcome byte outside the
    taxonomy. *)

val count_outcomes : string -> int * int * int
(** [(masked, sdc, crash)] tallies of an outcome byte string (crash sums
    the whole crash taxonomy). *)
