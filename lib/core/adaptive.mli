(** Adaptive / progressive sampling (§3.4).

    Instead of drawing one batch uniformly, the sampler works in rounds of
    [round_fraction] of the sample space. Before each round the current
    boundary filters the candidate pool — cases it already predicts masked
    are not worth injecting — and the remaining candidates are drawn with
    probability [p_i ∝ 1 / max(S_i, 1)], biasing towards sites with little
    information. Sampling stops when a round's fresh samples are almost all
    SDC ([stop_sdc_fraction]), when the candidate pool empties, or at the
    round cap.

    The module is structured as an explicit round state machine
    ({!state}, {!plan_round}, {!fold_round}, {!finish}) so the serial
    driver ({!run}) and the distributed planner ([Ftb_plan]) share one
    implementation of the paper's loop. The RNG is consumed by nothing
    but {!plan_round}, and sample outcomes are pure functions of
    (golden, model, case) — together these make a distributed round
    bit-identical to the serial one regardless of where cases execute. *)

type config = {
  round_fraction : float;  (** fraction of the space drawn per round (paper: 0.001) *)
  stop_sdc_fraction : float;  (** stop when ≥ this fraction of a round is SDC (paper: 0.95) *)
  max_rounds : int;  (** safety cap *)
  filter : bool;  (** apply the §3.5 filter operation when building boundaries *)
  bias : bool;  (** bias candidate selection by inverse information (off = uniform) *)
}

val default_config : config
(** 0.1 % rounds, 95 % stop criterion, 200 round cap, filter on, bias on. *)

val check_config : config -> unit
(** Validate ranges; raises [Invalid_argument] (the usage-error text every
    entry point shares). *)

type stop_reason = Converged | Pool_exhausted | Round_cap

val stop_reason_to_string : stop_reason -> string
(** ["converged"], ["pool-exhausted"], ["round-cap"] — the token used by
    checkpoints, the boundary store and the CLI. *)

val stop_reason_of_string : string -> stop_reason option

type result = {
  boundary : Boundary.t;  (** the final approximated fault tolerance boundary *)
  samples : Ftb_inject.Sample_run.t array;  (** every sample drawn, in draw order *)
  rounds : int;
  sample_fraction : float;  (** |samples| / |complete sample space| *)
  stop_reason : stop_reason;
}

val run :
  ?config:config ->
  ?on_round:(round:int -> drawn:int -> masked:int -> sdc:int -> crash:int -> unit) ->
  Ftb_util.Rng.t ->
  Ftb_trace.Golden.t ->
  result
(** Run the progressive campaign against a program's golden run — the
    serial oracle every other execution path must match byte for byte. *)

val run_model :
  ?config:config ->
  ?on_round:(round:int -> drawn:int -> masked:int -> sdc:int -> crash:int -> unit) ->
  ?spec:Ftb_inject.Models.spec ->
  ?fuel:int ->
  Ftb_util.Rng.t ->
  Ftb_trace.Golden.t ->
  result
(** {!run} generalized to an arbitrary fault model and an optional fuel
    watchdog. With the default spec and no fuel this is exactly {!run}. *)

(** {1 The round state machine}

    One round is [plan_round] (draw the biased candidate set — the only
    RNG consumer) followed by executing the drawn cases anywhere
    ({!Ftb_inject.Sample_run.run_case_model} is the unit of work) and
    [fold_round] (tally, rebuild boundary + information, decide whether
    to stop). Drivers checkpoint between [plan_round] and [fold_round] by
    saving the RNG state, the accumulated samples and the drawn cases. *)

type state
(** Mutable campaign state: sampled set, accumulated samples (draw
    order), current boundary, per-site information, rounds folded. *)

val state_create :
  ?config:config -> ?spec:Ftb_inject.Models.spec -> Ftb_trace.Golden.t -> state
(** Fresh state before round 1. Raises [Invalid_argument] on a bad
    config. *)

val state_restore :
  ?config:config ->
  ?spec:Ftb_inject.Models.spec ->
  Ftb_trace.Golden.t ->
  rounds:int ->
  Ftb_inject.Sample_run.t array ->
  state
(** Rebuild the state a driver had after folding [rounds] rounds whose
    accumulated samples (draw order) are given — the checkpoint-resume
    path. The boundary and information are re-inferred from the samples,
    so the restored state is indistinguishable from the original. *)

val plan_round : state -> Ftb_util.Rng.t -> int array option
(** Draw the next round's cases (dense case indices, in draw order).
    [None] when the candidate pool is empty ([Pool_exhausted]). Advances
    the RNG; nothing else in the machine does. *)

val fold_round :
  ?on_round:(round:int -> drawn:int -> masked:int -> sdc:int -> crash:int -> unit) ->
  state ->
  cases:int array ->
  samples:Ftb_inject.Sample_run.t array ->
  [ `Stop of stop_reason | `Continue ]
(** Fold one executed round: [samples.(i)] is the result of running
    [cases.(i)] (the array {!plan_round} returned, same order). Tallies,
    reports [on_round], rebuilds the boundary and information, and
    decides: [`Stop Converged] on the §3.4 criterion, [`Stop Round_cap]
    at the cap, [`Continue] otherwise. Raises [Invalid_argument] on a
    length mismatch or an empty round. *)

val finish : state -> stop_reason -> result
(** Package the final state. *)

val state_rounds : state -> int
val state_sample_count : state -> int
val state_total : state -> int
(** Size of the model's complete sample space. *)

val state_boundary : state -> Boundary.t
(** The boundary inferred from everything folded so far. *)

val state_samples : state -> Ftb_inject.Sample_run.t array
(** Accumulated samples in draw order (copies the list; checkpoint-rate
    usage only). *)
