module Fault = Ftb_trace.Fault
module Golden = Ftb_trace.Golden
module Runner = Ftb_trace.Runner
module Ground_truth = Ftb_inject.Ground_truth
module Models = Ftb_inject.Models
module Sample_run = Ftb_inject.Sample_run

type config = {
  round_fraction : float;
  stop_sdc_fraction : float;
  max_rounds : int;
  filter : bool;
  bias : bool;
}

let default_config =
  { round_fraction = 0.001; stop_sdc_fraction = 0.95; max_rounds = 200; filter = true; bias = true }

type stop_reason = Converged | Pool_exhausted | Round_cap

let stop_reason_to_string = function
  | Converged -> "converged"
  | Pool_exhausted -> "pool-exhausted"
  | Round_cap -> "round-cap"

let stop_reason_of_string = function
  | "converged" -> Some Converged
  | "pool-exhausted" -> Some Pool_exhausted
  | "round-cap" -> Some Round_cap
  | _ -> None

type result = {
  boundary : Boundary.t;
  samples : Sample_run.t array;
  rounds : int;
  sample_fraction : float;
  stop_reason : stop_reason;
}

let check_config config =
  if not (config.round_fraction > 0. && config.round_fraction <= 1.) then
    invalid_arg "Adaptive.run: round_fraction must be in (0, 1]";
  if not (config.stop_sdc_fraction > 0. && config.stop_sdc_fraction <= 1.) then
    invalid_arg "Adaptive.run: stop_sdc_fraction must be in (0, 1]";
  if config.max_rounds <= 0 then invalid_arg "Adaptive.run: max_rounds must be positive"

(* The round state machine. [run] below is a thin serial driver over it;
   the distributed planner ([Ftb_plan.Adaptive_engine]) drives the same
   machine with fleet-executed rounds. Keeping plan and fold here — and
   the RNG consumed by nothing but [plan_round] — is what makes the
   distributed path bit-identical to the serial oracle: outcomes are pure
   functions of (golden, spec, case), so *where* a case runs cannot
   change what the next round draws. *)

type state = {
  config : config;
  spec : Models.spec;
  golden : Golden.t;
  total : int;
  round_size : int;
  sampled : (int, unit) Hashtbl.t;
  mutable samples_rev : Sample_run.t list;
  mutable sample_count : int;
  mutable boundary : Boundary.t;
  mutable info : float array;
  mutable rounds : int;
}

let state_create ?(config = default_config) ?(spec = Models.default_spec) golden =
  check_config config;
  let sites = Golden.sites golden in
  let total = Models.total_cases spec ~sites in
  let round_size =
    max 1 (int_of_float (Float.ceil (config.round_fraction *. float_of_int total)))
  in
  {
    config;
    spec;
    golden;
    total;
    round_size;
    sampled = Hashtbl.create (4 * round_size);
    samples_rev = [];
    sample_count = 0;
    boundary = Boundary.create ~sites;
    info = Array.make sites 0.;
    rounds = 0;
  }

(* Rebuild boundary and information from scratch: the filter operation can
   retroactively disqualify earlier propagation data once a smaller SDC
   error is known, so incremental updates would drift. The sample set is
   small by construction. *)
let refresh state =
  let sites = Golden.sites state.golden in
  let all = Array.of_list (List.rev state.samples_rev) in
  if Array.length all = 0 then begin
    state.boundary <- Boundary.create ~sites;
    state.info <- Array.make sites 0.
  end
  else begin
    state.boundary <- Boundary.infer ~filter:state.config.filter ~sites all;
    state.info <- Info.total (Info.collect state.golden all)
  end

let case_of_sample state (s : Sample_run.t) =
  let width = Models.spec_width state.spec in
  (s.Sample_run.fault.Fault.site * width) + s.Sample_run.fault.Fault.bit

let state_restore ?config ?spec golden ~rounds samples =
  let state = state_create ?config ?spec golden in
  Array.iter
    (fun s ->
      Hashtbl.replace state.sampled (case_of_sample state s) ();
      state.samples_rev <- s :: state.samples_rev;
      state.sample_count <- state.sample_count + 1)
    samples;
  state.rounds <- rounds;
  refresh state;
  state

let state_rounds state = state.rounds
let state_sample_count state = state.sample_count
let state_total state = state.total
let state_boundary state = state.boundary
let state_samples state = Array.of_list (List.rev state.samples_rev)

let plan_round state rng =
  (* Candidate pool: unsampled cases the current boundary does not
     already predict masked — injecting those would teach us nothing
     new about the boundary's upper side. *)
  let width = Models.spec_width state.spec in
  let candidates = ref [] in
  let candidate_count = ref 0 in
  for case = state.total - 1 downto 0 do
    if not (Hashtbl.mem state.sampled case) then begin
      let err = Ground_truth.injected_error_model state.spec state.golden ~case in
      if not (err <= Boundary.threshold state.boundary (case / width)) then begin
        candidates := case :: !candidates;
        incr candidate_count
      end
    end
  done;
  if !candidate_count = 0 then None
  else begin
    let pool = Array.of_list !candidates in
    let k = min state.round_size !candidate_count in
    let drawn_indices =
      if state.config.bias then begin
        let weights =
          Array.map
            (fun case -> 1. /. Float.max state.info.(case / width) 1.)
            pool
        in
        Ftb_util.Sampling.weighted_without_replacement rng ~weights ~k
      end
      else Ftb_util.Sampling.uniform rng ~n:!candidate_count ~k
    in
    Some (Array.map (fun idx -> pool.(idx)) drawn_indices)
  end

let fold_round ?on_round state ~cases ~samples =
  let k = Array.length cases in
  if Array.length samples <> k then
    invalid_arg
      (Printf.sprintf "Adaptive.fold_round: %d samples for %d drawn cases"
         (Array.length samples) k);
  if k = 0 then invalid_arg "Adaptive.fold_round: empty round";
  Array.iter (fun case -> Hashtbl.replace state.sampled case ()) cases;
  let masked = ref 0 and sdc = ref 0 and crash = ref 0 in
  Array.iter
    (fun (s : Sample_run.t) ->
      (match s.Sample_run.outcome with
      | Runner.Masked -> incr masked
      | Runner.Sdc -> incr sdc
      | Runner.Crash -> incr crash);
      state.samples_rev <- s :: state.samples_rev;
      state.sample_count <- state.sample_count + 1)
    samples;
  state.rounds <- state.rounds + 1;
  (match on_round with
  | Some f -> f ~round:state.rounds ~drawn:k ~masked:!masked ~sdc:!sdc ~crash:!crash
  | None -> ());
  refresh state;
  let sdc_fraction = float_of_int !sdc /. float_of_int k in
  if !masked = 0 || sdc_fraction >= state.config.stop_sdc_fraction then `Stop Converged
  else if state.rounds >= state.config.max_rounds then `Stop Round_cap
  else `Continue

let finish state stop_reason =
  {
    boundary = state.boundary;
    samples = state_samples state;
    rounds = state.rounds;
    sample_fraction = float_of_int state.sample_count /. float_of_int state.total;
    stop_reason;
  }

let run_model ?(config = default_config) ?on_round ?(spec = Models.default_spec) ?fuel rng
    golden =
  let state = state_create ~config ~spec golden in
  let stop = ref Round_cap in
  (try
     while state.rounds < config.max_rounds do
       match plan_round state rng with
       | None ->
           stop := Pool_exhausted;
           raise Exit
       | Some cases -> (
           let samples = Array.map (Sample_run.run_case_model ?fuel spec golden) cases in
           match fold_round ?on_round state ~cases ~samples with
           | `Stop reason ->
               stop := reason;
               raise Exit
           | `Continue -> ())
     done
   with Exit -> ());
  finish state !stop

let run ?config ?on_round rng golden = run_model ?config ?on_round rng golden
