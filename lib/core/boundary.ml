module Fault = Ftb_trace.Fault
module Runner = Ftb_trace.Runner
module Ground_truth = Ftb_inject.Ground_truth
module Sample_run = Ftb_inject.Sample_run

type t = { thresholds : float array; support : int array }

let create ~sites =
  if sites <= 0 then invalid_arg "Boundary.create: sites must be positive";
  { thresholds = Array.make sites 0.; support = Array.make sites 0 }

let sites t = Array.length t.thresholds
let threshold t i = t.thresholds.(i)
let copy t = { thresholds = Array.copy t.thresholds; support = Array.copy t.support }

let add_masked_propagation ?min_sdc_error t ~start deviations =
  if start < 0 || start + Array.length deviations > sites t then
    invalid_arg "Boundary.add_masked_propagation: coverage out of range";
  Array.iteri
    (fun k d ->
      let j = start + k in
      let accepted =
        d > 0.
        && (match min_sdc_error with None -> true | Some floor -> d < floor.(j))
      in
      if accepted then begin
        if d > t.thresholds.(j) then t.thresholds.(j) <- d;
        t.support.(j) <- t.support.(j) + 1
      end)
    deviations

let min_sdc_errors ~sites samples =
  let floor = Array.make sites infinity in
  Array.iter
    (fun (s : Sample_run.t) ->
      match s.Sample_run.outcome with
      | Runner.Sdc ->
          let site = s.Sample_run.fault.Fault.site in
          if s.Sample_run.injected_error < floor.(site) then
            floor.(site) <- s.Sample_run.injected_error
      | Runner.Masked | Runner.Crash -> ())
    samples;
  floor

let infer ?(filter = false) ~sites:n samples =
  let t = create ~sites:n in
  let min_sdc_error = if filter then Some (min_sdc_errors ~sites:n samples) else None in
  Array.iter
    (fun (s : Sample_run.t) ->
      match s.Sample_run.propagation with
      | Some (start, deviations) -> add_masked_propagation ?min_sdc_error t ~start deviations
      | None -> ())
    samples;
  t

let exhaustive gt =
  let golden = gt.Ground_truth.golden in
  let n = Ftb_trace.Golden.sites golden in
  (* Per-site case width of the campaign behind [gt] (64 for the paper's
     bit-flip model); deriving it keeps the brute-force boundary correct
     for narrower discrete fault models. *)
  let width = Ground_truth.cases gt / n in
  let t = create ~sites:n in
  for site = 0 to n - 1 do
    let min_sdc = ref infinity in
    for bit = 0 to width - 1 do
      let fault = Fault.make ~site ~bit in
      if Ground_truth.outcome gt ((site * width) + bit) = Runner.Sdc then begin
        let e = Ground_truth.injected_error golden fault in
        if e < !min_sdc then min_sdc := e
      end
    done;
    let best = ref 0. and support = ref 0 in
    for bit = 0 to width - 1 do
      let fault = Fault.make ~site ~bit in
      if Ground_truth.outcome gt ((site * width) + bit) = Runner.Masked then begin
        let e = Ground_truth.injected_error golden fault in
        if e < !min_sdc then begin
          incr support;
          if e > !best then best := e
        end
      end
    done;
    t.thresholds.(site) <- !best;
    t.support.(site) <- !support
  done;
  t
