(** §4.1 — the brute-force boundary study (Table 1 and Figure 3).

    Builds the fault tolerance boundary from the complete campaign, uses it
    to re-predict every site's SDC ratio, and compares against the known
    truth: Table 1 reports the aggregate ratios; Figure 3 the per-site
    ΔSDC histogram and the fraction of non-monotonic sites. *)

type result = {
  name : string;
  sites : int;
  cases : int;
  golden_sdc : float;  (** true SDC ratio from the campaign *)
  approx_sdc : float;  (** SDC ratio re-predicted from the boundary *)
  delta_sdc : float array;  (** per-site Golden − Approx *)
  non_monotonic_fraction : float;
      (** fraction of sites where some masked flip injects a larger error
          than some SDC flip — the sites where the boundary must err *)
  crash_breakdown : Ftb_inject.Ground_truth.reason_counts;
      (** crash cases split by taxonomy reason (NaN / Inf / exception /
          fuel exhaustion) *)
  boundary : Boundary.t;
}

val run : Context.t -> result

val non_monotonic_sites : Ftb_inject.Ground_truth.t -> bool array
(** Per-site flag: true when max masked error > min SDC error. *)
