module Models = Ftb_inject.Models
module Ground_truth = Ftb_inject.Ground_truth
module Executor = Ftb_inject.Executor

type row = {
  model : Models.spec;
  cases : int;
  masked_ratio : float;
  sdc_ratio : float;
  crash_ratio : float;
  crash_breakdown : Ground_truth.reason_counts;
}

type result = { name : string; sites : int; rows : row list }

let row_of_ground_truth model gt =
  {
    model;
    cases = Ground_truth.cases gt;
    masked_ratio = Ground_truth.masked_ratio gt;
    sdc_ratio = Ground_truth.sdc_ratio gt;
    crash_ratio = Ground_truth.crash_ratio gt;
    crash_breakdown = Ground_truth.crash_counts gt;
  }

let default_specs ~seed =
  List.map
    (fun model -> { Models.model; seed })
    (Models.all_discrete @ [ Models.Random_value { lo = -1e3; hi = 1e3 } ])

let run ?pool ?domains ?fuel ~name golden specs =
  let rows =
    List.map
      (fun spec ->
        row_of_ground_truth spec
          (Executor.ground_truth_model ?pool ?domains ?fuel spec golden))
      specs
  in
  { name; sites = Ftb_trace.Golden.sites golden; rows }
