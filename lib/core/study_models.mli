(** Cross-model resilience comparison — one exhaustive campaign per fault
    model over the same golden trace.

    The paper's campaigns flip single bits of 64-bit FP values; the
    related position papers argue that narrower datapaths, multi-bit
    bursts and value-replacement faults yield materially different SDC
    profiles. This study runs the {e full} (not sampled) campaign under
    each requested {!Ftb_inject.Models.spec} and tabulates the outcome
    mix, so the model sensitivity of a benchmark's resilience is itself a
    reportable result ({!Ftb_report.Render.model_table}). *)

type row = {
  model : Ftb_inject.Models.spec;
  cases : int;  (** size of this model's sample space *)
  masked_ratio : float;
  sdc_ratio : float;
  crash_ratio : float;
  crash_breakdown : Ftb_inject.Ground_truth.reason_counts;
}

type result = { name : string; sites : int; rows : row list }

val row_of_ground_truth : Ftb_inject.Models.spec -> Ftb_inject.Ground_truth.t -> row
(** Tabulate an already-run campaign (e.g. one loaded from a checkpoint). *)

val default_specs : seed:int -> Ftb_inject.Models.spec list
(** Every discrete model plus a representative [Random_value] range —
    the default comparison set of the [models --exhaustive] CLI verb. *)

val run :
  ?pool:Ftb_inject.Parallel.Pool.t ->
  ?domains:int ->
  ?fuel:int ->
  name:string ->
  Ftb_trace.Golden.t ->
  Ftb_inject.Models.spec list ->
  result
(** One exhaustive campaign per spec ({!Ftb_inject.Executor.ground_truth_model});
    outcome bytes are bit-identical to the campaign engine's under the
    same spec. *)
