module Fault = Ftb_trace.Fault
module Golden = Ftb_trace.Golden
module Runner = Ftb_trace.Runner
module Ground_truth = Ftb_inject.Ground_truth
module Sample_run = Ftb_inject.Sample_run

type observations = (int, Runner.outcome) Hashtbl.t

let observations_of_samples samples =
  let table = Hashtbl.create (2 * Array.length samples) in
  Array.iter
    (fun (s : Sample_run.t) ->
      Hashtbl.replace table (Fault.to_case s.Sample_run.fault) s.Sample_run.outcome)
    samples;
  table

let no_observations : observations = Hashtbl.create 1
let observed table case = Hashtbl.find_opt table case
let observed_count table = Hashtbl.length table

let predicted_masked boundary golden fault =
  Ground_truth.injected_error golden fault <= Boundary.threshold boundary fault.Fault.site

type policy = Boundary_only | Observed_full_sites | Observed_all

let bits = Ftb_util.Bits.bits_per_double

let site_sdc_ratio ?(policy = Observed_full_sites) ?(observations = no_observations)
    boundary golden =
  let n = Golden.sites golden in
  if Boundary.sites boundary <> n then
    invalid_arg "Predict.site_sdc_ratio: boundary/golden site count mismatch";
  Array.init n (fun site ->
      let observed_here = Array.make bits None in
      let observed_count = ref 0 in
      (match policy with
      | Boundary_only -> ()
      | Observed_full_sites | Observed_all ->
          for bit = 0 to bits - 1 do
            match observed observations ((site * bits) + bit) with
            | Some outcome ->
                observed_here.(bit) <- Some outcome;
                incr observed_count
            | None -> ()
          done);
      let use_observed_case =
        match policy with
        | Boundary_only -> false
        | Observed_all -> true
        | Observed_full_sites -> !observed_count = bits
      in
      let sdc = ref 0 in
      for bit = 0 to bits - 1 do
        let known = if use_observed_case then observed_here.(bit) else None in
        match known with
        | Some Runner.Sdc -> incr sdc
        | Some (Runner.Masked | Runner.Crash) -> ()
        | None ->
            if not (predicted_masked boundary golden (Fault.make ~site ~bit)) then incr sdc
      done;
      float_of_int !sdc /. float_of_int bits)

let overall_sdc_ratio ?policy ?observations boundary golden =
  let ratios = site_sdc_ratio ?policy ?observations boundary golden in
  Ftb_util.Stats.mean ratios

let site_sdc_ratio_vs_ground_truth boundary gt =
  let golden = gt.Ground_truth.golden in
  let n = Golden.sites golden in
  if Boundary.sites boundary <> n then
    invalid_arg "Predict.site_sdc_ratio_vs_ground_truth: site count mismatch";
  (* Width of the campaign behind [gt], not the inference-side [bits]:
     the comparison must scan exactly the cases the campaign ran. *)
  let width = Ground_truth.cases gt / n in
  Array.init n (fun site ->
      let sdc = ref 0 in
      for bit = 0 to width - 1 do
        let fault = Fault.make ~site ~bit in
        match Ground_truth.outcome gt ((site * width) + bit) with
        | Runner.Crash -> ()
        | Runner.Masked | Runner.Sdc ->
            if not (predicted_masked boundary golden fault) then incr sdc
      done;
      float_of_int !sdc /. float_of_int width)
