module Fault = Ftb_trace.Fault
module Runner = Ftb_trace.Runner
module Ground_truth = Ftb_inject.Ground_truth

type result = {
  name : string;
  sites : int;
  cases : int;
  golden_sdc : float;
  approx_sdc : float;
  delta_sdc : float array;
  non_monotonic_fraction : float;
  crash_breakdown : Ground_truth.reason_counts;
  boundary : Boundary.t;
}

let non_monotonic_sites gt =
  let golden = gt.Ground_truth.golden in
  let n = Ftb_trace.Golden.sites golden in
  (* The per-site case width is a property of the campaign that produced
     the ground truth (64 for the paper's bit-flip model, narrower for
     e.g. [Bit_flip_32]); deriving it here keeps the monotonicity scan
     correct for any discrete fault model. *)
  let width = Ground_truth.cases gt / n in
  Array.init n (fun site ->
      let max_masked = ref neg_infinity and min_sdc = ref infinity in
      for bit = 0 to width - 1 do
        let fault = Fault.make ~site ~bit in
        let e = Ground_truth.injected_error golden fault in
        match Ground_truth.outcome gt ((site * width) + bit) with
        | Runner.Masked -> if e > !max_masked then max_masked := e
        | Runner.Sdc -> if e < !min_sdc then min_sdc := e
        | Runner.Crash -> ()
      done;
      !max_masked > !min_sdc)

let run (context : Context.t) =
  let gt = context.Context.ground_truth in
  let boundary = Boundary.exhaustive gt in
  let golden_ratio = Ground_truth.site_sdc_ratio gt in
  let approx_ratio = Predict.site_sdc_ratio_vs_ground_truth boundary gt in
  let delta_sdc = Metrics.delta_sdc ~golden_ratio ~approx_ratio in
  let flags = non_monotonic_sites gt in
  let non_monotonic = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 flags in
  {
    name = context.Context.name;
    sites = Context.sites context;
    cases = Context.cases context;
    golden_sdc = Ground_truth.sdc_ratio gt;
    approx_sdc = Ftb_util.Stats.mean approx_ratio;
    delta_sdc;
    non_monotonic_fraction = float_of_int non_monotonic /. float_of_int (Array.length flags);
    crash_breakdown = Ground_truth.crash_counts gt;
    boundary;
  }
