module Adaptive = Ftb_core.Adaptive
module Boundary = Ftb_core.Boundary
module Golden = Ftb_trace.Golden
module Ground_truth = Ftb_inject.Ground_truth
module Models = Ftb_inject.Models
module Persist = Ftb_inject.Persist
module Runner = Ftb_trace.Runner
module Sample_run = Ftb_inject.Sample_run
module Fingerprint = Ftb_util.Fingerprint

type entry = {
  key : string;
  bench : string;
  fingerprint : string;
  spec : Models.spec;
  fuel : int option;
  config : Adaptive.config;
  seed : int;
  sites : int;
  thresholds : float array;
  support : int array;
  golden_values : float array;
  uncertainty : float;
  rounds : int;
  samples : int;
  masked : int;
  sdc : int;
  crash : int;
  sample_fraction : float;
  stop : Adaptive.stop_reason;
  prov : string;
  created : float;
}

let prov_local = "local"

let prov_valid p =
  p <> ""
  && String.for_all (function ' ' | '\n' | '\r' | '\t' -> false | _ -> true) p

let bench_valid b =
  b <> ""
  && String.for_all
       (function 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       b

let config_token (config : Adaptive.config) =
  Printf.sprintf "%h:%h:%d:%b:%b" config.Adaptive.round_fraction
    config.Adaptive.stop_sdc_fraction config.Adaptive.max_rounds config.Adaptive.filter
    config.Adaptive.bias

let fuel_token = function None -> "none" | Some n -> string_of_int n

(* The campaign identity: everything that determines the converged
   boundary bytes. Two submissions with equal keys run the identical
   campaign, which is what makes serving the stored entry a sound
   warm start. *)
let key_of ~bench ~fingerprint ~spec ~fuel ~config ~seed =
  Fingerprint.of_string
    (Printf.sprintf "ftb-boundary-key-v1:%s:%s:%s:%s:%s:%d" bench fingerprint
       (Models.spec_to_string spec) (fuel_token fuel) (config_token config) seed)

(* Model-aware §3.6 uncertainty: precision of the boundary restricted to
   the sampled cases — [Metrics.uncertainty] generalized through
   [injected_error_model] so non-default models judge themselves against
   their own corruption, not a 64-bit flip. *)
let uncertainty_of spec golden boundary samples =
  let width = Models.spec_width spec in
  let predicted = ref 0 and correct = ref 0 in
  Array.iter
    (fun (s : Sample_run.t) ->
      let fault = s.Sample_run.fault in
      let site = fault.Ftb_trace.Fault.site in
      let case = (site * width) + fault.Ftb_trace.Fault.bit in
      let err = Ground_truth.injected_error_model spec golden ~case in
      if err <= Boundary.threshold boundary site then begin
        incr predicted;
        if s.Sample_run.outcome = Runner.Masked then incr correct
      end)
    samples;
  if !predicted = 0 then 1. else float_of_int !correct /. float_of_int !predicted

let entry_of_result ?(prov = prov_local) ~bench ~spec ~fuel ~config ~seed ~created golden
    (result : Adaptive.result) =
  if not (bench_valid bench) then
    invalid_arg "Boundary_store: bench must be a [A-Za-z0-9._-] token";
  if not (prov_valid prov) then
    invalid_arg "Boundary_store: provenance must be a space-free token";
  let fingerprint = Fingerprint.of_floats golden.Golden.values in
  let boundary = result.Adaptive.boundary in
  let sites = Boundary.sites boundary in
  let masked, sdc, crash = Sample_run.count_outcomes result.Adaptive.samples in
  {
    key = key_of ~bench ~fingerprint ~spec ~fuel ~config ~seed;
    bench;
    fingerprint;
    spec;
    fuel;
    config;
    seed;
    sites;
    thresholds = Array.init sites (Boundary.threshold boundary);
    support = Array.copy boundary.Boundary.support;
    golden_values = Array.init sites (Golden.value golden);
    uncertainty = uncertainty_of spec golden boundary result.Adaptive.samples;
    rounds = result.Adaptive.rounds;
    samples = Array.length result.Adaptive.samples;
    masked;
    sdc;
    crash;
    sample_fraction = result.Adaptive.sample_fraction;
    stop = result.Adaptive.stop_reason;
    prov;
    created;
  }

(* ------------------------------------------------------------------ *)
(* Serialization: enveloped text, one header + one line per site. *)

let magic = "ftb-boundary-store-v1"

let fail path fmt =
  Printf.ksprintf (fun msg -> raise (Persist.Format_error (path ^ ": " ^ msg))) fmt

let write entry buf =
  Printf.bprintf buf "%s %s %s %s %s %s %h %h %d %d %d %d %d %h %d %d %d %d %d %h %s %s %h\n"
    magic entry.key entry.bench entry.fingerprint
    (Models.spec_to_string entry.spec)
    (fuel_token entry.fuel) entry.config.Adaptive.round_fraction
    entry.config.Adaptive.stop_sdc_fraction entry.config.Adaptive.max_rounds
    (if entry.config.Adaptive.filter then 1 else 0)
    (if entry.config.Adaptive.bias then 1 else 0)
    entry.seed entry.sites entry.uncertainty entry.rounds entry.samples
    entry.masked entry.sdc entry.crash entry.sample_fraction
    (Adaptive.stop_reason_to_string entry.stop)
    entry.prov entry.created;
  for site = 0 to entry.sites - 1 do
    Printf.bprintf buf "%h %d %h\n" entry.thresholds.(site) entry.support.(site)
      entry.golden_values.(site)
  done

let int_field path what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail path "bad %s field %S" what s

let float_field path what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail path "bad %s field %S" what s

let parse ~path contents =
  match String.split_on_char '\n' contents with
  | header :: site_lines -> (
      match String.split_on_char ' ' header with
      | [
          m; key; bench; fp; model; fuel; rf; stop_frac; max_rounds; filter; bias; seed;
          sites; uncertainty; rounds; samples; masked; sdc; crash; fraction; stop; prov;
          created;
        ]
        when m = magic ->
          let spec =
            match Models.spec_of_string model with
            | Ok spec -> spec
            | Error msg -> fail path "%s" msg
          in
          let fuel =
            if fuel = "none" then None else Some (int_field path "fuel" fuel)
          in
          let config =
            {
              Adaptive.round_fraction = float_field path "round_fraction" rf;
              stop_sdc_fraction = float_field path "stop_sdc_fraction" stop_frac;
              max_rounds = int_field path "max_rounds" max_rounds;
              filter = int_field path "filter" filter <> 0;
              bias = int_field path "bias" bias <> 0;
            }
          in
          let sites = int_field path "sites" sites in
          if sites <= 0 then fail path "sites must be positive";
          if not (Fingerprint.is_hex key) then fail path "bad key %S" key;
          if not (Fingerprint.is_hex fp) then fail path "bad fingerprint %S" fp;
          if not (bench_valid bench) then fail path "bad bench token %S" bench;
          if not (prov_valid prov) then fail path "bad provenance token %S" prov;
          let stop =
            match Adaptive.stop_reason_of_string stop with
            | Some reason -> reason
            | None -> fail path "bad stop reason %S" stop
          in
          let thresholds = Array.make sites 0. in
          let support = Array.make sites 0 in
          let golden_values = Array.make sites 0. in
          let filled = ref 0 in
          List.iter
            (fun line ->
              if line <> "" then begin
                if !filled >= sites then fail path "more site lines than %d sites" sites;
                (match String.split_on_char ' ' line with
                | [ threshold; supp; value ] ->
                    thresholds.(!filled) <- float_field path "threshold" threshold;
                    support.(!filled) <- int_field path "support" supp;
                    golden_values.(!filled) <- float_field path "golden value" value
                | _ -> fail path "malformed site line %S" line);
                incr filled
              end)
            site_lines;
          if !filled <> sites then fail path "%d site lines for %d sites" !filled sites;
          {
            key;
            bench;
            fingerprint = fp;
            spec;
            fuel;
            config;
            seed = int_field path "seed" seed;
            sites;
            thresholds;
            support;
            golden_values;
            uncertainty = float_field path "uncertainty" uncertainty;
            rounds = int_field path "rounds" rounds;
            samples = int_field path "samples" samples;
            masked = int_field path "masked" masked;
            sdc = int_field path "sdc" sdc;
            crash = int_field path "crash" crash;
            sample_fraction = float_field path "sample_fraction" fraction;
            stop;
            prov;
            created = float_field path "created" created;
          }
      | m :: _ when m <> magic -> fail path "unknown boundary-store magic %S" m
      | _ -> fail path "malformed boundary-store header")
  | [] -> fail path "empty boundary-store entry"

(* ------------------------------------------------------------------ *)
(* The store: content-addressed entries sharded like the compose cache
   (<root>/<k0k1>/<key>, quarantine/ siblings), plus a sorted index for
   O(log n) by-kernel lookup. *)

type t = { root : string }

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~root =
  mkdir_p root;
  { root }

let root t = t.root
let shard_dir t key = Filename.concat t.root (String.sub key 0 2)
let path_of_key t key = Filename.concat (shard_dir t key) key
let index_path t = Filename.concat t.root "index"

let entries_of_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun name -> Fingerprint.is_hex name)
      |> List.map (Filename.concat dir)

let shard_dirs t =
  match Sys.readdir t.root with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun name ->
             String.length name = 2
             && String.for_all
                  (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
                  name)
      |> List.map (Filename.concat t.root)

let all_entries t = List.concat_map entries_of_dir (shard_dirs t)

let find t ~key =
  if not (Fingerprint.is_hex key) then None
  else
    let path = path_of_key t key in
    if not (Sys.file_exists path) then None
    else
      (* Store convention: anything between here and a fully-validated
         entry means the artifact cannot be trusted — quarantine it as
         evidence and report a miss. A corrupt entry costs a re-campaign,
         never a wrong prediction. *)
      match Persist.load_enveloped ~path with
      | exception (Persist.Format_error _ | Sys_error _) ->
          ignore (Persist.quarantine ~path : string option);
          None
      | contents -> (
          match parse ~path contents with
          | exception Persist.Format_error _ ->
              ignore (Persist.quarantine ~path : string option);
              None
          | entry ->
              if entry.key = key then Some entry
              else begin
                ignore (Persist.quarantine ~path : string option);
                None
              end)

(* Read-only decode for bulk scans; [find] owns the quarantine policy. *)
let entry_of_path path =
  match Persist.load_enveloped ~path with
  | exception (Persist.Format_error _ | Sys_error _) -> None
  | contents -> (
      match parse ~path contents with
      | exception Persist.Format_error _ -> None
      | entry -> Some entry)

(* ------------------------------------------------------------------ *)
(* Index: one line per entry, "<bench> <model> <created %h> <key>",
   sorted by (bench, model, created). Lookups binary-search the sorted
   array; a missing or corrupt index is rebuilt from a full scan, so the
   index is a pure accelerator — never a source of truth. *)

type index_row = { ix_bench : string; ix_model : string; ix_created : float; ix_key : string }

let row_compare a b =
  match compare a.ix_bench b.ix_bench with
  | 0 -> (
      match compare a.ix_model b.ix_model with
      | 0 -> compare a.ix_created b.ix_created
      | c -> c)
  | c -> c

let row_of_entry entry =
  {
    ix_bench = entry.bench;
    ix_model = Models.spec_to_string entry.spec;
    ix_created = entry.created;
    ix_key = entry.key;
  }

let index_rebuild t =
  let rows =
    List.filter_map
      (fun path -> Option.map row_of_entry (entry_of_path path))
      (all_entries t)
  in
  let rows = Array.of_list rows in
  Array.sort row_compare rows;
  rows

let index_write t rows =
  Persist.with_out_atomic (index_path t) (fun oc ->
      Array.iter
        (fun row ->
          Printf.fprintf oc "%s %s %h %s\n" row.ix_bench row.ix_model row.ix_created
            row.ix_key)
        rows)

let index_load t =
  let path = index_path t in
  let parse_line line =
    match String.split_on_char ' ' line with
    | [ bench; model; created; key ]
      when bench_valid bench && Fingerprint.is_hex key -> (
        match float_of_string_opt created with
        | Some created ->
            Some { ix_bench = bench; ix_model = model; ix_created = created; ix_key = key }
        | None -> None)
    | _ -> None
  in
  let from_file () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rows = ref [] in
        (try
           while true do
             match parse_line (input_line ic) with
             | Some row -> rows := row :: !rows
             | None -> failwith "corrupt index line"
           done
         with End_of_file -> ());
        let rows = Array.of_list (List.rev !rows) in
        let sorted = Array.copy rows in
        Array.sort row_compare sorted;
        if sorted <> rows then failwith "index not sorted";
        rows)
  in
  if not (Sys.file_exists path) then begin
    let rows = index_rebuild t in
    index_write t rows;
    rows
  end
  else
    match from_file () with
    | rows -> rows
    | exception (Failure _ | Sys_error _) ->
        let rows = index_rebuild t in
        index_write t rows;
        rows

let put t entry =
  mkdir_p (shard_dir t entry.key);
  Persist.save_enveloped ~path:(path_of_key t entry.key) (write entry);
  let rows = index_load t in
  let rows = Array.of_list (List.filter (fun r -> r.ix_key <> entry.key) (Array.to_list rows)) in
  let rows = Array.append rows [| row_of_entry entry |] in
  Array.sort row_compare rows;
  index_write t rows

(* Binary search for the first row with ix_bench >= bench. *)
let lower_bound rows bench =
  let lo = ref 0 and hi = ref (Array.length rows) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if rows.(mid).ix_bench < bench then lo := mid + 1 else hi := mid
  done;
  !lo

let find_latest t ~bench ?spec () =
  let rows = index_load t in
  let model = Option.map Models.spec_to_string spec in
  let best = ref None in
  let i = ref (lower_bound rows bench) in
  while !i < Array.length rows && rows.(!i).ix_bench = bench do
    let row = rows.(!i) in
    (match model with
    | Some m when m <> row.ix_model -> ()
    | Some _ | None -> (
        match !best with
        | Some b when b.ix_created >= row.ix_created -> ()
        | Some _ | None -> best := Some row));
    incr i
  done;
  match !best with
  | None -> None
  | Some row -> (
      match find t ~key:row.ix_key with
      | Some entry -> Some entry
      | None ->
          (* The entry behind the index row was quarantined: the index is
             stale — rebuild it so the next lookup is honest. *)
          index_write t (index_rebuild t);
          None)

let list t =
  List.filter_map entry_of_path (all_entries t)
  |> List.sort (fun a b ->
         match compare a.bench b.bench with 0 -> compare b.created a.created | c -> c)

let remove path = try Sys.remove path with Sys_error _ -> ()

let gc t ~keep =
  if keep < 0 then invalid_arg "Boundary_store.gc: keep must be non-negative";
  let dated =
    List.filter_map
      (fun path ->
        match entry_of_path path with
        | Some entry -> Some (entry.created, path)
        | None -> (
            match Unix.stat path with
            | exception Unix.Unix_error _ -> None
            | st -> Some (st.Unix.st_mtime, path)))
      (all_entries t)
    |> List.sort (fun (a, _) (b, _) -> compare b a) (* newest first *)
  in
  let victims = List.filteri (fun i _ -> i >= keep) dated in
  List.iter (fun (_, path) -> remove path) victims;
  index_write t (index_rebuild t);
  List.length victims

type stats = { entries : int; bytes : int; quarantined : int }

let stats t =
  let entries = ref 0 and bytes = ref 0 in
  List.iter
    (fun path ->
      match Unix.stat path with
      | exception Unix.Unix_error _ -> ()
      | st ->
          incr entries;
          bytes := !bytes + st.Unix.st_size)
    (all_entries t);
  let quarantined =
    List.fold_left
      (fun acc dir ->
        match Sys.readdir (Filename.concat dir "quarantine") with
        | exception Sys_error _ -> acc
        | names -> acc + Array.length names)
      0 (shard_dirs t)
  in
  { entries = !entries; bytes = !bytes; quarantined }

(* ------------------------------------------------------------------ *)
(* Queries: zero kernel execution — the injected error is a pure function
   of the stored golden value and the model's corruption of it. *)

type prediction = {
  outcome : [ `Masked | `Sdc ];
  threshold : float;
  injected_error : float;
  site_support : int;
  entry_uncertainty : float;
}

let query entry ~site ~bit =
  let width = Models.spec_width entry.spec in
  if site < 0 || site >= entry.sites then
    invalid_arg
      (Printf.sprintf "Boundary_store.query: site %d outside [0,%d)" site entry.sites);
  if bit < 0 || bit >= width then
    invalid_arg
      (Printf.sprintf "Boundary_store.query: bit %d outside the model's [0,%d) case space"
         bit width);
  let v = entry.golden_values.(site) in
  let case = (site * width) + bit in
  let corrupted = Models.case_corrupt entry.spec ~case v in
  let err = abs_float (corrupted -. v) in
  let err = if Float.is_nan err then infinity else err in
  let threshold = entry.thresholds.(site) in
  {
    outcome = (if err <= threshold then `Masked else `Sdc);
    threshold;
    injected_error = err;
    site_support = entry.support.(site);
    entry_uncertainty = entry.uncertainty;
  }
