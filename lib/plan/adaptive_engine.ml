module Adaptive = Ftb_core.Adaptive
module Golden = Ftb_trace.Golden
module Models = Ftb_inject.Models
module Persist = Ftb_inject.Persist
module Sample_run = Ftb_inject.Sample_run
module Fingerprint = Ftb_util.Fingerprint
module Rng = Ftb_util.Rng

exception Cancelled

type exec = round:int -> cases:int array -> Sample_run.t array

type stats = { fresh_samples : int; resumed_samples : int; resumed_rounds : int }

let run ?(config = Adaptive.default_config) ?(spec = Models.default_spec) ?fuel ?checkpoint
    ?exec ?on_round ?(cancel = fun () -> false) ~name ~seed golden =
  Adaptive.check_config config;
  let sites = Golden.sites golden in
  let fingerprint = Fingerprint.of_floats golden.Golden.values in
  let exec =
    match exec with
    | Some f -> f
    | None ->
        fun ~round:_ ~cases -> Array.map (Sample_run.run_case_model ?fuel spec golden) cases
  in
  (* A checkpoint binds to one campaign identity: same kernel (name +
     golden fingerprint), model, config, fuel and seed. Anything else on
     disk is a different campaign's state — ignored, not quarantined
     (it is valid, just not ours); structural corruption is quarantined
     and the campaign restarts cold. *)
  let resume =
    match checkpoint with
    | Some path when Sys.file_exists path -> (
        match Round_checkpoint.load ~path with
        | cp ->
            if
              cp.Round_checkpoint.name = name
              && cp.Round_checkpoint.sites = sites
              && cp.Round_checkpoint.fingerprint = fingerprint
              && Models.spec_equal cp.Round_checkpoint.spec spec
              && cp.Round_checkpoint.config = config
              && cp.Round_checkpoint.fuel = fuel
              && cp.Round_checkpoint.seed = seed
            then Some cp
            else None
        | exception Persist.Format_error _ ->
            ignore (Persist.quarantine ~path : string option);
            None)
    | Some _ | None -> None
  in
  match resume with
  | Some ({ Round_checkpoint.stop = Some reason; _ } as cp) ->
      (* Finished campaign: replay the result without drawing a thing. *)
      let state =
        Adaptive.state_restore ~config ~spec golden ~rounds:cp.Round_checkpoint.rounds
          cp.Round_checkpoint.samples
      in
      ( Adaptive.finish state reason,
        {
          fresh_samples = 0;
          resumed_samples = Array.length cp.Round_checkpoint.samples;
          resumed_rounds = cp.Round_checkpoint.rounds;
        } )
  | _ ->
      let rng, state, initial_pending, resumed_samples, resumed_rounds =
        match resume with
        | Some cp ->
            ( Rng.of_state cp.Round_checkpoint.rng_state,
              Adaptive.state_restore ~config ~spec golden
                ~rounds:cp.Round_checkpoint.rounds cp.Round_checkpoint.samples,
              cp.Round_checkpoint.pending,
              Array.length cp.Round_checkpoint.samples,
              cp.Round_checkpoint.rounds )
        | None ->
            (Rng.create ~seed, Adaptive.state_create ~config ~spec golden, None, 0, 0)
      in
      let save ?pending ?stop () =
        match checkpoint with
        | None -> ()
        | Some path ->
            Round_checkpoint.save ~path
              {
                Round_checkpoint.name;
                sites;
                spec;
                fuel;
                fingerprint;
                config;
                seed;
                rng_state = Rng.state rng;
                rounds = Adaptive.state_rounds state;
                samples = Adaptive.state_samples state;
                pending;
                stop;
              }
      in
      let fresh = ref 0 in
      let pending = ref initial_pending in
      let stop = ref Adaptive.Round_cap in
      (try
         while true do
           if cancel () then begin
             save ?pending:!pending ();
             raise Cancelled
           end;
           let cases =
             match !pending with
             | Some cases ->
                 (* The killed run already drew this round; re-drawing
                    would consume fresh RNG output and diverge from the
                    serial oracle. *)
                 pending := None;
                 cases
             | None -> (
                 match Adaptive.plan_round state rng with
                 | None ->
                     stop := Adaptive.Pool_exhausted;
                     raise Exit
                 | Some cases ->
                     save ~pending:cases ();
                     cases)
           in
           let round = Adaptive.state_rounds state + 1 in
           let samples = exec ~round ~cases in
           if Array.length samples <> Array.length cases then
             invalid_arg
               (Printf.sprintf
                  "Adaptive_engine: executor returned %d samples for a %d-case round"
                  (Array.length samples) (Array.length cases));
           fresh := !fresh + Array.length samples;
           match Adaptive.fold_round ?on_round state ~cases ~samples with
           | `Stop reason ->
               stop := reason;
               raise Exit
           | `Continue -> save ()
         done
       with Exit -> ());
      save ~stop:!stop ();
      (Adaptive.finish state !stop, { fresh_samples = !fresh; resumed_samples; resumed_rounds })
