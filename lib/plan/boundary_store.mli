(** Servable store of converged fault-tolerance boundaries.

    An adaptive campaign's boundary dies with its result file unless it
    becomes a reusable artifact: this store persists each converged
    boundary — with per-site support, the §3.6 uncertainty, the fault
    model, the kernel identity, the sample fraction and a provenance
    token — as a CRC-enveloped, content-addressed entry next to the
    compose cache, sharded and quarantined under the same conventions.
    The key hashes the complete campaign identity (kernel name, golden
    fingerprint, model, fuel, adaptive config, seed), so an exact-key hit
    is the *same* campaign: serving the stored entry, or warm-starting a
    repeat submission from it, cannot change a single byte of the answer.

    A sorted index file (a pure accelerator, rebuilt from a scan whenever
    missing, corrupt or stale) gives O(log n) by-kernel lookup; queries
    then answer "is (site, bit) predicted Masked, with what threshold and
    uncertainty?" from the stored golden values alone — zero kernel
    execution. *)

type entry = {
  key : string;  (** content key over the campaign identity *)
  bench : string;  (** kernel name *)
  fingerprint : string;  (** golden-trace fingerprint *)
  spec : Ftb_inject.Models.spec;
  fuel : int option;
  config : Ftb_core.Adaptive.config;
  seed : int;
  sites : int;
  thresholds : float array;  (** the boundary, one threshold per site *)
  support : int array;  (** per-site masked-propagation observations *)
  golden_values : float array;  (** per-site golden value — the query input *)
  uncertainty : float;  (** §3.6 self-check, model-aware *)
  rounds : int;
  samples : int;
  masked : int;  (** outcome tallies over the campaign's samples — *)
  sdc : int;  (** what a daemon serving this entry reports as counts *)
  crash : int;
  sample_fraction : float;
  stop : Ftb_core.Adaptive.stop_reason;
  prov : string;  (** opaque space-free provenance token *)
  created : float;  (** unix time the entry was recorded *)
}

val prov_local : string
(** ["local"] — the default provenance token. *)

val key_of :
  bench:string ->
  fingerprint:string ->
  spec:Ftb_inject.Models.spec ->
  fuel:int option ->
  config:Ftb_core.Adaptive.config ->
  seed:int ->
  string
(** Content key of a campaign identity (32 hex chars). *)

val entry_of_result :
  ?prov:string ->
  bench:string ->
  spec:Ftb_inject.Models.spec ->
  fuel:int option ->
  config:Ftb_core.Adaptive.config ->
  seed:int ->
  created:float ->
  Ftb_trace.Golden.t ->
  Ftb_core.Adaptive.result ->
  entry
(** Package a converged campaign for the store: copies the thresholds,
    support and golden values, and computes the model-aware §3.6
    uncertainty from the result's own samples. Raises [Invalid_argument]
    on a malformed bench or provenance token. *)

type t
(** An open store rooted at a directory. *)

val open_ : root:string -> t
(** Open (creating directories as needed). *)

val root : t -> string
val path_of_key : t -> string -> string

val put : t -> entry -> unit
(** Persist an entry (atomic, enveloped) and update the index. *)

val find : t -> key:string -> entry option
(** Exact-key lookup. A corrupt or mis-keyed entry is quarantined
    (store convention) and reported as a miss. *)

val find_latest : t -> bench:string -> ?spec:Ftb_inject.Models.spec -> unit -> entry option
(** Most recently created entry for a kernel (optionally restricted to
    one fault model), via the sorted index — O(log n) to locate the
    kernel's range. Rebuilds the index when it is missing, corrupt or
    points at an entry that no longer validates. *)

val list : t -> entry list
(** Every valid entry, sorted by kernel then newest first. *)

val gc : t -> keep:int -> int
(** Drop all but the [keep] most recently created entries; returns the
    number removed. Raises [Invalid_argument] on negative [keep]. *)

type stats = { entries : int; bytes : int; quarantined : int }

val stats : t -> stats

type prediction = {
  outcome : [ `Masked | `Sdc ];
  threshold : float;
  injected_error : float;
  site_support : int;
  entry_uncertainty : float;
}

val query : entry -> site:int -> bit:int -> prediction
(** Predict one (site, bit) case from the stored entry alone: the
    injected error is the model's corruption of the stored golden value,
    compared against the site's threshold. Zero kernel execution. Raises
    [Invalid_argument] when [site] or [bit] is outside the entry's case
    space ([bit] ranges over the model's width). *)
