(** Resumable, pluggably-executed driver of the adaptive round machine.

    Decomposes each §3.4 round into plan → execute → fold, where the
    execute step is an injected [exec] function: the serial default runs
    the drawn cases in-process, the daemon passes the fleet's round
    runner, and both produce the same bytes — outcomes are pure functions
    of (golden, model, case), and the RNG is consumed only by the planner.

    With a [checkpoint] path the driver is kill-safe at round
    granularity: it persists after every draw (the pending round) and
    after every fold, so a SIGKILL resumes at the same round with the
    same drawn cases and the campaign finishes bit-identical to an
    undisturbed run. A checkpoint from a different campaign identity
    (kernel, fingerprint, model, config, fuel or seed differ) is ignored;
    a corrupt one is quarantined; a finished one short-circuits the whole
    run. *)

exception Cancelled
(** Raised when [cancel] reports true at a round edge — after the current
    state (including any pending draw) is durably checkpointed, so the
    next run resumes exactly here. *)

type exec = round:int -> cases:int array -> Ftb_inject.Sample_run.t array
(** Execute one round: return [samples] aligned index-for-index with
    [cases] (the planner's draw order). Must be a pure function of
    (golden, model, case) — where the cases run must not matter. *)

type stats = {
  fresh_samples : int;  (** samples actually executed by this run *)
  resumed_samples : int;  (** samples inherited from the checkpoint *)
  resumed_rounds : int;  (** rounds inherited from the checkpoint *)
}

val run :
  ?config:Ftb_core.Adaptive.config ->
  ?spec:Ftb_inject.Models.spec ->
  ?fuel:int ->
  ?checkpoint:string ->
  ?exec:exec ->
  ?on_round:(round:int -> drawn:int -> masked:int -> sdc:int -> crash:int -> unit) ->
  ?cancel:(unit -> bool) ->
  name:string ->
  seed:int ->
  Ftb_trace.Golden.t ->
  Ftb_core.Adaptive.result * stats
(** Run (or resume) the adaptive campaign. The result is bit-identical to
    [Adaptive.run_model] with the same config, spec, fuel and seed,
    regardless of checkpoint interruptions or which [exec] ran the
    rounds. [name] is the kernel name recorded in checkpoints (space-free
    token). *)
