(** Per-round durable state of an adaptive campaign.

    The distributed planner checkpoints twice per round: right after
    drawing the round's cases (the [pending] line carries the draw, and
    [rng_state] is the generator *after* the draw) and right after folding
    the executed round ([pending] absent, [rounds] incremented, samples
    extended). A SIGKILL at any point therefore resumes at the same round
    with the same drawn cases — the draws are never re-made, which is what
    keeps a killed-and-restarted campaign bit-identical to an undisturbed
    one. A finished campaign writes a final checkpoint with [stop] set, so
    re-submitting a completed job replays the result without sampling.

    The envelope, atomic-write and quarantine conventions are
    {!Ftb_inject.Persist}'s; samples travel as hex of the bit-exact
    {!Ftb_inject.Sample_codec} blob. *)

type t = {
  name : string;  (** program name (space-free token) *)
  sites : int;
  spec : Ftb_inject.Models.spec;
  fuel : int option;
  fingerprint : string;  (** golden-trace fingerprint *)
  config : Ftb_core.Adaptive.config;
  seed : int;
  rng_state : int64;  (** campaign RNG after the last completed draw *)
  rounds : int;  (** rounds folded so far *)
  samples : Ftb_inject.Sample_run.t array;  (** accumulated, draw order *)
  pending : int array option;  (** drawn but not yet folded round *)
  stop : Ftb_core.Adaptive.stop_reason option;  (** set on the final checkpoint *)
}

val save : path:string -> t -> unit
(** Atomic enveloped write. Raises [Invalid_argument] when [name] is not a
    space-free token. *)

val load : path:string -> t
(** Raises {!Ftb_inject.Persist.Format_error} on corruption or any
    structural defect (callers quarantine and restart cold). *)
