module Adaptive = Ftb_core.Adaptive
module Models = Ftb_inject.Models
module Persist = Ftb_inject.Persist
module Sample_codec = Ftb_inject.Sample_codec
module Sample_run = Ftb_inject.Sample_run
module Fingerprint = Ftb_util.Fingerprint

type t = {
  name : string;
  sites : int;
  spec : Models.spec;
  fuel : int option;
  fingerprint : string;
  config : Adaptive.config;
  seed : int;
  rng_state : int64;
  rounds : int;
  samples : Sample_run.t array;
  pending : int array option;
  stop : Adaptive.stop_reason option;
}

let magic = "ftb-adaptive-v1"

let fail path fmt =
  Printf.ksprintf (fun msg -> raise (Persist.Format_error (path ^ ": " ^ msg))) fmt

(* Lowercase hex of raw bytes — the samples blob must survive a
   line-oriented text format. *)
let hex_of_string s =
  let out = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let b = Char.code c in
      let digit n = "0123456789abcdef".[n] in
      Bytes.set out (2 * i) (digit (b lsr 4));
      Bytes.set out ((2 * i) + 1) (digit (b land 0xF)))
    s;
  Bytes.unsafe_to_string out

let string_of_hex path hex =
  let n = String.length hex in
  if n land 1 <> 0 then fail path "odd-length hex payload";
  let nibble i =
    match hex.[i] with
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | c -> fail path "bad hex digit %C" c
  in
  String.init (n / 2) (fun i -> Char.chr ((nibble (2 * i) lsl 4) lor nibble ((2 * i) + 1)))

let check_name name =
  if
    name = ""
    || String.exists (function ' ' | '\n' | '\r' | '\t' -> true | _ -> false) name
  then invalid_arg "Round_checkpoint: program name must be a non-empty space-free token"

let fuel_token = function None -> "none" | Some n -> string_of_int n

let save ~path t =
  check_name t.name;
  Persist.save_enveloped ~path (fun buf ->
      Printf.bprintf buf "%s %s %d %s %s %s %h %h %d %d %d %d %Lx %d %s\n" magic t.name
        t.sites
        (Models.spec_to_string t.spec)
        (fuel_token t.fuel) t.fingerprint t.config.Adaptive.round_fraction
        t.config.Adaptive.stop_sdc_fraction t.config.Adaptive.max_rounds
        (if t.config.Adaptive.filter then 1 else 0)
        (if t.config.Adaptive.bias then 1 else 0)
        t.seed t.rng_state t.rounds
        (match t.stop with
        | None -> "-"
        | Some reason -> Adaptive.stop_reason_to_string reason);
      Printf.bprintf buf "samples %s\n" (hex_of_string (Sample_codec.encode t.samples));
      match t.pending with
      | None -> ()
      | Some cases ->
          Printf.bprintf buf "pending %d" (Array.length cases);
          Array.iter (fun case -> Printf.bprintf buf " %d" case) cases;
          Buffer.add_char buf '\n')

let int_field path what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail path "bad %s field %S" what s

let float_field path what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail path "bad %s field %S" what s

let bool_field path what s =
  match s with
  | "0" -> false
  | "1" -> true
  | _ -> fail path "bad %s flag %S" what s

let load ~path =
  let contents = Persist.load_enveloped ~path in
  let lines = String.split_on_char '\n' contents in
  let header, rest =
    match lines with
    | header :: rest -> (header, rest)
    | [] -> fail path "empty checkpoint"
  in
  let t =
    match String.split_on_char ' ' header with
    | [
        m; name; sites; model; fuel; fp; rf; stop_frac; max_rounds; filter; bias; seed;
        rng_state; rounds; stop;
      ]
      when m = magic ->
        let spec =
          match Models.spec_of_string model with
          | Ok spec -> spec
          | Error msg -> fail path "%s" msg
        in
        let fuel =
          if fuel = "none" then None
          else
            let n = int_field path "fuel" fuel in
            if n <= 0 then fail path "fuel must be positive" else Some n
        in
        let sites = int_field path "sites" sites in
        if sites <= 0 then fail path "sites must be positive";
        if not (Fingerprint.is_hex fp) then fail path "bad golden fingerprint %S" fp;
        let config =
          {
            Adaptive.round_fraction = float_field path "round_fraction" rf;
            stop_sdc_fraction = float_field path "stop_sdc_fraction" stop_frac;
            max_rounds = int_field path "max_rounds" max_rounds;
            filter = bool_field path "filter" filter;
            bias = bool_field path "bias" bias;
          }
        in
        (match Adaptive.check_config config with
        | () -> ()
        | exception Invalid_argument msg -> fail path "%s" msg);
        let rng_state =
          match Int64.of_string_opt ("0x" ^ rng_state) with
          | Some v -> v
          | None -> fail path "bad rng state %S" rng_state
        in
        let rounds = int_field path "rounds" rounds in
        if rounds < 0 then fail path "negative round count";
        let stop =
          if stop = "-" then None
          else
            match Adaptive.stop_reason_of_string stop with
            | Some reason -> Some reason
            | None -> fail path "bad stop reason %S" stop
        in
        {
          name;
          sites;
          spec;
          fuel;
          fingerprint = fp;
          config;
          seed = int_field path "seed" seed;
          rng_state;
          rounds;
          samples = [||];
          pending = None;
          stop;
        }
    | m :: _ when m <> magic -> fail path "unknown checkpoint magic %S" m
    | _ -> fail path "malformed checkpoint header"
  in
  let samples = ref None in
  let pending = ref None in
  List.iter
    (fun line ->
      if line <> "" then
        match String.split_on_char ' ' line with
        | [ "samples"; hex ] -> (
            if !samples <> None then fail path "duplicate samples line";
            match Sample_codec.decode (string_of_hex path hex) with
            | decoded -> samples := Some decoded
            | exception Sample_codec.Format_error msg -> fail path "samples: %s" msg)
        | "pending" :: count :: cases ->
            if !pending <> None then fail path "duplicate pending line";
            let count = int_field path "pending count" count in
            if count <> List.length cases then
              fail path "pending count %d does not match %d listed cases" count
                (List.length cases);
            if count = 0 then fail path "empty pending round";
            pending :=
              Some (Array.of_list (List.map (int_field path "pending case") cases))
        | _ -> fail path "unrecognized checkpoint line %S" line)
    rest;
  let samples =
    match !samples with Some s -> s | None -> fail path "missing samples line"
  in
  let total = Models.total_cases t.spec ~sites:t.sites in
  Array.iter
    (fun (s : Sample_run.t) ->
      let width = Models.spec_width t.spec in
      let fault = s.Sample_run.fault in
      let case = (fault.Ftb_trace.Fault.site * width) + fault.Ftb_trace.Fault.bit in
      if fault.Ftb_trace.Fault.site >= t.sites || fault.Ftb_trace.Fault.bit >= width then
        fail path "sample case %d outside the model's %d-case space" case total)
    samples;
  (match !pending with
  | Some cases ->
      Array.iter
        (fun case ->
          if case < 0 || case >= total then
            fail path "pending case %d outside the model's %d-case space" case total)
        cases
  | None -> ());
  if t.stop <> None && !pending <> None then
    fail path "finished checkpoint still has a pending round";
  { t with samples; pending = !pending }
