(** Bounded priority queue of pending jobs.

    Ordering: highest [spec.priority] first, FIFO (lowest id) within a
    priority. The bound is the daemon's backpressure valve: {!add} never
    blocks and never grows past [capacity] — a full queue is reported as a
    typed error that the wire layer turns into a [queue_full] response,
    so a flood of submissions degrades into fast rejections instead of
    unbounded daemon memory.

    Not thread-safe; the server serializes access under its own lock. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val capacity : t -> int
val length : t -> int
val is_empty : t -> bool

val add : t -> Job.info -> (unit, [ `Full of int ]) result
(** [Error (`Full capacity)] when the queue is at capacity. *)

val restore : t -> Job.info -> unit
(** Insert ignoring the capacity bound. Prefer {!restore_all}, which
    re-applies the bound; this remains for single-job re-queueing of a
    drained job, which was already counted against capacity. *)

val restore_all : t -> Job.info list -> Job.info list
(** Re-queue persisted jobs on daemon restart, in dispatch order, up to
    the capacity bound. Returns the overflow — the jobs that would have
    dispatched last — which the caller must fail rather than silently
    drop, so a crash cannot resurrect an unbounded queue. *)

val pop : t -> Job.info option
(** Remove and return the next job to run. *)

val remove : t -> int -> Job.info option
(** Remove a job by id (cancellation of a queued job); [None] when the id
    is not queued. *)

val to_list : t -> Job.info list
(** Queued jobs in dispatch order. *)
