let max_frame = 16 * 1024 * 1024

exception Closed
exception Protocol_error of string

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

(* Returns [false] when EOF hits before the first byte (clean close);
   raises on EOF mid-buffer. *)
let read_all fd buf off len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    match Unix.read fd buf (off + !got) (len - !got) with
    | 0 -> eof := true
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  if !got = len then true
  else if !got = 0 then false
  else raise (Protocol_error (Printf.sprintf "truncated frame (%d of %d bytes)" !got len))

let write fd json =
  let payload = Json.to_string json in
  let len = String.length payload in
  if len > max_frame then
    raise (Protocol_error (Printf.sprintf "frame too large (%d bytes)" len));
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

let read fd =
  let prefix = Bytes.create 4 in
  if not (read_all fd prefix 0 4) then raise Closed;
  let len = Int32.to_int (Bytes.get_int32_be prefix 0) in
  if len < 0 || len > max_frame then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" len));
  let payload = Bytes.create len in
  if not (read_all fd payload 0 len) && len > 0 then
    raise (Protocol_error "connection closed inside a frame");
  match Json.of_string (Bytes.to_string payload) with
  | json -> json
  | exception Json.Parse_error msg -> raise (Protocol_error ("bad JSON payload: " ^ msg))
