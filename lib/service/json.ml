type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail_at pos fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "offset %d: %s" pos msg))) fmt

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest decimal that parses back to the same float: try %.12g first
   (covers every "human" value exactly), fall back to %.17g which is
   always sufficient for a binary64. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write_into b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_nan f then Buffer.add_string b "\"nan\""
      else if f = infinity then Buffer.add_string b "\"inf\""
      else if f = neg_infinity then Buffer.add_string b "\"-inf\""
      else Buffer.add_string b (float_repr f)
  | String s -> escape_into b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write_into b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char b ',';
          escape_into b key;
          Buffer.add_char b ':';
          write_into b value)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write_into b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance p;
        true
    | _ -> false
  do
    ()
  done

let expect p c =
  match peek p with
  | Some got when got = c -> advance p
  | Some got -> fail_at p.pos "expected %C, found %C" c got
  | None -> fail_at p.pos "expected %C, found end of input" c

let literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = word then begin
    p.pos <- p.pos + n;
    value
  end
  else fail_at p.pos "bad literal (expected %s)" word

(* Encode one Unicode scalar value as UTF-8. *)
let add_code_point b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 p =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | c -> fail_at p.pos "bad hex digit %C in \\u escape" c
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek p with
    | Some c -> v := (!v * 16) + digit c
    | None -> fail_at p.pos "truncated \\u escape");
    advance p
  done;
  !v

let parse_string p =
  expect p '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail_at p.pos "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | None -> fail_at p.pos "truncated escape"
        | Some c ->
            advance p;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                let cp = hex4 p in
                (* Combine a high surrogate with an immediately following
                   \u-escaped low surrogate. *)
                let cp =
                  if cp >= 0xD800 && cp <= 0xDBFF
                     && p.pos + 1 < String.length p.src
                     && p.src.[p.pos] = '\\'
                     && p.src.[p.pos + 1] = 'u'
                  then begin
                    p.pos <- p.pos + 2;
                    let low = hex4 p in
                    if low >= 0xDC00 && low <= 0xDFFF then
                      0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00)
                    else fail_at p.pos "unpaired surrogate"
                  end
                  else cp
                in
                if cp >= 0xD800 && cp <= 0xDFFF then
                  fail_at p.pos "unpaired surrogate";
                add_code_point b cp
            | c -> fail_at p.pos "bad escape \\%C" c);
            loop ())
    | Some c ->
        advance p;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number p =
  let start = p.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek p with Some c when is_number_char c -> true | _ -> false do
    advance p
  done;
  let text = String.sub p.src start (p.pos - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail_at start "bad number %S" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* An integer too wide for [int] still parses, as a float. *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail_at start "bad number %S" text)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail_at p.pos "empty input"
  | Some 'n' -> literal p "null" Null
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some '"' -> String (parse_string p)
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        List []
      end
      else begin
        let items = ref [ parse_value p ] in
        skip_ws p;
        while peek p = Some ',' do
          advance p;
          items := parse_value p :: !items;
          skip_ws p
        done;
        expect p ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else begin
        let field () =
          skip_ws p;
          let key = parse_string p in
          skip_ws p;
          expect p ':';
          let value = parse_value p in
          (key, value)
        in
        let fields = ref [ field () ] in
        skip_ws p;
        while peek p = Some ',' do
          advance p;
          fields := field () :: !fields;
          skip_ws p
        done;
        expect p '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail_at p.pos "unexpected %C" c

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail_at p.pos "trailing bytes after JSON value";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | String "inf" -> Some infinity
  | String "-inf" -> Some neg_infinity
  | String "nan" -> Some Float.nan
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
