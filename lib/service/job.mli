(** Campaign jobs: what a client submits, how the daemon tracks it, and
    how both survive a daemon restart.

    A job is a named benchmark plus a campaign mode. State lives in two
    files under the daemon state directory, one directory per job:

    {v
    <state>/jobs/<id>/job.json     descriptor + lifecycle status (atomic)
    <state>/jobs/<id>/checkpoint   Ftb_campaign.Checkpoint file (exhaustive)
    v}

    Lifecycle state machine (see DESIGN.md "Service layer"):

    {v
    queued -> running -> completed
       |         |----> failed
       |         |----> cancelled
       |         |----> stuck       (watchdog: no progress before deadline)
       |         '----> queued      (daemon drain / restart: resumes)
       '-> cancelled                (cancelled while still queued)
    v}

    [Completed], [Failed], [Cancelled] and [Stuck] are terminal. A job
    found [Running] on daemon startup was interrupted by a crash; it
    reloads as [Queued] and resumes from its checkpoint. A [Stuck] job's
    checkpoint is preserved, so it can be resubmitted and resume from the
    last durable wave.

    [job.json] is written inside the {!Ftb_inject.Persist.save_enveloped}
    integrity envelope; corrupt descriptors are quarantined on load
    instead of trusted or deleted. *)

type mode =
  | Exhaustive  (** every (site, bit) case, checkpointed and resumable *)
  | Sample of { fraction : float; seed : int }
      (** a uniform sample of the case space; cheap, so interrupted sample
          jobs restart from scratch instead of checkpointing *)
  | Adaptive of { config : Ftb_core.Adaptive.config; seed : int }
      (** §3.4 progressive rounds ({!Ftb_core.Adaptive}), checkpointed per
          round ({!Ftb_plan.Adaptive_engine}) and resumable bit-identically.
          JSON mode ["adaptive"] with fields [round_fraction],
          [stop_sdc_fraction], [max_rounds], [filter], [bias] (each
          defaulting to {!Ftb_core.Adaptive.default_config}) and a
          mandatory [seed]; decoding validates ranges via
          {!Ftb_core.Adaptive.check_config} *)

type spec = {
  bench : string;  (** benchmark name, resolved by the server *)
  mode : mode;
  shard_size : int;  (** cases per shard (progress/cancel granularity) *)
  fuel : int option;  (** per-case divergence watchdog *)
  model : Ftb_inject.Models.spec;
      (** the campaign's fault model; persisted in the descriptor (JSON
          field ["model"], {!Ftb_inject.Models.spec_to_string} encoding —
          absent in pre-model descriptors and then [Bit_flip_64]) and
          validated against the job's checkpoint on resume *)
  priority : int;  (** higher runs first; FIFO within a priority *)
  trust_cache : bool;
      (** opt into serving this job from profiles with {e unaudited}
          fleet provenance (JSON field ["trust_cache"], absent in
          pre-provenance descriptors and then [false]); trusted
          ([local] / fleet-audited) profiles are always eligible *)
}

val default_spec : bench:string -> spec
(** [mode = Exhaustive], [shard_size = 4096], [fuel = Some 10_000_000],
    [model = Models.default_spec], [priority = 0],
    [trust_cache = false]. *)

type status = Queued | Running | Completed | Failed of string | Cancelled | Stuck

type counts = {
  cases_done : int;
  cases_total : int;  (** 0 until the golden run has sized the space *)
  masked : int;
  sdc : int;
  crash : int;
}

type cache = Cache_none | Cache_partial | Cache_full
(** How much of the job the daemon served from the compositional profile
    cache ({!Ftb_compose}): [Cache_full] — the whole boundary came from
    the store and no pool or fleet work was scheduled; [Cache_partial] —
    a reduced campaign ran (only missed sections' cases executed);
    [Cache_none] — a from-scratch run. Serialized as the
    ["served_from_cache"] JSON field (["full"|"partial"|"none"]; absent in
    pre-cache descriptors and then [Cache_none]). *)

type info = {
  id : int;
  spec : spec;
  status : status;
  counts : counts;
  submitted : float;  (** Unix timestamps *)
  started : float option;
  finished : float option;
  idem : string option;
      (** client-supplied idempotency key: a resubmission carrying the same
          key maps to this job instead of double-running the campaign *)
  cache : cache;
}

val zero_counts : counts
val cache_name : cache -> string
(** ["none"], ["partial"], ["full"]. *)

val cache_of_name : string -> cache option
val status_name : status -> string
(** ["queued"], ["running"], ["completed"], ["failed"], ["cancelled"],
    ["stuck"]. *)

val is_terminal : status -> bool

(** {1 JSON codecs} *)

exception Decode_error of string

val spec_to_json : spec -> Json.t
val spec_of_json : Json.t -> spec
(** Raises {!Decode_error} on missing/ill-typed fields or out-of-range
    values (non-positive [shard_size] or [fuel], [fraction] outside
    (0, 1]). *)

val info_to_json : info -> Json.t
val info_of_json : Json.t -> info

(** {1 State-directory layout} *)

val dir : state_dir:string -> int -> string
val checkpoint_path : state_dir:string -> int -> string

val save : state_dir:string -> info -> unit
(** Atomic, integrity-enveloped write of [job.json] (via
    {!Ftb_inject.Persist.save_enveloped}), creating the job directory as
    needed. *)

val load_all : state_dir:string -> info list
(** Every verifiable, parseable [job.json] under [<state>/jobs], sorted by
    id. Corrupt descriptors (failed envelope check or decode) are moved to
    [quarantine/] and skipped; foreign entries are skipped — a
    half-created or corrupted job directory must not brick the daemon.
    Pre-envelope descriptors still load. *)
