(** The campaign daemon: a single-host service that queues, schedules and
    streams fault-injection campaigns.

    One process owns a state directory and a warm {!Ftb_inject.Parallel.Pool}
    handle; clients talk to it over a Unix-domain socket (opt-in TCP) with
    the length-prefixed JSON frames of {!Wire}. Jobs are executed one at a
    time, in priority order, by a dedicated scheduler thread running
    {!Ftb_campaign.Engine} — so kernel compilation, pool spawn and golden
    traces are paid once per daemon, not once per analysis.

    {2 Protocol}

    Every request is one frame carrying an object with a ["cmd"] field:

    {v
    {"cmd":"submit","spec":{...}}   -> {"ok":true,"id":N}
    {"cmd":"submit","spec":{...},"idem":"key"}
                                    -> {"ok":true,"id":N[,"deduped":true]}
    {"cmd":"status","id":N}         -> {"ok":true,"job":{...}}
    {"cmd":"list"}                  -> {"ok":true,"jobs":[...]}
    {"cmd":"cancel","id":N}         -> {"ok":true,"job":{...}}
    {"cmd":"watch","id":N[,"after":S]}
                                    -> {"ok":true,"job":{...}} + event stream
    {"cmd":"boundary_query","bench":B,"site":I,"bit":J[,"model":M]}
                                    -> {"ok":true,"outcome":...,"threshold":...,
                                        "injected_error":...,"support":...,
                                        "uncertainty":...,"entry":{...}}
    {"cmd":"boundary_list"}         -> {"ok":true,"entries":[...]}
    {"cmd":"shutdown"}              -> {"ok":true}
    v}

    Failures are [{"ok":false,"error":{"code":...,"message":...}}] with
    codes [bad_request], [unknown_bench], [not_found], [queue_full]
    (backpressure: the bounded queue rejects, it never blocks),
    [not_cancellable], [no_store] (boundary verbs on a cache-less daemon)
    and [shutting_down].

    [boundary_query] predicts one (site, bit) case from the newest stored
    adaptive boundary of a kernel ({!Ftb_plan.Boundary_store.query}) —
    zero kernel execution, served from a connection thread even while a
    campaign runs.

    [submit] is idempotent when the client supplies an ["idem"] key: a
    retried submission whose first ACK was lost maps to the job it
    already created (["deduped":true]) instead of double-running a
    campaign. Keys persist in [job.json], so deduplication survives a
    daemon restart.

    After a successful [watch] the server pushes one immediate
    ["progress"] snapshot (so every watcher observes at least one event),
    then one ["progress"] frame per completed shard wave — adaptive jobs
    additionally stream one ["round"] frame per §3.4 round (fields
    ["round"], ["drawn"], ["masked"], ["sdc"], ["crash"],
    ["samples_total"], ["cases_total"]) so watchers follow convergence
    live (interleaved with ["worker_quarantined"] frames when a fleet
    audit convicts a worker mid-job — clients must skip event types they
    do not know),
    then a final ["done"] frame carrying the job descriptor, after which
    the connection reverts to request/response. Every event frame carries a
    per-job, strictly increasing ["seq"]; a reconnecting watcher passes
    the last seq it processed as ["after"] and the server suppresses
    frames it has already seen (including the snapshot, unless the
    daemon restarted and the job's seq history is gone).

    {2 Durability}

    Submitted jobs and their campaign checkpoints live under the state
    directory ({!Job}); a killed daemon restarted on the same directory
    re-queues every non-terminal job and resumes in-flight exhaustive
    campaigns from their last checkpoint — converging to outcome bytes
    bit-identical to an uninterrupted run. On SIGTERM (or a [shutdown]
    request) the daemon drains gracefully: it stops accepting work,
    suspends the running job at the next shard-wave boundary (checkpoint
    written, status back to [queued]), notifies watchers and exits. *)

type config = {
  state_dir : string;  (** job descriptors + checkpoints live here *)
  capacity : int;  (** queue bound (running job excluded) *)
  domains : int;  (** worker domains for campaign execution *)
  checkpoint_every : int;  (** shard waves between checkpoint writes *)
  stuck_after : float option;
      (** stuck-job watchdog deadline, seconds: a running job whose
          progress callbacks stop beating for this long is declared
          {!Job.Stuck} (checkpoint preserved, queue moves on). [None]
          disables the watchdog and runs jobs inline on the scheduler
          thread. *)
  resolve : string -> Ftb_trace.Program.t;
      (** benchmark lookup; [Invalid_argument] rejects the submission.
          The CLI passes {!Ftb_kernels.Suite.find}; tests inject tiny
          programs. *)
  resolve_ir : string -> Ftb_ir.Ir.t option;
      (** IR form of a benchmark, when it has one — the compositional
          cache only works on IR benchmarks (content keys hash the IR).
          [None] (or an exception) disables the cache for that name. *)
  cache : bool;
      (** enable the compositional profile cache under
          [<state_dir>/cache]: submit-time boundary probes serve
          byte-identical exhaustive resubmissions as [Completed] without
          queueing (descriptor field ["served_from_cache":"full"]), and
          section-profile hits seed a reduced campaign that executes only
          missed sections' cases (["partial"]). Every completed IR
          campaign is harvested back into the store. Default [true]. *)
  extension : (cmd:string -> Json.t -> Json.t option) option;
      (** strict request/response protocol extension, consulted for any
          ["cmd"] the core protocol does not know. Returning [Some reply]
          sends that frame; [None] falls through to the usual
          [bad_request] error. The handler must not retain the
          connection. {!Ftb_dist.Fleet.extension} plugs the worker
          protocol (register / lease / heartbeat / result / detach) in
          here. *)
  wave_runner :
    (job_id:int ->
    bench:string ->
    fuel:int option ->
    model:Ftb_inject.Models.spec ->
    golden:Ftb_trace.Golden.t ->
    Ftb_campaign.Engine.wave_runner option)
    option;
      (** pluggable shard execution for exhaustive jobs, queried once per
          job start with the job's fault model. [None] (or a factory
          returning [None] — e.g. no fleet workers attached) runs the
          engine's built-in local-pool path.
          {!Ftb_dist.Fleet.wave_runner} returns a runner that leases
          the job's shards to attached worker processes. *)
  round_runner :
    (job_id:int ->
    bench:string ->
    fuel:int option ->
    model:Ftb_inject.Models.spec ->
    golden:Ftb_trace.Golden.t ->
    Ftb_plan.Adaptive_engine.exec)
    option;
      (** pluggable round execution for adaptive jobs, queried once per
          job start: the returned {!Ftb_plan.Adaptive_engine.exec} runs
          each round's drawn case list. [None] runs rounds in-process on
          the scheduler thread (the engine's serial default).
          {!Ftb_dist.Fleet.round_runner} leases each round's draw to
          attached workers as sparse shards and falls back to the local
          oracle when none are live — either way the samples are
          bit-identical to the serial run. *)
  provenance : (job_id:int -> (string list * bool) option) option;
      (** who computed a just-finished job's bytes, queried once at
          harvest time: [Some (workers, audited)] stamps every profile
          harvested from the job with fleet provenance
          ({!Ftb_compose.Profile.prov_fleet} — [workers] the sorted
          worker names whose commits survived, [audited] whether every
          surviving remote shard passed audit); [None] (or no hook)
          means the local executor computed everything and profiles keep
          [local] provenance. The CLI wires
          {!Ftb_dist.Fleet.job_provenance} in here. *)
}

val default_config : state_dir:string -> config
(** [capacity = 64], [domains = 1], [checkpoint_every = 1],
    [stuck_after = None], [resolve = Ftb_kernels.Suite.find],
    [resolve_ir = Ftb_kernels.Suite.find_ir], [cache = true], no protocol
    extension, built-in shard execution, no provenance hook. *)

val cache_dir : state_dir:string -> string
(** Where the profile cache of a state directory lives
    ([<state_dir>/cache]) — the [ftb cache] CLI opens the store there
    directly. *)

val boundaries_dir : state_dir:string -> string
(** Where the adaptive boundary store of a state directory lives
    ([<state_dir>/boundaries]) — the [ftb boundary] CLI opens the store
    there directly for offline query / list / export / gc. *)

type t

val create : config -> t
(** Load the state directory (creating it as needed), re-queue every
    non-terminal job up to the queue capacity — overflow jobs become
    [Failed] with an eviction reason instead of resurrecting an unbounded
    queue — and spawn the domain pool when [domains > 1]. Corrupt job
    descriptors are quarantined and skipped ({!Job.load_all}). The
    scheduler is not yet running. *)

val start : t -> unit
(** Spawn the scheduler thread. Idempotent. *)

val serve_connection : t -> Unix.file_descr -> unit
(** Serve one client connection until it closes (or the protocol is
    violated), then close the descriptor. Used directly by tests over a
    socketpair; {!run} calls it from per-connection threads. Requires
    {!start}. *)

val store : t -> Ftb_compose.Store.t option
(** The daemon's open profile store, when [config.cache] enabled one —
    the CLI's quarantine hook purges poisoned profiles through this
    handle ({!Ftb_compose.Store.invalidate_worker}) without racing the
    daemon's own store writes (the store serializes internally). *)

val boundary_store : t -> Ftb_plan.Boundary_store.t option
(** The daemon's open adaptive boundary store, when [config.cache]
    enabled one. Completed adaptive jobs publish their converged boundary
    here; an adaptive submission whose exact campaign identity (kernel,
    golden fingerprint, model, fuel, config, seed) is already stored is
    served [Completed] with ["served_from_cache":"full"] and zero fresh
    samples. *)

val notify_quarantine : t -> worker:string -> disputes:int -> unit
(** Stream a ["worker_quarantined"] event (fields ["worker"] and
    ["disputes"], plus the usual ["id"]/["seq"]) to every watcher of the
    currently running job. No-op when no job is running. Safe from any
    thread; the CLI calls it from the fleet's on-quarantine hook. *)

val request_shutdown : t -> unit
(** Begin a graceful drain: reject new submissions, suspend the running
    job at its next wave boundary (checkpointed, re-queued), wake the
    scheduler so it exits. Idempotent, safe from any thread. *)

val join : t -> unit
(** Wait for the scheduler thread to exit (it exits only after
    {!request_shutdown}). *)

val run : ?tcp:string * int -> socket:string -> t -> unit
(** Bind the Unix-domain socket (and optionally a TCP endpoint), install
    the SIGTERM drain handler, {!start} the scheduler and accept
    connections until a shutdown request or SIGTERM completes the drain.
    Returns after the scheduler has exited and the socket file has been
    removed. *)
