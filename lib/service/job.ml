type mode =
  | Exhaustive
  | Sample of { fraction : float; seed : int }
  | Adaptive of { config : Ftb_core.Adaptive.config; seed : int }

type spec = {
  bench : string;
  mode : mode;
  shard_size : int;
  fuel : int option;
  model : Ftb_inject.Models.spec;
  priority : int;
  trust_cache : bool;
}

let default_spec ~bench =
  {
    bench;
    mode = Exhaustive;
    shard_size = 4096;
    fuel = Some 10_000_000;
    model = Ftb_inject.Models.default_spec;
    priority = 0;
    trust_cache = false;
  }

type status = Queued | Running | Completed | Failed of string | Cancelled | Stuck

type counts = {
  cases_done : int;
  cases_total : int;
  masked : int;
  sdc : int;
  crash : int;
}

(* How much of a job the daemon served from the compositional profile
   cache: [Cache_full] never touched the pool or fleet (the whole
   boundary came from the store), [Cache_partial] ran a reduced campaign
   (only missed sections' cases executed). Clients read this to tell a
   millisecond hit from a real run. *)
type cache = Cache_none | Cache_partial | Cache_full

type info = {
  id : int;
  spec : spec;
  status : status;
  counts : counts;
  submitted : float;
  started : float option;
  finished : float option;
  idem : string option;
  cache : cache;
}

let zero_counts = { cases_done = 0; cases_total = 0; masked = 0; sdc = 0; crash = 0 }

let status_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Completed -> "completed"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"
  | Stuck -> "stuck"

let is_terminal = function
  | Completed | Failed _ | Cancelled | Stuck -> true
  | Queued | Running -> false

let cache_name = function
  | Cache_none -> "none"
  | Cache_partial -> "partial"
  | Cache_full -> "full"

let cache_of_name = function
  | "none" -> Some Cache_none
  | "partial" -> Some Cache_partial
  | "full" -> Some Cache_full
  | _ -> None

(* ------------------------------------------------------------------ *)
(* JSON codecs                                                         *)

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Decode_error msg)) fmt

let get what decode json field =
  match Option.bind (Json.member field json) decode with
  | Some v -> v
  | None -> fail "missing or bad %s field %S" what field

let get_int = get "integer" Json.to_int
let get_str = get "string" Json.to_str
let get_float = get "number" Json.to_float

let opt_field decode json field =
  match Json.member field json with
  | None | Some Json.Null -> None
  | Some v -> (
      match decode v with
      | Some v -> Some v
      | None -> fail "bad optional field %S" field)

let spec_to_json s =
  let mode_fields =
    match s.mode with
    | Exhaustive -> [ ("mode", Json.String "exhaustive") ]
    | Sample { fraction; seed } ->
        [
          ("mode", Json.String "sample");
          ("fraction", Json.Float fraction);
          ("seed", Json.Int seed);
        ]
    | Adaptive { config; seed } ->
        [
          ("mode", Json.String "adaptive");
          ("round_fraction", Json.Float config.Ftb_core.Adaptive.round_fraction);
          ("stop_sdc_fraction", Json.Float config.Ftb_core.Adaptive.stop_sdc_fraction);
          ("max_rounds", Json.Int config.Ftb_core.Adaptive.max_rounds);
          ("filter", Json.Bool config.Ftb_core.Adaptive.filter);
          ("bias", Json.Bool config.Ftb_core.Adaptive.bias);
          ("seed", Json.Int seed);
        ]
  in
  Json.Obj
    ([ ("bench", Json.String s.bench) ]
    @ mode_fields
    @ [
        ("shard_size", Json.Int s.shard_size);
        ( "fuel",
          match s.fuel with Some n -> Json.Int n | None -> Json.Null );
        ("model", Json.String (Ftb_inject.Models.spec_to_string s.model));
        ("priority", Json.Int s.priority);
        ("trust_cache", Json.Bool s.trust_cache);
      ])

let spec_of_json json =
  let bench = get_str json "bench" in
  let mode =
    match get_str json "mode" with
    | "exhaustive" -> Exhaustive
    | "sample" ->
        let fraction = get_float json "fraction" in
        if not (fraction > 0. && fraction <= 1.) then
          fail "fraction %g outside (0, 1]" fraction;
        Sample { fraction; seed = get_int json "seed" }
    | "adaptive" ->
        let opt decode field default =
          Option.value ~default (opt_field decode json field)
        in
        let d = Ftb_core.Adaptive.default_config in
        let config =
          {
            Ftb_core.Adaptive.round_fraction =
              opt Json.to_float "round_fraction" d.Ftb_core.Adaptive.round_fraction;
            stop_sdc_fraction =
              opt Json.to_float "stop_sdc_fraction" d.Ftb_core.Adaptive.stop_sdc_fraction;
            max_rounds = opt Json.to_int "max_rounds" d.Ftb_core.Adaptive.max_rounds;
            filter = opt Json.to_bool "filter" d.Ftb_core.Adaptive.filter;
            bias = opt Json.to_bool "bias" d.Ftb_core.Adaptive.bias;
          }
        in
        (* Shared-range validation: the daemon rejects what the library
           entry points reject, with the same usage-error text. *)
        (try Ftb_core.Adaptive.check_config config
         with Invalid_argument msg -> fail "%s" msg);
        Adaptive { config; seed = get_int json "seed" }
    | m -> fail "unknown mode %S" m
  in
  let shard_size = get_int json "shard_size" in
  if shard_size <= 0 then fail "shard_size must be positive";
  let fuel = opt_field Json.to_int json "fuel" in
  (match fuel with
  | Some n when n <= 0 -> fail "fuel must be positive"
  | _ -> ());
  let model =
    (* Descriptors written before pluggable models carry no model field:
       every such job ran the paper's Bit_flip_64. *)
    match opt_field Json.to_str json "model" with
    | None -> Ftb_inject.Models.default_spec
    | Some s -> (
        match Ftb_inject.Models.spec_of_string s with
        | Ok model -> model
        | Error msg -> fail "%s" msg)
  in
  let trust_cache =
    (* Specs from pre-provenance clients carry no field: they did not opt
       into trusting unaudited fleet-harvested profiles. *)
    Option.value ~default:false (opt_field Json.to_bool json "trust_cache")
  in
  { bench; mode; shard_size; fuel; model; priority = get_int json "priority"; trust_cache }

let counts_to_json c =
  Json.Obj
    [
      ("cases_done", Json.Int c.cases_done);
      ("cases_total", Json.Int c.cases_total);
      ("masked", Json.Int c.masked);
      ("sdc", Json.Int c.sdc);
      ("crash", Json.Int c.crash);
    ]

let counts_of_json json =
  {
    cases_done = get_int json "cases_done";
    cases_total = get_int json "cases_total";
    masked = get_int json "masked";
    sdc = get_int json "sdc";
    crash = get_int json "crash";
  }

let info_to_json i =
  Json.Obj
    [
      ("id", Json.Int i.id);
      ("spec", spec_to_json i.spec);
      ("status", Json.String (status_name i.status));
      ( "error",
        match i.status with Failed msg -> Json.String msg | _ -> Json.Null );
      ("counts", counts_to_json i.counts);
      ("submitted", Json.Float i.submitted);
      ( "started",
        match i.started with Some t -> Json.Float t | None -> Json.Null );
      ( "finished",
        match i.finished with Some t -> Json.Float t | None -> Json.Null );
      ( "idem",
        match i.idem with Some k -> Json.String k | None -> Json.Null );
      ("served_from_cache", Json.String (cache_name i.cache));
    ]

let info_of_json json =
  let status =
    match get_str json "status" with
    | "queued" -> Queued
    | "running" -> Running
    | "completed" -> Completed
    | "cancelled" -> Cancelled
    | "stuck" -> Stuck
    | "failed" ->
        Failed
          (match Option.bind (Json.member "error" json) Json.to_str with
          | Some msg -> msg
          | None -> "unknown failure")
    | s -> fail "unknown status %S" s
  in
  let spec =
    match Json.member "spec" json with
    | Some spec -> spec_of_json spec
    | None -> fail "missing spec"
  in
  let counts =
    match Json.member "counts" json with
    | Some counts -> counts_of_json counts
    | None -> fail "missing counts"
  in
  {
    id = get_int json "id";
    spec;
    status;
    counts;
    submitted = get_float json "submitted";
    started = opt_field Json.to_float json "started";
    finished = opt_field Json.to_float json "finished";
    idem = opt_field Json.to_str json "idem";
    cache =
      (* Descriptors written before the profile cache carry no field:
         every such job ran from scratch. *)
      (match opt_field Json.to_str json "served_from_cache" with
      | None -> Cache_none
      | Some s -> (
          match cache_of_name s with
          | Some c -> c
          | None -> fail "unknown served_from_cache value %S" s));
  }

(* ------------------------------------------------------------------ *)
(* State directory                                                     *)

let jobs_root ~state_dir = Filename.concat state_dir "jobs"
let dir ~state_dir id = Filename.concat (jobs_root ~state_dir) (string_of_int id)
let json_path ~state_dir id = Filename.concat (dir ~state_dir id) "job.json"
let checkpoint_path ~state_dir id = Filename.concat (dir ~state_dir id) "checkpoint"

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~state_dir info =
  mkdir_p (dir ~state_dir info.id);
  Ftb_inject.Persist.save_enveloped ~path:(json_path ~state_dir info.id) (fun b ->
      Buffer.add_string b (Json.to_string (info_to_json info));
      Buffer.add_char b '\n')

let load_all ~state_dir =
  let root = jobs_root ~state_dir in
  let entries = try Sys.readdir root with Sys_error _ -> [||] in
  Array.to_list entries
  |> List.filter_map (fun entry ->
         match int_of_string_opt entry with
         | None -> None
         | Some id -> (
             let path = json_path ~state_dir id in
             (* A descriptor that fails envelope verification or no longer
                decodes is quarantined as evidence and skipped — a corrupt
                job must not brick the daemon, and must never resume from
                lying state. Legacy (pre-envelope) files load unverified. *)
             match Ftb_inject.Persist.load_enveloped ~path with
             | exception
                 (Ftb_inject.Persist.Format_error _ | Sys_error _) ->
                 ignore (Ftb_inject.Persist.quarantine ~path : string option);
                 None
             | contents -> (
                 match info_of_json (Json.of_string contents) with
                 | info -> Some info
                 | exception (Decode_error _ | Json.Parse_error _) ->
                     ignore
                       (Ftb_inject.Persist.quarantine ~path : string option);
                     None)))
  |> List.sort (fun a b -> compare a.id b.id)
