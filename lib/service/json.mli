(** Minimal JSON values for the service wire protocol and job files.

    The repository deliberately carries no third-party JSON dependency;
    this module implements exactly the subset the campaign service needs:
    a value type, a serializer whose floats round-trip bit-exactly, and a
    strict recursive-descent parser with positioned errors. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string}; the message carries the byte offset. *)

val to_string : t -> string
(** Compact (single-line) serialization. Floats are printed with the
    shortest decimal form that round-trips through [float_of_string];
    non-finite floats serialize as the strings ["inf"], ["-inf"], ["nan"]
    (JSON has no literal for them). *)

val of_string : string -> t
(** Strict parse of one JSON value (surrounding whitespace allowed;
    trailing bytes rejected). Numbers without [.], [e] or [E] parse as
    [Int], everything else as [Float]. *)

(** {1 Accessors}

    Total accessors returning [option]; decoding code patterns on them and
    turns [None] into a protocol error at its own altitude. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for missing fields or non-objects.
    A stored [Null] is returned as [Some Null]. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int] values (JSON does not distinguish). *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
