module Golden = Ftb_trace.Golden
module Engine = Ftb_campaign.Engine
module Checkpoint = Ftb_campaign.Checkpoint
module Models = Ftb_inject.Models
module Pool = Ftb_inject.Parallel.Pool
module Compose = Ftb_compose.Compose
module Store = Ftb_compose.Store
module Adaptive = Ftb_core.Adaptive
module Adaptive_engine = Ftb_plan.Adaptive_engine
module Bstore = Ftb_plan.Boundary_store

type config = {
  state_dir : string;
  capacity : int;
  domains : int;
  checkpoint_every : int;
  stuck_after : float option;
  resolve : string -> Ftb_trace.Program.t;
  resolve_ir : string -> Ftb_ir.Ir.t option;
  cache : bool;
  extension : (cmd:string -> Json.t -> Json.t option) option;
  wave_runner :
    (job_id:int ->
    bench:string ->
    fuel:int option ->
    model:Models.spec ->
    golden:Golden.t ->
    Engine.wave_runner option)
    option;
  round_runner :
    (job_id:int ->
    bench:string ->
    fuel:int option ->
    model:Models.spec ->
    golden:Golden.t ->
    Adaptive_engine.exec)
    option;
  provenance : (job_id:int -> (string list * bool) option) option;
}

let default_config ~state_dir =
  {
    state_dir;
    capacity = 64;
    domains = 1;
    checkpoint_every = 1;
    stuck_after = None;
    resolve = Ftb_kernels.Suite.find;
    resolve_ir = Ftb_kernels.Suite.find_ir;
    cache = true;
    extension = None;
    wave_runner = None;
    round_runner = None;
    provenance = None;
  }

let cache_dir ~state_dir = Filename.concat state_dir "cache"
let boundaries_dir ~state_dir = Filename.concat state_dir "boundaries"

(* Why a running job was asked to stop: a user [cancel] is terminal, a
   [Drain] (shutdown/SIGTERM) suspends the job back to the queue so a
   restarted daemon resumes it from its checkpoint. *)
type cancel_reason = User | Drain

type running = { job_id : int; cancel : cancel_reason option Atomic.t }

(* One [watch] subscription. Write discipline: before registration only
   the subscribing connection thread writes to [fd]; after registration
   only the thread that finishes the subscription does (the scheduler for
   the running job, the cancelling connection for a queued job, the
   drain path at exit) — so no two threads ever interleave frames on one
   descriptor. [sub_after] is the last event sequence number the client
   already saw (reconnect resume); frames at or below it are skipped. *)
type sub = {
  sub_job : int;
  sub_fd : Unix.file_descr;
  sub_after : int;
  mutable sub_live : bool;
}

type t = {
  config : config;
  mutex : Mutex.t;
  wake : Condition.t;  (* scheduler wake-up: submit / cancel / shutdown *)
  sub_done : Condition.t;  (* broadcast whenever a subscription finishes *)
  queue : Job_queue.t;
  jobs : (int, Job.info) Hashtbl.t;  (* every job ever seen, by id *)
  mutable next_id : int;
  mutable running : running option;
  mutable stopping : bool;
  mutable scheduler : Thread.t option;
  mutable scheduler_done : bool;
  mutable subs : sub list;
  sigterm : bool Atomic.t;
  pool : Pool.t option;  (* one warm handle shared by every campaign *)
  store : Store.t option;  (* compositional profile cache, under <state>/cache *)
  bstore : Bstore.t option;  (* adaptive boundary store, under <state>/boundaries *)
  seqs : (int, int) Hashtbl.t;  (* job id -> last event sequence number *)
  idems : (string, int) Hashtbl.t;  (* idempotency key -> job id *)
}

let now () = Unix.gettimeofday ()

(* Event sequence numbers are per job and strictly increasing, and they
   survive daemon restarts without being persisted: each new seq is at
   least the current time in microseconds, so a fresh daemon can never
   reissue a number an old watcher already saw. Clients resume a watch
   with the last seq they processed and dedupe on it. *)
let next_seq t id =
  let last = match Hashtbl.find_opt t.seqs id with Some s -> s | None -> 0 in
  let s = max (last + 1) (int_of_float (now () *. 1e6)) in
  Hashtbl.replace t.seqs id s;
  s

let current_seq t id =
  match Hashtbl.find_opt t.seqs id with Some s -> s | None -> 0

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Job.save is called under the lock everywhere, so on-disk job.json
   updates are serialized and the last write always reflects the newest
   in-memory state. *)
let set_job t job =
  Hashtbl.replace t.jobs job.Job.id job;
  Job.save ~state_dir:t.config.state_dir job

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create config =
  if config.capacity <= 0 then invalid_arg "Server.create: capacity must be positive";
  if config.domains <= 0 then invalid_arg "Server.create: domains must be positive";
  if config.checkpoint_every <= 0 then
    invalid_arg "Server.create: checkpoint_every must be positive";
  mkdir_p config.state_dir;
  let loaded = Job.load_all ~state_dir:config.state_dir in
  let queue = Job_queue.create ~capacity:config.capacity in
  let jobs = Hashtbl.create 64 in
  let idems = Hashtbl.create 16 in
  let next_id = ref 1 in
  let requeue = ref [] in
  List.iter
    (fun (job : Job.info) ->
      next_id := max !next_id (job.Job.id + 1);
      let job =
        (* A job found Running was interrupted by a daemon crash; its
           checkpoint (if any) is intact, so it simply re-queues. *)
        match job.Job.status with
        | Job.Running | Job.Queued -> { job with Job.status = Job.Queued }
        | _ -> job
      in
      Hashtbl.replace jobs job.Job.id job;
      (* Idempotency keys of every persisted job keep deduplicating after
         a restart — a client retrying a submission across the crash maps
         to the job it already created. *)
      (match job.Job.idem with
      | Some key -> Hashtbl.replace idems key job.Job.id
      | None -> ());
      if job.Job.status = Job.Queued then requeue := job :: !requeue)
    loaded;
  (* Restart re-queueing respects the capacity bound; overflow jobs fail
     with a typed reason instead of resurrecting an unbounded queue. *)
  let overflow = Job_queue.restore_all queue (List.rev !requeue) in
  List.iter
    (fun (job : Job.info) ->
      Hashtbl.replace jobs job.Job.id
        {
          job with
          Job.status = Job.Failed "evicted: queue over capacity after restart";
          finished = Some (now ());
        })
    overflow;
  let t =
    {
      config;
      mutex = Mutex.create ();
      wake = Condition.create ();
      sub_done = Condition.create ();
      queue;
      jobs;
      next_id = !next_id;
      running = None;
      stopping = false;
      scheduler = None;
      scheduler_done = false;
      subs = [];
      sigterm = Atomic.make false;
      pool = (if config.domains > 1 then Some (Pool.global ~domains:config.domains ()) else None);
      store =
        (if config.cache then
           Some (Store.open_ ~root:(cache_dir ~state_dir:config.state_dir))
         else None);
      bstore =
        (if config.cache then
           Some (Bstore.open_ ~root:(boundaries_dir ~state_dir:config.state_dir))
         else None);
      seqs = Hashtbl.create 64;
      idems;
    }
  in
  (* Persist the Running -> Queued demotions (and any restart evictions)
     so a crash during startup re-observes the same state. *)
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ (job : Job.info) ->
          match job.Job.status with
          | Job.Queued | Job.Failed _ -> Job.save ~state_dir:config.state_dir job
          | _ -> ())
        t.jobs);
  t

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

let progress_event ~id ~seq ~(p : Engine.progress) ~rate =
  Json.Obj
    [
      ("event", Json.String "progress");
      ("id", Json.Int id);
      ("seq", Json.Int seq);
      ("cases_done", Json.Int p.Engine.cases_done);
      ("cases_total", Json.Int p.Engine.cases_total);
      ("shards_done", Json.Int p.Engine.shards_done);
      ("shards_total", Json.Int p.Engine.shards_total);
      ("masked", Json.Int p.Engine.masked);
      ("sdc", Json.Int p.Engine.sdc);
      ("crash", Json.Int p.Engine.crash);
      ("cases_per_sec", Json.Float rate);
    ]

let snapshot_event ~seq (job : Job.info) =
  let c = job.Job.counts in
  progress_event ~id:job.Job.id ~seq
    ~p:
      {
        Engine.cases_done = c.Job.cases_done;
        cases_total = c.Job.cases_total;
        shards_done = 0;
        shards_total = 0;
        masked = c.Job.masked;
        sdc = c.Job.sdc;
        crash = c.Job.crash;
      }
    ~rate:0.

let done_event ~seq (job : Job.info) =
  Json.Obj
    [
      ("event", Json.String "done");
      ("seq", Json.Int seq);
      ("job", Job.info_to_json job);
    ]

(* One adaptive round as its watchers see it: the round's own draw and
   outcome tallies plus the campaign-cumulative sample count, so a
   watcher can follow §3.4 convergence live without reconstructing it
   from progress deltas. *)
let round_event ~id ~seq ~round ~drawn ~masked ~sdc ~crash ~samples ~total =
  Json.Obj
    [
      ("event", Json.String "round");
      ("id", Json.Int id);
      ("seq", Json.Int seq);
      ("round", Json.Int round);
      ("drawn", Json.Int drawn);
      ("masked", Json.Int masked);
      ("sdc", Json.Int sdc);
      ("crash", Json.Int crash);
      ("samples_total", Json.Int samples);
      ("cases_total", Json.Int total);
    ]

let quarantine_event ~id ~seq ~worker ~disputes =
  Json.Obj
    [
      ("event", Json.String "worker_quarantined");
      ("id", Json.Int id);
      ("seq", Json.Int seq);
      ("worker", Json.String worker);
      ("disputes", Json.Int disputes);
    ]

let safe_write fd json = try Wire.write fd json with _ -> ()

(* Detach every subscription of [id] (under the lock) and hand the frames
   to the caller's thread: once detached, no other thread writes to those
   descriptors. *)
let finish_subs t id event =
  let mine =
    with_lock t (fun () ->
        let mine, rest = List.partition (fun s -> s.sub_job = id && s.sub_live) t.subs in
        t.subs <- rest;
        List.iter (fun s -> s.sub_live <- false) mine;
        Condition.broadcast t.sub_done;
        mine)
  in
  List.iter (fun s -> safe_write s.sub_fd event) mine

let stream_to_subs t id ~seq event =
  let targets =
    with_lock t (fun () ->
        List.filter_map
          (fun s ->
            if s.sub_job = id && s.sub_live && seq > s.sub_after then Some s
            else None)
          t.subs)
  in
  List.iter
    (fun s ->
      try Wire.write s.sub_fd event
      with _ ->
        (* Watcher gone: drop the subscription so its connection thread
           unblocks and the scheduler stops writing to a dead pipe. *)
        with_lock t (fun () ->
            s.sub_live <- false;
            t.subs <- List.filter (fun s' -> s' != s) t.subs;
            Condition.broadcast t.sub_done))
    targets

(* Surface a fleet quarantine to whoever is watching the currently
   running job. Called from the fleet's on_quarantine hook (the
   scheduler thread, outside the fleet mutex, so the lock order here is
   server-only); a daemon with no running job drops the event — the
   quarantine itself lives in the fleet and is visible via
   [ftb workers]. *)
let notify_quarantine t ~worker ~disputes =
  match
    with_lock t (fun () ->
        match t.running with
        | Some { job_id; _ } -> Some (job_id, next_seq t job_id)
        | None -> None)
  with
  | None -> ()
  | Some (id, seq) ->
      stream_to_subs t id ~seq (quarantine_event ~id ~seq ~worker ~disputes)

let store t = t.store
let boundary_store t = t.bstore

(* ------------------------------------------------------------------ *)
(* Job execution (scheduler thread only)                               *)

let counts_of_progress (p : Engine.progress) =
  {
    Job.cases_done = p.Engine.cases_done;
    cases_total = p.Engine.cases_total;
    masked = p.Engine.masked;
    sdc = p.Engine.sdc;
    crash = p.Engine.crash;
  }

(* One progress wave: beat the watchdog heartbeat, refresh the in-memory
   counts (never those of a job the watchdog already declared stuck —
   an abandoned runner must not mutate a terminal job), allocate the
   event's sequence number, and stream it. *)
let publish_progress t id ~heartbeat ~(p : Engine.progress) ~rate =
  Atomic.set heartbeat (now ());
  let seq =
    with_lock t (fun () ->
        (match Hashtbl.find_opt t.jobs id with
        | Some job when not (Job.is_terminal job.Job.status) ->
            Hashtbl.replace t.jobs id { job with Job.counts = counts_of_progress p }
        | Some _ | None -> ());
        next_seq t id)
  in
  stream_to_subs t id ~seq (progress_event ~id ~seq ~p ~rate)

let run_exhaustive t (job : Job.info) cancel ~heartbeat =
  let spec = job.Job.spec in
  let golden = Golden.run (t.config.resolve spec.Job.bench) in
  let checkpoint = Job.checkpoint_path ~state_dir:t.config.state_dir job.Job.id in
  (* Compositional cache: when the benchmark has an IR form, look every
     section up in the profile store and seed the job's checkpoint with
     the cached bytes — the engine then schedules only the missed
     sections' shards (a fully-seeded checkpoint schedules zero waves and
     touches neither the pool nor the worker fleet). Seeding only applies
     to a job with no checkpoint yet: a resumed job keeps its own
     progress, which already subsumes anything the cache knows. *)
  let cached =
    match t.store with
    | None -> None
    | Some store -> (
        match t.config.resolve_ir spec.Job.bench with
        | exception _ -> None
        | None -> None
        | Some ir -> Some (store, ir))
  in
  let planned =
    Option.bind cached (fun (store, ir) ->
        Compose.probe ~trust_unaudited:spec.Job.trust_cache store ~ir ~golden
          ~model:spec.Job.model ~fuel:spec.Job.fuel)
  in
  let cache_level =
    match planned with
    | Some p when Compose.any_hit p && not (Sys.file_exists checkpoint) ->
        Checkpoint.save ~path:checkpoint
          (Compose.seed_checkpoint p golden ~shard_size:spec.Job.shard_size);
        if Compose.full_hit p then Job.Cache_full else Job.Cache_partial
    | _ -> Job.Cache_none
  in
  let job = { job with Job.cache = cache_level } in
  if cache_level <> Job.Cache_none then with_lock t (fun () -> set_job t job);
  let last = ref (now (), None) in
  let latest = ref job.Job.counts in
  let progress (p : Engine.progress) =
    let t_now = now () in
    let t_prev, prev_cases = !last in
    let rate =
      match prev_cases with
      | Some prev when t_now > t_prev ->
          float_of_int (p.Engine.cases_done - prev) /. (t_now -. t_prev)
      | _ -> 0.
    in
    last := (t_now, Some p.Engine.cases_done);
    latest := counts_of_progress p;
    publish_progress t job.Job.id ~heartbeat ~p ~rate
  in
  let config =
    {
      Engine.default_config with
      Engine.shard_size = spec.Job.shard_size;
      checkpoint_every = t.config.checkpoint_every;
      domains = t.config.domains;
      fuel = spec.Job.fuel;
      model = spec.Job.model;
      resume = true;
      on_invalid_checkpoint = Engine.Restart;
      progress = Some progress;
      cancel = Some (fun () -> Atomic.get cancel <> None);
      pool = t.pool;
      runner =
        (match t.config.wave_runner with
        | Some make ->
            make ~job_id:job.Job.id ~bench:spec.Job.bench ~fuel:spec.Job.fuel
              ~model:spec.Job.model ~golden
        | None -> None);
    }
  in
  match Engine.run ~config ~checkpoint golden with
  | report ->
      let gt = report.Engine.ground_truth in
      (* Harvest the completed campaign: store each missed section's
         profile and refresh the whole-boundary artifact, so the next
         identical submission is a millisecond full hit at submit time.
         Harvesting is best-effort — a full store or I/O error costs
         future cache hits, never this job's result. *)
      (match cached with
      | Some (store, ir) -> (
          try
            let outcomes = gt.Ftb_inject.Ground_truth.outcomes in
            (* Provenance: did a fleet compute (part of) these bytes, and
               did every surviving remote shard pass audit? Profiles born
               of unaudited fleet bytes are refused at probe time unless
               the submitter passes --trust-cache. *)
            let prov =
              match t.config.provenance with
              | None -> Ftb_compose.Profile.prov_local
              | Some f -> (
                  match f ~job_id:job.Job.id with
                  | None -> Ftb_compose.Profile.prov_local
                  | Some (workers, audited) -> (
                      try Ftb_compose.Profile.prov_fleet ~audited ~workers
                      with Invalid_argument _ ->
                        (* An unsanitized name here is a wiring bug; fall
                           back to the untrusted shape rather than refuse
                           the harvest. *)
                        Ftb_compose.Profile.prov_fleet ~audited:false ~workers:[]))
            in
            (match planned with
            | Some p -> Compose.harvest ~prov store p ~outcomes
            | None -> ());
            Compose.put_boundary ~prov store ~ir ~model:spec.Job.model
              ~fuel:spec.Job.fuel
              ~golden_fp:(Checkpoint.fingerprint_of_golden golden)
              ~sites:(Golden.sites golden) ~outcomes
          with _ -> ())
      | None -> ());
      let masked = ref 0 and sdc = ref 0 and crash = ref 0 in
      Ftb_inject.Ground_truth.counts gt ~masked ~sdc ~crash;
      let total = Models.total_cases spec.Job.model ~sites:(Golden.sites golden) in
      let counts =
        {
          Job.cases_done = total;
          cases_total = total;
          masked = !masked;
          sdc = !sdc;
          crash = !crash;
        }
      in
      { job with Job.status = Job.Completed; counts; finished = Some (now ()) }
  | exception Engine.Cancelled -> (
      match Atomic.get cancel with
      | Some Drain ->
          (* Suspended by the drain: the checkpoint is on disk, so the job
             goes back to the queue and resumes on the next daemon start. *)
          { job with Job.status = Job.Queued; counts = !latest }
      | Some User | None ->
          { job with Job.status = Job.Cancelled; counts = !latest; finished = Some (now ()) })

exception Stop_sampling of cancel_reason

let run_sample t (job : Job.info) cancel ~heartbeat ~fraction ~seed =
  let spec = job.Job.spec in
  let golden = Golden.run (t.config.resolve spec.Job.bench) in
  let rng = Ftb_util.Rng.create ~seed in
  (* The default model keeps the historical propagation-based sampler
     (byte-identical draws and classifications); other models draw the
     same way from their own dense case space and classify each case
     through the model-aware contained runner. *)
  let default_model = Models.spec_equal spec.Job.model Models.default_spec in
  let cases =
    if default_model then Ftb_inject.Sample_run.draw_uniform rng golden ~fraction
    else begin
      let n = Models.total_cases spec.Job.model ~sites:(Golden.sites golden) in
      let k = max 1 (int_of_float (Float.ceil (fraction *. float_of_int n))) in
      Ftb_util.Sampling.uniform rng ~n ~k:(min k n)
    end
  in
  let count_chunk slice =
    if default_model then
      Ftb_inject.Sample_run.count_outcomes
        (Ftb_inject.Sample_run.run_cases ?fuel:spec.Job.fuel golden slice)
    else begin
      let masked = ref 0 and sdc = ref 0 and crash = ref 0 in
      Array.iter
        (fun case ->
          match
            Ftb_inject.Ground_truth.outcome_of_byte
              (Ftb_inject.Ground_truth.case_byte_model ?fuel:spec.Job.fuel spec.Job.model
                 golden case)
          with
          | Ftb_trace.Runner.Masked -> incr masked
          | Ftb_trace.Runner.Sdc -> incr sdc
          | Ftb_trace.Runner.Crash -> incr crash)
        slice;
      (!masked, !sdc, !crash)
    end
  in
  let total = Array.length cases in
  let chunk = spec.Job.shard_size in
  let shards_total = (total + chunk - 1) / max 1 chunk in
  let masked = ref 0 and sdc = ref 0 and crash = ref 0 in
  let done_ = ref 0 and shard = ref 0 in
  let last = ref (now (), 0) in
  match
    while !done_ < total do
      (match Atomic.get cancel with
      | Some reason -> raise (Stop_sampling reason)
      | None -> ());
      let len = min chunk (total - !done_) in
      let m, s, c = count_chunk (Array.sub cases !done_ len) in
      masked := !masked + m;
      sdc := !sdc + s;
      crash := !crash + c;
      done_ := !done_ + len;
      incr shard;
      let t_now = now () in
      let t_prev, prev_done = !last in
      let rate =
        if t_now > t_prev then float_of_int (!done_ - prev_done) /. (t_now -. t_prev)
        else 0.
      in
      last := (t_now, !done_);
      let p =
        {
          Engine.cases_done = !done_;
          cases_total = total;
          shards_done = !shard;
          shards_total;
          masked = !masked;
          sdc = !sdc;
          crash = !crash;
        }
      in
      publish_progress t job.Job.id ~heartbeat ~p ~rate
    done
  with
  | () ->
      let counts =
        {
          Job.cases_done = total;
          cases_total = total;
          masked = !masked;
          sdc = !sdc;
          crash = !crash;
        }
      in
      { job with Job.status = Job.Completed; counts; finished = Some (now ()) }
  | exception Stop_sampling Drain ->
      (* Sample jobs carry no checkpoint; a drained one simply restarts
         from scratch on the next daemon start. *)
      { job with Job.status = Job.Queued; counts = Job.zero_counts }
  | exception Stop_sampling User ->
      let counts =
        {
          Job.cases_done = !done_;
          cases_total = total;
          masked = !masked;
          sdc = !sdc;
          crash = !crash;
        }
      in
      { job with Job.status = Job.Cancelled; counts; finished = Some (now ()) }

(* Provenance token for a fleet-assisted campaign (shared with the
   exhaustive harvest path): [prov_local] unless remote workers computed
   surviving bytes, then the compose [fleet:*] token so downstream trust
   decisions see audit coverage. *)
let prov_of_job t ~job_id =
  match t.config.provenance with
  | None -> Bstore.prov_local
  | Some f -> (
      match f ~job_id with
      | None | Some ([], _) -> Bstore.prov_local
      | Some (workers, audited) -> (
          try Ftb_compose.Profile.prov_fleet ~audited ~workers
          with Invalid_argument _ ->
            Ftb_compose.Profile.prov_fleet ~audited:false ~workers:[]))

let run_adaptive t (job : Job.info) cancel ~heartbeat ~aconfig ~seed =
  let spec = job.Job.spec in
  let golden = Golden.run (t.config.resolve spec.Job.bench) in
  let total = Models.total_cases spec.Job.model ~sites:(Golden.sites golden) in
  let key =
    Bstore.key_of ~bench:spec.Job.bench
      ~fingerprint:(Ftb_util.Fingerprint.of_floats golden.Golden.values)
      ~spec:spec.Job.model ~fuel:spec.Job.fuel ~config:aconfig ~seed
  in
  match Option.bind t.bstore (fun bs -> Bstore.find bs ~key) with
  | Some entry ->
      (* Warm start, strongest form: the store key hashes the complete
         campaign identity, so this entry *is* the converged result of
         the submitted campaign — serve it without drawing a single
         fresh sample. *)
      let counts =
        {
          Job.cases_done = entry.Bstore.samples;
          cases_total = total;
          masked = entry.Bstore.masked;
          sdc = entry.Bstore.sdc;
          crash = entry.Bstore.crash;
        }
      in
      {
        job with
        Job.status = Job.Completed;
        counts;
        cache = Job.Cache_full;
        finished = Some (now ());
      }
  | None -> (
      let checkpoint = Job.checkpoint_path ~state_dir:t.config.state_dir job.Job.id in
      let exec =
        Option.map
          (fun make ->
            make ~job_id:job.Job.id ~bench:spec.Job.bench ~fuel:spec.Job.fuel
              ~model:spec.Job.model ~golden)
          t.config.round_runner
      in
      (* Running tallies for progress frames and cancel-time counts; the
         completed job recounts from the result, which also covers rounds
         resumed from a checkpoint (they never fire on_round). *)
      let done_ = ref 0 and m = ref 0 and s = ref 0 and c = ref 0 in
      let last = ref (now (), 0) in
      let on_round ~round ~drawn ~masked ~sdc ~crash =
        done_ := !done_ + drawn;
        m := !m + masked;
        s := !s + sdc;
        c := !c + crash;
        let t_now = now () in
        let t_prev, prev_done = !last in
        let rate =
          if t_now > t_prev then float_of_int (!done_ - prev_done) /. (t_now -. t_prev)
          else 0.
        in
        last := (t_now, !done_);
        let p =
          {
            Engine.cases_done = !done_;
            cases_total = total;
            shards_done = round;
            shards_total = aconfig.Adaptive.max_rounds;
            masked = !m;
            sdc = !s;
            crash = !c;
          }
        in
        publish_progress t job.Job.id ~heartbeat ~p ~rate;
        let seq = with_lock t (fun () -> next_seq t job.Job.id) in
        stream_to_subs t job.Job.id ~seq
          (round_event ~id:job.Job.id ~seq ~round ~drawn ~masked ~sdc ~crash
             ~samples:!done_ ~total)
      in
      match
        Adaptive_engine.run ~config:aconfig ~spec:spec.Job.model ?fuel:spec.Job.fuel
          ~checkpoint ?exec ~on_round
          ~cancel:(fun () -> Atomic.get cancel <> None)
          ~name:spec.Job.bench ~seed golden
      with
      | result, _stats ->
          let masked, sdc, crash =
            Ftb_inject.Sample_run.count_outcomes result.Adaptive.samples
          in
          let counts =
            {
              Job.cases_done = Array.length result.Adaptive.samples;
              cases_total = total;
              masked;
              sdc;
              crash;
            }
          in
          (* Publish the converged boundary. Best-effort like the compose
             harvest: a full disk costs the next submission its warm
             start, never this job its result. *)
          (match t.bstore with
          | None -> ()
          | Some bs -> (
              try
                Bstore.put bs
                  (Bstore.entry_of_result
                     ~prov:(prov_of_job t ~job_id:job.Job.id)
                     ~bench:spec.Job.bench ~spec:spec.Job.model ~fuel:spec.Job.fuel
                     ~config:aconfig ~seed ~created:(now ()) golden result)
              with _ -> ()));
          { job with Job.status = Job.Completed; counts; finished = Some (now ()) }
      | exception Adaptive_engine.Cancelled -> (
          let counts =
            {
              Job.cases_done = !done_;
              cases_total = total;
              masked = !m;
              sdc = !s;
              crash = !c;
            }
          in
          match Atomic.get cancel with
          | Some Drain ->
              (* The engine checkpointed (round granularity, pending draw
                 included) before raising: re-queue and resume
                 bit-identically on the next daemon start. *)
              { job with Job.status = Job.Queued; counts }
          | Some User | None ->
              { job with Job.status = Job.Cancelled; counts; finished = Some (now ()) }))

let run_job t (job : Job.info) cancel ~heartbeat =
  match
    match job.Job.spec.Job.mode with
    | Job.Exhaustive -> run_exhaustive t job cancel ~heartbeat
    | Job.Sample { fraction; seed } ->
        run_sample t job cancel ~heartbeat ~fraction ~seed
    | Job.Adaptive { config; seed } ->
        run_adaptive t job cancel ~heartbeat ~aconfig:config ~seed
  with
  | outcome -> outcome
  | exception e ->
      { job with Job.status = Job.Failed (Printexc.to_string e); finished = Some (now ()) }

(* Run the job under the stuck-job watchdog when one is configured.

   The runner executes in its own thread while the scheduler polls the
   heartbeat (OCaml's [Condition] has no timed wait). A job whose wave
   callbacks stop beating past the deadline — hung domain, livelocked
   shard — is declared [Stuck]: its last durable checkpoint is preserved
   for a later resubmission, its watchers get a final frame, and the
   queue moves on. The abandoned runner keeps its thread; it can no
   longer touch the job's record ([publish_progress] refuses terminal
   jobs) or its watchers (the subscriptions are finished), and a
   cooperative cancel is set in case it is merely slow and still polls.

   With [stuck_after = None] the job runs inline on the scheduler thread
   exactly as before. *)
let supervise_job t (job : Job.info) cancel =
  let heartbeat = Atomic.make (now ()) in
  match t.config.stuck_after with
  | None -> run_job t job cancel ~heartbeat
  | Some deadline ->
      let result = ref None in
      let finished = Atomic.make false in
      let runner =
        Thread.create
          (fun () ->
            (result := match run_job t job cancel ~heartbeat with r -> Some r);
            Atomic.set finished true)
          ()
      in
      let rec monitor () =
        if Atomic.get finished then begin
          Thread.join runner;
          match !result with
          | Some final -> final
          | None ->
              { job with Job.status = Job.Failed "runner thread died"; finished = Some (now ()) }
        end
        else if now () -. Atomic.get heartbeat > deadline then begin
          ignore (Atomic.compare_and_set cancel None (Some User) : bool);
          let counts =
            with_lock t (fun () ->
                match Hashtbl.find_opt t.jobs job.Job.id with
                | Some j -> j.Job.counts
                | None -> job.Job.counts)
          in
          { job with Job.status = Job.Stuck; counts; finished = Some (now ()) }
        end
        else begin
          Thread.delay 0.05;
          monitor ()
        end
      in
      monitor ()

let scheduler_loop t =
  let rec loop () =
    let next =
      with_lock t (fun () ->
          if t.stopping then None
          else
            match Job_queue.pop t.queue with
            | Some job ->
                let cancel = Atomic.make None in
                let job = { job with Job.status = Job.Running; started = Some (now ()) } in
                t.running <- Some { job_id = job.Job.id; cancel };
                set_job t job;
                Some (`Run (job, cancel))
            | None ->
                Condition.wait t.wake t.mutex;
                Some `Retry)
    in
    match next with
    | None -> ()
    | Some `Retry -> loop ()
    | Some (`Run (job, cancel)) ->
        let final = supervise_job t job cancel in
        let seq =
          with_lock t (fun () ->
              t.running <- None;
              set_job t final;
              next_seq t final.Job.id)
        in
        (* A drained job is not terminal: its watchers still get a final
           frame (status "queued") so they unblock before the daemon
           exits. *)
        finish_subs t final.Job.id (done_event ~seq final);
        loop ()
  in
  loop ();
  (* Drain: unblock watchers of jobs that never ran. *)
  let leftovers =
    with_lock t (fun () ->
        t.scheduler_done <- true;
        let subs = t.subs in
        t.subs <- [];
        List.iter (fun s -> s.sub_live <- false) subs;
        Condition.broadcast t.sub_done;
        List.filter_map
          (fun s ->
            Option.map
              (fun job -> (s, job, next_seq t s.sub_job))
              (Hashtbl.find_opt t.jobs s.sub_job))
          subs)
  in
  List.iter (fun (s, job, seq) -> safe_write s.sub_fd (done_event ~seq job)) leftovers

let start t =
  with_lock t (fun () ->
      if t.scheduler = None then t.scheduler <- Some (Thread.create scheduler_loop t))

let request_shutdown t =
  with_lock t (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        (match t.running with
        | Some r ->
            (* Don't override a pending user cancellation — it is the
               stronger request. *)
            ignore (Atomic.compare_and_set r.cancel None (Some Drain) : bool)
        | None -> ());
        Condition.signal t.wake
      end)

let join t =
  match with_lock t (fun () -> t.scheduler) with
  | Some thread -> Thread.join thread
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Request handling (connection threads)                               *)

let error_frame ?(extra = []) code message =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          ([ ("code", Json.String code); ("message", Json.String message) ] @ extra) );
    ]

let ok_frame fields = Json.Obj (("ok", Json.Bool true) :: fields)

let req_id json =
  match Option.bind (Json.member "id" json) Json.to_int with
  | Some id -> Ok id
  | None -> Error (error_frame "bad_request" "missing integer field \"id\"")

(* Cold submission (caller holds the lock): allocate the id, enqueue,
   wake the scheduler. *)
let submit_cold t ~id ~spec ~idem =
  let job =
    {
      Job.id;
      spec;
      status = Job.Queued;
      counts = Job.zero_counts;
      submitted = now ();
      started = None;
      finished = None;
      idem;
      cache = Job.Cache_none;
    }
  in
  match Job_queue.add t.queue job with
  | Error (`Full capacity) ->
      error_frame "queue_full"
        (Printf.sprintf "queue is at capacity (%d queued jobs)" capacity)
        ~extra:[ ("capacity", Json.Int capacity) ]
  | Ok () ->
      t.next_id <- id + 1;
      (match idem with
      | Some key -> Hashtbl.replace t.idems key id
      | None -> ());
      set_job t job;
      Condition.signal t.wake;
      ok_frame [ ("id", Json.Int id) ]

let handle_submit t json =
  match
    match Json.member "spec" json with
    | None -> Error (error_frame "bad_request" "missing field \"spec\"")
    | Some spec -> (
        match Job.spec_of_json spec with
        | spec -> Ok spec
        | exception Job.Decode_error msg -> Error (error_frame "bad_request" msg))
  with
  | Error e -> e
  | Ok spec -> (
      let idem = Option.bind (Json.member "idem" json) Json.to_str in
      (* Resolve the benchmark before touching the queue so an unknown
         name is rejected up front, not at execution time. *)
      match t.config.resolve spec.Job.bench with
      | exception Invalid_argument msg -> error_frame "unknown_bench" msg
      | program ->
          (* Boundary probe before the lock: when the benchmark has an IR
             form and the exact same campaign (program content, model,
             fuel, tolerance) completed before, the whole boundary is in
             the store — one hash and one read, no golden run. The job is
             then recorded Completed at submit time without ever touching
             the queue, the pool or the worker fleet. *)
          let boundary =
            match (t.store, spec.Job.mode) with
            | Some store, Job.Exhaustive -> (
                match t.config.resolve_ir spec.Job.bench with
                | exception _ -> None
                | None -> None
                | Some ir ->
                    Compose.probe_boundary ~trust_unaudited:spec.Job.trust_cache
                      store ~ir ~model:spec.Job.model ~fuel:spec.Job.fuel)
            | _ -> None
          in
          with_lock t (fun () ->
              (* Idempotency first: a client retrying after a dropped ACK
                 must map to the job its first attempt created — even
                 while the daemon is draining, and without consuming
                 queue capacity. *)
              match Option.bind idem (Hashtbl.find_opt t.idems) with
              | Some id ->
                  ok_frame [ ("id", Json.Int id); ("deduped", Json.Bool true) ]
              | None ->
                  if t.stopping then error_frame "shutting_down" "daemon is draining"
                  else begin
                    let id = t.next_id in
                    match boundary with
                    | Some b -> (
                        match
                          Compose.checkpoint_of_boundary b
                            ~program:program.Ftb_trace.Program.name
                            ~shard_size:spec.Job.shard_size
                        with
                        | exception Invalid_argument _ ->
                            (* Unusable artifact (e.g. alien model
                               string): degrade to a normal enqueue. *)
                            submit_cold t ~id ~spec ~idem
                        | ckpt ->
                            let total = b.Ftb_compose.Profile.bsites * b.Ftb_compose.Profile.bwidth in
                            let counts =
                              {
                                Job.cases_done = total;
                                cases_total = total;
                                masked = b.Ftb_compose.Profile.masked;
                                sdc = b.Ftb_compose.Profile.sdc;
                                crash = b.Ftb_compose.Profile.crash;
                              }
                            in
                            let stamp = now () in
                            let job =
                              {
                                Job.id;
                                spec;
                                status = Job.Completed;
                                counts;
                                submitted = stamp;
                                started = Some stamp;
                                finished = Some stamp;
                                idem;
                                cache = Job.Cache_full;
                              }
                            in
                            t.next_id <- id + 1;
                            (match idem with
                            | Some key -> Hashtbl.replace t.idems key id
                            | None -> ());
                            (* set_job creates the job directory; the
                               synthetic complete checkpoint then lands
                               beside job.json so result fetch, watch and
                               crash-restart all see what a real run
                               would have written. *)
                            set_job t job;
                            Checkpoint.save
                              ~path:
                                (Job.checkpoint_path ~state_dir:t.config.state_dir id)
                              ckpt;
                            ok_frame
                              [
                                ("id", Json.Int id);
                                ("served_from_cache", Json.String "full");
                              ])
                    | None -> submit_cold t ~id ~spec ~idem
                  end))

let handle_status t json =
  match req_id json with
  | Error e -> e
  | Ok id -> (
      match with_lock t (fun () -> Hashtbl.find_opt t.jobs id) with
      | None -> error_frame "not_found" (Printf.sprintf "no job %d" id)
      | Some job -> ok_frame [ ("job", Job.info_to_json job) ])

let handle_list t =
  let jobs =
    with_lock t (fun () -> Hashtbl.fold (fun _ job acc -> job :: acc) t.jobs [])
    |> List.sort (fun (a : Job.info) b -> compare a.Job.id b.Job.id)
  in
  ok_frame [ ("jobs", Json.List (List.map Job.info_to_json jobs)) ]

let handle_cancel t json =
  match req_id json with
  | Error e -> e
  | Ok id ->
      let outcome =
        with_lock t (fun () ->
            match Hashtbl.find_opt t.jobs id with
            | None -> `Missing
            | Some job -> (
                match job.Job.status with
                | Job.Queued -> (
                    match Job_queue.remove t.queue id with
                    | Some _ ->
                        let job =
                          { job with Job.status = Job.Cancelled; finished = Some (now ()) }
                        in
                        set_job t job;
                        `Finished (job, next_seq t id)
                    | None ->
                        (* Queued status with no queue entry: only during a
                           drain, when the scheduler no longer runs it. *)
                        `Finished (job, next_seq t id))
                | Job.Running ->
                    (match t.running with
                    | Some r when r.job_id = id -> Atomic.set r.cancel (Some User)
                    | _ -> ());
                    `Pending job
                | _ -> `Terminal job))
      in
      (match outcome with
      | `Missing -> error_frame "not_found" (Printf.sprintf "no job %d" id)
      | `Finished (job, seq) ->
          (* Unblock any watchers of the queued job we just cancelled. *)
          finish_subs t id (done_event ~seq job);
          ok_frame [ ("job", Job.info_to_json job) ]
      | `Pending job -> ok_frame [ ("job", Job.info_to_json job) ]
      | `Terminal job ->
          error_frame "not_cancellable"
            (Printf.sprintf "job %d is already %s" id (Job.status_name job.Job.status)))

(* [watch] writes its response and snapshot before registering, so the
   subscription-finishing thread is the only later writer (see {!sub}).
   The terminal check is re-done under the registration lock: if the job
   finished between the snapshot and here, the scheduler has already
   dropped its done-frame duty for us, so we send it ourselves. *)
let handle_watch t fd json =
  match req_id json with
  | Error e ->
      Wire.write fd e;
      `Handled
  | Ok id -> (
      (* [after] is the last event seq the client already processed (0 on
         a first watch): the snapshot is suppressed when it would repeat
         state the client has seen, and later frames are filtered the
         same way — a reconnecting watcher resumes instead of replaying. *)
      let after =
        match Option.bind (Json.member "after" json) Json.to_int with
        | Some n -> n
        | None -> 0
      in
      match
        with_lock t (fun () ->
            Option.map
              (fun job ->
                (* An unknown seq (fresh daemon) gets a new one, so the
                   snapshot always outranks pre-restart frames. *)
                let seq =
                  match current_seq t id with 0 -> next_seq t id | s -> s
                in
                (job, seq))
              (Hashtbl.find_opt t.jobs id))
      with
      | None ->
          Wire.write fd (error_frame "not_found" (Printf.sprintf "no job %d" id));
          `Handled
      | Some (job, snapshot_seq) -> (
          Wire.write fd (ok_frame [ ("job", Job.info_to_json job) ]);
          (* A terminal job's seq counter also advanced when earlier
             watchers were sent their final frames, so [snapshot_seq >
             after] alone would re-deliver the snapshot to a resuming
             client forever. A resumed watch ([after > 0]) of a finished
             job gets just the final frame, which follows immediately. *)
          let want_snapshot =
            snapshot_seq > after && (after = 0 || not (Job.is_terminal job.Job.status))
          in
          if want_snapshot then Wire.write fd (snapshot_event ~seq:snapshot_seq job);
          let registered =
            with_lock t (fun () ->
                let job = Hashtbl.find t.jobs id in
                if Job.is_terminal job.Job.status || t.stopping || t.scheduler_done then
                  `Send_done (job, next_seq t id)
                else begin
                  let s = { sub_job = id; sub_fd = fd; sub_after = after; sub_live = true } in
                  t.subs <- s :: t.subs;
                  `Wait s
                end)
          in
          match registered with
          | `Send_done (job, seq) ->
              Wire.write fd (done_event ~seq job);
              `Handled
          | `Wait s ->
              with_lock t (fun () ->
                  while s.sub_live do
                    Condition.wait t.sub_done t.mutex
                  done);
              `Handled))

let boundary_entry_json (e : Bstore.entry) =
  Json.Obj
    [
      ("key", Json.String e.Bstore.key);
      ("bench", Json.String e.Bstore.bench);
      ("model", Json.String (Models.spec_to_string e.Bstore.spec));
      ("sites", Json.Int e.Bstore.sites);
      ("seed", Json.Int e.Bstore.seed);
      ("rounds", Json.Int e.Bstore.rounds);
      ("samples", Json.Int e.Bstore.samples);
      ("sample_fraction", Json.Float e.Bstore.sample_fraction);
      ("uncertainty", Json.Float e.Bstore.uncertainty);
      ("stop", Json.String (Adaptive.stop_reason_to_string e.Bstore.stop));
      ("prov", Json.String e.Bstore.prov);
      ("created", Json.Float e.Bstore.created);
    ]

(* Answer one (site, bit) prediction from the stored boundary alone —
   the store query never executes a kernel, so this verb is safe to
   serve from a connection thread while a campaign runs. *)
let handle_boundary_query t json =
  match t.bstore with
  | None ->
      error_frame "no_store" "boundary store disabled (daemon started without cache)"
  | Some bs -> (
      match
        ( Option.bind (Json.member "bench" json) Json.to_str,
          Option.bind (Json.member "site" json) Json.to_int,
          Option.bind (Json.member "bit" json) Json.to_int )
      with
      | None, _, _ -> error_frame "bad_request" "missing string field \"bench\""
      | _, None, _ | _, _, None ->
          error_frame "bad_request" "missing integer field \"site\" or \"bit\""
      | Some bench, Some site, Some bit -> (
          let spec =
            match Option.bind (Json.member "model" json) Json.to_str with
            | None -> Ok None
            | Some s -> (
                match Models.spec_of_string s with
                | Ok spec -> Ok (Some spec)
                | Error msg -> Error msg)
          in
          match spec with
          | Error msg -> error_frame "bad_request" msg
          | Ok spec -> (
              match Bstore.find_latest bs ~bench ?spec () with
              | None ->
                  error_frame "not_found"
                    (Printf.sprintf "no stored boundary for %S" bench)
              | Some entry -> (
                  match Bstore.query entry ~site ~bit with
                  | exception Invalid_argument msg -> error_frame "bad_request" msg
                  | p ->
                      ok_frame
                        [
                          ("site", Json.Int site);
                          ("bit", Json.Int bit);
                          ( "outcome",
                            Json.String
                              (match p.Bstore.outcome with
                              | `Masked -> "masked"
                              | `Sdc -> "sdc") );
                          ("threshold", Json.Float p.Bstore.threshold);
                          ("injected_error", Json.Float p.Bstore.injected_error);
                          ("support", Json.Int p.Bstore.site_support);
                          ("uncertainty", Json.Float p.Bstore.entry_uncertainty);
                          ("entry", boundary_entry_json entry);
                        ]))))

let handle_boundary_list t =
  match t.bstore with
  | None ->
      error_frame "no_store" "boundary store disabled (daemon started without cache)"
  | Some bs ->
      ok_frame
        [ ("entries", Json.List (List.map boundary_entry_json (Bstore.list bs))) ]

let handle_request t fd json =
  match Option.bind (Json.member "cmd" json) Json.to_str with
  | None -> Wire.write fd (error_frame "bad_request" "missing string field \"cmd\"")
  | Some "submit" -> Wire.write fd (handle_submit t json)
  | Some "status" -> Wire.write fd (handle_status t json)
  | Some "list" -> Wire.write fd (handle_list t)
  | Some "cancel" -> Wire.write fd (handle_cancel t json)
  | Some "boundary_query" -> Wire.write fd (handle_boundary_query t json)
  | Some "boundary_list" -> Wire.write fd (handle_boundary_list t)
  | Some "watch" -> ignore (handle_watch t fd json : [ `Handled ])
  | Some "shutdown" ->
      Wire.write fd (ok_frame []);
      request_shutdown t
  | Some cmd -> (
      (* Extension commands (the distributed worker protocol) are strict
         request/response: the handler returns one reply frame and never
         keeps the descriptor, so the single-writer discipline holds. *)
      match Option.bind t.config.extension (fun ext -> ext ~cmd json) with
      | Some reply -> Wire.write fd reply
      | None ->
          Wire.write fd
            (error_frame "bad_request" (Printf.sprintf "unknown command %S" cmd)))

let serve_connection t fd =
  Fun.protect
    ~finally:(fun () ->
      (* Make sure a dying connection — clean close, protocol violation,
         or I/O error alike — never leaves a live subscription behind
         pointing at a closed descriptor. The removed subs are also marked
         dead so no in-flight streamer writes to the recycled fd. *)
      with_lock t (fun () ->
          let mine, rest = List.partition (fun s -> s.sub_fd = fd) t.subs in
          List.iter (fun s -> s.sub_live <- false) mine;
          t.subs <- rest;
          Condition.broadcast t.sub_done);
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        while true do
          let request = Wire.read fd in
          handle_request t fd request
        done
      with
      | Wire.Closed -> ()
      | Wire.Protocol_error msg -> (
          try Wire.write fd (error_frame "protocol" msg) with _ -> ())
      | Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)

let bind_unix path =
  mkdir_p (Filename.dirname path);
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let bind_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let run ?tcp ~socket t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Atomic.set t.sigterm true));
  let listeners =
    bind_unix socket :: (match tcp with Some (host, port) -> [ bind_tcp host port ] | None -> [])
  in
  start t;
  let finished = ref false in
  while not !finished do
    if Atomic.get t.sigterm then request_shutdown t;
    (match Unix.select listeners [] [] 0.2 with
    | readable, _, _ ->
        List.iter
          (fun lfd ->
            match Unix.accept lfd with
            | client, _ ->
                ignore (Thread.create (fun () -> serve_connection t client) () : Thread.t)
            | exception Unix.Unix_error _ -> ())
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    finished := with_lock t (fun () -> t.stopping && t.scheduler_done)
  done;
  join t;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  if Sys.file_exists socket then Sys.remove socket
