(** Client library for the campaign daemon.

    Thin, synchronous wrapper over the wire protocol: every call sends one
    request frame and decodes the response. {!watch} additionally consumes
    the event stream, invoking a callback per event — the blocking and the
    event-driven API in one entry point.

    Typed service failures (unknown job, full queue, draining daemon…)
    come back as [Error {code; message}] with the server's error code.
    Transport failures (daemon gone, protocol violation) raise
    [Wire.Closed] / [Wire.Protocol_error] / [Unix.Unix_error] instead —
    a caller that can retry wants to distinguish "the daemon said no"
    from "the daemon is unreachable".

    A client is not thread-safe; use one per thread. *)

type t

type error = { code : string; message : string }

type event =
  | Progress of {
      seq : int;
          (** per-job, strictly increasing event sequence number; [0]
              when the daemon predates sequence numbers *)
      cases_done : int;
      cases_total : int;
      shards_done : int;
      shards_total : int;
      masked : int;
      sdc : int;
      crash : int;
      cases_per_sec : float;
    }
      (** one frame per completed shard wave, plus an initial snapshot *)
  | Round of {
      seq : int;
      round : int;  (** 1-based §3.4 round number *)
      drawn : int;  (** cases drawn (and executed) this round *)
      masked : int;  (** this round's outcome tallies *)
      sdc : int;
      crash : int;
      samples_total : int;  (** cumulative samples across the campaign *)
      cases_total : int;  (** dense case-space size, for fractions *)
    }
      (** one frame per adaptive round — watchers of an adaptive job see
          §3.4 convergence live, interleaved with {!Progress} frames *)
  | Worker_quarantined of { seq : int; worker : string; disputes : int }
      (** a fleet audit convicted [worker] of [disputes] silently corrupt
          shard results while this job was running; its commits have been
          re-executed and overwritten, so the job's bytes stay correct.
          Event kinds this library does not know are skipped, not
          errors — a newer daemon can stream new kinds safely. *)

val connect : socket:string -> t
(** Connect to a daemon's Unix-domain socket. *)

val connect_tcp : host:string -> port:int -> t

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected descriptor (tests use a socketpair). *)

val close : t -> unit

val submit : ?idem:string -> t -> Job.spec -> (int, error) result
(** Returns the assigned job id. [idem] is an idempotency key: a
    resubmission carrying the same key returns the id of the job the
    first submission created instead of enqueuing a duplicate — the
    foundation of safe retry after a dropped ACK. [Error] codes include
    [queue_full] (backpressure), [unknown_bench], [bad_request],
    [shutting_down]. *)

val status : t -> int -> (Job.info, error) result
val list : t -> (Job.info list, error) result

val cancel : t -> int -> (Job.info, error) result
(** Cancel a queued job (immediate) or the running job (takes effect at
    the next shard-wave boundary). *)

val shutdown : t -> (unit, error) result
(** Ask the daemon to drain and exit. *)

val watch :
  ?on_event:(event -> unit) -> ?after:int -> t -> int -> (Job.info, error) result
(** Subscribe to a job's progress stream and block until the daemon sends
    the final frame; returns the job's descriptor at that point. The
    final status is [Completed] / [Failed] / [Cancelled] / [Stuck] — or
    [Queued] when the daemon drained and suspended the job. [after] is
    the last event seq this client already processed (reconnect resume);
    the server suppresses frames at or below it. On a first watch
    ([after] omitted) at least one {!Progress} event is always delivered
    (the subscription snapshot); a resumed watch ([after > 0]) of an
    already-finished job skips the snapshot and goes straight to the
    final frame. *)

(** {1 Retrying clients}

    Self-healing variants for unattended use: each attempt opens a fresh
    connection, transport failures ([Wire.Closed], [Wire.Protocol_error],
    [Unix.Unix_error]) back off with decorrelated jitter
    ({!Ftb_util.Backoff}, tuned by the [FTB_RETRY_*] environment knobs)
    and retry, while typed service errors — answers from a live daemon —
    return immediately. Once attempts are exhausted the last transport
    exception is raised. *)

type endpoint

val unix_endpoint : socket:string -> endpoint
val tcp_endpoint : host:string -> port:int -> endpoint
val connect_endpoint : endpoint -> t
(** One non-retrying connection to the endpoint. *)

val with_retry :
  ?policy:Ftb_util.Backoff.policy ->
  ?rng:Ftb_util.Rng.t ->
  ?sleep:(float -> unit) ->
  endpoint ->
  (t -> 'a) ->
  ('a, exn) result
(** [with_retry endpoint f] runs [f] on a fresh connection (closed after
    the attempt, success or failure), retrying transport failures under
    the backoff policy (default {!Ftb_util.Backoff.from_env}). Only safe
    for idempotent [f]. [sleep] defaults to [Unix.sleepf]; tests inject a
    recorder. *)

val submit_retry :
  ?policy:Ftb_util.Backoff.policy ->
  ?rng:Ftb_util.Rng.t ->
  ?sleep:(float -> unit) ->
  endpoint ->
  idem:string ->
  Job.spec ->
  (int, error) result
(** Retrying {!submit}. The mandatory idempotency key is what makes the
    retry safe: an attempt whose ACK was lost may have created the job,
    and the next attempt dedupes to it server-side. *)

val watch_retry :
  ?policy:Ftb_util.Backoff.policy ->
  ?rng:Ftb_util.Rng.t ->
  ?sleep:(float -> unit) ->
  ?on_event:(event -> unit) ->
  endpoint ->
  int ->
  (Job.info, error) result
(** Retrying {!watch}: on a transport failure mid-stream it reconnects
    and resumes from the last event seq it delivered, deduplicating
    client-side as well — [on_event] sees each wave at most once, in
    order, across any number of reconnects. *)
