(** Client library for the campaign daemon.

    Thin, synchronous wrapper over the wire protocol: every call sends one
    request frame and decodes the response. {!watch} additionally consumes
    the event stream, invoking a callback per event — the blocking and the
    event-driven API in one entry point.

    Typed service failures (unknown job, full queue, draining daemon…)
    come back as [Error {code; message}] with the server's error code.
    Transport failures (daemon gone, protocol violation) raise
    [Wire.Closed] / [Wire.Protocol_error] / [Unix.Unix_error] instead —
    a caller that can retry wants to distinguish "the daemon said no"
    from "the daemon is unreachable".

    A client is not thread-safe; use one per thread. *)

type t

type error = { code : string; message : string }

type event =
  | Progress of {
      cases_done : int;
      cases_total : int;
      shards_done : int;
      shards_total : int;
      masked : int;
      sdc : int;
      crash : int;
      cases_per_sec : float;
    }
      (** one frame per completed shard wave, plus an initial snapshot *)

val connect : socket:string -> t
(** Connect to a daemon's Unix-domain socket. *)

val connect_tcp : host:string -> port:int -> t

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected descriptor (tests use a socketpair). *)

val close : t -> unit

val submit : t -> Job.spec -> (int, error) result
(** Returns the assigned job id. [Error] codes include [queue_full]
    (backpressure), [unknown_bench], [bad_request], [shutting_down]. *)

val status : t -> int -> (Job.info, error) result
val list : t -> (Job.info list, error) result

val cancel : t -> int -> (Job.info, error) result
(** Cancel a queued job (immediate) or the running job (takes effect at
    the next shard-wave boundary). *)

val shutdown : t -> (unit, error) result
(** Ask the daemon to drain and exit. *)

val watch : ?on_event:(event -> unit) -> t -> int -> (Job.info, error) result
(** Subscribe to a job's progress stream and block until the daemon sends
    the final frame; returns the job's descriptor at that point. The
    final status is [Completed] / [Failed] / [Cancelled] — or [Queued]
    when the daemon drained and suspended the job. At least one
    {!Progress} event is always delivered (the subscription snapshot). *)
