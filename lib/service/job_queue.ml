(* Queues are small (bounded, single-host), so a sorted association list
   beats a heap on clarity and is fast enough by orders of magnitude. *)

type t = { capacity : int; mutable jobs : Job.info list (* dispatch order *) }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Job_queue.create: capacity must be positive";
  { capacity; jobs = [] }

let capacity t = t.capacity
let length t = List.length t.jobs
let is_empty t = t.jobs = []

(* Higher priority first; FIFO (ascending id) within a priority. *)
let before (a : Job.info) (b : Job.info) =
  a.Job.spec.Job.priority > b.Job.spec.Job.priority
  || (a.Job.spec.Job.priority = b.Job.spec.Job.priority && a.Job.id < b.Job.id)

let restore t job =
  let rec insert = function
    | [] -> [ job ]
    | head :: tail -> if before job head then job :: head :: tail else head :: insert tail
  in
  t.jobs <- insert t.jobs

let add t job =
  if length t >= t.capacity then Error (`Full t.capacity)
  else begin
    restore t job;
    Ok ()
  end

(* Restart re-queueing respects the same bound as live submission: the
   jobs that would dispatch first are kept, the overflow is returned for
   the server to fail with a typed reason. Without the cap, a crash loop
   against a shrunk capacity could resurrect an unbounded queue. *)
let restore_all t jobs =
  let sorted = List.sort (fun a b -> if before a b then -1 else 1) jobs in
  let rec split kept n = function
    | [] -> (List.rev kept, [])
    | rest when n = 0 -> (List.rev kept, rest)
    | head :: tail -> split (head :: kept) (n - 1) tail
  in
  let kept, overflow = split [] (max 0 (t.capacity - length t)) sorted in
  List.iter (restore t) kept;
  overflow

let pop t =
  match t.jobs with
  | [] -> None
  | job :: rest ->
      t.jobs <- rest;
      Some job

let remove t id =
  match List.partition (fun (j : Job.info) -> j.Job.id = id) t.jobs with
  | [ job ], rest ->
      t.jobs <- rest;
      Some job
  | _ -> None

let to_list t = t.jobs
