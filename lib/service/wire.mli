(** Length-prefixed JSON framing over a file descriptor.

    One frame = a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON. The prefix makes message boundaries explicit on a
    stream socket, so neither side ever scans for delimiters, and a
    corrupt or hostile peer is rejected by the length bound before any
    allocation of its claimed size. *)

val max_frame : int
(** Upper bound on a frame payload (16 MiB). A frame claiming more is a
    {!Protocol_error}; campaign job descriptions and progress events are
    tiny, so the bound only exists to fail fast on garbage. *)

exception Closed
(** The peer closed the connection at a frame boundary (clean EOF). *)

exception Protocol_error of string
(** Mid-frame EOF, an oversized length prefix, or an unparseable payload. *)

val write : Unix.file_descr -> Json.t -> unit
(** Serialize and send one frame. Handles short writes and [EINTR];
    propagates [Unix.Unix_error] (e.g. [EPIPE]) when the peer is gone. *)

val read : Unix.file_descr -> Json.t
(** Receive one frame. Raises {!Closed} on EOF before the first prefix
    byte and {!Protocol_error} on truncation inside a frame. *)
