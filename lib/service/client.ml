type t = { fd : Unix.file_descr }

type error = { code : string; message : string }

type event =
  | Progress of {
      seq : int;
      cases_done : int;
      cases_total : int;
      shards_done : int;
      shards_total : int;
      masked : int;
      sdc : int;
      crash : int;
      cases_per_sec : float;
    }
  | Round of {
      seq : int;
      round : int;
      drawn : int;
      masked : int;
      sdc : int;
      crash : int;
      samples_total : int;
      cases_total : int;
    }
  | Worker_quarantined of { seq : int; worker : string; disputes : int }

let of_fd fd = { fd }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let connect_tcp ~host ~port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let bad_frame what = raise (Wire.Protocol_error ("malformed response: " ^ what))

let decode_error json =
  match Json.member "error" json with
  | Some err ->
      let field name =
        match Option.bind (Json.member name err) Json.to_str with
        | Some s -> s
        | None -> "unknown"
      in
      { code = field "code"; message = field "message" }
  | None -> { code = "unknown"; message = "server reported failure without detail" }

(* Send one request; return the ok-response object or the typed error. *)
let roundtrip t request =
  Wire.write t.fd (Json.Obj request);
  let response = Wire.read t.fd in
  match Option.bind (Json.member "ok" response) Json.to_bool with
  | Some true -> Ok response
  | Some false -> Error (decode_error response)
  | None -> bad_frame "missing \"ok\" field"

let job_of response =
  match Json.member "job" response with
  | Some job -> (
      match Job.info_of_json job with
      | info -> info
      | exception Job.Decode_error msg -> bad_frame msg)
  | None -> bad_frame "missing \"job\" field"

let submit ?idem t spec =
  let idem_field =
    match idem with Some key -> [ ("idem", Json.String key) ] | None -> []
  in
  Result.map
    (fun response ->
      match Option.bind (Json.member "id" response) Json.to_int with
      | Some id -> id
      | None -> bad_frame "missing \"id\" field")
    (roundtrip t
       ([ ("cmd", Json.String "submit"); ("spec", Job.spec_to_json spec) ]
       @ idem_field))

let status t id =
  Result.map job_of (roundtrip t [ ("cmd", Json.String "status"); ("id", Json.Int id) ])

let list t =
  Result.map
    (fun response ->
      match Option.bind (Json.member "jobs" response) Json.to_list with
      | Some jobs ->
          List.map
            (fun j ->
              match Job.info_of_json j with
              | info -> info
              | exception Job.Decode_error msg -> bad_frame msg)
            jobs
      | None -> bad_frame "missing \"jobs\" field")
    (roundtrip t [ ("cmd", Json.String "list") ])

let cancel t id =
  Result.map job_of (roundtrip t [ ("cmd", Json.String "cancel"); ("id", Json.Int id) ])

let shutdown t =
  Result.map (fun _ -> ()) (roundtrip t [ ("cmd", Json.String "shutdown") ])

let decode_progress json =
  let int name =
    match Option.bind (Json.member name json) Json.to_int with
    | Some v -> v
    | None -> bad_frame (Printf.sprintf "progress event missing %S" name)
  in
  Progress
    {
      (* Absent on frames from a pre-seq daemon; 0 sorts below any real
         seq, so deduplication simply never suppresses such frames. *)
      seq =
        (match Option.bind (Json.member "seq" json) Json.to_int with
        | Some s -> s
        | None -> 0);
      cases_done = int "cases_done";
      cases_total = int "cases_total";
      shards_done = int "shards_done";
      shards_total = int "shards_total";
      masked = int "masked";
      sdc = int "sdc";
      crash = int "crash";
      cases_per_sec =
        (match Option.bind (Json.member "cases_per_sec" json) Json.to_float with
        | Some r -> r
        | None -> 0.);
    }

let decode_round json =
  let int name =
    match Option.bind (Json.member name json) Json.to_int with
    | Some v -> v
    | None -> bad_frame (Printf.sprintf "round event missing %S" name)
  in
  Round
    {
      seq =
        (match Option.bind (Json.member "seq" json) Json.to_int with
        | Some s -> s
        | None -> 0);
      round = int "round";
      drawn = int "drawn";
      masked = int "masked";
      sdc = int "sdc";
      crash = int "crash";
      samples_total = int "samples_total";
      cases_total = int "cases_total";
    }

let decode_quarantine json =
  Worker_quarantined
    {
      seq =
        (match Option.bind (Json.member "seq" json) Json.to_int with
        | Some s -> s
        | None -> 0);
      worker =
        (match Option.bind (Json.member "worker" json) Json.to_str with
        | Some w -> w
        | None -> bad_frame "worker_quarantined event missing \"worker\"");
      disputes =
        (match Option.bind (Json.member "disputes" json) Json.to_int with
        | Some n -> n
        | None -> 0);
    }

let watch ?(on_event = fun _ -> ()) ?(after = 0) t id =
  let after_field = if after > 0 then [ ("after", Json.Int after) ] else [] in
  match
    roundtrip t ([ ("cmd", Json.String "watch"); ("id", Json.Int id) ] @ after_field)
  with
  | Error e -> Error e
  | Ok _response ->
      let rec stream () =
        let frame = Wire.read t.fd in
        match Option.bind (Json.member "event" frame) Json.to_str with
        | Some "progress" ->
            on_event (decode_progress frame);
            stream ()
        | Some "round" ->
            on_event (decode_round frame);
            stream ()
        | Some "worker_quarantined" ->
            on_event (decode_quarantine frame);
            stream ()
        | Some "done" -> Ok (job_of frame)
        (* A newer daemon may stream event kinds this client predates;
           skipping them keeps old clients working across upgrades. *)
        | Some _other -> stream ()
        | None -> bad_frame "event frame without \"event\" field"
      in
      stream ()

(* ------------------------------------------------------------------ *)
(* Retrying variants: transport failures (daemon restarting, dropped
   connection, torn frame) are transient — each attempt reconnects from
   scratch and backs off with decorrelated jitter. Typed service errors
   are definitive answers from a live daemon and are never retried. *)

module Backoff = Ftb_util.Backoff

type endpoint = Unix_socket of string | Tcp of { host : string; port : int }

let unix_endpoint ~socket = Unix_socket socket
let tcp_endpoint ~host ~port = Tcp { host; port }

let connect_endpoint = function
  | Unix_socket socket -> connect ~socket
  | Tcp { host; port } -> connect_tcp ~host ~port

let transient = function
  | Wire.Closed | Wire.Protocol_error _ | Unix.Unix_error _ -> true
  | _ -> false

(* Run [f] on a fresh connection, retrying transport failures. The
   connection is closed after every attempt, success or not, so a
   half-poisoned stream never leaks into the next attempt. *)
let with_retry ?policy ?rng ?(sleep = Unix.sleepf) endpoint f =
  let policy =
    match policy with Some p -> p | None -> Backoff.from_env ()
  in
  Backoff.retry ~policy ?rng ~sleep (fun ~attempt:_ ->
      match
        let t = connect_endpoint endpoint in
        Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
      with
      | v -> Backoff.Done v
      | exception e when transient e -> Backoff.Retry e)

let submit_retry ?policy ?rng ?sleep endpoint ~idem spec =
  (* The idempotency key is what makes the retry safe: an attempt whose
     ACK was lost may well have created the job, and the next attempt
     maps to it server-side instead of double-running the campaign. *)
  match with_retry ?policy ?rng ?sleep endpoint (fun t -> submit ~idem t spec) with
  | Ok result -> result
  | Error e -> raise e

let watch_retry ?policy ?rng ?(sleep = Unix.sleepf) ?(on_event = fun _ -> ())
    endpoint id =
  let policy =
    match policy with Some p -> p | None -> Backoff.from_env ()
  in
  (* [last] survives reconnects: the resumed watch asks the server for
     frames after it and drops any stragglers client-side, so the caller
     observes each progress wave at most once and never out of order. *)
  let last = ref 0 in
  let deduped event =
    let seq =
      match event with
      | Progress p -> p.seq
      | Round r -> r.seq
      | Worker_quarantined q -> q.seq
    in
    if seq > !last || seq = 0 then begin
      if seq > !last then last := seq;
      on_event event
    end
  in
  match
    Backoff.retry ~policy ?rng ~sleep (fun ~attempt:_ ->
        match
          let t = connect_endpoint endpoint in
          Fun.protect
            ~finally:(fun () -> close t)
            (fun () -> watch ~on_event:deduped ~after:!last t id)
        with
        | v -> Backoff.Done v
        | exception e when transient e -> Backoff.Retry e)
  with
  | Ok result -> result
  | Error e -> raise e
