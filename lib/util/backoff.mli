(** Retry with decorrelated-jitter exponential backoff.

    The service clients retry transient transport failures (daemon
    restarting, dropped connection) instead of surfacing them; this module
    decides {e how long} to wait between attempts. Delays follow the
    decorrelated-jitter scheme — each delay is uniform in
    [\[base, 3 * previous\]], clamped to [cap] — which spreads concurrent
    retriers apart instead of letting them thunder in lockstep, while
    still growing roughly exponentially under sustained failure.

    The module is deliberately free of clocks and I/O: the caller injects
    [sleep] (and optionally the {!Rng.t}), so tests drive retries with a
    recording fake and zero real waiting. *)

type policy = {
  base : float;  (** smallest delay, seconds *)
  cap : float;  (** largest delay, seconds *)
  max_attempts : int;  (** total tries, including the first *)
}

val default : policy
(** [base = 0.05], [cap = 2.0], [max_attempts = 8] — under a second of
    cumulative wait for a daemon that comes straight back, a couple of
    seconds between tries against one that is restarting. *)

val policy : ?base:float -> ?cap:float -> ?max_attempts:int -> unit -> policy
(** Build a policy from [default], overriding fields. Raises
    [Invalid_argument] when [base <= 0], [cap < base] or
    [max_attempts < 1]. *)

val from_env : ?policy:policy -> unit -> policy
(** [policy] (default {!default}) with the environment knobs applied:
    [FTB_RETRY_BASE] and [FTB_RETRY_CAP] (seconds, floats) and
    [FTB_RETRY_ATTEMPTS] (integer [>= 1]). Malformed or out-of-range
    values are ignored; a cap below the base is raised to the base. *)

val next_delay : Rng.t -> policy -> previous:float -> float
(** The next sleep, in seconds: uniform in [\[base, 3 * previous\]]
    clamped to [cap]; [previous] below [base] (including the [0.] before
    any delay) is treated as [base]. *)

type 'a outcome =
  | Retry of exn  (** transient failure — worth another attempt *)
  | Done of 'a  (** success (or a definitive failure encoded in ['a]) *)

val retry :
  ?policy:policy ->
  ?rng:Rng.t ->
  sleep:(float -> unit) ->
  (attempt:int -> 'a outcome) ->
  ('a, exn) result
(** [retry ~sleep f] calls [f ~attempt:0], then on {!Retry} sleeps and
    tries again with increasing attempt numbers, up to
    [policy.max_attempts] total attempts. Returns [Ok v] on the first
    {!Done}, or [Error e] carrying the last {!Retry} exception once
    attempts are exhausted. [sleep] receives each delay in seconds —
    production passes [Unix.sleepf], tests a recorder. [rng] defaults to
    a fixed-seed generator (deterministic delays). *)
