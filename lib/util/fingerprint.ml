(* One hashing implementation for every content fingerprint in the tree:
   the campaign engine's golden-trace fingerprint (Ftb_campaign.Checkpoint)
   and the compositional profile cache's section / boundary keys
   (Ftb_compose) both go through here. The float encoding is bit-exact —
   8 little-endian bytes of [Int64.bits_of_float] per value — so two
   traces fingerprint equal iff every value is bitwise equal, and the
   encoding can never change without invalidating persisted campaign
   checkpoints (format v2/v3 store [of_floats] of the golden values). *)

let to_hex = Digest.to_hex

let of_bytes b = to_hex (Digest.bytes b)
let of_string s = to_hex (Digest.string s)

let bytes_of_floats (values : float array) =
  let b = Bytes.create (8 * Array.length values) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float v)) values;
  b

let of_floats values = of_bytes (bytes_of_floats values)

let add_float buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let of_buffer buf = of_string (Buffer.contents buf)

let hex_length = 32

let is_hex key =
  String.length key = hex_length
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) key
