(** Unified content fingerprinting.

    Every durable content hash in the tree — the campaign checkpoint's
    golden-trace fingerprint and the compositional profile cache's section
    and boundary keys — is produced by this module, so there is exactly one
    encoding to test and one place where it could change. All fingerprints
    are 32-character lowercase hex digests.

    The float encoding is {e bit-exact}: each value contributes the 8
    little-endian bytes of its [Int64.bits_of_float] image. Two float
    arrays fingerprint equal iff they are bitwise equal element-wise —
    [0.0] and [-0.0] differ, NaN payloads matter. Persisted campaign
    checkpoints (v2/v3) store [of_floats] of the golden values, so this
    encoding is part of the on-disk format and must never change. *)

val of_string : string -> string
(** Fingerprint of the raw bytes of a string. *)

val of_bytes : Bytes.t -> string

val of_floats : float array -> string
(** Bit-exact fingerprint of a float array (little-endian
    [Int64.bits_of_float] per element). *)

val bytes_of_floats : float array -> Bytes.t
(** The exact byte image hashed by {!of_floats}. *)

val add_float : Buffer.t -> float -> unit
(** Append a float's 8-byte bit-exact image to a buffer being accumulated
    for {!of_buffer}. *)

val of_buffer : Buffer.t -> string
(** Fingerprint of a buffer's current contents. *)

val hex_length : int
(** Length of every fingerprint: 32. *)

val is_hex : string -> bool
(** Whether a string is shaped like a fingerprint (32 lowercase hex
    chars) — used to vet untrusted store filenames. *)
