(** Bounded key-value cache with least-recently-used eviction.

    Both {!find} and {!add} refresh an entry's recency; once the cache
    holds [capacity] entries, adding a new key evicts the entry that has
    gone longest without being touched. Not thread-safe — callers that
    share one cache across threads hold their own lock (the worker's
    golden cache is only touched from its pull loop). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; refreshes the entry's recency on a hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without touching recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace; evicts the least-recently-used entry when the
    cache is full and [key] is new. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t k make] returns the cached value for [k], computing
    and caching [make ()] on a miss. *)
