let hard_cap = 8

let default () =
  match Sys.getenv_opt "FTB_DOMAINS" with
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "FTB_DOMAINS must be a positive integer (got %S)" s))
  | Some _ | None -> min hard_cap (Domain.recommended_domain_count ())

let default_or_exit ?flag () =
  match flag with
  | Some d when d >= 1 -> d
  | Some d ->
      Printf.eprintf "ftb: --domains must be a positive integer (got %d)\n" d;
      exit 2
  | None -> (
      match default () with
      | d -> d
      | exception Invalid_argument msg ->
          Printf.eprintf "ftb: %s\n" msg;
          exit 2)
