(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the library (Monte-Carlo campaigns,
    adaptive sampling, trial repetition) draws from an explicit [Rng.t] so
    experiments are reproducible from a single integer seed. SplitMix64 is
    small, fast, passes BigCrush, and supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** Independent copy of the current state. *)

val state : t -> int64
(** Raw generator state, for checkpointing. [of_state (state t)] resumes
    the stream exactly where [t] left off. *)

val of_state : int64 -> t
(** Rebuild a generator from a checkpointed [state]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> n:int -> k:int -> int array
(** [sample_without_replacement t ~n ~k] draws [k] distinct indices from
    [\[0, n)], in random order. Raises [Invalid_argument] if [k > n] or
    either is negative. Uses a partial Fisher-Yates for [k] close to [n]
    and rejection hashing for sparse draws. *)
