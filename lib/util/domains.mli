(** Domain-count selection shared by every executable entry point.

    One place owns the [FTB_DOMAINS] environment contract: an explicit
    [--domains] flag wins, then a well-formed [FTB_DOMAINS] value, then
    [Domain.recommended_domain_count] capped at {!hard_cap}. CLI binaries
    ([ftb campaign run], [ftb serve], [ftb worker], the benches) all call
    {!default_or_exit} so a malformed value is a single uniform exit-2
    usage error instead of a backtrace — or a per-binary copy of the same
    [match]. *)

val hard_cap : int
(** Upper bound applied to the auto-detected domain count (explicit
    settings may exceed it). *)

val default : unit -> int
(** Domain count from [FTB_DOMAINS], falling back to
    [min hard_cap (Domain.recommended_domain_count ())]. Raises
    [Invalid_argument] when the variable is set but not a positive
    integer. *)

val default_or_exit : ?flag:int -> unit -> int
(** CLI wrapper: [flag] (a parsed [--domains] value) wins when positive;
    otherwise defer to {!default}. Invalid input — a non-positive flag or
    a malformed [FTB_DOMAINS] — prints a one-line usage error to stderr
    and exits with status 2. *)
