(* Small bounded cache with least-recently-used eviction. Recency is a
   monotonic use counter per entry; eviction scans for the minimum, which
   is O(capacity) — these caches are tiny (tens of entries) and eviction
   is rare, so the scan beats the bookkeeping of an intrusive list. *)

type ('k, 'v) entry = { value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable tick : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create capacity; tick = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let touch t entry =
  t.tick <- t.tick + 1;
  entry.stamp <- t.tick

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some entry ->
      touch t entry;
      Some entry.value

let mem t key = Hashtbl.mem t.table key

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key entry ->
      match !victim with
      | Some (_, stamp) when stamp <= entry.stamp -> ()
      | _ -> victim := Some (key, entry.stamp))
    t.table;
  match !victim with
  | Some (key, _) -> Hashtbl.remove t.table key
  | None -> ()

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some _ -> Hashtbl.remove t.table key
  | None -> ());
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  let entry = { value; stamp = 0 } in
  touch t entry;
  Hashtbl.replace t.table key entry

let find_or_add t key make =
  match find t key with
  | Some v -> v
  | None ->
      let v = make () in
      add t key v;
      v
