type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }
let state t = t.state
let of_state state = { state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let raw = Int64.shift_right_logical (next_int64 t) 1 in
    let candidate = Int64.rem raw n64 in
    if Int64.sub raw candidate > Int64.sub (Int64.sub Int64.max_int n64) 1L then draw ()
    else Int64.to_int candidate
  in
  draw ()

let float t x =
  (* 53 random mantissa bits -> uniform in [0,1). *)
  let raw = Int64.shift_right_logical (next_int64 t) 11 in
  let unit = Int64.to_float raw *. 0x1.0p-53 in
  unit *. x

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~n ~k =
  if k < 0 || n < 0 then invalid_arg "Rng.sample_without_replacement: negative size";
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  if 4 * k >= n then begin
    (* Dense draw: partial Fisher-Yates over the full index range. *)
    let all = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = i + int t (n - i) in
      let tmp = all.(i) in
      all.(i) <- all.(j);
      all.(j) <- tmp
    done;
    Array.sub all 0 k
  end else begin
    (* Sparse draw: rejection against a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let candidate = int t n in
      if not (Hashtbl.mem seen candidate) then begin
        Hashtbl.add seen candidate ();
        out.(!filled) <- candidate;
        incr filled
      end
    done;
    out
  end
