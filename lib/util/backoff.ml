type policy = {
  base : float;
  cap : float;
  max_attempts : int;
}

let default = { base = 0.05; cap = 2.0; max_attempts = 8 }

let policy ?(base = default.base) ?(cap = default.cap)
    ?(max_attempts = default.max_attempts) () =
  if not (base > 0.) then invalid_arg "Backoff.policy: base must be positive";
  if not (cap >= base) then invalid_arg "Backoff.policy: cap must be >= base";
  if max_attempts < 1 then invalid_arg "Backoff.policy: max_attempts must be >= 1";
  { base; cap; max_attempts }

(* Environment knobs let an operator tune retry pressure without a
   recompile; a malformed or out-of-range value falls back to the given
   policy field rather than crashing a client at startup. *)
let float_env policy_value name =
  match Sys.getenv_opt name with
  | None -> policy_value
  | Some s -> (
      match float_of_string_opt s with
      | Some v when v > 0. -> v
      | Some _ | None -> policy_value)

let int_env policy_value name =
  match Sys.getenv_opt name with
  | None -> policy_value
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= 1 -> v
      | Some _ | None -> policy_value)

let from_env ?(policy = default) () =
  let base = float_env policy.base "FTB_RETRY_BASE" in
  let cap = float_env policy.cap "FTB_RETRY_CAP" in
  {
    base;
    cap = (if cap >= base then cap else base);
    max_attempts = int_env policy.max_attempts "FTB_RETRY_ATTEMPTS";
  }

(* Decorrelated jitter (the AWS Architecture Blog variant): each delay is
   uniform in [base, 3 * previous], clamped to [cap]. Retries spread out
   instead of thundering in lockstep, and the sequence adapts — one long
   delay keeps later delays long, one short delay lets them shrink. *)
let next_delay rng policy ~previous =
  let previous = if previous < policy.base then policy.base else previous in
  let hi = Float.min policy.cap (3. *. previous) in
  let span = hi -. policy.base in
  let jittered =
    if span <= 0. then policy.base else policy.base +. Rng.float rng span
  in
  Float.min policy.cap jittered

type 'a outcome = Retry of exn | Done of 'a

let retry ?(policy = default) ?rng ~sleep f =
  let rng = match rng with Some rng -> rng | None -> Rng.create ~seed:0x5eed in
  let rec attempt n ~previous =
    match f ~attempt:n with
    | Done v -> Ok v
    | Retry e ->
        if n + 1 >= policy.max_attempts then Error e
        else begin
          let delay = next_delay rng policy ~previous in
          sleep delay;
          attempt (n + 1) ~previous:delay
        end
  in
  attempt 0 ~previous:0.
