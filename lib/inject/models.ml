module Bits = Ftb_util.Bits
module Rng = Ftb_util.Rng
module Golden = Ftb_trace.Golden
module Runner = Ftb_trace.Runner

type t =
  | Bit_flip_64
  | Bit_flip_32
  | Adjacent_burst_2
  | Random_value of { lo : float; hi : float }

let name = function
  | Bit_flip_64 -> "bit-flip-64"
  | Bit_flip_32 -> "bit-flip-32"
  | Adjacent_burst_2 -> "adjacent-burst-2"
  | Random_value { lo; hi } -> Printf.sprintf "random-value[%g,%g)" lo hi

let all_discrete = [ Bit_flip_64; Bit_flip_32; Adjacent_burst_2 ]

let cases_per_site = function
  | Bit_flip_64 -> Some 64
  | Bit_flip_32 -> Some 32
  | Adjacent_burst_2 -> Some 63
  | Random_value _ -> None

let check_case model ~case =
  match cases_per_site model with
  | None -> ()
  | Some n ->
      if case < 0 || case >= n then
        invalid_arg
          (Printf.sprintf "Models.corrupt: case %d out of range for %s" case (name model))

let corrupt model ~rng ~case v =
  check_case model ~case;
  match model with
  | Bit_flip_64 -> Bits.flip ~bit:case v
  | Bit_flip_32 -> Bits.flip32 ~bit:case v
  | Adjacent_burst_2 -> Bits.flip ~bit:case (Bits.flip ~bit:(case + 1) v)
  | Random_value { lo; hi } ->
      if hi <= lo then invalid_arg "Models.corrupt: empty random-value range";
      lo +. Rng.float rng (hi -. lo)

let is_stochastic model = cases_per_site model = None

(* Stochastic models have no natural case count, but the campaign
   pipeline needs a dense, enumerable case space for shards, checkpoints
   and fleet leases. They get the same budget as the paper's model: 64
   replicas per site, each with its own deterministically derived RNG. *)
let stochastic_width = 64

let width model =
  match cases_per_site model with Some n -> n | None -> stochastic_width

type spec = { model : t; seed : int }

let default_spec = { model = Bit_flip_64; seed = 0 }
let spec_width spec = width spec.model
let total_cases spec ~sites = sites * spec_width spec

let model_equal a b =
  match (a, b) with
  | Bit_flip_64, Bit_flip_64 | Bit_flip_32, Bit_flip_32 | Adjacent_burst_2, Adjacent_burst_2
    ->
      true
  | Random_value a, Random_value b -> a.lo = b.lo && a.hi = b.hi
  | (Bit_flip_64 | Bit_flip_32 | Adjacent_burst_2 | Random_value _), _ -> false

let spec_equal a b =
  model_equal a.model b.model && ((not (is_stochastic a.model)) || a.seed = b.seed)

let spec_name spec =
  if is_stochastic spec.model then
    Printf.sprintf "%s seed %d" (name spec.model) spec.seed
  else name spec.model

let case_corrupt spec ~case =
  if case < 0 then invalid_arg "Models.case_corrupt: negative case";
  let local = case mod spec_width spec in
  match spec.model with
  | Bit_flip_64 -> Bits.flip ~bit:local
  | Bit_flip_32 -> Bits.flip32 ~bit:local
  | Adjacent_burst_2 -> fun v -> Bits.flip ~bit:local (Bits.flip ~bit:(local + 1) v)
  | Random_value { lo; hi } ->
      if hi <= lo then invalid_arg "Models.case_corrupt: empty random-value range";
      (* Derived from the dense case index, not from site-order state:
         any shard, worker or resumed daemon replaying this case draws
         the same value. *)
      fun _ -> lo +. Rng.float (Rng.create ~seed:(spec.seed lxor case)) (hi -. lo)

let spec_to_string spec =
  match spec.model with
  | Bit_flip_64 -> "bit-flip-64"
  | Bit_flip_32 -> "bit-flip-32"
  | Adjacent_burst_2 -> "adjacent-burst-2"
  | Random_value { lo; hi } ->
      (* %h round-trips exactly through float_of_string, and hex floats
         contain no ':' or whitespace, so the encoding stays a single
         space-free token (checkpoint headers are space-split). *)
      Printf.sprintf "random-value:%h:%h:%d" lo hi spec.seed

let spec_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "unknown fault model %S (expected bit-flip-64, bit-flip-32, adjacent-burst-2 or \
          random-value:LO:HI[:SEED])"
         s)
  in
  match s with
  | "bit-flip-64" -> Ok { model = Bit_flip_64; seed = 0 }
  | "bit-flip-32" -> Ok { model = Bit_flip_32; seed = 0 }
  | "adjacent-burst-2" -> Ok { model = Adjacent_burst_2; seed = 0 }
  | _ -> (
      match String.split_on_char ':' s with
      | "random-value" :: lo :: hi :: rest -> (
          match
            let lo = float_of_string lo and hi = float_of_string hi in
            let seed =
              match rest with
              | [] -> 0
              | [ seed ] -> int_of_string seed
              | _ -> failwith "extra fields"
            in
            if not (Float.is_finite lo && Float.is_finite hi && hi > lo) then
              failwith "bad range";
            { model = Random_value { lo; hi }; seed }
          with
          | spec -> Ok spec
          | exception _ -> fail ())
      | _ -> fail ())

type site_stats = { runs : int; masked : int; sdc : int; crash : int }

type campaign = {
  model : t;
  total : site_stats;
  sdc_ratio : float;
  masked_ratio : float;
  crash_ratio : float;
}

let monte_carlo ?(samples_per_site = 4) rng golden model =
  if samples_per_site <= 0 then
    invalid_arg "Models.monte_carlo: samples_per_site must be positive";
  let sites = Golden.sites golden in
  let runs = ref 0 and masked = ref 0 and sdc = ref 0 and crash = ref 0 in
  for site = 0 to sites - 1 do
    let cases =
      match cases_per_site model with
      | Some n when n <= samples_per_site -> Array.init n Fun.id
      | Some n -> Rng.sample_without_replacement rng ~n ~k:samples_per_site
      | None -> Array.make samples_per_site 0
    in
    Array.iter
      (fun case ->
        let corrupt_value = corrupt model ~rng ~case in
        let result = Runner.run_outcome_custom golden ~site ~corrupt:corrupt_value in
        incr runs;
        match result.Runner.outcome with
        | Runner.Masked -> incr masked
        | Runner.Sdc -> incr sdc
        | Runner.Crash -> incr crash)
      cases
  done;
  let total_f = float_of_int !runs in
  {
    model;
    total = { runs = !runs; masked = !masked; sdc = !sdc; crash = !crash };
    sdc_ratio = float_of_int !sdc /. total_f;
    masked_ratio = float_of_int !masked /. total_f;
    crash_ratio = float_of_int !crash /. total_f;
  }

let compare_models ?samples_per_site rng golden models =
  List.map (fun model -> monte_carlo ?samples_per_site rng golden model) models
