module Golden = Ftb_trace.Golden

let default_domains () = Ftb_util.Domains.default ()

let check_domains domains =
  if domains <= 0 then invalid_arg "Parallel: domains must be positive"

(* Shard [0, total) into [domains] contiguous chunks and run [work lo hi]
   on each, the last chunk on the calling domain. Historical static-chunk
   primitive; campaign paths now run on the work-stealing {!Pool}. All
   spawned domains are joined even when [work] raises on the calling
   domain, and the first exception (caller first, then workers in spawn
   order) is re-raised. *)
let shard ~domains ~total work =
  check_domains domains;
  let chunk d = (d * total / domains, (d + 1) * total / domains) in
  let spawned =
    List.init (domains - 1) (fun d ->
        let lo, hi = chunk d in
        Domain.spawn (fun () -> work lo hi))
  in
  let worker_exn = ref None in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun d ->
          try Domain.join d
          with e -> if !worker_exn = None then worker_exn := Some e)
        spawned)
    (fun () ->
      let lo, hi = chunk (domains - 1) in
      work lo hi);
  match !worker_exn with Some e -> raise e | None -> ()

(* ------------------------------------------------------------------ *)
(* Persistent domain pool with a work-stealing scheduler.

   Domains are spawned once and kept alive across campaign calls; idle
   workers block on a condition variable. A job is a half-open range
   [0, total) of abstract work items; workers (and the submitting domain,
   which always participates) claim chunks off a shared [Atomic] counter,
   so short items (crash cases that die instantly) and long items
   (fuel-exhausted cases that run to the budget) balance automatically —
   no domain is stuck with an unlucky static chunk. *)
module Pool = struct
  type job = {
    work : int -> int -> unit;
    next : int Atomic.t;
    total : int;
    chunk : int;
    worker_slots : int;  (** how many pool workers participate in this job *)
  }

  type t = {
    mutable workers : unit Domain.t array;
    mutex : Mutex.t;
    work_ready : Condition.t;
    work_done : Condition.t;
    mutable job : job option;
    mutable generation : int;
    mutable active : int;  (** participating workers still running the job *)
    mutable failed : exn option;
    mutable stop : bool;
    mutable busy : bool;  (** a [run] is in flight (submitting domain included) *)
  }

  let domains t = Array.length t.workers + 1

  let note_failure t e =
    Mutex.lock t.mutex;
    if t.failed = None then t.failed <- Some e;
    Mutex.unlock t.mutex

  (* Claim chunks until the counter runs dry. After any participant fails,
     remaining chunks are abandoned so the job drains quickly; the racy
     read of [t.failed] is harmless (worst case: one extra chunk runs). *)
  let run_chunks t (job : job) =
    let rec go () =
      if t.failed = None then begin
        let lo = Atomic.fetch_and_add job.next job.chunk in
        if lo < job.total then begin
          job.work lo (min job.total (lo + job.chunk));
          go ()
        end
      end
    in
    go ()

  let rec worker_loop t id last_generation =
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = last_generation do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      let generation = t.generation in
      match t.job with
      | None ->
          (* Stale wakeup: this generation's job already completed without
             us. That happens to workers with [id >= worker_slots] — [run]
             only waits for the participating workers before clearing
             [t.job], so a non-participant woken by the broadcast can
             acquire the mutex after the fact. Catch up and wait for the
             next job. *)
          Mutex.unlock t.mutex;
          worker_loop t id generation
      | Some job ->
          Mutex.unlock t.mutex;
          if id < job.worker_slots then begin
            (try run_chunks t job with e -> note_failure t e);
            Mutex.lock t.mutex;
            t.active <- t.active - 1;
            if t.active = 0 then Condition.broadcast t.work_done;
            Mutex.unlock t.mutex
          end;
          worker_loop t id generation
    end

  let create ~domains =
    check_domains domains;
    let t =
      {
        workers = [||];
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        job = None;
        generation = 0;
        active = 0;
        failed = None;
        stop = false;
        busy = false;
      }
    in
    t.workers <-
      Array.init (domains - 1) (fun id -> Domain.spawn (fun () -> worker_loop t id 0));
    t

  let shutdown t =
    Mutex.lock t.mutex;
    (* Never tear down a pool mid-job: wait for the in-flight [run] (which
       broadcasts [work_done] once it clears [busy]) to finish first. *)
    while t.busy do
      Condition.wait t.work_done t.mutex
    done;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]

  (* Spawn additional workers into a live pool, preserving every
     outstanding handle to it. New workers start waiting on the current
     generation, so growth is safe even while a job is in flight: they
     only pick up jobs submitted after the growth. *)
  let grow t ~domains:want =
    check_domains want;
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.grow: pool is shut down"
    end;
    let have = Array.length t.workers + 1 in
    if want > have then begin
      let generation = t.generation in
      let extra =
        Array.init (want - have) (fun i ->
            let id = have - 1 + i in
            Domain.spawn (fun () -> worker_loop t id generation))
      in
      t.workers <- Array.append t.workers extra
    end;
    Mutex.unlock t.mutex

  (* Chunks small enough that uneven per-item cost balances, large enough
     that the atomic claim is amortized. *)
  let default_chunk ~total ~participants =
    max 1 (min 1024 (total / (participants * 16)))

  let run ?chunk ?participants t ~total work =
    if total < 0 then invalid_arg "Pool.run: negative total";
    if total > 0 then begin
      let participants =
        match participants with
        | None -> domains t
        | Some p ->
            check_domains p;
            min p (domains t)
      in
      let chunk =
        match chunk with
        | Some c -> if c <= 0 then invalid_arg "Pool.run: chunk must be positive" else c
        | None -> default_chunk ~total ~participants
      in
      let job =
        { work; next = Atomic.make 0; total; chunk; worker_slots = participants - 1 }
      in
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.run: pool is shut down"
      end;
      if t.busy then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.run: pool is already running a job"
      end;
      t.busy <- true;
      t.failed <- None;
      t.job <- Some job;
      t.active <- job.worker_slots;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      (* The submitting domain is a participant too. *)
      (try run_chunks t job with e -> note_failure t e);
      Mutex.lock t.mutex;
      while t.active > 0 do
        Condition.wait t.work_done t.mutex
      done;
      t.job <- None;
      t.busy <- false;
      (* Wake anyone (e.g. [shutdown]) waiting for the pool to go idle. *)
      Condition.broadcast t.work_done;
      let failed = t.failed in
      t.failed <- None;
      Mutex.unlock t.mutex;
      match failed with Some e -> raise e | None -> ()
    end

  (* The shared persistent pool: spawned on first use, kept alive for the
     process, grown in place (never shrunk, never respawned — previously
     obtained handles stay valid) when a caller asks for more domains. *)
  let global_pool : t option ref = ref None
  let global_mutex = Mutex.create ()

  let global ?domains:requested () =
    let want =
      match requested with
      | Some d ->
          check_domains d;
          d
      | None -> default_domains ()
    in
    Mutex.lock global_mutex;
    let pool =
      match !global_pool with
      | Some p ->
          if domains p < want then grow p ~domains:want;
          p
      | None ->
          let p = create ~domains:want in
          global_pool := Some p;
          at_exit (fun () ->
              Mutex.lock global_mutex;
              (match !global_pool with Some p -> shutdown p | None -> ());
              global_pool := None;
              Mutex.unlock global_mutex);
          p
    in
    Mutex.unlock global_mutex;
    pool
end

(* ------------------------------------------------------------------ *)

let ground_truth ?pool ?domains ?fuel golden =
  let domains_requested = match domains with Some d -> d | None -> default_domains () in
  check_domains domains_requested;
  if domains_requested = 1 && pool = None then Ground_truth.run ?fuel golden
  else begin
    let pool, participants =
      match pool with
      | Some p -> (p, min domains_requested (Pool.domains p))
      | None -> (Pool.global ~domains:domains_requested (), domains_requested)
    in
    let total = Golden.cases golden in
    let outcomes = Bytes.create total in
    (* Work items are dense case indices; each participant writes a
       disjoint byte range, so Bytes.unsafe_set is race-free. *)
    Pool.run pool ~participants ~total (fun lo hi ->
        for case = lo to hi - 1 do
          Bytes.unsafe_set outcomes case (Ground_truth.case_byte ?fuel golden case)
        done);
    Ground_truth.of_outcomes golden outcomes
  end

let run_cases ?pool ?domains golden cases =
  let domains_requested = match domains with Some d -> d | None -> default_domains () in
  check_domains domains_requested;
  if domains_requested = 1 && pool = None then Sample_run.run_cases golden cases
  else begin
    let pool, participants =
      match pool with
      | Some p -> (p, min domains_requested (Pool.domains p))
      | None -> (Pool.global ~domains:domains_requested (), domains_requested)
    in
    let total = Array.length cases in
    let placeholder =
      {
        Sample_run.fault = Ftb_trace.Fault.make ~site:0 ~bit:0;
        outcome = Ftb_trace.Runner.Masked;
        crash_reason = None;
        injected_error = 0.;
        propagation = None;
      }
    in
    let results = Array.make total placeholder in
    Pool.run pool ~participants ~total (fun lo hi ->
        for i = lo to hi - 1 do
          results.(i) <- Sample_run.run_case golden cases.(i)
        done);
    results
  end
