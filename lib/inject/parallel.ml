module Golden = Ftb_trace.Golden

let default_domains () = min 8 (Domain.recommended_domain_count ())

let check_domains domains =
  if domains <= 0 then invalid_arg "Parallel: domains must be positive"

(* Shard [0, total) into [domains] contiguous chunks and run [work lo hi]
   on each, the last chunk on the calling domain. *)
let shard ~domains ~total work =
  let chunk d = (d * total / domains, (d + 1) * total / domains) in
  let spawned =
    List.init (domains - 1) (fun d ->
        let lo, hi = chunk d in
        Domain.spawn (fun () -> work lo hi))
  in
  let lo, hi = chunk (domains - 1) in
  work lo hi;
  List.iter Domain.join spawned

let ground_truth ?domains ?fuel golden =
  let domains = match domains with Some d -> d | None -> default_domains () in
  check_domains domains;
  if domains = 1 then Ground_truth.run ?fuel golden
  else begin
    let total = Golden.cases golden in
    let outcomes = Bytes.create total in
    (* Each domain writes a disjoint byte range; Bytes.unsafe_set on
       disjoint indices is race-free. *)
    shard ~domains ~total (fun lo hi ->
        for case = lo to hi - 1 do
          Bytes.unsafe_set outcomes case (Ground_truth.case_byte ?fuel golden case)
        done);
    Ground_truth.of_outcomes golden outcomes
  end

let run_cases ?domains golden cases =
  let domains = match domains with Some d -> d | None -> default_domains () in
  check_domains domains;
  if domains = 1 then Sample_run.run_cases golden cases
  else begin
    let total = Array.length cases in
    let placeholder =
      {
        Sample_run.fault = Ftb_trace.Fault.make ~site:0 ~bit:0;
        outcome = Ftb_trace.Runner.Masked;
        crash_reason = None;
        injected_error = 0.;
        propagation = None;
      }
    in
    let results = Array.make total placeholder in
    shard ~domains ~total (fun lo hi ->
        for i = lo to hi - 1 do
          results.(i) <- Sample_run.run_case golden cases.(i)
        done);
    results
  end
