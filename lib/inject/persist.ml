module Ctx = Ftb_trace.Ctx
module Golden = Ftb_trace.Golden
module Runner = Ftb_trace.Runner
module Fault = Ftb_trace.Fault

exception Format_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Format_error msg)) fmt

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected), table-driven.                        *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Hot path: checkpoints and cache profiles checksum tens of KB per
   call, and the cache's full-hit serve latency is a few such passes —
   a manual loop with unchecked accesses (both indices are in range by
   construction) runs ~3x faster than a closure-based iteration. *)
let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to String.length s - 1 do
    c :=
      Array.unsafe_get table
        ((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* All writes go through a temp-file + atomic rename so a killed process can
   never leave a truncated campaign or samples file behind: readers see
   either the previous complete file or the new complete file. The temp
   file is unlinked in a finaliser, so no failure mode between its creation
   and the rename — including a failing [close_out] or [Sys.rename] — can
   leak it; after a successful rename the unlink is a no-op. *)
let with_out_atomic path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      (match f oc with
      | () -> close_out oc
      | exception e ->
          close_out_noerr oc;
          raise e);
      Sys.rename tmp path)

(* ------------------------------------------------------------------ *)
(* Integrity envelope: a checksummed, versioned wrapper around a whole
   durable artifact. The first line declares the payload length and its
   CRC32, so a torn write (rename survived, data did not), a truncation,
   or any flipped byte is detected before a single payload byte is
   trusted. Files written before the envelope existed do not start with
   the envelope magic and are returned as-is — legacy artifacts keep
   loading, they just carry no integrity evidence. *)

let envelope_magic = "ftb-envelope-v1"

let save_enveloped ~path f =
  let buf = Buffer.create 4096 in
  f buf;
  let payload = Buffer.contents buf in
  with_out_atomic path (fun oc ->
      Printf.fprintf oc "%s %d %08x\n" envelope_magic (String.length payload)
        (crc32 payload);
      output_string oc payload)

let read_file path =
  let ic =
    try open_in_bin path with Sys_error msg -> fail "%s: cannot open: %s" path msg
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_enveloped contents =
  String.length contents > String.length envelope_magic
  && String.sub contents 0 (String.length envelope_magic) = envelope_magic

let load_enveloped ~path =
  let contents = read_file path in
  if not (is_enveloped contents) then contents
  else begin
    let nl =
      match String.index_opt contents '\n' with
      | Some nl -> nl
      | None -> fail "%s:1: truncated envelope header" path
    in
    let header = String.sub contents 0 nl in
    (match String.split_on_char ' ' header with
    | [ _magic; length; crc ] ->
        let declared_length =
          match int_of_string_opt length with
          | Some n when n >= 0 -> n
          | Some _ | None -> fail "%s:1: bad envelope payload length %S" path length
        in
        let declared_crc =
          match int_of_string_opt ("0x" ^ crc) with
          | Some c -> c
          | None -> fail "%s:1: bad envelope checksum %S" path crc
        in
        let payload_length = String.length contents - nl - 1 in
        if payload_length <> declared_length then
          fail "%s: torn or truncated artifact (%d payload bytes, envelope declares %d)"
            path payload_length declared_length;
        let payload = String.sub contents (nl + 1) payload_length in
        let actual = crc32 payload in
        if actual <> declared_crc then
          fail "%s: checksum mismatch (stored %08x, computed %08x) — artifact is corrupt"
            path declared_crc actual;
        payload
    | _ -> fail "%s:1: malformed envelope header %S" path header)
  end

(* Corrupt artifacts are preserved for post-mortem instead of deleted:
   they move into a [quarantine/] sibling directory, freeing the original
   path for a rebuilt artifact. Quarantine never throws — failing to
   preserve evidence must not block recovery. *)
let quarantine ~path =
  if not (Sys.file_exists path) then None
  else begin
    let dir = Filename.concat (Filename.dirname path) "quarantine" in
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    let base = Filename.basename path in
    let rec candidate n =
      let dest =
        if n = 0 then Filename.concat dir base
        else Filename.concat dir (Printf.sprintf "%s.%d" base n)
      in
      if Sys.file_exists dest && n < 10_000 then candidate (n + 1) else dest
    in
    let dest = candidate 0 in
    match Sys.rename path dest with
    | () -> Some dest
    | exception Sys_error _ -> None
  end

(* Readers carry the source path and a running line counter so every parse
   error is attributed as "path:line: message". *)
type reader = { path : string; ic : in_channel; mutable line : int }

let fail_at r fmt =
  Printf.ksprintf
    (fun msg -> raise (Format_error (Printf.sprintf "%s:%d: %s" r.path r.line msg)))
    fmt

let with_reader path f =
  let ic =
    try open_in_bin path with Sys_error msg -> fail "%s: cannot open: %s" path msg
  in
  let r = { path; ic; line = 0 } in
  Fun.protect ~finally:(fun () -> close_in r.ic) (fun () -> f r)

let input_line_exn r what =
  match input_line r.ic with
  | line ->
      r.line <- r.line + 1;
      line
  | exception End_of_file -> fail_at r "unexpected end of file while reading %s" what

(* ------------------------------------------------------------------ *)
(* Ground truth: header + raw outcome bytes.                           *)

let gt_magic_v1 = "ftb-ground-truth-v1"
let gt_magic = "ftb-ground-truth-v2"

let save_ground_truth ~path gt =
  let golden = gt.Ground_truth.golden in
  with_out_atomic path (fun oc ->
      Printf.fprintf oc "%s %s %d\n" gt_magic
        golden.Golden.program.Ftb_trace.Program.name (Golden.sites golden);
      output_bytes oc gt.Ground_truth.outcomes)

let load_ground_truth ~path golden =
  with_reader path (fun r ->
      let header = input_line_exn r "ground-truth header" in
      (match String.split_on_char ' ' header with
      | [ magic; name; sites ] ->
          if magic <> gt_magic && magic <> gt_magic_v1 then
            fail_at r "bad magic %S (expected %s or %s)" magic gt_magic gt_magic_v1;
          if name <> golden.Golden.program.Ftb_trace.Program.name then
            fail_at r "campaign is for program %S, golden run is %S" name
              golden.Golden.program.Ftb_trace.Program.name;
          let stored_sites =
            match int_of_string_opt sites with
            | Some n -> n
            | None -> fail_at r "bad site count %S" sites
          in
          if stored_sites <> Golden.sites golden then
            fail_at r "campaign has %d sites, golden run has %d" stored_sites
              (Golden.sites golden)
      | _ -> fail_at r "malformed header %S" header);
      let total = Golden.cases golden in
      let outcomes = Bytes.create total in
      (try really_input r.ic outcomes 0 total
       with End_of_file -> fail_at r "truncated outcome data");
      (try Ground_truth.of_outcomes golden outcomes
       with Invalid_argument msg -> fail_at r "%s" msg))

(* ------------------------------------------------------------------ *)
(* Samples: header + one line per experiment.                          *)

let samples_magic_v1 = "ftb-samples-v1"
let samples_magic = "ftb-samples-v2"

(* v2 refines the v1 "crash" tag with the taxonomy reason; v1 files load
   with every crash reported as a generic exception crash. *)
let outcome_tag (outcome : Runner.outcome) reason =
  match (outcome, reason) with
  | Runner.Masked, _ -> "masked"
  | Runner.Sdc, _ -> "sdc"
  | Runner.Crash, Some Ctx.Nan_value -> "crash-nan"
  | Runner.Crash, Some Ctx.Inf_value -> "crash-inf"
  | Runner.Crash, Some Ctx.Fuel_exhausted -> "crash-fuel"
  | Runner.Crash, (Some Ctx.Exception_raised | None) -> "crash-exn"

let outcome_of_tag r = function
  | "masked" -> (Runner.Masked, None)
  | "sdc" -> (Runner.Sdc, None)
  | "crash" (* v1 *) | "crash-exn" -> (Runner.Crash, Some Ctx.Exception_raised)
  | "crash-nan" -> (Runner.Crash, Some Ctx.Nan_value)
  | "crash-inf" -> (Runner.Crash, Some Ctx.Inf_value)
  | "crash-fuel" -> (Runner.Crash, Some Ctx.Fuel_exhausted)
  | tag -> fail_at r "unknown outcome tag %S" tag

let save_samples ~path ~name samples =
  with_out_atomic path (fun oc ->
      Printf.fprintf oc "%s %s %d\n" samples_magic name (Array.length samples);
      Array.iter
        (fun (s : Sample_run.t) ->
          Printf.fprintf oc "%d %d %s %h" s.Sample_run.fault.Fault.site
            s.Sample_run.fault.Fault.bit
            (outcome_tag s.Sample_run.outcome s.Sample_run.crash_reason)
            s.Sample_run.injected_error;
          (match s.Sample_run.propagation with
          | None -> Printf.fprintf oc " -"
          | Some (start, deviations) ->
              Printf.fprintf oc " %d %d" start (Array.length deviations);
              Array.iter (fun d -> Printf.fprintf oc " %h" d) deviations);
          output_char oc '\n')
        samples)

let float_of_field r field =
  (* %h prints "inf"/"nan" for non-finite values; float_of_string accepts
     both plus the 0x... hexadecimal forms. *)
  match float_of_string_opt field with
  | Some v -> v
  | None -> fail_at r "bad float field %S" field

let parse_sample r line =
  match String.split_on_char ' ' line with
  | site :: bit :: tag :: injected :: rest ->
      let int_field what s =
        match int_of_string_opt s with Some v -> v | None -> fail_at r "bad %s %S" what s
      in
      let fault = Fault.make ~site:(int_field "site" site) ~bit:(int_field "bit" bit) in
      let outcome, crash_reason = outcome_of_tag r tag in
      let injected_error = float_of_field r injected in
      let propagation =
        match rest with
        | [ "-" ] -> None
        | start :: count :: deviations ->
            let start = int_field "start" start in
            let count = int_field "deviation count" count in
            if List.length deviations <> count then
              fail_at r "expected %d deviations, found %d" count (List.length deviations);
            Some (start, Array.of_list (List.map (float_of_field r) deviations))
        | _ -> fail_at r "malformed propagation in %S" line
      in
      { Sample_run.fault; outcome; crash_reason; injected_error; propagation }
  | _ -> fail_at r "malformed sample line %S" line

let load_samples ~path ~name =
  with_reader path (fun r ->
      let header = input_line_exn r "samples header" in
      let count =
        match String.split_on_char ' ' header with
        | [ magic; stored_name; count ] ->
            if magic <> samples_magic && magic <> samples_magic_v1 then
              fail_at r "bad magic %S (expected %s or %s)" magic samples_magic
                samples_magic_v1;
            if stored_name <> name then
              fail_at r "samples are for program %S, expected %S" stored_name name;
            (match int_of_string_opt count with
            | Some n when n >= 0 -> n
            | Some _ | None -> fail_at r "bad sample count %S" count)
        | _ -> fail_at r "malformed header %S" header
      in
      Array.init count (fun i ->
          parse_sample r (input_line_exn r (Printf.sprintf "sample %d" i))))
