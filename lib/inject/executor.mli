(** Batched campaign executor: prefix-snapshot bit batching.

    The 64 cases of one injection site share an identical injection-free
    prefix — every dynamic instruction before the site produces its golden
    value no matter which bit the case will flip. An exhaustive campaign
    re-executes that prefix 64 times per site for nothing. For programs
    that carry the [resumable] capability ({!Ftb_trace.Program.t}, today
    the compiled IR machine of [Ftb_ir]), this executor runs the prefix
    once under a counting context, snapshots the interpreter state at the
    injection point, and replays only the suffix for each bit:
    O(sites × (prefix + 64 × suffix)) instead of O(64 × sites × run).

    Dependent-cone replay goes one step further. Programs built by
    [Ftb_ir.Pipeline.to_program] additionally carry a cone plan
    ({!Ftb_trace.Program.cone}): per injection site, the precomputed
    forward slice of the site's event through the golden dataflow. Where
    the plan is exact (the cone stays off float branches and is small),
    a case is classified by recomputing only the cone members against
    recorded golden operands — no prefix, no suffix, no output
    materialization. Sites the plan declines, fuel-limited campaigns, and
    stochastic models all fall back to the snapshot/per-case paths.
    [?cone:false] disables the fast path entirely (differential testing,
    benchmarking the tiers against each other).

    Correctness bar: outcome bytes are bit-identical to the serial engine
    ({!Ground_truth.run}) — the snapshot carries the exact context
    position and remaining fuel, the replay uses the same classification
    path ({!Ftb_trace.Runner.outcome_of_run_contained}), cone replay
    reproduces guard crashes and norm classification exactly, and
    programs without either capability transparently fall back to
    per-case full re-execution. *)

val site_into :
  ?fuel:int ->
  ?cone:bool ->
  Ftb_trace.Golden.t ->
  site:int ->
  Bytes.t ->
  pos:int ->
  unit
(** [site_into golden ~site buf ~pos] computes the outcome bytes of the
    site's 64 bit-flip cases (bit 0 first) into [buf.[pos..pos+63]],
    via cone replay when the program carries an exact plan for the site
    (and [cone], default [true], permits), else batching over one shared
    prefix when the program is resumable. A prefix crash (the fuel
    watchdog firing before the injection point) is replicated to all 64
    bits — each case would follow the identical path to the identical
    crash. Raises [Invalid_argument] when [site] is out of range or the
    buffer slice does not fit. *)

val range_into :
  ?fuel:int ->
  ?cone:bool ->
  Ftb_trace.Golden.t ->
  lo:int ->
  hi:int ->
  Bytes.t ->
  off:int ->
  unit
(** [range_into golden ~lo ~hi buf ~off] computes outcome bytes for the
    dense case range [lo, hi) into [buf] starting at [off] (case [c] lands
    at [off + c - lo]). Whole sites inside the range are batched via
    {!site_into}; ragged edges at non-site-aligned bounds (shard
    boundaries) run per-case. The campaign engine's default shard runner
    is exactly this. *)

val site_into_model :
  ?fuel:int ->
  ?cone:bool ->
  Models.spec ->
  Ftb_trace.Golden.t ->
  site:int ->
  Bytes.t ->
  pos:int ->
  unit
(** {!site_into} generalized to an arbitrary fault model: computes the
    site's [Models.spec_width] outcome bytes. Discrete models take the
    cone fast path where exact (their corruption is a pure function of
    the golden value) and otherwise batch over the shared prefix at their
    own width; stochastic models (and non-resumable programs) fall back
    to per-case {!Ground_truth.case_byte_model}. [Bit_flip_64] dispatches
    to {!site_into} itself — byte- and cost-identical. *)

val range_into_model :
  ?fuel:int ->
  ?cone:bool ->
  Models.spec ->
  Ftb_trace.Golden.t ->
  lo:int ->
  hi:int ->
  Bytes.t ->
  off:int ->
  unit
(** {!range_into} over the model's dense case space
    ([sites * spec_width]); whole sites batch via {!site_into_model},
    ragged shard edges run per-case. The campaign engine's default shard
    runner under a non-default model. *)

val ground_truth :
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  ?fuel:int ->
  ?cone:bool ->
  ?batched:bool ->
  Ftb_trace.Golden.t ->
  Ground_truth.t
(** Exhaustive campaign over the full sample space, batched and pooled:
    sites are work-stolen one at a time off the domain pool ([pool]
    defaults to {!Parallel.Pool.global}, [domains] to
    {!Parallel.default_domains}; [domains:1] without an explicit pool runs
    serially on the calling domain). [batched:false] forces per-case full
    re-execution (the [Parallel.ground_truth] strategy) and [cone:false]
    keeps batching but disables cone replay — useful for benchmarking the
    engine tiers against each other. Outcome bytes are bit-identical
    across every combination of batched × pooled × cone. *)

val ground_truth_model :
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  ?fuel:int ->
  ?cone:bool ->
  ?batched:bool ->
  Models.spec ->
  Ftb_trace.Golden.t ->
  Ground_truth.t
(** {!ground_truth} under an arbitrary fault model ([Bit_flip_64]
    dispatches to it exactly). The result's byte width is the model's
    [spec_width]. *)
