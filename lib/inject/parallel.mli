(** Multicore campaign execution (OCaml 5 domains).

    A fault-injection campaign is embarrassingly parallel: every case is an
    independent re-execution of the program against immutable inputs. This
    module shards the case space across domains. It requires the program
    body to be re-entrant — true of every kernel in this repository (bodies
    allocate fresh working state per run and only read their captured
    inputs), and a requirement documented on {!Ftb_trace.Program.t}'s
    [body].

    Determinism: results are identical to the serial runners — each case's
    execution is self-contained, so scheduling cannot change outcomes. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] capped to 8 — campaign sharding
    saturates memory bandwidth well before high core counts. *)

val ground_truth :
  ?domains:int -> ?fuel:int -> Ftb_trace.Golden.t -> Ground_truth.t
(** Parallel equivalent of {!Ground_truth.run}. [domains] defaults to
    {!default_domains}; 1 falls back to the serial path. [fuel] is the
    per-run step budget of the divergence watchdog. Raises
    [Invalid_argument] when [domains <= 0]. Outcome bytes are bit-identical
    to the serial path for any domain count — both repeat
    {!Ground_truth.case_byte}. *)

val run_cases :
  ?domains:int -> Ftb_trace.Golden.t -> int array -> Sample_run.t array
(** Parallel equivalent of {!Sample_run.run_cases} (same order as the
    input case array). *)
