(** Multicore campaign execution (OCaml 5 domains).

    A fault-injection campaign is embarrassingly parallel: every case is an
    independent re-execution of the program against immutable inputs. This
    module provides a persistent domain {!Pool} with a work-stealing
    scheduler, plus campaign entry points ({!ground_truth}, {!run_cases})
    that run on it. It requires the program body to be re-entrant — true of
    every kernel in this repository (bodies allocate fresh working state per
    run and only read their captured inputs), and a requirement documented
    on {!Ftb_trace.Program.t}'s [body].

    Determinism: results are identical to the serial runners — each case's
    execution is self-contained and every worker writes disjoint output
    slots, so scheduling cannot change outcomes. *)

val default_domains : unit -> int
(** Default campaign width. Precedence:
    + the [FTB_DOMAINS] environment variable, when set and non-empty (must
      be a positive integer; anything else raises [Invalid_argument]; an
      empty value behaves as unset);
    + otherwise [Domain.recommended_domain_count ()] capped to 8 — campaign
      sharding saturates memory bandwidth well before high core counts.

    CLI [--domains] flags override both (they bypass this function). *)

val shard : domains:int -> total:int -> (int -> int -> unit) -> unit
(** [shard ~domains ~total work] splits [0, total) into [domains]
    contiguous chunks and runs [work lo hi] for each, one per domain (the
    last chunk on the calling domain). Static chunking — prefer
    {!Pool.run} for campaign work, where per-case cost is uneven. All
    spawned domains are joined even if [work] raises on the calling
    domain; the first exception raised (caller first, then workers in
    spawn order) is re-raised after every domain has been joined. Raises
    [Invalid_argument] when [domains <= 0]. *)

(** Persistent worker domains with atomic-counter work stealing.

    Spawning a domain costs far more than a typical injection case, so the
    pool spawns its workers once and keeps them alive across campaign
    calls; idle workers block on a condition variable. Work is distributed
    dynamically: participants claim fixed-size chunks of the item range
    off a shared atomic counter, so cheap items (cases that crash
    immediately) and expensive items (fuel-bound divergent runs) balance
    without static partitioning. *)
module Pool : sig
  type t

  val create : domains:int -> t
  (** Spawn a pool with [domains - 1] worker domains (the submitting
      domain is the remaining participant). Raises [Invalid_argument] when
      [domains <= 0]. *)

  val domains : t -> int
  (** Total parallelism: worker domains + the submitting domain. *)

  val run : ?chunk:int -> ?participants:int -> t -> total:int -> (int -> int -> unit) -> unit
  (** [run t ~total work] executes [work lo hi] over disjoint chunks
      covering [0, total), on up to [participants] domains (default: all
      of them; capped to [domains t]). The calling domain participates and
      the call returns only after all chunks have run. [chunk] overrides
      the claimed-chunk size (default: scaled to [total/participants], at
      most 1024). If any invocation of [work] raises, remaining chunks are
      abandoned and the first exception observed is re-raised after all
      participants have quiesced. Not re-entrant: raises
      [Invalid_argument] if the pool is already running a job or has been
      shut down. *)

  val shutdown : t -> unit
  (** Stop and join all worker domains. Blocks until any in-flight job
      has completed. Idempotent. *)

  val global : ?domains:int -> unit -> t
  (** The process-wide shared pool, created on first use and reused by
      every subsequent call ([at_exit] joins it). Grows in place (extra
      workers are spawned into the same pool, so previously obtained
      handles remain valid) when asked for more domains than it currently
      has; never shrinks — use [run ~participants] to run narrower jobs.
      [domains] defaults to {!default_domains}. *)
end

val ground_truth :
  ?pool:Pool.t ->
  ?domains:int ->
  ?fuel:int ->
  Ftb_trace.Golden.t ->
  Ground_truth.t
(** Parallel equivalent of {!Ground_truth.run}: cases are work-stolen off
    the pool ([pool] defaults to {!Pool.global}; [domains] caps the
    participants and defaults to {!default_domains}). [domains:1] without
    an explicit pool falls back to the serial path. [fuel] is the per-run
    step budget of the divergence watchdog. Raises [Invalid_argument] when
    [domains <= 0]. Outcome bytes are bit-identical to the serial path for
    any domain count — both repeat {!Ground_truth.case_byte}. For
    snapshot-capable programs prefer [Executor.ground_truth], which batches
    the 64 bit flips of each site over one shared prefix. *)

val run_cases :
  ?pool:Pool.t ->
  ?domains:int ->
  Ftb_trace.Golden.t ->
  int array ->
  Sample_run.t array
(** Parallel equivalent of {!Sample_run.run_cases} (same order as the
    input case array), work-stolen off the pool like {!ground_truth}. *)
