(** Campaign persistence.

    Exhaustive campaigns are the expensive artifact of a study — minutes to
    hours of compute — while everything downstream (boundaries, metrics,
    studies) is seconds. This module saves campaign results and sampled
    experiments to disk so analyses can be re-run, shared and resumed
    without re-injection.

    Formats are versioned, self-describing text headers followed by data;
    floats are serialised in hexadecimal notation ([%h]) so round-trips are
    bit-exact. The current format is v2, which records the crash taxonomy
    (outcome bytes '\003'..'\005' for NaN / Inf / fuel crashes and
    reason-carrying sample tags); v1 files are still loadable — their
    crashes decode as generic exception crashes. Loading validates the
    stored program name and site count against the golden run it is paired
    with — a mismatch means the program or its inputs changed and the
    cached campaign is stale.

    All writes are atomic (temp file + rename): an interrupted writer can
    never leave a truncated file behind. *)

exception Format_error of string
(** Raised on parse errors, version mismatches, or metadata that does not
    match the paired golden run. Messages are prefixed with the offending
    [path:line]. *)

val with_out_atomic : string -> (out_channel -> unit) -> unit
(** [with_out_atomic path f] runs [f] on a channel to [path ^ ".tmp"], then
    atomically renames it over [path]. On exception the temp file is
    removed and [path] is untouched. Exposed for other persistence layers
    (the campaign checkpoint writer). *)

(** {1 Integrity envelope}

    Atomic writes guarantee a file is never half-written by a clean
    writer, but they cannot defend against what the paper studies: silent
    corruption of durable state after the write (flipped bits, torn
    sectors, hostile edits). The envelope adds that defence — a versioned
    header [ftb-envelope-v1 <payload-bytes> <crc32>] followed by the raw
    payload, verified in full before any payload byte is trusted. CRC32
    detects every single-byte corruption and all burst errors up to 32
    bits, which covers the realistic failure modes of local state files. *)

val crc32 : string -> int
(** CRC-32 (IEEE, reflected) of a byte string, in [0, 0xFFFFFFFF]. *)

val save_enveloped : path:string -> (Buffer.t -> unit) -> unit
(** [save_enveloped ~path f] collects [f]'s payload in a buffer, then
    atomically writes header + payload. Composes the envelope with
    {!with_out_atomic}: readers see the old artifact, or the complete new
    one, never a mix. *)

val load_enveloped : path:string -> string
(** Read a file written by {!save_enveloped}, verify length and checksum,
    and return the payload. A file that does not start with the envelope
    magic is a pre-envelope legacy artifact and is returned whole,
    unverified. Raises {!Format_error} on length or checksum mismatch —
    the caller decides whether to {!quarantine} and rebuild. *)

val quarantine : path:string -> string option
(** Move a corrupt artifact into a [quarantine/] directory next to it
    (never overwriting earlier evidence), freeing [path] for a rebuilt
    replacement. Returns the quarantined path, or [None] when [path] does
    not exist or the move failed — quarantine never raises, because
    failing to preserve evidence must not block recovery. *)

val save_ground_truth : path:string -> Ground_truth.t -> unit
(** Write a campaign's outcomes (format v2, atomic). *)

val load_ground_truth : path:string -> Ftb_trace.Golden.t -> Ground_truth.t
(** Read a campaign saved by {!save_ground_truth} (v2, or a legacy v1
    file) and bind it to the given golden run. *)

val save_samples : path:string -> name:string -> Sample_run.t array -> unit
(** Write sampled experiments, including their propagation data and crash
    reasons (format v2, atomic). [name] is the program name recorded in
    the header. *)

val load_samples : path:string -> name:string -> Sample_run.t array
(** Read experiments saved by {!save_samples} (v2, or a legacy v1 file);
    [name] must match the header. *)
