module Fault = Ftb_trace.Fault
module Runner = Ftb_trace.Runner

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

(* Binary layout (little-endian throughout):

     magic   "ftbS1"                      5 bytes
     count   int32                        4 bytes
     then per sample:
       site            int32             4 bytes
       bit             byte              1 byte
       outcome byte    byte              1 byte   (Ground_truth encoding)
       injected_error  int64 float bits  8 bytes
       has_propagation byte              1 byte   (0 | 1)
       [start          int32             4 bytes
        len            int32             4 bytes
        deviations     len * int64 float bits]

   The float fields travel as raw IEEE-754 images, so encode/decode is
   bit-exact — the whole point: a sample blob computed by a fleet worker
   must fold into the exact boundary the serial oracle infers. *)

let magic = "ftbS1"

let outcome_byte (s : Sample_run.t) =
  match (s.Sample_run.outcome, s.Sample_run.crash_reason) with
  | Runner.Masked, _ -> '\000'
  | Runner.Sdc, _ -> '\001'
  | Runner.Crash, Some reason -> Ground_truth.crash_byte reason
  | Runner.Crash, None -> '\002'

let encode (samples : Sample_run.t array) =
  let buf = Buffer.create (64 + (32 * Array.length samples)) in
  Buffer.add_string buf magic;
  Buffer.add_int32_le buf (Int32.of_int (Array.length samples));
  Array.iter
    (fun (s : Sample_run.t) ->
      let fault = s.Sample_run.fault in
      Buffer.add_int32_le buf (Int32.of_int fault.Fault.site);
      Buffer.add_char buf (Char.chr fault.Fault.bit);
      Buffer.add_char buf (outcome_byte s);
      Buffer.add_int64_le buf (Int64.bits_of_float s.Sample_run.injected_error);
      match s.Sample_run.propagation with
      | None -> Buffer.add_char buf '\000'
      | Some (start, deviations) ->
          Buffer.add_char buf '\001';
          Buffer.add_int32_le buf (Int32.of_int start);
          Buffer.add_int32_le buf (Int32.of_int (Array.length deviations));
          Array.iter
            (fun d -> Buffer.add_int64_le buf (Int64.bits_of_float d))
            deviations)
    samples;
  Buffer.contents buf

let decode blob =
  let len = String.length blob in
  let pos = ref 0 in
  let need n what =
    if !pos + n > len then fail "truncated blob: %s at byte %d" what !pos
  in
  let byte what =
    need 1 what;
    let c = String.unsafe_get blob !pos in
    incr pos;
    c
  in
  let int32 what =
    need 4 what;
    let v = Int32.to_int (String.get_int32_le blob !pos) in
    pos := !pos + 4;
    v
  in
  let float64 what =
    need 8 what;
    let v = Int64.float_of_bits (String.get_int64_le blob !pos) in
    pos := !pos + 8;
    v
  in
  if len < String.length magic || String.sub blob 0 (String.length magic) <> magic then
    fail "bad magic";
  pos := String.length magic;
  let count = int32 "count" in
  if count < 0 then fail "negative sample count %d" count;
  let samples =
    Array.init count (fun _ ->
        let site = int32 "site" in
        let bit = Char.code (byte "bit") in
        if site < 0 then fail "negative site %d" site;
        let fault =
          match Fault.make ~site ~bit with
          | fault -> fault
          | exception Invalid_argument msg -> fail "bad fault: %s" msg
        in
        let ob = byte "outcome" in
        let outcome =
          match Ground_truth.outcome_of_byte ob with
          | outcome -> outcome
          | exception Invalid_argument msg -> fail "bad outcome byte: %s" msg
        in
        let crash_reason = Ground_truth.crash_reason_of_byte ob in
        let injected_error = float64 "injected_error" in
        let propagation =
          match byte "propagation flag" with
          | '\000' -> None
          | '\001' ->
              let start = int32 "propagation start" in
              let n = int32 "propagation length" in
              if start < 0 then fail "negative propagation start %d" start;
              if n < 0 || n > (len - !pos) / 8 then
                fail "bad propagation length %d" n;
              Some (start, Array.init n (fun _ -> float64 "deviation"))
          | c -> fail "bad propagation flag byte %d" (Char.code c)
        in
        {
          Sample_run.fault;
          outcome;
          crash_reason;
          injected_error;
          propagation;
        })
  in
  if !pos <> len then fail "trailing garbage: %d bytes past sample %d" (len - !pos) count;
  samples

let encoded_size_upper_bound ~sites =
  (* A masked sample's propagation can cover every site past the fault:
     19 fixed bytes + flag + 8 header + 8 bytes per deviation. *)
  28 + (8 * sites)
