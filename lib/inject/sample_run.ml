module Fault = Ftb_trace.Fault
module Golden = Ftb_trace.Golden
module Runner = Ftb_trace.Runner

type t = {
  fault : Fault.t;
  outcome : Runner.outcome;
  crash_reason : Ftb_trace.Ctx.crash_reason option;
  injected_error : float;
  propagation : (int * float array) option;
}

(* One reusable trace sink per domain: a propagation run fills two
   growable buffers with the faulty trace, and campaign loops run
   thousands of cases per domain — reusing the buffers keeps the hot loop
   free of per-case trace allocation. [run_propagation] copies anything it
   returns, so the sink never escapes. *)
let domain_sink = Domain.DLS.new_key (fun () -> Ftb_trace.Ctx.create_sink ())

let of_propagation fault (prop : Runner.propagation) =
  let result = prop.Runner.result in
  let propagation =
    match result.Runner.outcome with
    | Runner.Masked -> Some (prop.Runner.start, prop.Runner.deviations)
    | Runner.Sdc | Runner.Crash -> None
  in
  {
    fault;
    outcome = result.Runner.outcome;
    crash_reason = result.Runner.crash_reason;
    injected_error = result.Runner.injected_error;
    propagation;
  }

let run_case ?fuel golden case =
  let fault = Fault.of_case case in
  let sink = Domain.DLS.get domain_sink in
  of_propagation fault (Runner.run_propagation ?fuel ~sink golden fault)

let run_case_model ?fuel (spec : Models.spec) golden case =
  match spec.Models.model with
  | Models.Bit_flip_64 ->
      (* The default spec must stay byte-identical to every pre-model
         sampling path, so it goes through the exact same runner. *)
      run_case ?fuel golden case
  | _ ->
      let width = Models.spec_width spec in
      let fault = Fault.make ~site:(case / width) ~bit:(case mod width) in
      let sink = Domain.DLS.get domain_sink in
      of_propagation fault
        (Runner.run_propagation_custom ?fuel ~sink golden ~fault
           ~corrupt:(Models.case_corrupt spec ~case))

let run_cases ?progress ?fuel golden cases =
  let total = Array.length cases in
  Array.mapi
    (fun i case ->
      (match progress with
      | Some f when i land 0xFF = 0 -> f ~done_:i ~total
      | Some _ | None -> ());
      run_case ?fuel golden case)
    cases

let draw_uniform rng golden ~fraction =
  if not (fraction > 0. && fraction <= 1.) then
    invalid_arg "Sample_run.draw_uniform: fraction must be in (0, 1]";
  let n = Golden.cases golden in
  let k = max 1 (int_of_float (Float.ceil (fraction *. float_of_int n))) in
  let k = min k n in
  Ftb_util.Sampling.uniform rng ~n ~k

let count_outcomes samples =
  let masked = ref 0 and sdc = ref 0 and crash = ref 0 in
  Array.iter
    (fun s ->
      match s.outcome with
      | Runner.Masked -> incr masked
      | Runner.Sdc -> incr sdc
      | Runner.Crash -> incr crash)
    samples;
  (!masked, !sdc, !crash)
