(** Exhaustive fault-injection campaign results — the ground truth.

    One outcome per (site, bit) case of the complete sample space. The
    paper uses such campaigns both to *evaluate* the inference method and
    to build the brute-force boundary of §4.1. Outcomes are stored one byte
    per case; since the crash taxonomy the byte also records *why* a case
    crashed (NaN, Inf, escaped exception, or the fuel watchdog). Injected
    error magnitudes are not stored because they are a pure function of the
    golden value and the bit ({!injected_error}). *)

type t = private {
  golden : Ftb_trace.Golden.t;
  outcomes : Bytes.t;  (** one byte per case, dense {!Ftb_trace.Fault.to_case} order *)
}

type reason_counts = { nan : int; inf : int; exn : int; fuel : int }
(** Crash-taxonomy tallies: how many cases crashed for each reason. *)

val run :
  ?progress:(done_:int -> total:int -> unit) -> ?fuel:int -> Ftb_trace.Golden.t -> t
(** Run the complete campaign: [sites * 64] outcome-only executions, each
    contained ({!Ftb_trace.Runner.run_outcome_contained}) and bounded by
    the optional [fuel] watchdog. [progress] is called every few thousand
    cases. *)

val of_outcomes : ?width:int -> Ftb_trace.Golden.t -> Bytes.t -> t
(** Assemble a campaign result from raw outcome bytes (one of
    {!case_byte} per case, dense order). Used by the parallel campaign
    runner, the resumable campaign engine and the persistence layer;
    validates the length ([sites * width], default width 64) and byte
    values. Pass the fault model's {!Models.spec_width} as [width] for
    non-default campaigns. *)

val outcome_byte : Ftb_trace.Runner.outcome -> char
(** The stored byte of a bare outcome ('\000' masked, '\001' sdc, '\002'
    crash). Crashes written through this compatibility helper carry no
    taxonomy reason; prefer {!byte_of_result}. *)

val byte_of_result : Ftb_trace.Runner.result -> char
(** The stored byte of a classified run, including the crash reason:
    '\000' masked, '\001' sdc, '\002' crash/exception, '\003' crash/nan,
    '\004' crash/inf, '\005' crash/fuel. *)

val crash_byte : Ftb_trace.Ctx.crash_reason -> char
(** The stored byte of a crash with the given taxonomy reason (the Crash
    rows of {!byte_of_result}). The batched executor uses it to replicate
    a prefix crash — which happens before any injection — to all 64 bits
    of a site. *)

val outcome_of_byte : char -> Ftb_trace.Runner.outcome
(** Decode a stored byte; raises [Invalid_argument] on bytes outside
    '\000'..'\005'. All four crash bytes decode to [Crash]. *)

val crash_reason_of_byte : char -> Ftb_trace.Ctx.crash_reason option
(** The taxonomy reason encoded in a stored byte; [None] for masked/sdc. *)

val classify_case : Ftb_trace.Golden.t -> int -> Ftb_trace.Runner.outcome
(** Run one dense case and return its outcome (uncontained, unlimited —
    the historical unit of work; campaigns use {!case_byte}). *)

val case_byte : ?fuel:int -> Ftb_trace.Golden.t -> int -> char
(** Run one dense case contained and return its taxonomy-carrying outcome
    byte — the unit of work every campaign path (serial, parallel,
    checkpointed engine) repeats, guaranteeing bit-identical outcome bytes
    across all of them. *)

val case_byte_model : ?fuel:int -> Models.spec -> Ftb_trace.Golden.t -> int -> char
(** {!case_byte} generalized to an arbitrary fault model: run the dense
    case [case] of the model's case space (site [case / spec_width])
    contained, applying {!Models.case_corrupt}. For [Bit_flip_64] this is
    exactly {!case_byte} — byte-identical to every pre-model campaign
    path. Deterministic for stochastic models (the per-case RNG is
    derived, not threaded). *)

val outcome : t -> int -> Ftb_trace.Runner.outcome
(** Outcome of a dense case index. *)

val crash_reason : t -> int -> Ftb_trace.Ctx.crash_reason option
(** Crash-taxonomy reason of a dense case index; [None] unless the case
    crashed. Campaigns recorded before the taxonomy (format v1) report
    every crash as {!Ftb_trace.Ctx.Exception_raised}. *)

val outcome_of_fault : t -> Ftb_trace.Fault.t -> Ftb_trace.Runner.outcome

val cases : t -> int
(** Size of the sample space. *)

val injected_error : Ftb_trace.Golden.t -> Ftb_trace.Fault.t -> float
(** Error magnitude the fault injects: |flip(v) − v| for the golden value
    [v] at the fault's site, [infinity] when the flip is non-finite. This
    is exact for any run because execution is deterministic up to the
    injection point. *)

val injected_error_model : Models.spec -> Ftb_trace.Golden.t -> case:int -> float
(** {!injected_error} generalized to an arbitrary fault model:
    |corrupt(v) − v| for the model's corruption of the golden value at the
    case's site, [infinity] when non-finite. For [Bit_flip_64] this is
    exactly {!injected_error} of the case's fault — float-identical to
    every pre-model prediction path. Deterministic for stochastic models
    (the per-case corruption is derived from the dense case index). *)

val counts : t -> masked:int ref -> sdc:int ref -> crash:int ref -> unit
(** Accumulate global outcome counts into the given refs. *)

val crash_counts : t -> reason_counts
(** Break the campaign's crashes down by taxonomy reason. *)

val sdc_ratio : t -> float
(** Global [n_sdc / N] (§2.1). *)

val masked_ratio : t -> float
val crash_ratio : t -> float

val site_sdc_ratio : t -> float array
(** Per-site SDC ratio: fraction of the site's 64 flips that end in SDC —
    the per-instruction vulnerability profile of Figure 4. *)

val site_masked_count : t -> int array
(** Per-site number of masked flips. *)
