(** Alternative transient-fault models.

    The paper evaluates the canonical single-bit-flip model in 64-bit data
    (§2.1) and notes that real upsets also hit narrower datapaths and can
    span multiple bits. This module parameterises campaigns by fault model
    so a user can measure how sensitive a program's SDC profile is to the
    model assumption. Discrete models enumerate a fixed number of cases
    per site (like the 64 flips); stochastic models draw corruptions from
    an explicit RNG. *)

type t =
  | Bit_flip_64  (** the paper's model: one of 64 bit flips *)
  | Bit_flip_32
      (** a flip in the value rounded to single precision (32 cases) —
          models FP32 datapaths *)
  | Adjacent_burst_2
      (** two adjacent bits flipped together (63 cases) — a minimal
          multi-bit upset *)
  | Random_value of { lo : float; hi : float }
      (** the corrupted element is replaced by a uniform draw from
          [\[lo, hi)] — the "random value" model of several FI tools *)

val name : t -> string
val all_discrete : t list
(** [Bit_flip_64; Bit_flip_32; Adjacent_burst_2]. *)

val cases_per_site : t -> int option
(** Number of enumerable corruptions per site; [None] for stochastic
    models. *)

val corrupt : t -> rng:Ftb_util.Rng.t -> case:int -> float -> float
(** [corrupt model ~rng ~case v] applies the model's [case]-th corruption
    to [v]. Discrete models ignore [rng] and require
    [0 <= case < cases_per_site]; stochastic models ignore [case]. *)

val is_stochastic : t -> bool
(** [true] iff {!cases_per_site} is [None]. *)

val stochastic_width : int
(** Dense case-space width assigned to stochastic models so the campaign
    pipeline (shards, checkpoints, fleet leases) can enumerate them: 64
    replicas per site, matching the paper's model budget. *)

val width : t -> int
(** [cases_per_site] for discrete models, {!stochastic_width} for
    stochastic ones: the number of dense campaign cases per site. *)

type spec = { model : t; seed : int }
(** A fault model as a campaign parameter. [seed] feeds the
    deterministic per-case RNG derivation of stochastic models and is
    ignored by discrete ones. *)

val default_spec : spec
(** The paper's model: [{ model = Bit_flip_64; seed = 0 }]. *)

val spec_width : spec -> int
val total_cases : spec -> sites:int -> int
(** Dense campaign case count: [sites * spec_width spec]. *)

val model_equal : t -> t -> bool

val spec_equal : spec -> spec -> bool
(** Structural equality; the seed only participates for stochastic
    models (discrete corruption never reads it). *)

val spec_name : spec -> string
(** Human-readable name, including the seed for stochastic models. *)

val case_corrupt : spec -> case:int -> float -> float
(** [case_corrupt spec ~case] is the corruption applied by the dense
    campaign case [case] (site [case / spec_width], local case
    [case mod spec_width]). Total and deterministic: stochastic models
    draw from a fresh RNG seeded with [spec.seed lxor case], so the
    value is independent of evaluation order, shard boundaries, daemon
    restarts and fleet re-leases. *)

val spec_to_string : spec -> string
(** Single-token (space-free) encoding, safe inside space-split
    checkpoint headers; floats round-trip exactly via [%h]. *)

val spec_of_string : string -> (spec, string) result
(** Inverse of {!spec_to_string}; also accepts decimal floats and an
    omitted seed (default 0) in [random-value:LO:HI[:SEED]]. *)

type site_stats = {
  runs : int;
  masked : int;
  sdc : int;
  crash : int;
}

type campaign = {
  model : t;
  total : site_stats;  (** aggregate over all injections *)
  sdc_ratio : float;
  masked_ratio : float;
  crash_ratio : float;
}

val monte_carlo :
  ?samples_per_site:int ->
  Ftb_util.Rng.t ->
  Ftb_trace.Golden.t ->
  t ->
  campaign
(** Monte-Carlo campaign under a fault model: for every dynamic
    instruction, draw [samples_per_site] corruptions (default 4 — or every
    case when the model is discrete and has at most that many) and
    classify each outcome-only run. Deterministic given the RNG. *)

val compare_models :
  ?samples_per_site:int ->
  Ftb_util.Rng.t ->
  Ftb_trace.Golden.t ->
  t list ->
  campaign list
(** Run {!monte_carlo} for each model on the same golden run. *)
