(** Sampled fault-injection experiments with propagation data.

    A Monte-Carlo campaign draws a subset of the (site, bit) sample space
    and runs each case with tracing. Masked experiments keep their
    propagated per-instruction deviations (the input of Algorithm 1); SDC
    and Crash experiments keep only their injected error (SDC feeds the
    §3.5 filter operation). *)

type t = {
  fault : Ftb_trace.Fault.t;
  outcome : Ftb_trace.Runner.outcome;
  crash_reason : Ftb_trace.Ctx.crash_reason option;
      (** crash-taxonomy reason; [Some _] iff [outcome = Crash] *)
  injected_error : float;
  propagation : (int * float array) option;
      (** [(start, deviations)] — kept for Masked experiments only:
          [deviations.(j - start)] is the perturbation observed at dynamic
          instruction [j]. *)
}

val run_case : ?fuel:int -> Ftb_trace.Golden.t -> int -> t
(** Run one dense case index as a propagation experiment, optionally
    bounded by the [fuel] watchdog. *)

val run_case_model : ?fuel:int -> Models.spec -> Ftb_trace.Golden.t -> int -> t
(** {!run_case} generalized to an arbitrary fault model: run the dense
    case of the model's case space (site [case / spec_width], local bit
    [case mod spec_width]) with tracing, applying {!Models.case_corrupt}.
    For [Bit_flip_64] this is exactly {!run_case} — byte-identical to
    every pre-model sampling path. Deterministic for stochastic models. *)

val run_cases :
  ?progress:(done_:int -> total:int -> unit) ->
  ?fuel:int ->
  Ftb_trace.Golden.t ->
  int array ->
  t array
(** Run every given case. *)

val draw_uniform : Ftb_util.Rng.t -> Ftb_trace.Golden.t -> fraction:float -> int array
(** Uniform sample without replacement of [ceil (fraction * cases)] case
    indices. [fraction] must be in (0, 1]. *)

val count_outcomes : t array -> int * int * int
(** [(masked, sdc, crash)] tallies. *)
