module Ctx = Ftb_trace.Ctx
module Fault = Ftb_trace.Fault
module Golden = Ftb_trace.Golden
module Program = Ftb_trace.Program
module Runner = Ftb_trace.Runner

let bits = Ftb_util.Bits.bits_per_double

(* Prefix-snapshot bit batching. The 64 cases of one site share the exact
   same injection-free prefix: every dynamic instruction before the site
   produces its golden value regardless of which bit will be flipped. So
   instead of 64 full runs per site, run the prefix once under a counting
   context, snapshot the interpreter at the injection point, and replay
   only the suffix per bit. Programs without the [resumable] capability
   (hand-written closure kernels) transparently fall back to full
   re-execution — same bytes, just without the savings. *)

let fallback_site ?fuel golden ~site buf ~pos =
  for bit = 0 to bits - 1 do
    Bytes.set buf (pos + bit) (Ground_truth.case_byte ?fuel golden ((site * bits) + bit))
  done

(* Dependent-cone fast path. A program may carry a cone plan
   ([Program.cone], built by [Ftb_ir.Pipeline.to_program]): per site, the
   outcome is computed from the corrupted value and precomputed golden
   dataflow alone — no prefix run, no suffix replay. The capability is
   consulted only for unlimited-fuel campaigns (cone replay performs no
   step bookkeeping, so fuel semantics require real replay) and only when
   the plan covers exactly this golden run's site space; a site whose cone
   is imprecise (feeds a float branch) or too large yields [None] and
   takes the prefix-snapshot path below. Outcome bytes are bit-identical
   either way — enforced by the differential tests and the @ir-smoke
   gate. *)
let cone_runner ?fuel ~cone golden ~site =
  if not cone then None
  else
    match (fuel, golden.Golden.program.Program.cone) with
    | Some _, _ | None, None -> None
    | None, Some force -> (
        match force () with
        | Some plan when plan.Program.cone_sites = Golden.sites golden ->
            plan.Program.cone_case ~site
        | Some _ | None -> None)

let byte_of_cone_run run corrupt =
  match run corrupt with
  | Program.Cone_masked -> '\000'
  | Program.Cone_sdc -> '\001'
  | Program.Cone_crash reason -> Ground_truth.crash_byte reason
  | exception Out_of_memory -> raise Out_of_memory
  | exception _ ->
      (* Containment, mirroring [Runner.outcome_of_run_contained]. *)
      Ground_truth.crash_byte Ctx.Exception_raised

let site_into ?fuel ?(cone = true) golden ~site buf ~pos =
  if site < 0 || site >= Golden.sites golden then
    invalid_arg "Executor.site_into: site out of range";
  if pos < 0 || pos + bits > Bytes.length buf then
    invalid_arg "Executor.site_into: buffer too small";
  match cone_runner ?fuel ~cone golden ~site with
  | Some run ->
      for bit = 0 to bits - 1 do
        Bytes.set buf (pos + bit) (byte_of_cone_run run (Ftb_util.Bits.flip ~bit))
      done
  | None -> (
  match golden.Golden.program.Program.resumable with
  | None -> fallback_site ?fuel golden ~site buf ~pos
  | Some resumable -> (
      let ctx = Ctx.counting ?fuel () in
      match resumable ctx ~stop_at:site with
      | exception Ctx.Crash { reason; _ } ->
          (* The injection-free prefix crashed (in practice only the fuel
             watchdog can do that — the golden run is clean), strictly
             before the injection point: all 64 cases follow the identical
             path to the identical crash. *)
          Bytes.fill buf pos bits (Ground_truth.crash_byte reason)
      | exception Out_of_memory -> raise Out_of_memory
      | exception _ ->
          (* Campaign containment, mirroring [Runner.run_outcome_contained]:
             a non-cooperative exception inside the body is a generic
             exception crash for every bit. *)
          Bytes.fill buf pos bits (Ground_truth.crash_byte Ctx.Exception_raised)
      | Program.Completed _ ->
          (* A deterministic program cannot finish before issuing
             [site < sites] dynamic instructions; if it somehow does, trust
             the per-case path over the snapshot machinery. *)
          fallback_site ?fuel golden ~site buf ~pos
      | Program.Paused resume ->
          let snap = Ctx.snapshot ctx in
          for bit = 0 to bits - 1 do
            let fault = Fault.make ~site ~bit in
            let ctx = Ctx.resume_outcome snap ~fault in
            let result = Runner.outcome_of_run_contained golden fault ctx resume in
            Bytes.set buf (pos + bit) (Ground_truth.byte_of_result result)
          done))

let range_into ?fuel ?cone golden ~lo ~hi buf ~off =
  if lo < 0 || hi < lo || hi > Golden.cases golden then
    invalid_arg "Executor.range_into: case range out of bounds";
  if off < 0 || off + (hi - lo) > Bytes.length buf then
    invalid_arg "Executor.range_into: buffer too small";
  let per_case case =
    Bytes.set buf (off + case - lo) (Ground_truth.case_byte ?fuel golden case)
  in
  (* Whole sites inside [lo, hi) are batched; ragged edges (shard bounds
     not aligned to 64) run per-case. *)
  let first_whole = (lo + bits - 1) / bits * bits in
  let last_whole = hi / bits * bits in
  if first_whole >= last_whole then
    for case = lo to hi - 1 do
      per_case case
    done
  else begin
    for case = lo to first_whole - 1 do
      per_case case
    done;
    for site = first_whole / bits to (last_whole / bits) - 1 do
      site_into ?fuel ?cone golden ~site buf ~pos:(off + (site * bits) - lo)
    done;
    for case = last_whole to hi - 1 do
      per_case case
    done
  end

(* Model-generalized batching. The prefix-snapshot argument never
   depended on the corruption being a bit flip — only on the prefix being
   injection-free — so any *discrete* model batches over an arbitrary
   width. Stochastic models take the closure (per-case) path: their dense
   case space exists for shard arithmetic, and each case re-derives its
   RNG from the dense index, so there is no shared suffix state to reuse.
   [Bit_flip_64] dispatches to the original paths above, byte- and
   cost-identical to every pre-model campaign. *)

let fallback_site_model ?fuel spec golden ~site ~width buf ~pos =
  for case = 0 to width - 1 do
    Bytes.set buf (pos + case)
      (Ground_truth.case_byte_model ?fuel spec golden ((site * width) + case))
  done

let site_into_model ?fuel ?(cone = true) (spec : Models.spec) golden ~site buf ~pos =
  match spec.Models.model with
  | Models.Bit_flip_64 -> site_into ?fuel ~cone golden ~site buf ~pos
  | model -> (
      let width = Models.spec_width spec in
      if site < 0 || site >= Golden.sites golden then
        invalid_arg "Executor.site_into_model: site out of range";
      if pos < 0 || pos + width > Bytes.length buf then
        invalid_arg "Executor.site_into_model: buffer too small";
      (* Any discrete model's corruption is a pure function of the golden
         value, so the cone fast path generalizes exactly as the
         prefix-snapshot path did. Stochastic models stay per-case. *)
      match
        if Models.is_stochastic model then None
        else cone_runner ?fuel ~cone golden ~site
      with
      | Some run ->
          for case = 0 to width - 1 do
            let dense = (site * width) + case in
            Bytes.set buf (pos + case)
              (byte_of_cone_run run (Models.case_corrupt spec ~case:dense))
          done
      | None -> (
      let batchable =
        if Models.is_stochastic model then None
        else golden.Golden.program.Program.resumable
      in
      match batchable with
      | None -> fallback_site_model ?fuel spec golden ~site ~width buf ~pos
      | Some resumable -> (
          let ctx = Ctx.counting ?fuel () in
          match resumable ctx ~stop_at:site with
          | exception Ctx.Crash { reason; _ } ->
              Bytes.fill buf pos width (Ground_truth.crash_byte reason)
          | exception Out_of_memory -> raise Out_of_memory
          | exception _ ->
              Bytes.fill buf pos width (Ground_truth.crash_byte Ctx.Exception_raised)
          | Program.Completed _ ->
              fallback_site_model ?fuel spec golden ~site ~width buf ~pos
          | Program.Paused resume ->
              let snap = Ctx.snapshot ctx in
              let fault = Fault.make ~site ~bit:0 in
              for case = 0 to width - 1 do
                let dense = (site * width) + case in
                let ctx =
                  Ctx.resume_custom snap ~site
                    ~corrupt:(Models.case_corrupt spec ~case:dense)
                in
                let result = Runner.outcome_of_run_contained golden fault ctx resume in
                Bytes.set buf (pos + case) (Ground_truth.byte_of_result result)
              done)))

let range_into_model ?fuel ?cone (spec : Models.spec) golden ~lo ~hi buf ~off =
  match spec.Models.model with
  | Models.Bit_flip_64 -> range_into ?fuel ?cone golden ~lo ~hi buf ~off
  | _ ->
      let width = Models.spec_width spec in
      let total = Models.total_cases spec ~sites:(Golden.sites golden) in
      if lo < 0 || hi < lo || hi > total then
        invalid_arg "Executor.range_into_model: case range out of bounds";
      if off < 0 || off + (hi - lo) > Bytes.length buf then
        invalid_arg "Executor.range_into_model: buffer too small";
      let per_case case =
        Bytes.set buf (off + case - lo) (Ground_truth.case_byte_model ?fuel spec golden case)
      in
      let first_whole = (lo + width - 1) / width * width in
      let last_whole = hi / width * width in
      if first_whole >= last_whole then
        for case = lo to hi - 1 do
          per_case case
        done
      else begin
        for case = lo to first_whole - 1 do
          per_case case
        done;
        for site = first_whole / width to (last_whole / width) - 1 do
          site_into_model ?fuel ?cone spec golden ~site buf ~pos:(off + (site * width) - lo)
        done;
        for case = last_whole to hi - 1 do
          per_case case
        done
      end

let ground_truth ?pool ?domains ?fuel ?cone ?(batched = true) golden =
  let want =
    match domains with Some d -> d | None -> Parallel.default_domains ()
  in
  if want <= 0 then invalid_arg "Executor.ground_truth: domains must be positive";
  let total = Golden.cases golden in
  let outcomes = Bytes.create total in
  let serial () =
    if batched then range_into ?fuel ?cone golden ~lo:0 ~hi:total outcomes ~off:0
    else
      for case = 0 to total - 1 do
        Bytes.set outcomes case (Ground_truth.case_byte ?fuel golden case)
      done
  in
  (if want = 1 && pool = None then serial ()
   else begin
     let pool =
       match pool with
       | Some p -> p
       | None -> Parallel.Pool.global ~domains:want ()
     in
     let participants = min want (Parallel.Pool.domains pool) in
     if batched then
       (* Work items are sites (64 cases each), stolen individually: one
          unlucky site that diverges into fuel-bound suffixes does not
          stall a whole static chunk. *)
       Parallel.Pool.run pool ~participants ~chunk:1 ~total:(Golden.sites golden)
         (fun lo hi ->
           for site = lo to hi - 1 do
             site_into ?fuel ?cone golden ~site outcomes ~pos:(site * bits)
           done)
     else
       Parallel.Pool.run pool ~participants ~total (fun lo hi ->
           for case = lo to hi - 1 do
             Bytes.unsafe_set outcomes case (Ground_truth.case_byte ?fuel golden case)
           done)
   end);
  Ground_truth.of_outcomes golden outcomes

let ground_truth_model ?pool ?domains ?fuel ?cone ?(batched = true) (spec : Models.spec)
    golden =
  match spec.Models.model with
  | Models.Bit_flip_64 -> ground_truth ?pool ?domains ?fuel ?cone ~batched golden
  | _ ->
      let want =
        match domains with Some d -> d | None -> Parallel.default_domains ()
      in
      if want <= 0 then invalid_arg "Executor.ground_truth_model: domains must be positive";
      let width = Models.spec_width spec in
      let total = Models.total_cases spec ~sites:(Golden.sites golden) in
      let outcomes = Bytes.create total in
      let serial () =
        if batched then
          range_into_model ?fuel ?cone spec golden ~lo:0 ~hi:total outcomes ~off:0
        else
          for case = 0 to total - 1 do
            Bytes.set outcomes case (Ground_truth.case_byte_model ?fuel spec golden case)
          done
      in
      (if want = 1 && pool = None then serial ()
       else begin
         let pool =
           match pool with
           | Some p -> p
           | None -> Parallel.Pool.global ~domains:want ()
         in
         let participants = min want (Parallel.Pool.domains pool) in
         if batched then
           Parallel.Pool.run pool ~participants ~chunk:1 ~total:(Golden.sites golden)
             (fun lo hi ->
               for site = lo to hi - 1 do
                 site_into_model ?fuel ?cone spec golden ~site outcomes
                   ~pos:(site * width)
               done)
         else
           Parallel.Pool.run pool ~participants ~total (fun lo hi ->
               for case = lo to hi - 1 do
                 Bytes.unsafe_set outcomes case
                   (Ground_truth.case_byte_model ?fuel spec golden case)
               done)
       end);
      Ground_truth.of_outcomes ~width golden outcomes
