module Ctx = Ftb_trace.Ctx
module Fault = Ftb_trace.Fault
module Golden = Ftb_trace.Golden
module Runner = Ftb_trace.Runner

type t = { golden : Golden.t; outcomes : Bytes.t }

type reason_counts = { nan : int; inf : int; exn : int; fuel : int }

(* Dense outcome-byte encoding (persistence format v2). v1 campaigns only
   ever stored '\000'..'\002'; the crash taxonomy refines '\002' into four
   reason-carrying bytes, so every v1 byte is still a valid v2 byte (a v1
   crash loads as a generic exception crash). *)
let byte_of_outcome = function Runner.Masked -> '\000' | Runner.Sdc -> '\001' | Runner.Crash -> '\002'

let crash_byte = function
  | Ctx.Exception_raised -> '\002'
  | Ctx.Nan_value -> '\003'
  | Ctx.Inf_value -> '\004'
  | Ctx.Fuel_exhausted -> '\005'

let byte_of_result (r : Runner.result) =
  match (r.Runner.outcome, r.Runner.crash_reason) with
  | Runner.Masked, _ -> '\000'
  | Runner.Sdc, _ -> '\001'
  | Runner.Crash, Some reason -> crash_byte reason
  | Runner.Crash, None -> '\002'

let outcome_of_byte = function
  | '\000' -> Runner.Masked
  | '\001' -> Runner.Sdc
  | '\002' | '\003' | '\004' | '\005' -> Runner.Crash
  | c -> invalid_arg (Printf.sprintf "Ground_truth: corrupt outcome byte %d" (Char.code c))

let crash_reason_of_byte = function
  | '\002' -> Some Ctx.Exception_raised
  | '\003' -> Some Ctx.Nan_value
  | '\004' -> Some Ctx.Inf_value
  | '\005' -> Some Ctx.Fuel_exhausted
  | _ -> None

let outcome_byte = byte_of_outcome

let classify_case golden case =
  (Runner.run_outcome golden (Fault.of_case case)).Runner.outcome

let case_byte ?fuel golden case =
  byte_of_result (Runner.run_outcome_contained ?fuel golden (Fault.of_case case))

let case_byte_model ?fuel (spec : Models.spec) golden case =
  match spec.Models.model with
  | Models.Bit_flip_64 -> case_byte ?fuel golden case
  | _ ->
      let site = case / Models.spec_width spec in
      byte_of_result
        (Runner.run_outcome_custom_contained ?fuel golden ~site
           ~corrupt:(Models.case_corrupt spec ~case))

let of_outcomes ?(width = Ftb_util.Bits.bits_per_double) golden outcomes =
  let total = Golden.sites golden * width in
  if Bytes.length outcomes <> total then
    invalid_arg
      (Printf.sprintf "Ground_truth.of_outcomes: expected %d outcome bytes, got %d" total
         (Bytes.length outcomes));
  Bytes.iter (fun b -> ignore (outcome_of_byte b)) outcomes;
  { golden; outcomes }

let run ?progress ?fuel golden =
  let total = Golden.cases golden in
  let outcomes = Bytes.create total in
  for case = 0 to total - 1 do
    Bytes.set outcomes case (case_byte ?fuel golden case);
    match progress with
    | Some f when case land 0xFFF = 0 -> f ~done_:case ~total
    | Some _ | None -> ()
  done;
  (match progress with Some f -> f ~done_:total ~total | None -> ());
  { golden; outcomes }

let outcome t case = outcome_of_byte (Bytes.get t.outcomes case)
let crash_reason t case = crash_reason_of_byte (Bytes.get t.outcomes case)
let outcome_of_fault t fault = outcome t (Fault.to_case fault)
let cases t = Bytes.length t.outcomes

let injected_error golden (fault : Fault.t) =
  let v = Golden.value golden fault.Fault.site in
  let err = Ftb_util.Bits.error_of_flip ~bit:fault.Fault.bit v in
  if Float.is_nan err then infinity else err

let injected_error_model (spec : Models.spec) golden ~case =
  match spec.Models.model with
  | Models.Bit_flip_64 -> injected_error golden (Fault.of_case case)
  | _ ->
      let site = case / Models.spec_width spec in
      let v = Golden.value golden site in
      let err = abs_float (Models.case_corrupt spec ~case v -. v) in
      if Float.is_nan err then infinity else err

let counts t ~masked ~sdc ~crash =
  Bytes.iter
    (fun b ->
      match outcome_of_byte b with
      | Runner.Masked -> incr masked
      | Runner.Sdc -> incr sdc
      | Runner.Crash -> incr crash)
    t.outcomes

let crash_counts t =
  let nan = ref 0 and inf = ref 0 and exn = ref 0 and fuel = ref 0 in
  Bytes.iter
    (fun b ->
      match crash_reason_of_byte b with
      | Some Ctx.Nan_value -> incr nan
      | Some Ctx.Inf_value -> incr inf
      | Some Ctx.Exception_raised -> incr exn
      | Some Ctx.Fuel_exhausted -> incr fuel
      | None -> ())
    t.outcomes;
  { nan = !nan; inf = !inf; exn = !exn; fuel = !fuel }

let ratio_of count t = float_of_int count /. float_of_int (cases t)

let global_counts t =
  let masked = ref 0 and sdc = ref 0 and crash = ref 0 in
  counts t ~masked ~sdc ~crash;
  (!masked, !sdc, !crash)

let sdc_ratio t =
  let _, sdc, _ = global_counts t in
  ratio_of sdc t

let masked_ratio t =
  let masked, _, _ = global_counts t in
  ratio_of masked t

let crash_ratio t =
  let _, _, crash = global_counts t in
  ratio_of crash t

(* Per-site aggregation derives the case width from the stored bytes, so
   it holds for any fault model's case space (64 for the paper's). *)
let site_width t = cases t / Golden.sites t.golden

let site_sdc_ratio t =
  let sites = Golden.sites t.golden in
  let width = site_width t in
  Array.init sites (fun site ->
      let sdc = ref 0 in
      for case = 0 to width - 1 do
        if outcome t ((site * width) + case) = Runner.Sdc then incr sdc
      done;
      float_of_int !sdc /. float_of_int width)

let site_masked_count t =
  let sites = Golden.sites t.golden in
  let width = site_width t in
  Array.init sites (fun site ->
      let masked = ref 0 in
      for case = 0 to width - 1 do
        if outcome t ((site * width) + case) = Runner.Masked then incr masked
      done;
      !masked)
