(** Bit-exact binary codec for sampled propagation experiments.

    The distributed adaptive planner ships a round's drawn cases to fleet
    workers and gets {!Sample_run.t} values back; this codec is the wire
    and checkpoint format for those samples. All float fields travel as
    raw IEEE-754 images, so a blob encoded on a worker decodes to samples
    that fold into the *exact* boundary the serial oracle infers —
    byte-identity is the contract, not an optimization. The outcome byte
    reuses the {!Ground_truth} encoding ('\000'..'\005', crash taxonomy
    included). *)

exception Format_error of string
(** Structural corruption: bad magic, truncation, out-of-range fields,
    trailing bytes. Callers follow the store convention — quarantine the
    blob, never crash. *)

val encode : Sample_run.t array -> string
(** Serialize samples in order. [decode (encode s)] reproduces [s] with
    bit-identical floats. *)

val decode : string -> Sample_run.t array
(** Parse a blob; raises {!Format_error} on any structural defect. *)

val encoded_size_upper_bound : sites:int -> int
(** Worst-case encoded bytes of one sample of a program with [sites]
    dynamic instructions — the planner's conservative shard-sizing input
    (a masked sample can carry a deviation per remaining site). *)
