module Golden = Ftb_trace.Golden
module Ground_truth = Ftb_inject.Ground_truth
module Models = Ftb_inject.Models
module Persist = Ftb_inject.Persist

type t = {
  program : string;
  sites : int;
  shard_size : int;
  model : Models.spec;
  fingerprint : string;
  completed : bool array;
  outcomes : Bytes.t;
}

let fail fmt = Printf.ksprintf (fun msg -> raise (Persist.Format_error msg)) fmt

(* The fingerprint digests the golden trace values bit-exactly, so a resumed
   campaign is rejected if the program's inputs — and therefore any outcome
   byte — could differ from the run that wrote the checkpoint. The program
   name and site count alone cannot see an input change. The fault model is
   *not* part of the fingerprint: it is a separate header field, checked
   separately, so the mismatch message can name the models. *)
(* Delegates to the tree-wide hashing module; the bit-exact little-endian
   float encoding there is part of this file format (v2/v3 checkpoints
   persist this fingerprint). *)
let fingerprint_of_golden (golden : Golden.t) =
  Ftb_util.Fingerprint.of_floats golden.Golden.values

let shards t = Array.length t.completed

let create ?(model = Models.default_spec) golden ~shard_size =
  let total = Models.total_cases model ~sites:(Golden.sites golden) in
  {
    program = golden.Golden.program.Ftb_trace.Program.name;
    sites = Golden.sites golden;
    shard_size;
    model;
    fingerprint = fingerprint_of_golden golden;
    completed = Array.make (Shard.count ~total ~shard_size) false;
    outcomes = Bytes.make total '\000';
  }

let completed_count t = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.completed
let is_complete t = Array.for_all Fun.id t.completed

let completed_cases t =
  let total = Bytes.length t.outcomes in
  let acc = ref 0 in
  Array.iteri
    (fun i c ->
      if c then begin
        let lo, hi = Shard.bounds ~total ~shard_size:t.shard_size i in
        acc := !acc + (hi - lo)
      end)
    t.completed;
  !acc

let ground_truth golden t =
  if not (is_complete t) then
    invalid_arg
      (Printf.sprintf "Checkpoint.ground_truth: only %d/%d shards complete"
         (completed_count t) (shards t));
  Ground_truth.of_outcomes ~width:(Models.spec_width t.model) golden t.outcomes

(* ------------------------------------------------------------------ *)
(* Format v3 (payload inside a Persist integrity envelope):
     ftb-campaign-v3 <program> <sites> <shard_size> <model> <fingerprint>
     <manifest: one '0'/'1' per shard>
     <raw outcome bytes, full length; incomplete shards are padding>
   The model field is the single-token [Models.spec_to_string] encoding.
   v2 files — the same layout minus the model field — still load and mean
   [Bit_flip_64] (the only model any v2 campaign could have run). Files
   written before the envelope existed carry the payload bare and still
   load (unverified). A complete ground-truth file (Persist v1/v2) is
   accepted as a fully completed *default-model* checkpoint, so finished
   campaigns saved before the resumable engine existed can seed a resume
   directly. *)

let magic = "ftb-campaign-v3"
let magic_v2 = "ftb-campaign-v2"

let save ~path t =
  Persist.save_enveloped ~path (fun b ->
      Buffer.add_string b
        (Printf.sprintf "%s %s %d %d %s %s\n" magic t.program t.sites t.shard_size
           (Models.spec_to_string t.model) t.fingerprint);
      Array.iter (fun c -> Buffer.add_char b (if c then '1' else '0')) t.completed;
      Buffer.add_char b '\n';
      Buffer.add_bytes b t.outcomes)

let validate_bytes ~path t =
  Array.iteri
    (fun i c ->
      if c then begin
        let lo, hi =
          Shard.bounds ~total:(Bytes.length t.outcomes) ~shard_size:t.shard_size i
        in
        for case = lo to hi - 1 do
          match Ground_truth.outcome_of_byte (Bytes.get t.outcomes case) with
          | _ -> ()
          | exception Invalid_argument _ ->
              fail "%s: corrupt outcome byte %d in completed shard %d" path
                (Char.code (Bytes.get t.outcomes case))
                i
        done
      end)
    t.completed

(* [payload] is the envelope-verified (or legacy raw) file content; parse
   it as header line, manifest line, then raw outcome bytes. *)
let load_campaign ~path ~model:requested golden payload header_end =
  let header = String.sub payload 0 header_end in
  let fields =
    match String.split_on_char ' ' header with
    | [ m; program; sites; shard_size; fingerprint ] when m = magic_v2 ->
        (* v2 predates pluggable models: it is a Bit_flip_64 campaign. *)
        Some (program, sites, shard_size, Models.default_spec, fingerprint)
    | [ m; program; sites; shard_size; model; fingerprint ] when m = magic -> (
        match Models.spec_of_string model with
        | Ok model -> Some (program, sites, shard_size, model, fingerprint)
        | Error msg -> fail "%s:1: %s" path msg)
    | m :: _ when m = magic || m = magic_v2 ->
        fail "%s:1: malformed checkpoint header %S" path header
    | _ -> fail "%s:1: bad magic in %S (expected %s)" path header magic
  in
  match fields with
  | None -> assert false
  | Some (program, sites, shard_size, model, fingerprint) ->
      let int_field what s =
        match int_of_string_opt s with
        | Some v -> v
        | None -> fail "%s:1: bad %s %S" path what s
      in
      let sites = int_field "site count" sites in
      let shard_size = int_field "shard size" shard_size in
      if shard_size <= 0 then fail "%s:1: shard size must be positive" path;
      if program <> golden.Golden.program.Ftb_trace.Program.name then
        fail "%s:1: checkpoint is for program %S, golden run is %S" path program
          golden.Golden.program.Ftb_trace.Program.name;
      if sites <> Golden.sites golden then
        fail "%s:1: checkpoint has %d sites, golden run has %d" path sites
          (Golden.sites golden);
      if not (Models.spec_equal model requested) then
        fail "%s:1: checkpoint is for fault model %s, campaign wants %s" path
          (Models.spec_name model) (Models.spec_name requested);
      let expected = fingerprint_of_golden golden in
      if fingerprint <> expected then
        fail "%s:1: golden-run fingerprint mismatch (%s stored, %s computed)" path
          fingerprint expected;
      let total = Models.total_cases model ~sites in
      let n_shards = Shard.count ~total ~shard_size in
      let manifest_end =
        match String.index_from_opt payload (header_end + 1) '\n' with
        | Some nl -> nl
        | None -> fail "%s:2: missing shard manifest" path
      in
      let manifest =
        String.sub payload (header_end + 1) (manifest_end - header_end - 1)
      in
      if String.length manifest <> n_shards then
        fail "%s:2: manifest has %d entries, expected %d shards" path
          (String.length manifest) n_shards;
      let completed =
        Array.init n_shards (fun i ->
            match manifest.[i] with
            | '1' -> true
            | '0' -> false
            | c -> fail "%s:2: bad manifest flag %C for shard %d" path c i)
      in
      if String.length payload - manifest_end - 1 < total then
        fail "%s: truncated outcome data" path;
      let outcomes = Bytes.of_string (String.sub payload (manifest_end + 1) total) in
      let t = { program; sites; shard_size; model; fingerprint; completed; outcomes } in
      validate_bytes ~path t;
      t

let load ?(model = Models.default_spec) ~path ~shard_size golden =
  let payload = Persist.load_enveloped ~path in
  if payload = "" then fail "%s:1: empty checkpoint" path;
  let has_magic m =
    String.length payload >= String.length m && String.sub payload 0 (String.length m) = m
  in
  if has_magic magic || has_magic magic_v2 then begin
    let header_end =
      match String.index_opt payload '\n' with
      | Some nl -> nl
      | None -> fail "%s:1: malformed checkpoint header" path
    in
    load_campaign ~path ~model golden payload header_end
  end
  else begin
    (* Fall back to a complete ground-truth file (Persist v1/v2). Those
       files predate pluggable models and hold exactly the 64 bit-flip
       bytes, so they can only seed a default-model campaign. *)
    if not (Models.spec_equal model Models.default_spec) then
      fail "%s: ground-truth files carry only the %s model, campaign wants %s" path
        (Models.spec_name Models.default_spec)
        (Models.spec_name model);
    let gt = Persist.load_ground_truth ~path golden in
    let t = create ~model golden ~shard_size in
    Bytes.blit gt.Ground_truth.outcomes 0 t.outcomes 0 (Bytes.length t.outcomes);
    Array.fill t.completed 0 (Array.length t.completed) true;
    t
  end
