module Golden = Ftb_trace.Golden
module Ground_truth = Ftb_inject.Ground_truth
module Persist = Ftb_inject.Persist

type t = {
  program : string;
  sites : int;
  shard_size : int;
  fingerprint : string;
  completed : bool array;
  outcomes : Bytes.t;
}

let fail fmt = Printf.ksprintf (fun msg -> raise (Persist.Format_error msg)) fmt

(* The fingerprint digests the golden trace values bit-exactly, so a resumed
   campaign is rejected if the program's inputs — and therefore any outcome
   byte — could differ from the run that wrote the checkpoint. The program
   name and site count alone cannot see an input change. *)
let fingerprint_of_golden (golden : Golden.t) =
  let values = golden.Golden.values in
  let b = Bytes.create (8 * Array.length values) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float v)) values;
  Digest.to_hex (Digest.bytes b)

let shards t = Array.length t.completed

let create golden ~shard_size =
  let total = Golden.cases golden in
  {
    program = golden.Golden.program.Ftb_trace.Program.name;
    sites = Golden.sites golden;
    shard_size;
    fingerprint = fingerprint_of_golden golden;
    completed = Array.make (Shard.count ~total ~shard_size) false;
    outcomes = Bytes.make total '\000';
  }

let completed_count t = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.completed
let is_complete t = Array.for_all Fun.id t.completed

let completed_cases t =
  let total = Bytes.length t.outcomes in
  let acc = ref 0 in
  Array.iteri
    (fun i c ->
      if c then begin
        let lo, hi = Shard.bounds ~total ~shard_size:t.shard_size i in
        acc := !acc + (hi - lo)
      end)
    t.completed;
  !acc

let ground_truth golden t =
  if not (is_complete t) then
    invalid_arg
      (Printf.sprintf "Checkpoint.ground_truth: only %d/%d shards complete"
         (completed_count t) (shards t));
  Ground_truth.of_outcomes golden t.outcomes

(* ------------------------------------------------------------------ *)
(* Format v2 (payload inside a Persist integrity envelope):
     ftb-campaign-v2 <program> <sites> <shard_size> <fingerprint>
     <manifest: one '0'/'1' per shard>
     <raw outcome bytes, full length; incomplete shards are padding>
   Files written before the envelope existed carry the same payload with
   no envelope and still load (unverified). A complete ground-truth file
   (Persist v1/v2) is accepted as a fully completed checkpoint, so
   finished campaigns saved before the resumable engine existed can seed
   a resume directly. *)

let magic = "ftb-campaign-v2"

let save ~path t =
  Persist.save_enveloped ~path (fun b ->
      Buffer.add_string b
        (Printf.sprintf "%s %s %d %d %s\n" magic t.program t.sites t.shard_size
           t.fingerprint);
      Array.iter (fun c -> Buffer.add_char b (if c then '1' else '0')) t.completed;
      Buffer.add_char b '\n';
      Buffer.add_bytes b t.outcomes)

let validate_bytes ~path t =
  Array.iteri
    (fun i c ->
      if c then begin
        let lo, hi =
          Shard.bounds ~total:(Bytes.length t.outcomes) ~shard_size:t.shard_size i
        in
        for case = lo to hi - 1 do
          match Ground_truth.outcome_of_byte (Bytes.get t.outcomes case) with
          | _ -> ()
          | exception Invalid_argument _ ->
              fail "%s: corrupt outcome byte %d in completed shard %d" path
                (Char.code (Bytes.get t.outcomes case))
                i
        done
      end)
    t.completed

(* [payload] is the envelope-verified (or legacy raw) file content; parse
   it as header line, manifest line, then raw outcome bytes. *)
let load_campaign ~path golden payload header_end =
  let header = String.sub payload 0 header_end in
  match String.split_on_char ' ' header with
  | [ m; program; sites; shard_size; fingerprint ] when m = magic ->
      let int_field what s =
        match int_of_string_opt s with
        | Some v -> v
        | None -> fail "%s:1: bad %s %S" path what s
      in
      let sites = int_field "site count" sites in
      let shard_size = int_field "shard size" shard_size in
      if shard_size <= 0 then fail "%s:1: shard size must be positive" path;
      if program <> golden.Golden.program.Ftb_trace.Program.name then
        fail "%s:1: checkpoint is for program %S, golden run is %S" path program
          golden.Golden.program.Ftb_trace.Program.name;
      if sites <> Golden.sites golden then
        fail "%s:1: checkpoint has %d sites, golden run has %d" path sites
          (Golden.sites golden);
      let expected = fingerprint_of_golden golden in
      if fingerprint <> expected then
        fail "%s:1: golden-run fingerprint mismatch (%s stored, %s computed)" path
          fingerprint expected;
      let total = Golden.cases golden in
      let n_shards = Shard.count ~total ~shard_size in
      let manifest_end =
        match String.index_from_opt payload (header_end + 1) '\n' with
        | Some nl -> nl
        | None -> fail "%s:2: missing shard manifest" path
      in
      let manifest =
        String.sub payload (header_end + 1) (manifest_end - header_end - 1)
      in
      if String.length manifest <> n_shards then
        fail "%s:2: manifest has %d entries, expected %d shards" path
          (String.length manifest) n_shards;
      let completed =
        Array.init n_shards (fun i ->
            match manifest.[i] with
            | '1' -> true
            | '0' -> false
            | c -> fail "%s:2: bad manifest flag %C for shard %d" path c i)
      in
      if String.length payload - manifest_end - 1 < total then
        fail "%s: truncated outcome data" path;
      let outcomes = Bytes.of_string (String.sub payload (manifest_end + 1) total) in
      let t = { program; sites; shard_size; fingerprint; completed; outcomes } in
      validate_bytes ~path t;
      t
  | m :: _ when m = magic -> fail "%s:1: malformed checkpoint header %S" path header
  | _ -> fail "%s:1: bad magic in %S (expected %s)" path header magic

let load ~path ~shard_size golden =
  let payload = Persist.load_enveloped ~path in
  if payload = "" then fail "%s:1: empty checkpoint" path;
  let is_campaign =
    String.length payload >= String.length magic
    && String.sub payload 0 (String.length magic) = magic
  in
  if is_campaign then begin
    let header_end =
      match String.index_opt payload '\n' with
      | Some nl -> nl
      | None -> fail "%s:1: malformed checkpoint header" path
    in
    load_campaign ~path golden payload header_end
  end
  else begin
    (* Fall back to a complete ground-truth file (Persist v1/v2). *)
    let gt = Persist.load_ground_truth ~path golden in
    let t = create golden ~shard_size in
    Bytes.blit gt.Ground_truth.outcomes 0 t.outcomes 0 (Bytes.length t.outcomes);
    Array.fill t.completed 0 (Array.length t.completed) true;
    t
  end
