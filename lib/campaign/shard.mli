(** Campaign sharding arithmetic.

    A campaign's dense case space [0, total) is cut into fixed-size
    contiguous shards — the unit of checkpointing, retry and parallel
    dispatch. The last shard may be short. *)

type t = { index : int; lo : int; hi : int (** exclusive *) }

val count : total:int -> shard_size:int -> int
(** Number of shards covering [0, total). Raises [Invalid_argument] when
    [shard_size <= 0] or [total < 0]. *)

val bounds : total:int -> shard_size:int -> int -> int * int
(** [(lo, hi)] of one shard index; [hi] is clamped to [total]. *)

val all : total:int -> shard_size:int -> t array
(** Every shard, in case order. *)

val size : t -> int
val pp : Format.formatter -> t -> unit
