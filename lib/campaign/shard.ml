type t = { index : int; lo : int; hi : int }

let check ~total ~shard_size =
  if total < 0 then invalid_arg "Shard: negative total";
  if shard_size <= 0 then invalid_arg "Shard: shard_size must be positive"

let count ~total ~shard_size =
  check ~total ~shard_size;
  (total + shard_size - 1) / shard_size

let bounds ~total ~shard_size index =
  check ~total ~shard_size;
  let n = (total + shard_size - 1) / shard_size in
  if index < 0 || index >= n then
    invalid_arg (Printf.sprintf "Shard.bounds: index %d outside [0,%d)" index n);
  let lo = index * shard_size in
  (lo, min total (lo + shard_size))

let all ~total ~shard_size =
  Array.init (count ~total ~shard_size) (fun index ->
      let lo, hi = bounds ~total ~shard_size index in
      { index; lo; hi })

let size t = t.hi - t.lo
let pp ppf t = Format.fprintf ppf "shard %d [%d,%d)" t.index t.lo t.hi
