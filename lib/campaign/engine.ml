module Golden = Ftb_trace.Golden
module Ground_truth = Ftb_inject.Ground_truth
module Persist = Ftb_inject.Persist

type invalid_checkpoint = Fail | Restart

type progress = {
  cases_done : int;
  cases_total : int;
  shards_done : int;
  shards_total : int;
  masked : int;
  sdc : int;
  crash : int;
}

type shard_task = { shard : int; attempt : int; lo : int; hi : int }

type wave_runner = {
  wave_size : unit -> int;
  run_wave :
    shard_task array ->
    commit:(shard:int -> Bytes.t -> unit) ->
    run_local:(lo:int -> hi:int -> unit) ->
    (int * (unit, string) result) list;
}

type config = {
  shard_size : int;
  checkpoint_every : int;
  domains : int;
  fuel : int option;
  model : Ftb_inject.Models.spec;
  max_retries : int;
  resume : bool;
  on_invalid_checkpoint : invalid_checkpoint;
  progress : (progress -> unit) option;
  on_checkpoint : (shards_done:int -> shards_total:int -> unit) option;
  cancel : (unit -> bool) option;
  pool : Ftb_inject.Parallel.Pool.t option;
  runner : wave_runner option;
}

let default_config =
  {
    shard_size = 4096;
    checkpoint_every = 1;
    domains = 1;
    fuel = None;
    model = Ftb_inject.Models.default_spec;
    max_retries = 2;
    resume = true;
    on_invalid_checkpoint = Fail;
    progress = None;
    on_checkpoint = None;
    cancel = None;
    pool = None;
    runner = None;
  }

exception Shard_failed of { shard : int; attempts : int; message : string }
exception Cancelled

type report = {
  ground_truth : Ground_truth.t;
  total_shards : int;
  resumed_shards : int;
  executed_shards : int;
  retries : int;
  checkpoints_written : int;
  quarantined : string option;
}

let check_config c =
  if c.shard_size <= 0 then invalid_arg "Engine: shard_size must be positive";
  if c.checkpoint_every <= 0 then invalid_arg "Engine: checkpoint_every must be positive";
  if c.domains <= 0 then invalid_arg "Engine: domains must be positive";
  if c.max_retries < 0 then invalid_arg "Engine: max_retries must be non-negative";
  match c.fuel with
  | Some n when n <= 0 -> invalid_arg "Engine: fuel must be positive"
  | _ -> ()

(* Returns the resumed (or fresh) state plus the quarantine destination
   when an invalid checkpoint was found under [Restart]: the corrupt file
   is moved aside as evidence — never resumed from, never overwritten in
   place — and the campaign rebuilds from scratch. *)
let initial_state ~config ~checkpoint golden =
  match checkpoint with
  | Some path when config.resume && Sys.file_exists path -> (
      match
        Checkpoint.load ~model:config.model ~path ~shard_size:config.shard_size golden
      with
      | state -> (state, None)
      | exception Persist.Format_error _ when config.on_invalid_checkpoint = Restart ->
          let quarantined = Persist.quarantine ~path in
          (Checkpoint.create ~model:config.model golden ~shard_size:config.shard_size,
           quarantined))
  | Some _ | None ->
      (Checkpoint.create ~model:config.model golden ~shard_size:config.shard_size, None)

let run ?(config = default_config) ?checkpoint ?case_runner golden =
  check_config config;
  let state, quarantined = initial_state ~config ~checkpoint golden in
  let total = Ftb_inject.Models.total_cases config.model ~sites:(Golden.sites golden) in
  let total_shards = Checkpoint.shards state in
  let resumed_shards = Checkpoint.completed_count state in
  let outcomes = state.Checkpoint.outcomes in
  let shard_size = state.Checkpoint.shard_size in
  let fill_range =
    match case_runner with
    | Some f ->
        fun ~lo ~hi ->
          for case = lo to hi - 1 do
            Bytes.set outcomes case (f golden case)
          done
    | None ->
        (* Default shard runner: the batched executor — whole sites inside
           the shard run their shared prefix once and replay only the
           suffix per case; stochastic models and non-resumable programs
           fall back to per-case full re-execution inside
           [range_into_model]. *)
        fun ~lo ~hi ->
          Ftb_inject.Executor.range_into_model ?fuel:config.fuel config.model golden ~lo
            ~hi outcomes ~off:lo
  in
  (* One shard is the unit of containment at the supervisor level: the
     per-case runner already contains kernel exceptions, so a shard only
     fails on harness trouble (or an injected test failure) — and then it
     is retried rather than sinking the campaign. *)
  let run_shard index =
    try
      let lo, hi = Shard.bounds ~total ~shard_size index in
      fill_range ~lo ~hi;
      Ok ()
    with e -> Error (Printexc.to_string e)
  in
  let executed = ref 0 and retries = ref 0 and checkpoints_written = ref 0 in
  let since_checkpoint = ref 0 in
  (* Outcome tallies over completed shards only, maintained incrementally:
     seeded from any resumed shards, then bumped as each shard finishes.
     They feed the progress events and never touch the outcome bytes. *)
  let masked = ref 0 and sdc = ref 0 and crash = ref 0 in
  let count_range ~lo ~hi =
    for case = lo to hi - 1 do
      match Ground_truth.outcome_of_byte (Bytes.get outcomes case) with
      | Ftb_trace.Runner.Masked -> incr masked
      | Ftb_trace.Runner.Sdc -> incr sdc
      | Ftb_trace.Runner.Crash -> incr crash
    done
  in
  Array.iteri
    (fun index completed ->
      if completed then begin
        let lo, hi = Shard.bounds ~total ~shard_size index in
        count_range ~lo ~hi
      end)
    state.Checkpoint.completed;
  let save_checkpoint () =
    match checkpoint with
    | None -> ()
    | Some path ->
        Checkpoint.save ~path state;
        incr checkpoints_written;
        since_checkpoint := 0;
        (match config.on_checkpoint with
        | Some f ->
            f ~shards_done:(Checkpoint.completed_count state) ~shards_total:total_shards
        | None -> ())
  in
  let report_progress () =
    match config.progress with
    | Some f ->
        f
          {
            cases_done = Checkpoint.completed_cases state;
            cases_total = total;
            shards_done = Checkpoint.completed_count state;
            shards_total = total_shards;
            masked = !masked;
            sdc = !sdc;
            crash = !crash;
          }
    | None -> ()
  in
  (* Remote runners hand back a shard's outcome bytes as one blob; commit
     is the only way those bytes enter the campaign, and it refuses blobs
     that do not exactly cover the shard's [lo, hi) range. *)
  let commit ~shard bytes =
    let lo, hi = Shard.bounds ~total ~shard_size shard in
    if Bytes.length bytes <> hi - lo then
      invalid_arg
        (Printf.sprintf "Engine: commit for shard %d expects %d bytes (got %d)"
           shard (hi - lo) (Bytes.length bytes));
    Bytes.blit bytes 0 outcomes lo (hi - lo)
  in
  (* Default wave runner: shards of the wave are claimed off the
     persistent domain pool (spawned once per process, reused across waves
     and campaigns); each shard writes a disjoint byte range of
     [outcomes], and [run_shard] never raises, so slots of [results] are
     filled race-free. *)
  let local_runner =
    {
      wave_size = (fun () -> config.domains);
      run_wave =
        (fun tasks ~commit:_ ~run_local:_ ->
          match tasks with
          | [| t |] -> [ (t.shard, run_shard t.shard) ]
          | _ ->
              let pool =
                match config.pool with
                | Some pool -> pool
                | None -> Ftb_inject.Parallel.Pool.global ~domains:config.domains ()
              in
              let results = Array.make (Array.length tasks) None in
              Ftb_inject.Parallel.Pool.run pool ~participants:config.domains
                ~chunk:1 ~total:(Array.length tasks) (fun lo hi ->
                  for i = lo to hi - 1 do
                    results.(i) <- Some (tasks.(i).shard, run_shard tasks.(i).shard)
                  done);
              Array.to_list results |> List.filter_map Fun.id);
    }
  in
  let runner = Option.value config.runner ~default:local_runner in
  let pending = Queue.create () in
  Array.iteri
    (fun index completed -> if not completed then Queue.add (index, 1) pending)
    state.Checkpoint.completed;
  while not (Queue.is_empty pending) do
    (* Cooperative cancellation boundary: between waves the outcome bytes
       are quiescent, so a checkpoint here captures exactly the completed
       shards and the campaign resumes with nothing lost. *)
    (match config.cancel with
    | Some should_cancel when should_cancel () ->
        save_checkpoint ();
        raise Cancelled
    | _ -> ());
    (* Take one wave of shards (the runner chooses how many it can keep
       busy) and hand it off; the runner reports per-shard results and has
       either written the outcome bytes in place ([run_local]) or
       committed a returned blob ([commit]) for every [Ok] shard. *)
    let limit = max 1 (runner.wave_size ()) in
    let wave = ref [] in
    while List.length !wave < limit && not (Queue.is_empty pending) do
      wave := Queue.pop pending :: !wave
    done;
    let tasks =
      List.rev !wave
      |> List.map (fun (index, attempt) ->
             let lo, hi = Shard.bounds ~total ~shard_size index in
             { shard = index; attempt; lo; hi })
      |> Array.of_list
    in
    let results = runner.run_wave tasks ~commit ~run_local:fill_range in
    Array.iter
      (fun task ->
        let result =
          match List.assoc_opt task.shard results with
          | Some r -> r
          | None -> Error "shard runner returned no result"
        in
        match result with
        | Ok () ->
            state.Checkpoint.completed.(task.shard) <- true;
            count_range ~lo:task.lo ~hi:task.hi;
            incr executed;
            incr since_checkpoint
        | Error message ->
            if task.attempt > config.max_retries then begin
              (* Persist what we have so the failed campaign is resumable
                 after the underlying problem is fixed. *)
              save_checkpoint ();
              raise
                (Shard_failed
                   { shard = task.shard; attempts = task.attempt; message })
            end
            else begin
              incr retries;
              Queue.add (task.shard, task.attempt + 1) pending
            end)
      tasks;
    (* Checkpoint before reporting, so a progress event always advertises
       progress that is already durable on disk — a consumer killed right
       after seeing an event (the campaign daemon's watchers) can rely on
       resuming from at least that point. *)
    if !since_checkpoint >= config.checkpoint_every then save_checkpoint ();
    report_progress ()
  done;
  if !since_checkpoint > 0 || (checkpoint <> None && !checkpoints_written = 0) then
    save_checkpoint ();
  {
    ground_truth = Checkpoint.ground_truth golden state;
    total_shards;
    resumed_shards;
    executed_shards = !executed;
    retries = !retries;
    checkpoints_written = !checkpoints_written;
    quarantined;
  }
