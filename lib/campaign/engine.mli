(** Supervised, resumable fault-injection campaigns.

    The engine drives an exhaustive campaign (every site x bit case) as a
    sequence of {!Shard}s with three robustness layers on top of the raw
    {!Ftb_inject.Ground_truth} loop:

    - {b checkpoint/resume} — outcome bytes and the shard manifest are
      written atomically every [checkpoint_every] completed shards; a
      killed campaign resumes from its last checkpoint, validates it
      against the golden run and re-executes only the missing shards.
      The resumed result is bit-identical to an uninterrupted run.
    - {b crash isolation} — each case runs contained
      ({!Ftb_inject.Ground_truth.case_byte}); exceptions escaping a whole
      shard (worker-domain trouble) fail only that shard, which the
      supervisor retries up to [max_retries] times before raising
      {!Shard_failed} — after persisting a final checkpoint so the
      campaign stays resumable.
    - {b divergence watchdog} — [fuel] bounds the dynamic instruction
      count per case; faults that prevent convergence terminate as
      [Crash]/[Fuel_exhausted] outcomes instead of hanging the campaign.

    Serial ([domains = 1]) and parallel ([domains > 1]) execution produce
    bit-identical outcome bytes: every path runs the same per-case
    function and workers write disjoint shards. *)

type invalid_checkpoint =
  | Fail  (** propagate {!Ftb_inject.Persist.Format_error} to the caller *)
  | Restart
      (** quarantine the bad checkpoint ({!Ftb_inject.Persist.quarantine})
          and start fresh; the evidence path is reported in
          [report.quarantined] *)

type progress = {
  cases_done : int;  (** cases inside completed shards *)
  cases_total : int;
  shards_done : int;
  shards_total : int;
  masked : int;  (** Masked outcomes over completed shards *)
  sdc : int;  (** SDC outcomes over completed shards *)
  crash : int;  (** Crash outcomes (any taxonomy reason) over completed shards *)
}
(** Snapshot passed to the progress callback after every wave. Counts
    cover completed shards only (including shards resumed from a
    checkpoint), so [masked + sdc + crash = cases_done]. *)

type shard_task = {
  shard : int;  (** shard index *)
  attempt : int;  (** 1 on the first try, bumped per retry *)
  lo : int;  (** first case of the shard (inclusive) *)
  hi : int;  (** one past the last case *)
}
(** One unit of work handed to a {!wave_runner}. *)

type wave_runner = {
  wave_size : unit -> int;
      (** how many pending shards to hand over in the next wave; queried
          before each wave so a distributed runner can track its current
          worker capacity *)
  run_wave :
    shard_task array ->
    commit:(shard:int -> Bytes.t -> unit) ->
    run_local:(lo:int -> hi:int -> unit) ->
    (int * (unit, string) result) list;
      (** execute one wave and return per-shard results keyed by shard
          index. For every [Ok] shard the runner must have produced the
          outcome bytes first — either by calling [run_local ~lo ~hi]
          (the engine's own batched executor, writing in place) or by
          [commit ~shard bytes] with the full [hi - lo] byte blob (a
          remote worker's result; [commit] raises [Invalid_argument] on a
          size mismatch and is the only write path for foreign bytes). A
          shard with no reported result is treated as failed and retried. *)
}
(** Pluggable shard execution. The engine owns supervision — the pending
    queue, retries, checkpoints, cancellation, progress — and delegates
    only "run these shards" to the wave runner, so the local pool and a
    distributed worker fleet ({!Ftb_dist.Fleet}) share one code path.
    Outcome bytes are a pure function of the golden trace, so any runner
    that fills each shard's range exactly once yields bit-identical
    results. *)

type config = {
  shard_size : int;  (** cases per shard (checkpoint/retry granularity) *)
  checkpoint_every : int;  (** completed shards between checkpoint writes *)
  domains : int;  (** worker domains per wave; 1 = serial *)
  fuel : int option;  (** per-case dynamic-instruction budget *)
  model : Ftb_inject.Models.spec;
      (** the campaign's fault model. Sizes the dense case space
          ([sites * spec_width]), selects the corruption each case
          applies, and is persisted in (and validated against)
          checkpoints. The default is the paper's [Bit_flip_64], which
          runs the exact pre-model code paths. *)
  max_retries : int;  (** retries per shard before {!Shard_failed} *)
  resume : bool;  (** load an existing checkpoint file if present *)
  on_invalid_checkpoint : invalid_checkpoint;
  progress : (progress -> unit) option;
      (** called after every wave, after that wave's checkpoint write (when
          one is due) — reported progress is already durable *)
  on_checkpoint : (shards_done:int -> shards_total:int -> unit) option;
      (** called after each successful checkpoint write *)
  cancel : (unit -> bool) option;
      (** polled between shard waves; returning [true] checkpoints the
          campaign (when a checkpoint path was given) and raises
          {!Cancelled}. The campaign service uses this for cooperative job
          cancellation and graceful daemon drain. *)
  pool : Ftb_inject.Parallel.Pool.t option;
      (** run parallel waves on this pool instead of
          {!Ftb_inject.Parallel.Pool.global} — lets a long-lived host (the
          campaign daemon) share one warm pool handle across many
          campaigns. Ignored when [domains = 1]. *)
  runner : wave_runner option;
      (** execute waves through this runner instead of the built-in
          local-pool runner. [None] (the default) runs shards on
          [pool]/[domains] exactly as before. *)
}

val default_config : config
(** [shard_size = 4096], [checkpoint_every = 1], [domains = 1],
    [fuel = None], [model = Models.default_spec], [max_retries = 2],
    [resume = true], [on_invalid_checkpoint = Fail], no callbacks, no
    cancellation, global pool, built-in local runner. *)

exception
  Shard_failed of { shard : int; attempts : int; message : string }
(** A shard kept failing past its retry budget. The engine writes a final
    checkpoint before raising, so the campaign can resume once the cause
    is fixed. *)

exception Cancelled
(** The [cancel] callback returned [true] between two shard waves. A final
    checkpoint has already been written (when a checkpoint path was
    given), so the campaign resumes exactly where it stopped. *)

type report = {
  ground_truth : Ftb_inject.Ground_truth.t;  (** the completed campaign *)
  total_shards : int;
  resumed_shards : int;  (** shards satisfied by the loaded checkpoint *)
  executed_shards : int;  (** shards actually run in this invocation *)
  retries : int;  (** failed shard attempts that were re-queued *)
  checkpoints_written : int;
  quarantined : string option;
      (** where an invalid checkpoint was moved when
          [on_invalid_checkpoint = Restart] fired; [None] on a clean run *)
}

val run :
  ?config:config ->
  ?checkpoint:string ->
  ?case_runner:(Ftb_trace.Golden.t -> int -> char) ->
  Ftb_trace.Golden.t ->
  report
(** Run (or resume) an exhaustive campaign for [golden].

    [checkpoint] names the checkpoint file; without it the campaign runs
    unsupervised-but-contained, with no persistence. [case_runner]
    overrides the per-case worker (tests use this to inject shard
    failures); the default is
    [Ground_truth.case_byte ?fuel:config.fuel].

    Raises [Invalid_argument] on nonsensical config values,
    {!Ftb_inject.Persist.Format_error} when a checkpoint is invalid and
    [on_invalid_checkpoint = Fail], and {!Shard_failed} when a shard
    exhausts its retry budget. *)
