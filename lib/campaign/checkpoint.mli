(** Campaign checkpoints: partial outcome bytes plus a shard manifest.

    A checkpoint captures an exhaustive campaign mid-flight: the dense
    outcome byte array (taxonomy encoding, see
    {!Ftb_inject.Ground_truth.byte_of_result}) and a manifest of which
    shards have completed. Writes are atomic (temp file + rename), so the
    file on disk is always a complete checkpoint — a killed campaign
    resumes from its last checkpoint with no recovery step.

    On-disk, the payload below is wrapped in the
    {!Ftb_inject.Persist.save_enveloped} integrity envelope (length +
    CRC32), so a flipped byte or torn write is detected on load before
    any field is trusted:
    {v
    ftb-campaign-v2 <program> <sites> <shard_size> <golden-fingerprint>
    <manifest: one '0'/'1' per shard>
    <raw outcome bytes, full length>
    v}

    Pre-envelope files carry the same payload bare and still load
    (unverified). Loading also accepts a complete ground-truth file
    ({!Ftb_inject.Persist}, v1 or v2) as a fully-completed checkpoint. *)

type t = {
  program : string;
  sites : int;
  shard_size : int;
  fingerprint : string;  (** hex digest of the golden trace values *)
  completed : bool array;  (** one flag per shard *)
  outcomes : Bytes.t;
      (** [sites * 64] outcome bytes; only bytes inside completed shards
          are meaningful *)
}

val create : Ftb_trace.Golden.t -> shard_size:int -> t
(** A fresh checkpoint with no completed shards. *)

val fingerprint_of_golden : Ftb_trace.Golden.t -> string
(** Bit-exact digest of the golden run's trace values. A resumed campaign
    whose fingerprint differs was recorded against different inputs and is
    rejected. *)

val shards : t -> int
val completed_count : t -> int
val completed_cases : t -> int
val is_complete : t -> bool

val ground_truth : Ftb_trace.Golden.t -> t -> Ftb_inject.Ground_truth.t
(** Seal a complete checkpoint into a campaign result; raises
    [Invalid_argument] when shards are still missing. *)

val save : path:string -> t -> unit
(** Atomic write. *)

val load : path:string -> shard_size:int -> Ftb_trace.Golden.t -> t
(** Load and validate a checkpoint against the golden run it will resume:
    program name, site count, golden fingerprint and outcome bytes of
    completed shards are all checked. Raises
    {!Ftb_inject.Persist.Format_error} (messages carry the offending path
    and line) on any mismatch or corruption. [shard_size] is only used
    when adapting a complete ground-truth file, which carries no sharding
    of its own. *)
