(** Campaign checkpoints: partial outcome bytes plus a shard manifest.

    A checkpoint captures an exhaustive campaign mid-flight: the dense
    outcome byte array (taxonomy encoding, see
    {!Ftb_inject.Ground_truth.byte_of_result}) and a manifest of which
    shards have completed. Writes are atomic (temp file + rename), so the
    file on disk is always a complete checkpoint — a killed campaign
    resumes from its last checkpoint with no recovery step.

    On-disk, the payload below is wrapped in the
    {!Ftb_inject.Persist.save_enveloped} integrity envelope (length +
    CRC32), so a flipped byte or torn write is detected on load before
    any field is trusted:
    {v
    ftb-campaign-v3 <program> <sites> <shard_size> <model> <golden-fingerprint>
    <manifest: one '0'/'1' per shard>
    <raw outcome bytes, full length>
    v}

    [<model>] is the single-token {!Ftb_inject.Models.spec_to_string}
    encoding of the campaign's fault model. Format v2 — the same layout
    without the model field — still loads and means [Bit_flip_64], the
    only model a v2 campaign could have run. Pre-envelope files carry the
    payload bare and still load (unverified). Loading also accepts a
    complete ground-truth file ({!Ftb_inject.Persist}, v1 or v2) as a
    fully-completed default-model checkpoint. *)

type t = {
  program : string;
  sites : int;
  shard_size : int;
  model : Ftb_inject.Models.spec;  (** the campaign's fault model *)
  fingerprint : string;  (** hex digest of the golden trace values *)
  completed : bool array;  (** one flag per shard *)
  outcomes : Bytes.t;
      (** [sites * spec_width model] outcome bytes; only bytes inside
          completed shards are meaningful *)
}

val create : ?model:Ftb_inject.Models.spec -> Ftb_trace.Golden.t -> shard_size:int -> t
(** A fresh checkpoint with no completed shards, sized to the model's
    dense case space ([model] defaults to the paper's
    {!Ftb_inject.Models.default_spec}). *)

val fingerprint_of_golden : Ftb_trace.Golden.t -> string
(** Bit-exact digest of the golden run's trace values. A resumed campaign
    whose fingerprint differs was recorded against different inputs and is
    rejected. *)

val shards : t -> int
val completed_count : t -> int
val completed_cases : t -> int
val is_complete : t -> bool

val ground_truth : Ftb_trace.Golden.t -> t -> Ftb_inject.Ground_truth.t
(** Seal a complete checkpoint into a campaign result; raises
    [Invalid_argument] when shards are still missing. *)

val save : path:string -> t -> unit
(** Atomic write (always format v3). *)

val load :
  ?model:Ftb_inject.Models.spec ->
  path:string ->
  shard_size:int ->
  Ftb_trace.Golden.t ->
  t
(** Load and validate a checkpoint against the golden run and fault model
    it will resume ([model] defaults to
    {!Ftb_inject.Models.default_spec}): program name, site count, fault
    model, golden fingerprint and outcome bytes of completed shards are
    all checked. Raises {!Ftb_inject.Persist.Format_error} (messages
    carry the offending path and line) on any mismatch or corruption.
    [shard_size] is only used when adapting a complete ground-truth file,
    which carries no sharding of its own. *)
