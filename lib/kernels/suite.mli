(** Registry of the benchmark programs, by name, with their default
    configurations — the entry point used by the CLI, the bench harness and
    the examples. *)

val cg : Ftb_trace.Program.t Lazy.t
(** CG with {!Cg.default}. *)

val lu : Ftb_trace.Program.t Lazy.t
(** LU with {!Lu.default}. *)

val fft : Ftb_trace.Program.t Lazy.t
(** FFT with {!Fft.default}. *)

val jacobi : Ftb_trace.Program.t Lazy.t
(** Jacobi solver with {!Jacobi.default}. *)

val stencil : Ftb_trace.Program.t Lazy.t
val matvec : Ftb_trace.Program.t Lazy.t
val matmul : Ftb_trace.Program.t Lazy.t

val gemm : Ftb_trace.Program.t Lazy.t
(** Blocked GEMM with {!Gemm.default}. *)

val ir_kernels : (string * Ftb_trace.Program.t Lazy.t) list
(** The [ir.*] entries — one per {!Ir_kernels.suite} builder — are
    compiled from the miniature IR rather than hand-instrumented, lowered
    through the optimizing pipeline ([Ftb_ir.Pipeline.to_program]): they
    carry the [resumable] prefix-snapshot capability and the
    dependent-cone plan, so exhaustive campaigns on them run through the
    batched executor's fast paths ([Ftb_inject.Executor]). *)

val paper_benchmarks : (string * Ftb_trace.Program.t Lazy.t) list
(** The three benchmarks of the paper's evaluation, in paper order:
    [cg; lu; fft]. *)

val all : (string * Ftb_trace.Program.t Lazy.t) list
(** Every registered benchmark. *)

val find : string -> Ftb_trace.Program.t
(** Look a benchmark up by name; raises [Not_found] with a helpful message
    via [Invalid_argument] listing valid names. *)

val names : unit -> string list

val find_ir : string -> Ftb_ir.Ir.t option
(** The raw (pre-pipeline) IR behind an [ir.*] benchmark, rebuilt from its
    registered builder — [None] for hand-instrumented (closure) entries
    and unknown names. The compositional profile cache keys sections off
    this form; builders are deterministic so the keys are stable across
    processes and daemon restarts. *)
