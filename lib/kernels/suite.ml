let cg = lazy (Cg.program Cg.default)
let lu = lazy (Lu.program Lu.default)
let fft = lazy (Fft.program Fft.default)
let jacobi = lazy (Jacobi.program Jacobi.default)
let stencil = lazy (Stencil.program Stencil.default)
let matvec = lazy (Matprod.matvec_program Matprod.matvec_default)
let matmul = lazy (Matprod.matmul_program Matprod.matmul_default)
let gemm = lazy (Gemm.program Gemm.default)

(* IR-compiled kernels, from the [Ir_kernels] registry. Lowering goes
   through the optimizing pipeline ([Ftb_ir.Pipeline.to_program]), so —
   unlike the hand-instrumented closures above — every IR entry carries
   the [resumable] prefix-snapshot capability AND the dependent-cone
   plan: exhaustive campaigns on them run through the batched executor's
   fast paths ([Ftb_inject.Executor]) instead of full per-case
   re-execution, byte-identical by construction. *)
let ir_kernels =
  List.map
    (fun (name, build) -> (name, lazy (Ftb_ir.Pipeline.to_program (build ()))))
    Ir_kernels.suite

let paper_benchmarks = [ ("cg", cg); ("lu", lu); ("fft", fft) ]

let all =
  paper_benchmarks
  @ [
      ("jacobi", jacobi); ("stencil", stencil); ("matvec", matvec); ("matmul", matmul);
      ("gemm", gemm);
    ]
  @ ir_kernels

let names () = List.map fst all

(* The raw (pre-pipeline) IR behind an [ir.*] entry, rebuilt on demand.
   The compositional profile cache (Ftb_compose) sectionizes this form:
   builders are deterministic, so the canonical text and initial state —
   and therefore the cache keys — are stable across processes. *)
let find_ir name =
  match List.assoc_opt name Ir_kernels.suite with
  | Some build -> Some (build ())
  | None -> None

let find name =
  match List.assoc_opt name all with
  | Some program -> Lazy.force program
  | None ->
      invalid_arg
        (Printf.sprintf "Suite.find: unknown benchmark %S (expected one of: %s)" name
           (String.concat ", " (names ())))
