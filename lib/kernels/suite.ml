let cg = lazy (Cg.program Cg.default)
let lu = lazy (Lu.program Lu.default)
let fft = lazy (Fft.program Fft.default)
let jacobi = lazy (Jacobi.program Jacobi.default)
let stencil = lazy (Stencil.program Stencil.default)
let matvec = lazy (Matprod.matvec_program Matprod.matvec_default)
let matmul = lazy (Matprod.matmul_program Matprod.matmul_default)
let gemm = lazy (Gemm.program Gemm.default)

(* IR-compiled kernels. Unlike the hand-instrumented closures above, these
   carry the [resumable] prefix-snapshot capability, so exhaustive
   campaigns on them run through the batched executor
   ([Ftb_inject.Executor]) instead of full per-case re-execution. *)
let ir_dot = lazy (Ftb_ir.Ir.to_program (Ftb_ir.Programs.dot ~n:48 ~seed:11 ~tolerance:1e-9))

let ir_saxpy =
  lazy (Ftb_ir.Ir.to_program (Ftb_ir.Programs.saxpy ~n:48 ~seed:12 ~tolerance:1e-9))

let ir_stencil3 =
  lazy
    (Ftb_ir.Ir.to_program
       (Ftb_ir.Programs.stencil3 ~n:32 ~sweeps:4 ~seed:13 ~tolerance:1e-9))

let ir_matvec =
  lazy (Ftb_ir.Ir.to_program (Ftb_ir.Programs.matvec ~n:16 ~seed:14 ~tolerance:1e-9))

let ir_normalize =
  lazy (Ftb_ir.Ir.to_program (Ftb_ir.Programs.normalize ~n:24 ~seed:15 ~tolerance:1e-9))

let paper_benchmarks = [ ("cg", cg); ("lu", lu); ("fft", fft) ]

let all =
  paper_benchmarks
  @ [
      ("jacobi", jacobi); ("stencil", stencil); ("matvec", matvec); ("matmul", matmul);
      ("gemm", gemm);
    ]
  @ [
      ("ir.dot", ir_dot); ("ir.saxpy", ir_saxpy); ("ir.stencil3", ir_stencil3);
      ("ir.matvec", ir_matvec); ("ir.normalize", ir_normalize);
    ]

let names () = List.map fst all

let find name =
  match List.assoc_opt name all with
  | Some program -> Lazy.force program
  | None ->
      invalid_arg
        (Printf.sprintf "Suite.find: unknown benchmark %S (expected one of: %s)" name
           (String.concat ", " (names ())))
