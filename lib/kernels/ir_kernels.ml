module Ir = Ftb_ir.Ir
module Rng = Ftb_util.Rng

(* IR ports of the closure benchmarks. Each builder emits a structured
   [Ftb_ir.Ir.t] whose uninstrumented run is arithmetic-identical to the
   closure kernel's oracle ([Cg.solve_plain], [Lu.factor_plain], ...): the
   same operations in the same order, with reductions accumulated from
   [0.] exactly as the closures do. Scratch values the closure kernels
   keep in OCaml [ref]s become non-recorded [Flet]s, so the recorded
   stream covers the same data elements the paper's fault model covers.

   The IR has no integer-array indexing, so CSR structure (CG, Jacobi)
   and FFT bit-reversal/twiddle schedules are specialized at build time:
   data-independent index computations unroll into constant-index
   statements sharing one label per phase. That is the same trade the
   paper's fixed-computation-sequence assumption makes (§2.2) — control
   flow is data-independent, so the unrolled program IS the original's
   computation sequence. *)

let idx2 ~cols i j = Ir.Iadd (Ir.Imul (i, Ir.Iconst cols), j)

(* Left fold from [Fconst 0.] — the closures' [acc := 0.; acc +. t]
   reduction shape, kept bit-identical. *)
let fsum terms = List.fold_left (fun e t -> Ir.Fadd (e, t)) (Ir.Fconst 0.) terms

(* ------------------------------------------------------------------ *)
(* Conjugate gradient (port of [Cg]).                                  *)

let cg ~grid ~iterations ~tolerance =
  if grid <= 0 then invalid_arg "Ir_kernels.cg: grid must be positive";
  if iterations <= 0 then invalid_arg "Ir_kernels.cg: iterations must be positive";
  let a = Poisson.matrix ~grid in
  let b = Poisson.rhs ~grid in
  let n = Array.length b in
  let p = Ir.create ~name:"ir.cg" ~tolerance in
  let x = Ir.array p ~name:"x" ~init:(Array.make n 0.) in
  let r = Ir.array p ~name:"r" ~init:(Array.copy b) in
  let pv = Ir.array p ~name:"p" ~init:(Array.copy b) in
  let q = Ir.array p ~name:"q" ~init:(Array.make n 0.) in
  let rsold = Ir.freg p and rsnew = Ir.freg p and pq = Ir.freg p in
  let alpha = Ir.freg p and beta = Ir.freg p and acc = Ir.freg p in
  let it = Ir.ireg p and i = Ir.ireg p in
  let load arr ix = Ir.Fload (arr, ix) in
  (* One CSR row of A·p, unrolled to constant indices in entry order. *)
  let spmv_row row =
    fsum
      (List.init
         (a.Csr.row_ptr.(row + 1) - a.Csr.row_ptr.(row))
         (fun t ->
           let k = a.Csr.row_ptr.(row) + t in
           Ir.Fmul (Ir.Fconst a.Csr.values.(k), load pv (Ir.Iconst a.Csr.col_idx.(k)))))
  in
  let dot_into ~label dst u v =
    [
      Ir.Flet (acc, Ir.Fconst 0.);
      Ir.For
        ( i,
          Ir.Iconst 0,
          Ir.Iconst n,
          [
            Ir.Flet
              (acc, Ir.Fadd (Ir.Freg acc, Ir.Fmul (load u (Ir.Ireg i), load v (Ir.Ireg i))));
          ] );
      Ir.Fassign (dst, Ir.Freg acc, label);
    ]
  in
  let iteration =
    List.init n (fun row -> Ir.Store (q, Ir.Iconst row, spmv_row row, "q[i] = (A p)[i]"))
    @ dot_into ~label:"pq = p.q" pq pv q
    @ [
        Ir.Fassign (alpha, Ir.Fdiv (Ir.Freg rsold, Ir.Freg pq), "alpha = rsold/pq");
        Ir.Guard (Ir.Freg alpha, "cg.alpha");
        Ir.For
          ( i,
            Ir.Iconst 0,
            Ir.Iconst n,
            [
              Ir.Store
                ( x,
                  Ir.Ireg i,
                  Ir.Fadd (load x (Ir.Ireg i), Ir.Fmul (Ir.Freg alpha, load pv (Ir.Ireg i))),
                  "x[i] += alpha*p[i]" );
            ] );
        Ir.For
          ( i,
            Ir.Iconst 0,
            Ir.Iconst n,
            [
              Ir.Store
                ( r,
                  Ir.Ireg i,
                  Ir.Fsub (load r (Ir.Ireg i), Ir.Fmul (Ir.Freg alpha, load q (Ir.Ireg i))),
                  "r[i] -= alpha*q[i]" );
            ] );
      ]
    @ dot_into ~label:"rsnew = r.r" rsnew r r
    @ [
        Ir.Fassign (beta, Ir.Fdiv (Ir.Freg rsnew, Ir.Freg rsold), "beta = rsnew/rsold");
        Ir.Guard (Ir.Freg beta, "cg.beta");
        Ir.For
          ( i,
            Ir.Iconst 0,
            Ir.Iconst n,
            [
              Ir.Store
                ( pv,
                  Ir.Ireg i,
                  Ir.Fadd (load r (Ir.Ireg i), Ir.Fmul (Ir.Freg beta, load pv (Ir.Ireg i))),
                  "p[i] = r[i]+beta*p[i]" );
            ] );
        Ir.Flet (rsold, Ir.Freg rsnew);
      ]
  in
  Ir.set_body p
    (dot_into ~label:"rsold = r.r" rsold r r
    @ [ Ir.For (it, Ir.Iconst 0, Ir.Iconst iterations, iteration) ]);
  Ir.output_array p x;
  p

let cg_oracle ~grid ~iterations =
  Cg.solve_plain (Poisson.matrix ~grid) (Poisson.rhs ~grid) ~iterations

(* ------------------------------------------------------------------ *)
(* Blocked LU without pivoting (port of [Lu]).                         *)

let lu_input ~n ~seed = Dense.random_diagonally_dominant (Rng.create ~seed) ~n

let lu ~n ~block ~seed ~tolerance =
  if n <= 0 then invalid_arg "Ir_kernels.lu: n must be positive";
  if block <= 0 || n mod block <> 0 then
    invalid_arg "Ir_kernels.lu: block must divide n";
  let input = lu_input ~n ~seed in
  let p = Ir.create ~name:"ir.lu" ~tolerance in
  let m = Ir.array p ~name:"m" ~init:(Dense.flatten input) in
  let pivot = Ir.freg p and acc = Ir.freg p in
  let bi = Ir.ireg p and kb = Ir.ireg p and kmax = Ir.ireg p in
  let k = Ir.ireg p and i = Ir.ireg p and j = Ir.ireg p in
  let at ri ci = Ir.Fload (m, idx2 ~cols:n ri ci) in
  let succ_i e = Ir.Iadd (e, Ir.Iconst 1) in
  Ir.set_body p
    [
      Ir.For
        ( bi,
          Ir.Iconst 0,
          Ir.Iconst (n / block),
          [
            Ir.Iassign (kb, Ir.Imul (Ir.Ireg bi, Ir.Iconst block));
            Ir.Iassign (kmax, Ir.Iadd (Ir.Ireg kb, Ir.Iconst block));
            (* Panel factorisation: unblocked LU on columns kb..kmax-1. *)
            Ir.For
              ( k,
                Ir.Ireg kb,
                Ir.Ireg kmax,
                [
                  Ir.Flet (pivot, at (Ir.Ireg k) (Ir.Ireg k));
                  Ir.Guard (Ir.Freg pivot, "lu.pivot");
                  Ir.For
                    ( i,
                      succ_i (Ir.Ireg k),
                      Ir.Iconst n,
                      [
                        Ir.Store
                          ( m,
                            idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg k),
                            Ir.Fdiv (at (Ir.Ireg i) (Ir.Ireg k), Ir.Freg pivot),
                            "panel elimination" );
                      ] );
                  Ir.For
                    ( i,
                      succ_i (Ir.Ireg k),
                      Ir.Iconst n,
                      [
                        Ir.For
                          ( j,
                            succ_i (Ir.Ireg k),
                            Ir.Ireg kmax,
                            [
                              Ir.Store
                                ( m,
                                  idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg j),
                                  Ir.Fsub
                                    ( at (Ir.Ireg i) (Ir.Ireg j),
                                      Ir.Fmul
                                        (at (Ir.Ireg i) (Ir.Ireg k), at (Ir.Ireg k) (Ir.Ireg j))
                                    ),
                                  "panel elimination" );
                            ] );
                      ] );
                ] );
            (* U row block: apply the panel to columns kmax..n-1. *)
            Ir.For
              ( k,
                Ir.Ireg kb,
                Ir.Ireg kmax,
                [
                  Ir.For
                    ( i,
                      succ_i (Ir.Ireg k),
                      Ir.Ireg kmax,
                      [
                        Ir.For
                          ( j,
                            Ir.Ireg kmax,
                            Ir.Iconst n,
                            [
                              Ir.Store
                                ( m,
                                  idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg j),
                                  Ir.Fsub
                                    ( at (Ir.Ireg i) (Ir.Ireg j),
                                      Ir.Fmul
                                        (at (Ir.Ireg i) (Ir.Ireg k), at (Ir.Ireg k) (Ir.Ireg j))
                                    ),
                                  "U row block update" );
                            ] );
                      ] );
                ] );
            (* Trailing update: A22 -= L21 * U12. *)
            Ir.For
              ( i,
                Ir.Ireg kmax,
                Ir.Iconst n,
                [
                  Ir.For
                    ( j,
                      Ir.Ireg kmax,
                      Ir.Iconst n,
                      [
                        Ir.Flet (acc, Ir.Fconst 0.);
                        Ir.For
                          ( k,
                            Ir.Ireg kb,
                            Ir.Ireg kmax,
                            [
                              Ir.Flet
                                ( acc,
                                  Ir.Fadd
                                    ( Ir.Freg acc,
                                      Ir.Fmul
                                        (at (Ir.Ireg i) (Ir.Ireg k), at (Ir.Ireg k) (Ir.Ireg j))
                                    ) );
                            ] );
                        Ir.Store
                          ( m,
                            idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg j),
                            Ir.Fsub (at (Ir.Ireg i) (Ir.Ireg j), Ir.Freg acc),
                            "trailing update" );
                      ] );
                ] );
          ] );
    ];
  Ir.output_array p m;
  p

let lu_oracle ~n ~block ~seed = Dense.flatten (Lu.factor_plain (lu_input ~n ~seed) ~block)

(* ------------------------------------------------------------------ *)
(* Six-step FFT (port of [Fft]).                                       *)

let pi = 4. *. atan 1.

(* Mirrors [Fft.make_stage_tables] (not exported): identical operations in
   identical order, so the twiddle constants are bit-identical to the
   closure benchmark's. *)
let fft_stage_tables len =
  let stages = ref [] in
  let m = ref 2 in
  while !m <= len do
    let half = !m / 2 in
    let wr = Array.make half 0. and wi = Array.make half 0. in
    for k = 0 to half - 1 do
      let angle = -2. *. pi *. float_of_int k /. float_of_int !m in
      wr.(k) <- cos angle;
      wi.(k) <- sin angle
    done;
    stages := (wr, wi) :: !stages;
    m := !m * 2
  done;
  Array.of_list (List.rev !stages)

(* The swap pairs [Fft.fft_row]'s bit-reversal permutation performs, in
   its order. *)
let bit_reversal_pairs len =
  let pairs = ref [] in
  let j = ref 0 in
  for i = 0 to len - 2 do
    if i < !j then pairs := (i, !j) :: !pairs;
    let mask = ref (len lsr 1) in
    while !mask > 0 && !j land !mask <> 0 do
      j := !j lxor !mask;
      mask := !mask lsr 1
    done;
    j := !j lor !mask
  done;
  List.rev !pairs

(* Unrolled radix-2 row FFT over [base + 0 .. base + len - 1], store
   order exactly [Fft.fft_row]'s; butterfly temporaries are scratch
   [Flet]s (never injection sites, like the closure's OCaml lets). *)
let fft_row_stmts ~tmp:(tr, ti, ur, ui) ~label ~tables re im base ~len =
  let idx c = Ir.Iadd (base, Ir.Iconst c) in
  let swaps =
    List.concat_map
      (fun (a, b) ->
        [
          Ir.Flet (tr, Ir.Fload (re, idx a));
          Ir.Flet (ti, Ir.Fload (im, idx a));
          Ir.Flet (ur, Ir.Fload (re, idx b));
          Ir.Flet (ui, Ir.Fload (im, idx b));
          Ir.Store (re, idx a, Ir.Freg ur, label);
          Ir.Store (im, idx a, Ir.Freg ui, label);
          Ir.Store (re, idx b, Ir.Freg tr, label);
          Ir.Store (im, idx b, Ir.Freg ti, label);
        ])
      (bit_reversal_pairs len)
  in
  let butterflies = ref [] in
  let m = ref 2 and stage = ref 0 in
  while !m <= len do
    let half = !m / 2 in
    let wr_t, wi_t = tables.(!stage) in
    for k = 0 to half - 1 do
      let wr = Ir.Fconst wr_t.(k) and wi = Ir.Fconst wi_t.(k) in
      let i = ref k in
      while !i < len do
        let lo = idx !i and hi = idx (!i + half) in
        butterflies :=
          [
            Ir.Flet
              (tr, Ir.Fsub (Ir.Fmul (wr, Ir.Fload (re, hi)), Ir.Fmul (wi, Ir.Fload (im, hi))));
            Ir.Flet
              (ti, Ir.Fadd (Ir.Fmul (wr, Ir.Fload (im, hi)), Ir.Fmul (wi, Ir.Fload (re, hi))));
            Ir.Flet (ur, Ir.Fload (re, lo));
            Ir.Flet (ui, Ir.Fload (im, lo));
            Ir.Store (re, lo, Ir.Fadd (Ir.Freg ur, Ir.Freg tr), label);
            Ir.Store (im, lo, Ir.Fadd (Ir.Freg ui, Ir.Freg ti), label);
            Ir.Store (re, hi, Ir.Fsub (Ir.Freg ur, Ir.Freg tr), label);
            Ir.Store (im, hi, Ir.Fsub (Ir.Freg ui, Ir.Freg ti), label);
          ]
          :: !butterflies;
        i := !i + !m
      done
    done;
    incr stage;
    m := !m * 2
  done;
  swaps @ List.concat (List.rev !butterflies)

let fft_config ~n1 ~n2 ~seed ~tolerance = { Fft.n1; n2; seed; tolerance }

let fft ~n1 ~n2 ~seed ~tolerance =
  let is_pow2 v = v > 0 && v land (v - 1) = 0 in
  if not (is_pow2 n1 && is_pow2 n2) then
    invalid_arg "Ir_kernels.fft: n1 and n2 must be powers of two";
  let n = n1 * n2 in
  let input = Fft.input_signal (fft_config ~n1 ~n2 ~seed ~tolerance) in
  let tables1 = fft_stage_tables n1 and tables2 = fft_stage_tables n2 in
  let tw_re = Array.init n (fun r -> cos (-2. *. pi *. float_of_int r /. float_of_int n)) in
  let tw_im = Array.init n (fun r -> sin (-2. *. pi *. float_of_int r /. float_of_int n)) in
  let p = Ir.create ~name:"ir.fft" ~tolerance in
  let in_re = Ir.array p ~name:"in_re" ~init:input.Fft.re in
  let in_im = Ir.array p ~name:"in_im" ~init:input.Fft.im in
  let are = Ir.array p ~name:"a_re" ~init:(Array.make n 0.) in
  let aim = Ir.array p ~name:"a_im" ~init:(Array.make n 0.) in
  let bre = Ir.array p ~name:"b_re" ~init:(Array.make n 0.) in
  let bim = Ir.array p ~name:"b_im" ~init:(Array.make n 0.) in
  let out = Ir.array p ~name:"out" ~init:(Array.make (2 * n) 0.) in
  let tr = Ir.freg p and ti = Ir.freg p and ur = Ir.freg p and ui = Ir.freg p in
  let tmp = (tr, ti, ur, ui) in
  let j1 = Ir.ireg p and j2 = Ir.ireg p and k1 = Ir.ireg p and k2 = Ir.ireg p in
  let step1 =
    [
      Ir.For
        ( j1,
          Ir.Iconst 0,
          Ir.Iconst n1,
          [
            Ir.For
              ( j2,
                Ir.Iconst 0,
                Ir.Iconst n2,
                [
                  Ir.Store
                    ( are,
                      idx2 ~cols:n1 (Ir.Ireg j2) (Ir.Ireg j1),
                      Ir.Fload (in_re, idx2 ~cols:n2 (Ir.Ireg j1) (Ir.Ireg j2)),
                      "transpose1" );
                  Ir.Store
                    ( aim,
                      idx2 ~cols:n1 (Ir.Ireg j2) (Ir.Ireg j1),
                      Ir.Fload (in_im, idx2 ~cols:n2 (Ir.Ireg j1) (Ir.Ireg j2)),
                      "transpose1" );
                ] );
          ] );
    ]
  in
  let step2 =
    [
      Ir.For
        ( j2,
          Ir.Iconst 0,
          Ir.Iconst n2,
          fft_row_stmts ~tmp ~label:"fft1" ~tables:tables1 are aim
            (Ir.Imul (Ir.Ireg j2, Ir.Iconst n1))
            ~len:n1 );
    ]
  in
  (* Step 3: the twiddle schedule w^(j2·k1 mod n) needs modular index
     arithmetic the IR does not have, so it is specialized per element. *)
  let step3 =
    List.concat
      (List.init n2 (fun r2 ->
           List.concat
             (List.init n1 (fun c1 ->
                  let w = r2 * c1 mod n in
                  let ix = Ir.Iconst ((r2 * n1) + c1) in
                  [
                    Ir.Flet (tr, Ir.Fload (are, ix));
                    Ir.Flet (ti, Ir.Fload (aim, ix));
                    Ir.Store
                      ( are,
                        ix,
                        Ir.Fsub
                          ( Ir.Fmul (Ir.Freg tr, Ir.Fconst tw_re.(w)),
                            Ir.Fmul (Ir.Freg ti, Ir.Fconst tw_im.(w)) ),
                        "twiddle" );
                    Ir.Store
                      ( aim,
                        ix,
                        Ir.Fadd
                          ( Ir.Fmul (Ir.Freg tr, Ir.Fconst tw_im.(w)),
                            Ir.Fmul (Ir.Freg ti, Ir.Fconst tw_re.(w)) ),
                        "twiddle" );
                  ]))))
  in
  let step4 =
    [
      Ir.For
        ( j2,
          Ir.Iconst 0,
          Ir.Iconst n2,
          [
            Ir.For
              ( k1,
                Ir.Iconst 0,
                Ir.Iconst n1,
                [
                  Ir.Store
                    ( bre,
                      idx2 ~cols:n2 (Ir.Ireg k1) (Ir.Ireg j2),
                      Ir.Fload (are, idx2 ~cols:n1 (Ir.Ireg j2) (Ir.Ireg k1)),
                      "transpose2" );
                  Ir.Store
                    ( bim,
                      idx2 ~cols:n2 (Ir.Ireg k1) (Ir.Ireg j2),
                      Ir.Fload (aim, idx2 ~cols:n1 (Ir.Ireg j2) (Ir.Ireg k1)),
                      "transpose2" );
                ] );
          ] );
    ]
  in
  let step5 =
    [
      Ir.For
        ( k1,
          Ir.Iconst 0,
          Ir.Iconst n1,
          fft_row_stmts ~tmp ~label:"fft2" ~tables:tables2 bre bim
            (Ir.Imul (Ir.Ireg k1, Ir.Iconst n2))
            ~len:n2 );
    ]
  in
  let step6 =
    [
      Ir.For
        ( k1,
          Ir.Iconst 0,
          Ir.Iconst n1,
          [
            Ir.For
              ( k2,
                Ir.Iconst 0,
                Ir.Iconst n2,
                [
                  Ir.Store
                    ( out,
                      idx2 ~cols:n1 (Ir.Ireg k2) (Ir.Ireg k1),
                      Ir.Fload (bre, idx2 ~cols:n2 (Ir.Ireg k1) (Ir.Ireg k2)),
                      "transpose3" );
                  Ir.Store
                    ( out,
                      Ir.Iadd (Ir.Iconst n, idx2 ~cols:n1 (Ir.Ireg k2) (Ir.Ireg k1)),
                      Ir.Fload (bim, idx2 ~cols:n2 (Ir.Ireg k1) (Ir.Ireg k2)),
                      "transpose3" );
                ] );
          ] );
    ]
  in
  Ir.set_body p (step1 @ step2 @ step3 @ step4 @ step5 @ step6);
  Ir.output_array p out;
  p

let fft_oracle ~n1 ~n2 ~seed =
  let r = Fft.six_step_plain (fft_config ~n1 ~n2 ~seed ~tolerance:1.) in
  Array.append r.Fft.re r.Fft.im

(* ------------------------------------------------------------------ *)
(* Jacobi solver (port of [Jacobi]); even sweep counts ping-pong        *)
(* between the two grids, leaving the result in the source array.      *)

let jacobi ~grid ~sweeps ~tolerance =
  if grid <= 0 then invalid_arg "Ir_kernels.jacobi: grid must be positive";
  if sweeps <= 0 || sweeps mod 2 <> 0 then
    invalid_arg "Ir_kernels.jacobi: sweeps must be positive and even";
  let a = Poisson.matrix ~grid in
  let b = Poisson.rhs ~grid in
  let n = Array.length b in
  let p = Ir.create ~name:"ir.jacobi" ~tolerance in
  let src = Ir.array p ~name:"x" ~init:(Array.make n 0.) in
  let dst = Ir.array p ~name:"x'" ~init:(Array.make n 0.) in
  let s = Ir.ireg p in
  let sweep from_a to_a =
    List.init n (fun row ->
        let off = ref (Ir.Fconst 0.) and diag = ref 1. in
        for k = a.Csr.row_ptr.(row) to a.Csr.row_ptr.(row + 1) - 1 do
          let col = a.Csr.col_idx.(k) in
          if col = row then diag := a.Csr.values.(k)
          else
            off :=
              Ir.Fadd
                (!off, Ir.Fmul (Ir.Fconst a.Csr.values.(k), Ir.Fload (from_a, Ir.Iconst col)))
        done;
        Ir.Store
          ( to_a,
            Ir.Iconst row,
            Ir.Fdiv (Ir.Fsub (Ir.Fconst b.(row), !off), Ir.Fconst !diag),
            "x'[i] = (b[i]-s)/d" ))
  in
  Ir.set_body p
    [ Ir.For (s, Ir.Iconst 0, Ir.Iconst (sweeps / 2), sweep src dst @ sweep dst src) ];
  Ir.output_array p src;
  p

let jacobi_oracle ~grid ~sweeps = Jacobi.solve_plain { Jacobi.grid; sweeps; tolerance = 1. }

(* ------------------------------------------------------------------ *)
(* Blocked GEMM (port of [Gemm]).                                      *)

let gemm_inputs ~n ~seed =
  let rng = Rng.create ~seed in
  let a = Dense.random rng ~rows:n ~cols:n ~lo:(-1.) ~hi:1. in
  let b = Dense.random rng ~rows:n ~cols:n ~lo:(-1.) ~hi:1. in
  (Dense.flatten a, Dense.flatten b)

let gemm ~n ~block ~seed ~tolerance =
  if n <= 0 then invalid_arg "Ir_kernels.gemm: n must be positive";
  if block <= 0 || n mod block <> 0 then
    invalid_arg "Ir_kernels.gemm: block must divide n";
  let af, bf = gemm_inputs ~n ~seed in
  let p = Ir.create ~name:"ir.gemm" ~tolerance in
  let a = Ir.array p ~name:"a" ~init:af in
  let b = Ir.array p ~name:"b" ~init:bf in
  let c = Ir.array p ~name:"c" ~init:(Array.make (n * n) 0.) in
  let acc = Ir.freg p in
  let kb = Ir.ireg p and ib = Ir.ireg p and jb = Ir.ireg p in
  let k0 = Ir.ireg p and i0 = Ir.ireg p and j0 = Ir.ireg p in
  let i = Ir.ireg p and j = Ir.ireg p and k = Ir.ireg p in
  let nb = n / block in
  let blk base = Ir.Iadd (Ir.Ireg base, Ir.Iconst block) in
  Ir.set_body p
    [
      Ir.For
        ( kb,
          Ir.Iconst 0,
          Ir.Iconst nb,
          [
            Ir.Iassign (k0, Ir.Imul (Ir.Ireg kb, Ir.Iconst block));
            Ir.For
              ( ib,
                Ir.Iconst 0,
                Ir.Iconst nb,
                [
                  Ir.Iassign (i0, Ir.Imul (Ir.Ireg ib, Ir.Iconst block));
                  Ir.For
                    ( jb,
                      Ir.Iconst 0,
                      Ir.Iconst nb,
                      [
                        Ir.Iassign (j0, Ir.Imul (Ir.Ireg jb, Ir.Iconst block));
                        Ir.For
                          ( i,
                            Ir.Ireg i0,
                            blk i0,
                            [
                              Ir.For
                                ( j,
                                  Ir.Ireg j0,
                                  blk j0,
                                  [
                                    Ir.Flet (acc, Ir.Fconst 0.);
                                    Ir.For
                                      ( k,
                                        Ir.Ireg k0,
                                        blk k0,
                                        [
                                          Ir.Flet
                                            ( acc,
                                              Ir.Fadd
                                                ( Ir.Freg acc,
                                                  Ir.Fmul
                                                    ( Ir.Fload
                                                        (a, idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg k)),
                                                      Ir.Fload
                                                        (b, idx2 ~cols:n (Ir.Ireg k) (Ir.Ireg j))
                                                    ) ) );
                                        ] );
                                    Ir.Store
                                      ( c,
                                        idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg j),
                                        Ir.Fadd
                                          ( Ir.Fload (c, idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg j)),
                                            Ir.Freg acc ),
                                        "c[i][j] += block dot" );
                                  ] );
                            ] );
                      ] );
                ] );
          ] );
    ];
  Ir.output_array p c;
  p

let gemm_oracle ~n ~block ~seed = Gemm.multiply_plain { Gemm.n; block; seed; tolerance = 1. }

(* ------------------------------------------------------------------ *)
(* Register-accumulated matmul (port of [Matprod.matmul_program],      *)
(* including its recorded input loads).                                *)

let matmul ~n ~seed ~tolerance =
  if n <= 0 then invalid_arg "Ir_kernels.matmul: n must be positive";
  let rng = Rng.create ~seed in
  let af = Dense.flatten (Dense.random rng ~rows:n ~cols:n ~lo:(-1.) ~hi:1.) in
  let bf = Dense.flatten (Dense.random rng ~rows:n ~cols:n ~lo:(-1.) ~hi:1.) in
  let p = Ir.create ~name:"ir.matmul" ~tolerance in
  let a = Ir.array p ~name:"a" ~init:af in
  let b = Ir.array p ~name:"b" ~init:bf in
  let la = Ir.array p ~name:"la" ~init:(Array.make (n * n) 0.) in
  let lb = Ir.array p ~name:"lb" ~init:(Array.make (n * n) 0.) in
  let c = Ir.array p ~name:"c" ~init:(Array.make (n * n) 0.) in
  let acc = Ir.freg p in
  let i = Ir.ireg p and j = Ir.ireg p and k = Ir.ireg p in
  let copy_in src dst label =
    Ir.For
      ( i,
        Ir.Iconst 0,
        Ir.Iconst n,
        [
          Ir.For
            ( j,
              Ir.Iconst 0,
              Ir.Iconst n,
              [
                Ir.Store
                  ( dst,
                    idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg j),
                    Ir.Fload (src, idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg j)),
                    label );
              ] );
        ] )
  in
  Ir.set_body p
    [
      copy_in a la "load a[i][j]";
      copy_in b lb "load b[i][j]";
      Ir.For
        ( i,
          Ir.Iconst 0,
          Ir.Iconst n,
          [
            Ir.For
              ( j,
                Ir.Iconst 0,
                Ir.Iconst n,
                [
                  Ir.Flet (acc, Ir.Fconst 0.);
                  Ir.For
                    ( k,
                      Ir.Iconst 0,
                      Ir.Iconst n,
                      [
                        Ir.Flet
                          ( acc,
                            Ir.Fadd
                              ( Ir.Freg acc,
                                Ir.Fmul
                                  ( Ir.Fload (la, idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg k)),
                                    Ir.Fload (lb, idx2 ~cols:n (Ir.Ireg k) (Ir.Ireg j)) ) ) );
                      ] );
                  Ir.Store
                    (c, idx2 ~cols:n (Ir.Ireg i) (Ir.Ireg j), Ir.Freg acc, "c[i][j] = a[i].b[:][j]");
                ] );
          ] );
    ];
  Ir.output_array p c;
  p

let matmul_oracle ~n ~seed = Matprod.matmul_plain { Matprod.n; seed; tolerance = 1. }

(* ------------------------------------------------------------------ *)
(* 2-D five-point stencil (port of [Stencil]) on a zero-padded          *)
(* (size+2)² grid: the padding stands in for the closure's bounds       *)
(* checks, the border cells are never written and never recorded, and   *)
(* even sweep counts ping-pong so the result lands back in [src].       *)

let stencil_pad ~size flat =
  let w = size + 2 in
  let padded = Array.make (w * w) 0. in
  for i = 0 to size - 1 do
    for j = 0 to size - 1 do
      padded.(((i + 1) * w) + j + 1) <- flat.((i * size) + j)
    done
  done;
  padded

let stencil ~size ~sweeps ~seed ~tolerance =
  if size <= 0 then invalid_arg "Ir_kernels.stencil: size must be positive";
  if sweeps <= 0 || sweeps mod 2 <> 0 then
    invalid_arg "Ir_kernels.stencil: sweeps must be positive and even";
  let rng = Rng.create ~seed in
  let init = Array.init (size * size) (fun _ -> Rng.float rng 1.) in
  let w = size + 2 in
  let p = Ir.create ~name:"ir.stencil" ~tolerance in
  let src = Ir.array p ~name:"grid" ~init:(stencil_pad ~size init) in
  let dst = Ir.array p ~name:"grid'" ~init:(Array.make (w * w) 0.) in
  let s = Ir.ireg p and i = Ir.ireg p and j = Ir.ireg p in
  let sweep from_a to_a =
    let at di dj =
      Ir.Fload
        ( from_a,
          idx2 ~cols:w (Ir.Iadd (Ir.Ireg i, Ir.Iconst di)) (Ir.Iadd (Ir.Ireg j, Ir.Iconst dj))
        )
    in
    [
      Ir.For
        ( i,
          Ir.Iconst 1,
          Ir.Iconst (size + 1),
          [
            Ir.For
              ( j,
                Ir.Iconst 1,
                Ir.Iconst (size + 1),
                [
                  Ir.Store
                    ( to_a,
                      idx2 ~cols:w (Ir.Ireg i) (Ir.Ireg j),
                      Ir.Fmul
                        ( Ir.Fconst 0.2,
                          Ir.Fadd
                            ( Ir.Fadd
                                (Ir.Fadd (Ir.Fadd (at 0 0, at (-1) 0), at 1 0), at 0 (-1)),
                              at 0 1 ) ),
                      "grid'[i][j] = avg" );
                ] );
          ] );
    ]
  in
  Ir.set_body p
    [ Ir.For (s, Ir.Iconst 0, Ir.Iconst (sweeps / 2), sweep src dst @ sweep dst src) ];
  Ir.output_array p src;
  p

let stencil_oracle ~size ~sweeps ~seed =
  stencil_pad ~size (Stencil.run_plain { Stencil.size; sweeps; seed; tolerance = 1. })

(* ------------------------------------------------------------------ *)
(* The suite registry: every IR kernel at its campaign configuration,  *)
(* as unoptimized builders. [Suite] lowers them through the optimizing *)
(* pipeline; [ftb ir --dump] prints them and their per-pass deltas.    *)

let suite : (string * (unit -> Ir.t)) list =
  [
    ("ir.dot", fun () -> Ftb_ir.Programs.dot ~n:48 ~seed:11 ~tolerance:1e-9);
    ("ir.saxpy", fun () -> Ftb_ir.Programs.saxpy ~n:48 ~seed:12 ~tolerance:1e-9);
    ("ir.stencil3", fun () -> Ftb_ir.Programs.stencil3 ~n:32 ~sweeps:4 ~seed:13 ~tolerance:1e-9);
    ("ir.matvec", fun () -> Ftb_ir.Programs.matvec ~n:16 ~seed:14 ~tolerance:1e-9);
    ("ir.normalize", fun () -> Ftb_ir.Programs.normalize ~n:24 ~seed:15 ~tolerance:1e-9);
    ("ir.cg", fun () -> cg ~grid:6 ~iterations:8 ~tolerance:1e-4);
    ("ir.lu", fun () -> lu ~n:12 ~block:4 ~seed:7 ~tolerance:1e-4);
    ("ir.fft", fun () -> fft ~n1:8 ~n2:8 ~seed:11 ~tolerance:1.0);
    ("ir.jacobi", fun () -> jacobi ~grid:6 ~sweeps:10 ~tolerance:1e-4);
    ("ir.gemm", fun () -> gemm ~n:16 ~block:4 ~seed:21 ~tolerance:1e-3);
    ("ir.matmul", fun () -> matmul ~n:16 ~seed:9 ~tolerance:1e-3);
    ("ir.stencil", fun () -> stencil ~size:12 ~sweeps:6 ~seed:3 ~tolerance:1e-4);
  ]

let find name =
  match List.assoc_opt name suite with
  | Some build -> build ()
  | None ->
      invalid_arg
        (Printf.sprintf "Ir_kernels.find: unknown IR kernel %S (expected one of: %s)" name
           (String.concat ", " (List.map fst suite)))
