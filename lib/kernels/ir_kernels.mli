(** IR ports of the closure benchmarks.

    Every kernel the suite serves as a hand-instrumented closure also
    exists as a structured {!Ftb_ir.Ir.t} program, arithmetic-identical to
    the closure oracle (same operations, same order, reductions
    accumulated from [0.] exactly as the closures do) — so campaigns on
    the IR variants run through the optimizing pipeline, the batched
    prefix-snapshot executor and the dependent-cone fast path of
    [Ftb_inject.Executor].

    The IR has no integer-array indexing, so data-independent index
    structure (CSR rows in CG/Jacobi, FFT bit-reversal and twiddle
    schedules) is specialized at build time into constant-index statements
    sharing one label per phase — legitimate under the paper's
    fixed-computation-sequence assumption (§2.2).

    Each [*_oracle] returns the expected uninstrumented output (same
    layout as the IR program's output array), delegating to the closure
    kernels' [*_plain] oracles. *)

val cg : grid:int -> iterations:int -> tolerance:float -> Ftb_ir.Ir.t
(** Conjugate gradient on the [grid²]-unknown Poisson system; output is
    the final iterate [x]. Reductions are scratch [Flet] accumulations
    recorded once, like the closure kernel's single-record dots; [alpha]
    and [beta] are guarded as in [Cg.program]. *)

val cg_oracle : grid:int -> iterations:int -> float array

val lu : n:int -> block:int -> seed:int -> tolerance:float -> Ftb_ir.Ir.t
(** Blocked right-looking LU without pivoting, packed output; pivot
    reciprocals guarded as in [Lu.program]. [block] must divide [n]. *)

val lu_oracle : n:int -> block:int -> seed:int -> float array

val fft : n1:int -> n2:int -> seed:int -> tolerance:float -> Ftb_ir.Ir.t
(** Six-step FFT of [n1·n2] points ([n1], [n2] powers of two); output is
    the interleaved (re, im) spectrum, like [Fft.program]'s. *)

val fft_oracle : n1:int -> n2:int -> seed:int -> float array

val jacobi : grid:int -> sweeps:int -> tolerance:float -> Ftb_ir.Ir.t
(** Fixed-sweep Jacobi on the Poisson system. [sweeps] must be even: the
    two grids ping-pong, so the result lands back in the output array
    without a copy loop. *)

val jacobi_oracle : grid:int -> sweeps:int -> float array

val gemm : n:int -> block:int -> seed:int -> tolerance:float -> Ftb_ir.Ir.t
(** Cache-blocked GEMM: every per-block partial update of [C] is a
    recorded store, as in [Gemm.program]. [block] must divide [n]. *)

val gemm_oracle : n:int -> block:int -> seed:int -> float array

val matmul : n:int -> seed:int -> tolerance:float -> Ftb_ir.Ir.t
(** Register-accumulated matmul including the recorded input loads of
    [Matprod.matmul_program]. *)

val matmul_oracle : n:int -> seed:int -> float array

val stencil : size:int -> sweeps:int -> seed:int -> tolerance:float -> Ftb_ir.Ir.t
(** 2-D five-point averaging stencil on a zero-padded [(size+2)²] grid;
    the border stands in for the closure's bounds checks and is never
    written. [sweeps] must be even (ping-pong). Output is the padded
    grid; {!stencil_oracle} returns the closure result in the same padded
    layout. *)

val stencil_oracle : size:int -> sweeps:int -> seed:int -> float array

val suite : (string * (unit -> Ftb_ir.Ir.t)) list
(** Every IR kernel at its campaign configuration, as unoptimized
    builders — the single source of truth for [Suite]'s IR entries and
    for [ftb ir --dump]. *)

val find : string -> Ftb_ir.Ir.t
(** Build the named suite kernel. Raises [Invalid_argument] with the
    known names on a miss. *)
