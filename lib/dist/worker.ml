module Golden = Ftb_trace.Golden
module Wire = Ftb_service.Wire
module Checkpoint = Ftb_campaign.Checkpoint
module Pool = Ftb_inject.Parallel.Pool
module P = Worker_proto

type config = {
  connect : unit -> Unix.file_descr;
  domains : int;
  resolve : string -> Ftb_trace.Program.t;
  stop : unit -> bool;
  log : (string -> unit) option;
  name : string option;
  tamper : (bench:string -> shard:int -> Bytes.t -> Bytes.t) option;
}

let config ?(domains = 1) ?(resolve = Ftb_kernels.Suite.find)
    ?(stop = fun () -> false) ?log ?name ?tamper connect =
  if domains <= 0 then invalid_arg "Worker.config: domains must be positive";
  { connect; domains; resolve; stop; log; name; tamper }

type stats = { shards : int; cases : int; failures : int; stale_acks : int }

let logf cfg fmt =
  Printf.ksprintf
    (fun msg -> match cfg.log with Some log -> log msg | None -> ())
    fmt

let roundtrip fd frame =
  Wire.write fd frame;
  Wire.read fd

(* The golden run for a bench is computed once per worker process and
   reused across shards and jobs; the fingerprint in each grant guards
   against ever computing outcome bytes from a divergent trace (version
   skew between daemon and worker binaries). Bounded: a long-lived worker
   serving many benches re-runs a cold golden rather than holding every
   trace it has ever seen. Only the pull loop touches the cache, so the
   (thread-unsafe) LRU needs no lock. *)
let golden_cache_capacity = 16
let golden_cache : (string, Golden.t) Ftb_util.Lru.t =
  Ftb_util.Lru.create ~capacity:golden_cache_capacity

let golden_cache_length () = Ftb_util.Lru.length golden_cache

let golden_for cfg bench =
  Ftb_util.Lru.find_or_add golden_cache bench (fun () ->
      Golden.run (cfg.resolve bench))

let run_shard cfg pool golden ~model ~fuel ~lo ~hi =
  let n = hi - lo in
  let buf = Bytes.create n in
  (match pool with
  | None ->
      Ftb_inject.Executor.range_into_model ?fuel model golden ~lo ~hi buf
        ~off:0
  | Some pool ->
      Pool.run pool ~participants:cfg.domains ~total:n (fun a b ->
          Ftb_inject.Executor.range_into_model ?fuel model golden ~lo:(lo + a)
            ~hi:(lo + b) buf ~off:a));
  buf

(* Sparse sampled shards (the adaptive planner's drawn case lists) run
   each granted case as a traced experiment — the pool splits the case
   list, not a dense range — and ship the samples as one codec blob. *)
let run_sparse cfg pool golden ~model ~fuel cases =
  let n = Array.length cases in
  let out = Array.make n None in
  let run a b =
    for i = a to b - 1 do
      out.(i) <-
        Some (Ftb_inject.Sample_run.run_case_model ?fuel model golden cases.(i))
    done
  in
  (match pool with
  | None -> run 0 n
  | Some pool -> Pool.run pool ~participants:cfg.domains ~total:n run);
  Bytes.of_string (Ftb_inject.Sample_codec.encode (Array.map Option.get out))

let run cfg =
  (* A daemon hanging up mid-write must surface as EPIPE (a clean exit
     with stats, like Server.run's own handling), not kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let ctl = cfg.connect () in
  let hb_fd = ref (cfg.connect ()) in
  let reg =
    P.parse_registered
      (roundtrip ctl (P.register ?name:cfg.name ~domains:cfg.domains ()))
  in
  let wid = reg.P.worker in
  let ttl = reg.P.ttl in
  logf cfg "worker %d registered (domains=%d, ttl=%.3fs)" wid cfg.domains ttl;
  let pool = if cfg.domains > 1 then Some (Pool.global ~domains:cfg.domains ()) else None in
  (* Heartbeats ride a second connection so the control channel stays
     strictly request/response while a shard computes. Only this thread
     ever touches [hb_fd] while it runs; a broken heartbeat channel is
     reconnected in place, and if that fails too the thread raises
     [hb_failed] so the main loop exits visibly — a worker must never
     keep computing shards whose leases it can no longer renew (every
     result would be discarded as stale). *)
  let current_lease = Atomic.make None in
  let hb_stop = Atomic.make false in
  let hb_failed = Atomic.make false in
  let hb_thread =
    Thread.create
      (fun () ->
        let period = max 0.01 (ttl /. 3.) in
        let beat lease =
          match
            P.parse_heartbeat_reply
              (roundtrip !hb_fd (P.heartbeat ~worker:wid ~lease:(Some lease)))
          with
          | (_ : bool) -> true
          | exception
              ( Wire.Closed | Wire.Protocol_error _ | P.Decode_error _
              | Unix.Unix_error (_, _, _) ) ->
              if Atomic.get hb_stop then false
              else begin
                (try Unix.close !hb_fd with Unix.Unix_error (_, _, _) -> ());
                match cfg.connect () with
                | fd ->
                    hb_fd := fd;
                    true (* renewal resumes on the next period *)
                | exception _ -> false
              end
        in
        let ok = ref true in
        while !ok && not (Atomic.get hb_stop) do
          Thread.delay period;
          match Atomic.get current_lease with
          | Some lease when not (Atomic.get hb_stop) ->
              if not (beat lease) then begin
                ok := false;
                if not (Atomic.get hb_stop) then Atomic.set hb_failed true
              end
          | Some _ | None -> ()
        done)
      ()
  in
  let shards = ref 0 and cases = ref 0 and failures = ref 0 and stale_acks = ref 0 in
  let finish () =
    Atomic.set hb_stop true;
    (try Wire.write ctl (P.detach ~worker:wid) with _ -> ());
    (try ignore (Wire.read ctl : Ftb_service.Json.t) with _ -> ());
    (try Unix.close ctl with Unix.Unix_error (_, _, _) -> ());
    (* Closing the heartbeat fd unblocks a thread waiting on a reply; if
       the thread swapped in a fresh descriptor while reconnecting, that
       one is closed after the join (and only that one — fd numbers are
       reused, so a blind double close could hit an unrelated socket). *)
    let hb_fd0 = !hb_fd in
    (try Unix.close hb_fd0 with Unix.Unix_error (_, _, _) -> ());
    (try Thread.join hb_thread with _ -> ());
    if !hb_fd <> hb_fd0 then
      (try Unix.close !hb_fd with Unix.Unix_error (_, _, _) -> ());
    { shards = !shards; cases = !cases; failures = !failures; stale_acks = !stale_acks }
  in
  try
    while not (cfg.stop ()) && not (Atomic.get hb_failed) do
      match P.parse_lease_reply (roundtrip ctl (P.lease ~worker:wid)) with
      | P.Wait poll -> Thread.delay poll
      | P.Granted g ->
          Atomic.set current_lease (Some g.P.lease_id);
          let payload =
            try
              let golden = golden_for cfg g.P.bench in
              if Checkpoint.fingerprint_of_golden golden <> g.P.fingerprint then
                P.Failed
                  (Printf.sprintf
                     "golden fingerprint mismatch for %S (worker binary diverges from daemon)"
                     g.P.bench)
              else
                match g.P.cases with
                | None ->
                    if not (P.result_fits ~cases:(g.P.hi - g.P.lo)) then
                      (* Typed refusal on the sending end: never emit a frame
                         the transport bound would kill mid-connection. *)
                      P.Failed
                        (Printf.sprintf
                           "shard %d result would exceed Wire.max_frame"
                           g.P.shard)
                    else begin
                      let b =
                        run_shard cfg pool golden ~model:g.P.model
                          ~fuel:g.P.fuel ~lo:g.P.lo ~hi:g.P.hi
                      in
                      (* The tamper hook models a silently-corrupt worker
                         (chaos drills): corruption happens before the
                         digest, exactly like bad RAM upstream of the hash,
                         so the frame-layer check passes and only audit
                         re-execution can catch it. *)
                      let b =
                        match cfg.tamper with
                        | None -> b
                        | Some f -> f ~bench:g.P.bench ~shard:g.P.shard b
                      in
                      P.Outcomes b
                    end
                | Some cs ->
                    let blob =
                      run_sparse cfg pool golden ~model:g.P.model
                        ~fuel:g.P.fuel cs
                    in
                    let blob =
                      match cfg.tamper with
                      | None -> blob
                      | Some f -> f ~bench:g.P.bench ~shard:g.P.shard blob
                    in
                    (* The scheduler sizes sparse shards against the codec's
                       worst case, so a real blob always fits; the guard
                       stays as a typed refusal (same hex-doubling
                       arithmetic as the dense bound). *)
                    if not (P.result_fits ~cases:(Bytes.length blob)) then
                      P.Failed
                        (Printf.sprintf
                           "shard %d samples blob would exceed Wire.max_frame"
                           g.P.shard)
                    else P.Samples (Bytes.to_string blob)
            with e -> P.Failed (Printexc.to_string e)
          in
          let digest =
            match payload with
            | P.Outcomes b ->
                Some
                  (P.outcome_digest ~job:g.P.job_id ~shard:g.P.shard ~lo:g.P.lo
                     ~hi:g.P.hi ~fingerprint:g.P.fingerprint b)
            | P.Samples blob ->
                Some
                  (P.outcome_digest ~job:g.P.job_id ~shard:g.P.shard ~lo:g.P.lo
                     ~hi:g.P.hi ~fingerprint:g.P.fingerprint
                     (Bytes.of_string blob))
            | P.Failed _ -> None
          in
          (* A typed server-side rejection (oversized_result / bad_result /
             bad_request) surfaces as [Decode_error]: the shard is counted
             as failed and the pull loop continues — the daemon's retry
             machinery owns the shard, so crashing the whole worker over
             one rejected frame would only shrink the fleet. Transport
             loss still propagates to the handlers below. *)
          let ack =
            match
              P.parse_result_ack
                (roundtrip ctl
                   (P.result ?digest ~worker:wid ~job:g.P.job_id
                      ~lease:g.P.lease_id ~shard:g.P.shard payload))
            with
            | ack -> Ok ack
            | exception P.Decode_error msg -> Error msg
          in
          Atomic.set current_lease None;
          (match ack with
          | Ok ack ->
              (match payload with
              | P.Outcomes b ->
                  incr shards;
                  cases := !cases + Bytes.length b
              | P.Samples _ ->
                  incr shards;
                  cases := !cases + (g.P.hi - g.P.lo)
              | P.Failed msg ->
                  incr failures;
                  logf cfg "worker %d: shard %d failed: %s" wid g.P.shard msg);
              if ack.P.stale then begin
                incr stale_acks;
                logf cfg "worker %d: shard %d result was stale (lease expired elsewhere)"
                  wid g.P.shard
              end
          | Error msg ->
              incr failures;
              logf cfg "worker %d: shard %d result rejected by daemon: %s" wid
                g.P.shard msg)
    done;
    if Atomic.get hb_failed then
      logf cfg
        "worker %d stopping: heartbeat channel lost (lease renewal impossible)"
        wid
    else logf cfg "worker %d stopping" wid;
    finish ()
  with
  | Wire.Closed ->
      logf cfg "worker %d: daemon closed the connection" wid;
      finish ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      logf cfg "worker %d: connection lost" wid;
      finish ()
  | P.Decode_error msg ->
      (* A typed rejection of a lease poll means the daemon no longer
         serves this worker at all (quarantined, or its registration was
         pruned) — exit cleanly with stats rather than crash; the operator
         sees why via [ftb workers]. *)
      logf cfg "worker %d stopping: daemon refused lease: %s" wid msg;
      finish ()
  | e ->
      ignore (finish () : stats);
      raise e

(* ------------------------------------------------------------------ *)
(* Endpoint plumbing for the CLI verb. *)

type endpoint = Unix_socket of string | Tcp of string * int

let endpoint_of_addr addr =
  match String.rindex_opt addr ':' with
  | Some i when not (String.contains addr '/') ->
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      (match int_of_string_opt port with
      | Some port when port > 0 && host <> "" -> Tcp (host, port)
      | Some _ | None -> Unix_socket addr)
  | Some _ | None -> Unix_socket addr

let connect_endpoint = function
  | Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with _ -> ()); raise e);
      fd
  | Tcp (host, port) ->
      let addr =
        match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
        | { Unix.ai_addr; _ } :: _ -> ai_addr
        | [] -> invalid_arg (Printf.sprintf "cannot resolve %s:%d" host port)
      in
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      (try Unix.connect fd addr
       with e -> (try Unix.close fd with _ -> ()); raise e);
      fd
