(** The worker side of the fleet: pull leased shards, compute, stream back.

    A worker process opens two connections to the daemon through
    [config.connect] — a control channel (register, lease polls, results,
    detach) and a heartbeat channel driven by a dedicated thread, so lease
    renewal keeps flowing while a shard computes on the worker's own
    domain pool. Each granted shard is executed with the same batched
    executor as a local campaign ({!Ftb_inject.Executor.range_into}), so
    the returned bytes are bit-identical to what the daemon would have
    computed itself; the grant's golden fingerprint is verified first and
    a mismatch is reported as a typed shard failure instead of silently
    computing against a divergent trace. *)

type config = {
  connect : unit -> Unix.file_descr;
      (** fresh connection to the daemon; called twice (control +
          heartbeat). Tests pass a socketpair factory, the CLI passes
          {!connect_endpoint}. *)
  domains : int;  (** pool width for shard execution; 1 = serial *)
  resolve : string -> Ftb_trace.Program.t;  (** benchmark lookup *)
  stop : unit -> bool;
      (** polled between leases; [true] detaches and returns *)
  log : (string -> unit) option;
  name : string option;
      (** operator-facing identity sent at registration; quarantine bars
          are keyed by it (default: server assigns [worker-<wid>]) *)
  tamper : (bench:string -> shard:int -> Bytes.t -> Bytes.t) option;
      (** chaos-test hook: corrupt outcome bytes {e before} the
          attestation digest is computed, modelling silent worker-side
          corruption that only audit re-execution can catch. Never set in
          production paths. *)
}

val config :
  ?domains:int ->
  ?resolve:(string -> Ftb_trace.Program.t) ->
  ?stop:(unit -> bool) ->
  ?log:(string -> unit) ->
  ?name:string ->
  ?tamper:(bench:string -> shard:int -> Bytes.t -> Bytes.t) ->
  (unit -> Unix.file_descr) ->
  config
(** Defaults: [domains = 1], [resolve = Ftb_kernels.Suite.find], never
    stop, no logging, server-assigned name, no tampering. *)

val golden_cache_capacity : int
(** Bound on the per-process golden-trace cache (LRU-evicted). *)

val golden_cache_length : unit -> int
(** Current entry count of the golden-trace cache (test seam). *)

type stats = {
  shards : int;  (** shards computed and sent *)
  cases : int;  (** total cases across those shards *)
  failures : int;  (** typed shard failures reported to the daemon *)
  stale_acks : int;  (** results the daemon dropped as already-committed *)
}

val run : config -> stats
(** Register and serve leases until [stop] answers [true] (clean detach)
    or the daemon closes the connection. Transport loss ([Wire.Closed],
    [EPIPE], [ECONNRESET]) is a clean exit — the daemon's lease expiry
    machinery handles the abandoned shard. A heartbeat channel that fails
    and cannot be reconnected also ends the worker cleanly: without lease
    renewal every slow shard's result would be discarded as stale, so the
    worker exits visibly instead of degrading silently. A typed
    server-side rejection of one result frame counts as a shard failure
    and the loop continues, while a typed refusal of a lease poll (the
    worker was quarantined or pruned) ends the worker cleanly with its
    stats. Other exceptions propagate after best-effort
    cleanup. Ignores [SIGPIPE] process-wide (as {!Ftb_service.Server.run}
    does), so a daemon hangup mid-write is an [EPIPE] and not a fatal
    signal. *)

(** {1 Endpoint plumbing for the CLI} *)

type endpoint = Unix_socket of string | Tcp of string * int

val endpoint_of_addr : string -> endpoint
(** [host:port] (no slash, numeric port) parses as {!Tcp}; anything else
    is a Unix-domain socket path. *)

val connect_endpoint : endpoint -> Unix.file_descr
