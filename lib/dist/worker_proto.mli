(** Frame vocabulary of the distributed worker protocol.

    Workers speak to the campaign daemon over the same length-prefixed
    JSON transport as every other client ({!Ftb_service.Wire}); this
    module owns the five request frames (register / lease / heartbeat /
    result / detach), their reply frames, and the hex codec for shard
    outcome blobs — so the server-side scheduler ({!Fleet}) and the
    worker loop ({!Worker}) can never drift apart on field names.

    Every exchange is strict request/response: a worker frame is an
    object whose ["cmd"] starts with ["worker_"], dispatched through the
    server's protocol-extension hook; the reply is one [{"ok":...}]
    frame. *)

exception Decode_error of string
(** A frame that parses as JSON but violates the worker protocol (missing
    field, bad hex, server-side error reply). *)

val frame_slack : int
(** Conservative JSON-envelope overhead assumed by {!result_fits}. *)

val max_result_cases : int
(** Largest shard (in cases) whose hex-encoded result frame is guaranteed
    to fit {!Ftb_service.Wire.max_frame}. Both ends enforce it: the
    scheduler never leases a bigger shard to a worker (it runs locally
    instead), and a worker that would somehow produce an oversized blob
    reports a typed failure rather than tripping the transport bound. *)

val result_fits : cases:int -> bool

val hex_of_bytes : Bytes.t -> string
(** Lowercase hex, two characters per byte. *)

val bytes_of_hex : string -> Bytes.t
(** Inverse of {!hex_of_bytes}; raises {!Decode_error} on odd length or a
    non-hex character. *)

val outcome_digest :
  job:int -> shard:int -> lo:int -> hi:int -> fingerprint:string -> Bytes.t -> string
(** Attestation digest binding a shard's outcome bytes to the grant that
    produced them ({!Ftb_util.Fingerprint} over the grant key and the
    byte slice). Workers attach it to result frames; the scheduler
    recomputes it over the decoded bytes and rejects any mismatch with a
    typed [digest_mismatch] error, so transport or encoding corruption
    never reaches the campaign. It does {e not} defend against a worker
    whose execution was silently wrong before hashing — that is the audit
    re-execution layer's job. *)

(** {1 Worker -> server requests} *)

(** [register ?name ~domains ()] — [?name] is the worker's
    operator-facing identity (default chosen by the caller, e.g.
    [host-pid]); quarantine bars are keyed by this name so a banned
    worker cannot re-register under a fresh wid. *)
val register : ?name:string -> domains:int -> unit -> Ftb_service.Json.t
val lease : worker:int -> Ftb_service.Json.t
val heartbeat : worker:int -> lease:int option -> Ftb_service.Json.t

type result_payload =
  | Outcomes of Bytes.t  (** the shard's [hi - lo] outcome bytes *)
  | Samples of string
      (** a sparse sampled shard's {!Ftb_inject.Sample_codec} blob — one
          traced sample per granted case, in grant order *)
  | Failed of string  (** typed worker-side failure; the shard is retried *)

val result :
  ?digest:string ->
  worker:int ->
  job:int ->
  lease:int ->
  shard:int ->
  result_payload ->
  Ftb_service.Json.t
(** [job] echoes the grant's job id; the scheduler refuses to commit a
    result into any other job's wave, so a straggler from a finished job
    can never corrupt a later campaign that reuses the shard index.
    [?digest] is the {!outcome_digest} attestation for an [Outcomes]
    payload; frames without one are accepted for wire compatibility with
    pre-attestation workers but their shards are always audited. *)

val detach : worker:int -> Ftb_service.Json.t

(** {1 Server -> worker replies} *)

type registration = { worker : int; ttl : float }

val registered : worker:int -> ttl:float -> Ftb_service.Json.t
val parse_registered : Ftb_service.Json.t -> registration

type grant = {
  job_id : int;
  bench : string;  (** benchmark name, resolved worker-side *)
  fuel : int option;
  model : Ftb_inject.Models.spec;
      (** the job's fault model (wire field ["model"],
          {!Ftb_inject.Models.spec_to_string} encoding; absent from
          pre-model servers and then [Bit_flip_64]) — the worker runs its
          leased range under exactly this model *)
  fingerprint : string;
      (** golden-trace digest ({!Ftb_campaign.Checkpoint.fingerprint_of_golden});
          the worker recomputes it and refuses to run a shard against a
          divergent golden trace *)
  lease_id : int;
  shard : int;
  lo : int;
  hi : int;
  ttl : float;  (** renew the lease at least this often *)
  cases : int array option;
      (** [Some cases] marks a sparse sampled shard (the adaptive
          planner's case lists): run exactly these dense case indices,
          in order, with tracing, and reply with a [Samples] blob. The
          indices are positions [lo..hi) of the planner's drawn round,
          so [Array.length cases = hi - lo]. Absent (dense range shard)
          from pre-adaptive servers and exhaustive campaigns. *)
}

type lease_reply =
  | Granted of grant
  | Wait of float  (** nothing leasable right now; poll again after [s] *)

val grant_frame : grant -> Ftb_service.Json.t
val wait_frame : poll:float -> Ftb_service.Json.t
val parse_lease_reply : Ftb_service.Json.t -> lease_reply
val heartbeat_reply : valid:bool -> Ftb_service.Json.t
val parse_heartbeat_reply : Ftb_service.Json.t -> bool

type result_ack = { committed : bool; stale : bool }

val result_ack_frame : committed:bool -> stale:bool -> Ftb_service.Json.t
val parse_result_ack : Ftb_service.Json.t -> result_ack
val detached_frame : Ftb_service.Json.t

(** {1 Fleet administration} ([ftb workers]) *)

type worker_row = {
  row_wid : int;
  row_name : string;
  row_domains : int;
  row_age : float;  (** seconds since the worker's last heartbeat *)
  row_committed : int;
  row_failed : int;
  row_disputed : int;
  row_quarantined : bool;
}

val workers_request : Ftb_service.Json.t
(** [{"cmd":"worker_stats"}] — list registered workers and barred names. *)

val workers_clear_request : name:string -> Ftb_service.Json.t
(** [{"cmd":"worker_clear","name":...}] — lift a quarantine bar. *)

val workers_frame :
  worker_row list -> barred:(string * int) list -> Ftb_service.Json.t

val parse_workers : Ftb_service.Json.t -> worker_row list * (string * int) list
(** Rows plus the barred-name list ([name, disputes] pairs). *)

val cleared_frame : cleared:bool -> Ftb_service.Json.t
val parse_cleared : Ftb_service.Json.t -> bool

val error_frame : string -> string -> Ftb_service.Json.t
(** [{"ok":false,"error":{"code":...,"message":...}}] — same shape as the
    core daemon protocol's errors. *)

(** {1 Field helpers} (shared with {!Fleet}'s request parsing) *)

val req_int : string -> Ftb_service.Json.t -> int
val req_str : string -> Ftb_service.Json.t -> string
val opt_int : string -> Ftb_service.Json.t -> int option
val opt_str : string -> Ftb_service.Json.t -> string option
val check_ok : Ftb_service.Json.t -> unit
(** Raise {!Decode_error} with the server's error code/message when a
    reply is [{"ok":false}]. *)
