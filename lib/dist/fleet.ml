module Json = Ftb_service.Json
module Engine = Ftb_campaign.Engine
module Checkpoint = Ftb_campaign.Checkpoint
module P = Worker_proto

type worker_info = {
  wid : int;
  w_domains : int;
  mutable last_seen : float;
  mutable detached : bool;
}

(* The wave currently being executed for the scheduler thread blocked in
   [run_wave]. [commit] is the engine's guarded write into the campaign's
   outcome buffer; it is called only under the fleet mutex and only when
   the lease table answered [`Committed] for that shard. *)
type active = {
  a_job : int;
  a_bench : string;
  a_fuel : int option;
  a_model : Ftb_inject.Models.spec;
  a_fingerprint : string;
  table : Lease.t;
  a_commit : shard:int -> Bytes.t -> unit;
}

type stats = {
  granted : int;
  remote_committed : int;
  local_committed : int;
  expired : int;
  stale : int;
  failed : int;
}

type t = {
  mutex : Mutex.t;
  lease_ttl : float;
  poll : float;
  mutable workers : worker_info list;
  mutable next_wid : int;
  mutable next_lease : int;
  mutable active : active option;
  mutable granted : int;
  mutable remote_committed : int;
  mutable local_committed : int;
  mutable expired : int;
  mutable stale : int;
  mutable failed : int;
}

let now () = Unix.gettimeofday ()

let create ?(lease_ttl = 5.0) ?(poll = 0.05) () =
  if lease_ttl <= 0. then invalid_arg "Fleet.create: lease_ttl must be positive";
  if poll <= 0. then invalid_arg "Fleet.create: poll must be positive";
  {
    mutex = Mutex.create ();
    lease_ttl;
    poll;
    workers = [];
    next_wid = 1;
    next_lease = 1;
    active = None;
    granted = 0;
    remote_committed = 0;
    local_committed = 0;
    expired = 0;
    stale = 0;
    failed = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let stats t =
  with_lock t (fun () ->
      {
        granted = t.granted;
        remote_committed = t.remote_committed;
        local_committed = t.local_committed;
        expired = t.expired;
        stale = t.stale;
        failed = t.failed;
      })

(* A worker is live while its frames keep arriving: idle workers refresh
   [last_seen] on every lease poll, busy ones on every heartbeat, so a
   SIGKILLed worker goes silent and ages out after ~3 lease TTLs — the
   same deadline family as the PR 4 stuck-job watchdog, applied to remote
   executors. *)
let live_window t = 3. *. t.lease_ttl

let live_workers_locked t ~now:t_now =
  List.filter
    (fun w -> (not w.detached) && t_now -. w.last_seen <= live_window t)
    t.workers

let live_workers t = with_lock t (fun () -> List.length (live_workers_locked t ~now:(now ())))

(* Aging out of the live set is recoverable (a stalled worker's next frame
   revives it), so entries are only *pruned* — removed from [t.workers]
   outright — once detached or silent for far longer than any plausible
   stall. Pruning runs on registration (the only point where the list
   grows) and on the scheduler's periodic expire pass, which bounds the
   list for a long-lived daemon with endlessly reconnecting workers. A
   pruned worker that somehow returns gets a typed [unknown_worker] and
   exits visibly; worker ids are never reused. *)
let prune_window t = 10. *. live_window t

let prune_workers_locked t ~now:t_now =
  t.workers <-
    List.filter
      (fun w -> (not w.detached) && t_now -. w.last_seen <= prune_window t)
      t.workers

let live_slots_locked t ~now:t_now =
  List.fold_left (fun acc w -> acc + max 1 w.w_domains) 0 (live_workers_locked t ~now:t_now)

let find_worker_locked t wid =
  List.find_opt (fun w -> w.wid = wid) t.workers

let touch_worker_locked t wid =
  match find_worker_locked t wid with
  | Some w ->
      w.last_seen <- now ();
      true
  | None -> false

(* ------------------------------------------------------------------ *)
(* Protocol handlers (connection threads). Strict request/response: each
   returns exactly one reply frame. *)

let handle_register t json =
  let domains = match P.opt_int "domains" json with Some d when d >= 1 -> d | _ -> 1 in
  with_lock t (fun () ->
      let t_now = now () in
      prune_workers_locked t ~now:t_now;
      let wid = t.next_wid in
      t.next_wid <- wid + 1;
      t.workers <-
        { wid; w_domains = domains; last_seen = t_now; detached = false } :: t.workers;
      P.registered ~worker:wid ~ttl:t.lease_ttl)

let handle_lease t json =
  let wid = P.req_int "worker" json in
  with_lock t (fun () ->
      if not (touch_worker_locked t wid) then
        P.error_frame "unknown_worker" (Printf.sprintf "no worker %d" wid)
      else
        match t.active with
        | None -> P.wait_frame ~poll:t.poll
        | Some a -> (
            let t_now = now () in
            t.expired <- t.expired + Lease.expire a.table ~now:t_now;
            match
              Lease.acquire a.table ~max_cases:P.max_result_cases ~holder:wid
                ~now:t_now ~ttl:t.lease_ttl
            with
            | None -> P.wait_frame ~poll:t.poll
            | Some g ->
                t.granted <- t.granted + 1;
                P.grant_frame
                  {
                    P.job_id = a.a_job;
                    bench = a.a_bench;
                    fuel = a.a_fuel;
                    model = a.a_model;
                    fingerprint = a.a_fingerprint;
                    lease_id = g.Lease.lease_id;
                    shard = g.Lease.shard;
                    lo = g.Lease.lo;
                    hi = g.Lease.hi;
                    ttl = t.lease_ttl;
                  }))

let handle_heartbeat t json =
  let wid = P.req_int "worker" json in
  let lease = P.opt_int "lease" json in
  with_lock t (fun () ->
      if not (touch_worker_locked t wid) then
        P.error_frame "unknown_worker" (Printf.sprintf "no worker %d" wid)
      else
        let valid =
          match (t.active, lease) with
          | Some a, Some lease_id ->
              Lease.renew a.table ~lease_id ~now:(now ()) ~ttl:t.lease_ttl
          | _ -> false
        in
        P.heartbeat_reply ~valid)

let handle_result t json =
  let wid = P.req_int "worker" json in
  let job = P.req_int "job" json in
  let lease_id = P.req_int "lease" json in
  let shard = P.req_int "shard" json in
  with_lock t (fun () ->
      ignore (touch_worker_locked t wid : bool);
      match t.active with
      | None ->
          (* The wave is over (the job finished, was cancelled, or failed);
             a straggler's work is simply dropped. *)
          t.stale <- t.stale + 1;
          P.result_ack_frame ~committed:false ~stale:true
      | Some a when a.a_job <> job ->
          (* A straggler from an earlier job: commits are keyed by shard
             index, and a later job may reuse the index with the same
             bounds, so without this check the old bench's outcome bytes
             would land in the new campaign. Within one job late results
             are byte-identical (pure function of the golden trace) and
             first-result-wins stays sound; across jobs they are dropped. *)
          t.stale <- t.stale + 1;
          P.result_ack_frame ~committed:false ~stale:true
      | Some a -> (
          match P.opt_str "error" json with
          | Some message -> (
              match Lease.fail a.table ~lease_id ~message with
              | `Committed ->
                  t.failed <- t.failed + 1;
                  P.result_ack_frame ~committed:true ~stale:false
              | `Stale ->
                  t.stale <- t.stale + 1;
                  P.result_ack_frame ~committed:false ~stale:true)
          | None -> (
              match P.opt_str "data" json with
              | None -> P.error_frame "bad_request" "result carries neither data nor error"
              | Some hex -> (
                  match Lease.bounds a.table ~shard with
                  | None ->
                      t.stale <- t.stale + 1;
                      P.result_ack_frame ~committed:false ~stale:true
                  | Some (lo, hi) ->
                      (* Typed size guard on the receiving end: a blob that
                         does not exactly cover [lo, hi) is rejected before
                         any byte reaches the campaign. *)
                      if String.length hex > 2 * (hi - lo) then
                        P.error_frame "oversized_result"
                          (Printf.sprintf
                             "shard %d result is %d hex chars; expected %d"
                             shard (String.length hex) (2 * (hi - lo)))
                      else if String.length hex < 2 * (hi - lo) then
                        P.error_frame "bad_result"
                          (Printf.sprintf
                             "shard %d result is %d hex chars; expected %d"
                             shard (String.length hex) (2 * (hi - lo)))
                      else
                        let bytes =
                          try Some (P.bytes_of_hex hex) with P.Decode_error _ -> None
                        in
                        (match bytes with
                        | None -> P.error_frame "bad_result" "result blob is not valid hex"
                        | Some bytes -> (
                            match Lease.commit a.table ~shard with
                            | `Committed ->
                                a.a_commit ~shard bytes;
                                t.remote_committed <- t.remote_committed + 1;
                                P.result_ack_frame ~committed:true ~stale:false
                            | `Stale | `Unknown ->
                                t.stale <- t.stale + 1;
                                P.result_ack_frame ~committed:false ~stale:true))))))

let handle_detach t json =
  let wid = P.req_int "worker" json in
  with_lock t (fun () ->
      (match find_worker_locked t wid with
      | Some w ->
          w.detached <- true;
          (match t.active with
          | Some a -> t.expired <- t.expired + Lease.release_holder a.table ~holder:wid
          | None -> ())
      | None -> ());
      P.detached_frame)

let extension t ~cmd json =
  let guarded f =
    try f t json with
    | P.Decode_error msg -> P.error_frame "bad_request" msg
  in
  match cmd with
  | "worker_register" -> Some (guarded handle_register)
  | "worker_lease" -> Some (guarded handle_lease)
  | "worker_heartbeat" -> Some (guarded handle_heartbeat)
  | "worker_result" -> Some (guarded handle_result)
  | "worker_detach" -> Some (guarded handle_detach)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The engine-facing wave runner (scheduler thread). *)

let local_holder = 0 (* worker ids start at 1 *)

let wave_runner t ~job_id ~bench ~fuel ~model ~golden =
  if live_workers t = 0 then None
  else
    let fingerprint = Checkpoint.fingerprint_of_golden golden in
    let wave_size () =
      with_lock t (fun () -> max 2 (2 * live_slots_locked t ~now:(now ())))
    in
    let run_wave (tasks : Engine.shard_task array) ~commit ~run_local =
      let fits (task : Engine.shard_task) =
        P.result_fits ~cases:(task.Engine.hi - task.Engine.lo)
      in
      let run_one_local (task : Engine.shard_task) =
        match run_local ~lo:task.Engine.lo ~hi:task.Engine.hi with
        | () ->
            with_lock t (fun () -> t.local_committed <- t.local_committed + 1);
            (task.Engine.shard, Ok ())
        | exception e -> (task.Engine.shard, Error (Printexc.to_string e))
      in
      let big, small = Array.to_list tasks |> List.partition (fun task -> not (fits task)) in
      if small = [] then List.map run_one_local big
      else begin
        let leased =
          List.map
            (fun (task : Engine.shard_task) ->
              (task.Engine.shard, task.Engine.lo, task.Engine.hi))
            small
          |> Array.of_list
        in
        let table =
          with_lock t (fun () ->
              let table = Lease.create ~first_lease:t.next_lease leased in
              t.active <-
                Some
                  {
                    a_job = job_id;
                    a_bench = bench;
                    a_fuel = fuel;
                    a_model = model;
                    a_fingerprint = fingerprint;
                    table;
                    a_commit = commit;
                  };
              table)
        in
        (* The lease table is live before any oversized shard runs on the
           scheduler thread: workers drain the leased (wire-sized) shards
           concurrently instead of idling behind the local work. *)
        let big_results = List.map run_one_local big in
        let finish () =
          with_lock t (fun () ->
              t.next_lease <- Lease.next_lease table;
              t.active <- None;
              Lease.results table)
        in
        let rec drive () =
          let claim =
            with_lock t (fun () ->
                let t_now = now () in
                prune_workers_locked t ~now:t_now;
                t.expired <- t.expired + Lease.expire table ~now:t_now;
                if Lease.outstanding table = 0 then `Finished
                else if live_workers_locked t ~now:t_now = [] then
                  (* Every worker is dead or gone: the local pool is the
                     executor of last resort, so the wave (and the job)
                     always completes. An infinite TTL marks the lease as
                     never-expiring — the local runner cannot be SIGKILLed
                     away from under the daemon. *)
                  match
                    Lease.acquire table ~holder:local_holder ~now:t_now
                      ~ttl:infinity
                  with
                  | Some g -> `Local g
                  | None -> `Wait
                else `Wait)
          in
          match claim with
          | `Finished -> finish ()
          | `Local g -> (
              match run_local ~lo:g.Lease.lo ~hi:g.Lease.hi with
              | () ->
                  with_lock t (fun () ->
                      (match Lease.commit table ~shard:g.Lease.shard with
                      | `Committed -> t.local_committed <- t.local_committed + 1
                      | `Stale | `Unknown -> t.stale <- t.stale + 1));
                  drive ()
              | exception e ->
                  with_lock t (fun () ->
                      ignore
                        (Lease.fail table ~lease_id:g.Lease.lease_id
                           ~message:(Printexc.to_string e)
                          : [ `Committed | `Stale ]));
                  drive ())
          | `Wait ->
              Thread.delay (min t.poll (t.lease_ttl /. 4.));
              drive ()
        in
        big_results @ drive ()
      end
    in
    Some { Engine.wave_size; run_wave }
