module Json = Ftb_service.Json
module Engine = Ftb_campaign.Engine
module Checkpoint = Ftb_campaign.Checkpoint
module P = Worker_proto

type worker_info = {
  wid : int;
  w_name : string;
  w_domains : int;
  mutable last_seen : float;
  mutable detached : bool;
  mutable quarantined : bool;
  mutable w_committed : int;
  mutable w_failed : int;
  mutable w_disputed : int;
}

(* One committed remote shard, recorded for audit re-execution and cache
   provenance. [r_digest] is the attestation digest recomputed server-side
   over the decoded bytes (so it reflects what actually landed in the
   campaign buffer, not what the frame claimed); [r_attested] is whether
   the frame itself carried a digest — legacy frames without one are
   always audited. [r_overwritten] marks a disputed shard whose bytes the
   local oracle replaced. *)
type audit_record = {
  r_shard : int;
  r_lo : int;
  r_hi : int;
  r_wid : int;
  r_name : string;
  r_digest : string;
  r_attested : bool;
  r_cases : int array option;
      (* [Some cases] for a sparse sampled shard: the audit oracle
         re-executes exactly these case indices with tracing and compares
         codec blobs, not dense outcome bytes. *)
  mutable r_audited : bool;
  mutable r_overwritten : bool;
}

(* The wave currently being executed for the scheduler thread blocked in
   [run_wave]. [commit] is the engine's guarded write into the campaign's
   outcome buffer; it is called only under the fleet mutex and only when
   the lease table answered [`Committed] for that shard. *)
type active = {
  a_job : int;
  a_bench : string;
  a_fuel : int option;
  a_model : Ftb_inject.Models.spec;
  a_fingerprint : string;
  table : Lease.t;
  a_commit : shard:int -> Bytes.t -> unit;
  a_cases : int array option;
      (* [Some cases] marks the active wave as a sparse sampled round (the
         adaptive planner's drawn case list): grants slice [cases.(lo..hi)]
         and results carry [Samples] codec blobs, not dense outcome
         bytes. *)
}

type stats = {
  granted : int;
  remote_committed : int;
  local_committed : int;
  expired : int;
  stale : int;
  failed : int;
  audited : int;
  disputed : int;
  quarantined : int;
  bad_digest : int;
}

type job_provenance = { jp_workers : string list; jp_audited : bool }

type t = {
  mutex : Mutex.t;
  lease_ttl : float;
  poll : float;
  audit_rate : float;
  audit_seed : int;
  quarantine_after : int;
  mutable on_quarantine : (name:string -> disputes:int -> unit) option;
  mutable workers : worker_info list;
  mutable next_wid : int;
  mutable next_lease : int;
  mutable active : active option;
  (* Audit state for the job currently (or most recently) driven through
     [wave_runner]; the daemon's scheduler runs one job at a time, so a
     single slot suffices. Records accumulate across the job's waves. *)
  mutable audit_job : int option;
  mutable audit_records : audit_record list;
  mutable audited_wids : int list;
  (* Quarantine registry. [barred] is keyed by operator-facing worker
     name so a banned worker cannot shed its record by reconnecting under
     a fresh wid; [quarantined_wids] additionally rejects frames from an
     already-pruned quarantined registration. Both are bounded. *)
  mutable barred : (string * int) list;
  mutable quarantined_wids : int list;
  dispute_counts : (int, int) Hashtbl.t;
  mutable granted : int;
  mutable remote_committed : int;
  mutable local_committed : int;
  mutable expired : int;
  mutable stale : int;
  mutable failed : int;
  mutable audited : int;
  mutable disputed : int;
  mutable quarantined_total : int;
  mutable bad_digest : int;
}

let max_barred = 64
let max_quarantined_wids = 256
let now () = Unix.gettimeofday ()

let create ?(lease_ttl = 5.0) ?(poll = 0.05) ?(audit_rate = 0.02)
    ?(audit_seed = 0x7f4a7c15) ?(quarantine_after = 2) () =
  if lease_ttl <= 0. then invalid_arg "Fleet.create: lease_ttl must be positive";
  if poll <= 0. then invalid_arg "Fleet.create: poll must be positive";
  if audit_rate < 0. || audit_rate > 1. then
    invalid_arg "Fleet.create: audit_rate must be within [0, 1]";
  if quarantine_after < 1 then
    invalid_arg "Fleet.create: quarantine_after must be positive";
  {
    mutex = Mutex.create ();
    lease_ttl;
    poll;
    audit_rate;
    audit_seed;
    quarantine_after;
    on_quarantine = None;
    workers = [];
    next_wid = 1;
    next_lease = 1;
    active = None;
    audit_job = None;
    audit_records = [];
    audited_wids = [];
    barred = [];
    quarantined_wids = [];
    dispute_counts = Hashtbl.create 8;
    granted = 0;
    remote_committed = 0;
    local_committed = 0;
    expired = 0;
    stale = 0;
    failed = 0;
    audited = 0;
    disputed = 0;
    quarantined_total = 0;
    bad_digest = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let set_on_quarantine t f = with_lock t (fun () -> t.on_quarantine <- Some f)

let stats t =
  with_lock t (fun () ->
      {
        granted = t.granted;
        remote_committed = t.remote_committed;
        local_committed = t.local_committed;
        expired = t.expired;
        stale = t.stale;
        failed = t.failed;
        audited = t.audited;
        disputed = t.disputed;
        quarantined = t.quarantined_total;
        bad_digest = t.bad_digest;
      })

(* A worker is live while its frames keep arriving: idle workers refresh
   [last_seen] on every lease poll, busy ones on every heartbeat, so a
   SIGKILLed worker goes silent and ages out after ~3 lease TTLs — the
   same deadline family as the PR 4 stuck-job watchdog, applied to remote
   executors. *)
let live_window t = 3. *. t.lease_ttl

let live_workers_locked t ~now:t_now =
  List.filter
    (fun w ->
      (not w.detached) && (not w.quarantined)
      && t_now -. w.last_seen <= live_window t)
    t.workers

let live_workers t = with_lock t (fun () -> List.length (live_workers_locked t ~now:(now ())))

(* Aging out of the live set is recoverable (a stalled worker's next frame
   revives it), so entries are only *pruned* — removed from [t.workers]
   outright — once detached or silent for far longer than any plausible
   stall. Pruning runs on registration (the only point where the list
   grows) and on the scheduler's periodic expire pass, which bounds the
   list for a long-lived daemon with endlessly reconnecting workers. A
   pruned worker that somehow returns gets a typed [unknown_worker] and
   exits visibly; worker ids are never reused. *)
let prune_window t = 10. *. live_window t

(* Quarantined entries ride the same bounded-list path as detached ones:
   the wid stays barred via [quarantined_wids] and the name via [barred],
   so pruning the registry row loses no enforcement, only the row. *)
let prune_workers_locked t ~now:t_now =
  t.workers <-
    List.filter
      (fun w ->
        (not w.detached) && (not w.quarantined)
        && t_now -. w.last_seen <= prune_window t)
      t.workers

let live_slots_locked t ~now:t_now =
  List.fold_left (fun acc w -> acc + max 1 w.w_domains) 0 (live_workers_locked t ~now:t_now)

let find_worker_locked t wid =
  List.find_opt (fun w -> w.wid = wid) t.workers

let touch_worker_locked t wid =
  match find_worker_locked t wid with
  | Some w ->
      w.last_seen <- now ();
      true
  | None -> false

(* ------------------------------------------------------------------ *)
(* Protocol handlers (connection threads). Strict request/response: each
   returns exactly one reply frame. *)

(* Worker names key the quarantine bar, so they must survive a trip
   through provenance tokens and CLI arguments unambiguously: anything
   outside [A-Za-z0-9._-] is folded to '-'. *)
let sanitize_name name =
  String.map
    (fun c ->
      match c with 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> c | _ -> '-')
    name

let quarantined_locked t wid = List.mem wid t.quarantined_wids

let handle_register t json =
  let domains = match P.opt_int "domains" json with Some d when d >= 1 -> d | _ -> 1 in
  let name = Option.map sanitize_name (P.opt_str "name" json) in
  with_lock t (fun () ->
      let t_now = now () in
      prune_workers_locked t ~now:t_now;
      let barred_as =
        Option.bind name (fun n -> List.assoc_opt n t.barred |> Option.map (fun d -> (n, d)))
      in
      match barred_as with
      | Some (n, disputes) ->
          P.error_frame "quarantined"
            (Printf.sprintf
               "worker name %S is quarantined (%d disputed shards); an operator must run `ftb workers --clear %s`"
               n disputes n)
      | None ->
          let wid = t.next_wid in
          t.next_wid <- wid + 1;
          let w_name =
            match name with Some n when n <> "" -> n | _ -> Printf.sprintf "worker-%d" wid
          in
          t.workers <-
            {
              wid;
              w_name;
              w_domains = domains;
              last_seen = t_now;
              detached = false;
              quarantined = false;
              w_committed = 0;
              w_failed = 0;
              w_disputed = 0;
            }
            :: t.workers;
          P.registered ~worker:wid ~ttl:t.lease_ttl)

let handle_lease t json =
  let wid = P.req_int "worker" json in
  with_lock t (fun () ->
      if quarantined_locked t wid then
        P.error_frame "quarantined"
          (Printf.sprintf "worker %d is quarantined; leases are refused" wid)
      else if not (touch_worker_locked t wid) then
        P.error_frame "unknown_worker" (Printf.sprintf "no worker %d" wid)
      else
        match t.active with
        | None -> P.wait_frame ~poll:t.poll
        | Some a -> (
            let t_now = now () in
            t.expired <- t.expired + Lease.expire a.table ~now:t_now;
            match
              Lease.acquire a.table ~max_cases:P.max_result_cases ~holder:wid
                ~now:t_now ~ttl:t.lease_ttl
            with
            | None -> P.wait_frame ~poll:t.poll
            | Some g ->
                t.granted <- t.granted + 1;
                P.grant_frame
                  {
                    P.job_id = a.a_job;
                    bench = a.a_bench;
                    fuel = a.a_fuel;
                    model = a.a_model;
                    fingerprint = a.a_fingerprint;
                    lease_id = g.Lease.lease_id;
                    shard = g.Lease.shard;
                    lo = g.Lease.lo;
                    hi = g.Lease.hi;
                    ttl = t.lease_ttl;
                    cases =
                      Option.map
                        (fun cases ->
                          Array.sub cases g.Lease.lo (g.Lease.hi - g.Lease.lo))
                        a.a_cases;
                  }))

let handle_heartbeat t json =
  let wid = P.req_int "worker" json in
  let lease = P.opt_int "lease" json in
  with_lock t (fun () ->
      if not (touch_worker_locked t wid) then
        P.error_frame "unknown_worker" (Printf.sprintf "no worker %d" wid)
      else
        let valid =
          match (t.active, lease) with
          | Some a, Some lease_id ->
              Lease.renew a.table ~lease_id ~now:(now ()) ~ttl:t.lease_ttl
          | _ -> false
        in
        P.heartbeat_reply ~valid)

let handle_result t json =
  let wid = P.req_int "worker" json in
  let job = P.req_int "job" json in
  let lease_id = P.req_int "lease" json in
  let shard = P.req_int "shard" json in
  with_lock t (fun () ->
      ignore (touch_worker_locked t wid : bool);
      if quarantined_locked t wid then
        P.error_frame "quarantined"
          (Printf.sprintf "worker %d is quarantined; results are refused" wid)
      else
      match t.active with
      | None ->
          (* The wave is over (the job finished, was cancelled, or failed);
             a straggler's work is simply dropped. *)
          t.stale <- t.stale + 1;
          P.result_ack_frame ~committed:false ~stale:true
      | Some a when a.a_job <> job ->
          (* A straggler from an earlier job: commits are keyed by shard
             index, and a later job may reuse the index with the same
             bounds, so without this check the old bench's outcome bytes
             would land in the new campaign. Within one job late results
             are byte-identical (pure function of the golden trace) and
             first-result-wins stays sound; across jobs they are dropped. *)
          t.stale <- t.stale + 1;
          P.result_ack_frame ~committed:false ~stale:true
      | Some a -> (
          match P.opt_str "error" json with
          | Some message -> (
              match Lease.fail a.table ~lease_id ~message with
              | `Committed ->
                  t.failed <- t.failed + 1;
                  (match find_worker_locked t wid with
                  | Some w -> w.w_failed <- w.w_failed + 1
                  | None -> ());
                  P.result_ack_frame ~committed:true ~stale:false
              | `Stale ->
                  t.stale <- t.stale + 1;
                  P.result_ack_frame ~committed:false ~stale:true)
          | None -> (
              (* Shared tail for both payload kinds once [bytes] passed the
                 shard's structural validation. Attestation: recompute the
                 digest over the decoded bytes. A frame whose own digest
                 disagrees was corrupted in transit or encoding — reject it
                 typed and release the lease so the shard is retried; this
                 is not a dispute (the worker's execution is not in
                 question, its frame is). *)
              let accept ~lo ~hi ~r_cases bytes =
                let sdigest =
                  P.outcome_digest ~job ~shard ~lo ~hi
                    ~fingerprint:a.a_fingerprint bytes
                in
                let frame_digest = P.opt_str "digest" json in
                match frame_digest with
                | Some d when d <> sdigest ->
                    t.bad_digest <- t.bad_digest + 1;
                    ignore
                      (Lease.fail a.table ~lease_id
                         ~message:"attestation digest mismatch"
                        : [ `Committed | `Stale ]);
                    P.error_frame "digest_mismatch"
                      (Printf.sprintf
                         "shard %d outcome bytes do not match their attestation digest"
                         shard)
                | Some _ | None -> (
                    match Lease.commit a.table ~shard with
                    | `Committed ->
                        a.a_commit ~shard bytes;
                        t.remote_committed <- t.remote_committed + 1;
                        let r_name =
                          match find_worker_locked t wid with
                          | Some w ->
                              w.w_committed <- w.w_committed + 1;
                              w.w_name
                          | None -> Printf.sprintf "worker-%d" wid
                        in
                        t.audit_records <-
                          {
                            r_shard = shard;
                            r_lo = lo;
                            r_hi = hi;
                            r_wid = wid;
                            r_name;
                            r_digest = sdigest;
                            r_attested = frame_digest <> None;
                            r_cases;
                            r_audited = false;
                            r_overwritten = false;
                          }
                          :: t.audit_records;
                        P.result_ack_frame ~committed:true ~stale:false
                    | `Stale | `Unknown ->
                        t.stale <- t.stale + 1;
                        P.result_ack_frame ~committed:false ~stale:true)
              in
              match (P.opt_str "data" json, P.opt_str "samples" json, a.a_cases) with
              | None, None, _ ->
                  P.error_frame "bad_request" "result carries neither data nor error"
              | Some _, _, Some _ ->
                  P.error_frame "bad_result"
                    (Printf.sprintf
                       "shard %d belongs to a sparse sampled round; dense outcome bytes refused"
                       shard)
              | _, Some _, None ->
                  P.error_frame "bad_result"
                    (Printf.sprintf
                       "shard %d is a dense range shard; sparse samples refused" shard)
              | Some hex, _, None -> (
                  match Lease.bounds a.table ~shard with
                  | None ->
                      t.stale <- t.stale + 1;
                      P.result_ack_frame ~committed:false ~stale:true
                  | Some (lo, hi) ->
                      (* Typed size guard on the receiving end: a blob that
                         does not exactly cover [lo, hi) is rejected before
                         any byte reaches the campaign. *)
                      if String.length hex > 2 * (hi - lo) then
                        P.error_frame "oversized_result"
                          (Printf.sprintf
                             "shard %d result is %d hex chars; expected %d"
                             shard (String.length hex) (2 * (hi - lo)))
                      else if String.length hex < 2 * (hi - lo) then
                        P.error_frame "bad_result"
                          (Printf.sprintf
                             "shard %d result is %d hex chars; expected %d"
                             shard (String.length hex) (2 * (hi - lo)))
                      else
                        let bytes =
                          try Some (P.bytes_of_hex hex) with P.Decode_error _ -> None
                        in
                        (match bytes with
                        | None -> P.error_frame "bad_result" "result blob is not valid hex"
                        | Some bytes -> accept ~lo ~hi ~r_cases:None bytes))
              | None, Some hex, Some wave_cases -> (
                  match Lease.bounds a.table ~shard with
                  | None ->
                      t.stale <- t.stale + 1;
                      P.result_ack_frame ~committed:false ~stale:true
                  | Some (lo, hi) -> (
                      let bytes =
                        try Some (P.bytes_of_hex hex) with P.Decode_error _ -> None
                      in
                      match bytes with
                      | None ->
                          P.error_frame "bad_result" "samples blob is not valid hex"
                      | Some bytes -> (
                          (* Structural validation before any sample can
                             reach the boundary fold: the blob must decode,
                             cover exactly this shard's slice of the drawn
                             round, and name the granted cases in grant
                             order. *)
                          match Ftb_inject.Sample_codec.decode (Bytes.to_string bytes) with
                          | exception Ftb_inject.Sample_codec.Format_error msg ->
                              P.error_frame "bad_result"
                                (Printf.sprintf "shard %d samples blob is corrupt: %s"
                                   shard msg)
                          | samples ->
                              if Array.length samples <> hi - lo then
                                P.error_frame "bad_result"
                                  (Printf.sprintf
                                     "shard %d carries %d samples; expected %d" shard
                                     (Array.length samples) (hi - lo))
                              else
                                let width = Ftb_inject.Models.spec_width a.a_model in
                                let aligned = ref true in
                                Array.iteri
                                  (fun i s ->
                                    let case =
                                      (s.Ftb_inject.Sample_run.fault.Ftb_trace.Fault.site
                                      * width)
                                      + s.Ftb_inject.Sample_run.fault.Ftb_trace.Fault.bit
                                    in
                                    if case <> wave_cases.(lo + i) then aligned := false)
                                  samples;
                                if not !aligned then
                                  P.error_frame "bad_result"
                                    (Printf.sprintf
                                       "shard %d samples do not match the granted case list"
                                       shard)
                                else accept ~lo ~hi ~r_cases:(Some (Array.sub wave_cases lo (hi - lo))) bytes))))))

let handle_detach t json =
  let wid = P.req_int "worker" json in
  with_lock t (fun () ->
      (match find_worker_locked t wid with
      | Some w ->
          w.detached <- true;
          (match t.active with
          | Some a -> t.expired <- t.expired + Lease.release_holder a.table ~holder:wid
          | None -> ())
      | None -> ());
      P.detached_frame)

let handle_workers t _json =
  with_lock t (fun () ->
      let t_now = now () in
      let rows =
        t.workers
        |> List.map (fun w ->
               {
                 P.row_wid = w.wid;
                 row_name = w.w_name;
                 row_domains = w.w_domains;
                 row_age = Float.max 0. (t_now -. w.last_seen);
                 row_committed = w.w_committed;
                 row_failed = w.w_failed;
                 row_disputed = w.w_disputed;
                 row_quarantined = w.quarantined;
               })
        |> List.sort (fun a b -> compare a.P.row_wid b.P.row_wid)
      in
      P.workers_frame rows ~barred:(List.rev t.barred))

let handle_clear t json =
  let name = sanitize_name (P.req_str "name" json) in
  with_lock t (fun () ->
      let cleared = List.mem_assoc name t.barred in
      t.barred <- List.filter (fun (n, _) -> n <> name) t.barred;
      P.cleared_frame ~cleared)

let extension t ~cmd json =
  let guarded f =
    try f t json with
    | P.Decode_error msg -> P.error_frame "bad_request" msg
  in
  match cmd with
  | "worker_register" -> Some (guarded handle_register)
  | "worker_lease" -> Some (guarded handle_lease)
  | "worker_heartbeat" -> Some (guarded handle_heartbeat)
  | "worker_result" -> Some (guarded handle_result)
  | "worker_detach" -> Some (guarded handle_detach)
  | "worker_stats" -> Some (guarded handle_workers)
  | "worker_clear" -> Some (guarded handle_clear)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Quarantine. Registry mutations happen under the mutex; the operator
   hook fires outside it (the server's hook takes its own locks to purge
   caches and notify watchers, so calling it under the fleet mutex would
   invert lock order). *)

let take_bounded n xs = if List.length xs > n then List.filteri (fun i _ -> i < n) xs else xs

let quarantine_locked t ~wid ~name ~disputes =
  t.quarantined_total <- t.quarantined_total + 1;
  t.barred <- take_bounded max_barred ((name, disputes) :: List.filter (fun (n, _) -> n <> name) t.barred);
  t.quarantined_wids <- take_bounded max_quarantined_wids (wid :: t.quarantined_wids);
  (match find_worker_locked t wid with
  | Some w -> w.quarantined <- true
  | None -> ());
  (* Revoke anything the worker still holds so surviving workers (or the
     local fallback) pick the shards up immediately instead of waiting
     out the lease TTL. *)
  match t.active with
  | Some a -> t.expired <- t.expired + Lease.release_holder a.table ~holder:wid
  | None -> ()

(* ------------------------------------------------------------------ *)
(* The engine-facing wave runner (scheduler thread). *)

let local_holder = 0 (* worker ids start at 1 *)

(* Deterministic audit sampling: a seeded integer hash orders each
   worker's committed shards, and the first [quota] are audited. The
   order depends only on (seed, job, shard), so a re-run of the same
   campaign audits the same shards — reproducibility is the project's
   spine and the audit layer keeps it. *)
let audit_hash t ~job ~shard =
  let h = (shard + 1) * 0x9e3779b1 in
  let h = h lxor (job * 0x85ebca77) lxor t.audit_seed in
  let h = h lxor (h lsr 13) in
  h land max_int

(* Audit and adjudicate the current job's committed shards. Runs on the
   scheduler thread after a wave's lease table is closed ([t.active] is
   [None]), so the record list is quiescent and the engine has not yet
   checkpointed the wave: a disputed shard's bytes are replaced before
   they can ever be persisted. The local executor is the oracle — outcome
   bytes are a pure function of the golden trace, so a recomputed slice
   that disagrees with a worker's digest is a 2-of-2 quorum against it
   (honest-worker agreement is checked the same way, shard by shard). *)
let audit_job_locked_free t ~fuel ~model ~golden ~fingerprint ~commit =
  if t.audit_rate <= 0. then []
  else begin
    let job = match t.audit_job with Some j -> j | None -> -1 in
    let audit_one r =
      with_lock t (fun () -> t.audited <- t.audited + 1);
      let buf =
        match r.r_cases with
        | None ->
            let n = r.r_hi - r.r_lo in
            let buf = Bytes.create n in
            Ftb_inject.Executor.range_into_model ?fuel model golden ~lo:r.r_lo
              ~hi:r.r_hi buf ~off:0;
            buf
        | Some cases ->
            (* Sparse sampled shard: the oracle re-runs the granted cases
               with tracing and compares codec blobs — bit-identical floats
               are the codec's contract, so an honest worker's blob matches
               byte for byte. *)
            Bytes.of_string
              (Ftb_inject.Sample_codec.encode
                 (Array.map
                    (fun case -> Ftb_inject.Sample_run.run_case_model ?fuel model golden case)
                    cases))
      in
      let expect =
        P.outcome_digest ~job ~shard:r.r_shard ~lo:r.r_lo ~hi:r.r_hi
          ~fingerprint buf
      in
      r.r_audited <- true;
      if expect = r.r_digest then true
      else begin
        (* Disputed: the oracle's bytes replace the worker's. The engine
           is still blocked in [run_wave], so the overwrite lands before
           any checkpoint or harvest can observe the lying bytes. *)
        commit ~shard:r.r_shard buf;
        r.r_overwritten <- true;
        false
      end
    in
    let records = with_lock t (fun () -> t.audit_records) in
    let by_wid = Hashtbl.create 8 in
    List.iter
      (fun r ->
        if not r.r_audited then
          Hashtbl.replace by_wid r.r_wid
            (r :: (Option.value ~default:[] (Hashtbl.find_opt by_wid r.r_wid))))
      records;
    let quarantined_now = ref [] in
    Hashtbl.iter
      (fun wid recs ->
        let prior = with_lock t (fun () ->
            Option.value ~default:0 (Hashtbl.find_opt t.dispute_counts wid))
        in
        let first_time =
          with_lock t (fun () -> not (List.mem wid t.audited_wids))
        in
        (* Unattested (legacy-frame) shards are always audited; attested
           ones are sampled. A worker with any prior dispute is fully
           audited from then on — suspicion is sticky for the job. *)
        let forced, pool = List.partition (fun r -> not r.r_attested) recs in
        let picks =
          if prior > 0 then recs
          else begin
            let n = List.length pool in
            let quota =
              int_of_float (Float.round (t.audit_rate *. float_of_int n))
            in
            let quota = if first_time then max 1 quota else quota in
            let quota = min n quota in
            let sorted =
              List.sort
                (fun a b ->
                  compare
                    (audit_hash t ~job ~shard:a.r_shard)
                    (audit_hash t ~job ~shard:b.r_shard))
                pool
            in
            forced @ List.filteri (fun i _ -> i < quota) sorted
          end
        in
        let disputes_here =
          List.fold_left (fun acc r -> if audit_one r then acc else acc + 1) 0 picks
        in
        (* Escalation: any dispute triggers full re-execution of the
           worker's remaining committed shards for this job. *)
        let disputes_here =
          if disputes_here > 0 then
            List.fold_left
              (fun acc r -> if r.r_audited || audit_one r then acc else acc + 1)
              disputes_here recs
          else disputes_here
        in
        with_lock t (fun () ->
            t.audited_wids <- wid :: List.filter (( <> ) wid) t.audited_wids;
            if disputes_here > 0 then begin
              let total = prior + disputes_here in
              Hashtbl.replace t.dispute_counts wid total;
              t.disputed <- t.disputed + disputes_here;
              (match find_worker_locked t wid with
              | Some w -> w.w_disputed <- w.w_disputed + disputes_here
              | None -> ());
              if total >= t.quarantine_after && not (quarantined_locked t wid)
              then begin
                let name =
                  match find_worker_locked t wid with
                  | Some w -> w.w_name
                  | None -> (
                      match List.find_opt (fun r -> r.r_wid = wid) recs with
                      | Some r -> r.r_name
                      | None -> Printf.sprintf "worker-%d" wid)
                in
                quarantine_locked t ~wid ~name ~disputes:total;
                quarantined_now := (name, total) :: !quarantined_now
              end
            end))
      by_wid;
    !quarantined_now
  end

let job_provenance t ~job_id =
  with_lock t (fun () ->
      if t.audit_job <> Some job_id then None
      else
        let surviving =
          List.filter (fun r -> not r.r_overwritten) t.audit_records
        in
        let jp_workers =
          List.fold_left
            (fun acc r -> if List.mem r.r_name acc then acc else r.r_name :: acc)
            [] surviving
          |> List.sort compare
        in
        let jp_audited =
          t.audit_rate > 0. && List.for_all (fun r -> r.r_audited) surviving
        in
        Some { jp_workers; jp_audited })

let wave_runner t ~job_id ~bench ~fuel ~model ~golden =
  if live_workers t = 0 then None
  else
    let fingerprint = Checkpoint.fingerprint_of_golden golden in
    with_lock t (fun () ->
        if t.audit_job <> Some job_id then begin
          t.audit_job <- Some job_id;
          t.audit_records <- [];
          t.audited_wids <- []
        end);
    let wave_size () =
      with_lock t (fun () -> max 2 (2 * live_slots_locked t ~now:(now ())))
    in
    let run_wave (tasks : Engine.shard_task array) ~commit ~run_local =
      let fits (task : Engine.shard_task) =
        P.result_fits ~cases:(task.Engine.hi - task.Engine.lo)
      in
      let run_one_local (task : Engine.shard_task) =
        match run_local ~lo:task.Engine.lo ~hi:task.Engine.hi with
        | () ->
            with_lock t (fun () -> t.local_committed <- t.local_committed + 1);
            (task.Engine.shard, Ok ())
        | exception e -> (task.Engine.shard, Error (Printexc.to_string e))
      in
      let big, small = Array.to_list tasks |> List.partition (fun task -> not (fits task)) in
      if small = [] then List.map run_one_local big
      else begin
        let leased =
          List.map
            (fun (task : Engine.shard_task) ->
              (task.Engine.shard, task.Engine.lo, task.Engine.hi))
            small
          |> Array.of_list
        in
        let table =
          with_lock t (fun () ->
              let table = Lease.create ~first_lease:t.next_lease leased in
              t.active <-
                Some
                  {
                    a_job = job_id;
                    a_bench = bench;
                    a_fuel = fuel;
                    a_model = model;
                    a_fingerprint = fingerprint;
                    table;
                    a_commit = commit;
                    a_cases = None;
                  };
              table)
        in
        (* The lease table is live before any oversized shard runs on the
           scheduler thread: workers drain the leased (wire-sized) shards
           concurrently instead of idling behind the local work. *)
        let big_results = List.map run_one_local big in
        let finish () =
          with_lock t (fun () ->
              t.next_lease <- Lease.next_lease table;
              t.active <- None;
              Lease.results table)
        in
        let rec drive () =
          let claim =
            with_lock t (fun () ->
                let t_now = now () in
                prune_workers_locked t ~now:t_now;
                t.expired <- t.expired + Lease.expire table ~now:t_now;
                if Lease.outstanding table = 0 then `Finished
                else if live_workers_locked t ~now:t_now = [] then
                  (* Every worker is dead or gone: the local pool is the
                     executor of last resort, so the wave (and the job)
                     always completes. An infinite TTL marks the lease as
                     never-expiring — the local runner cannot be SIGKILLed
                     away from under the daemon. *)
                  match
                    Lease.acquire table ~holder:local_holder ~now:t_now
                      ~ttl:infinity
                  with
                  | Some g -> `Local g
                  | None -> `Wait
                else `Wait)
          in
          match claim with
          | `Finished -> finish ()
          | `Local g -> (
              match run_local ~lo:g.Lease.lo ~hi:g.Lease.hi with
              | () ->
                  with_lock t (fun () ->
                      (match Lease.commit table ~shard:g.Lease.shard with
                      | `Committed -> t.local_committed <- t.local_committed + 1
                      | `Stale | `Unknown -> t.stale <- t.stale + 1));
                  drive ()
              | exception e ->
                  with_lock t (fun () ->
                      ignore
                        (Lease.fail table ~lease_id:g.Lease.lease_id
                           ~message:(Printexc.to_string e)
                          : [ `Committed | `Stale ]));
                  drive ())
          | `Wait ->
              Thread.delay (min t.poll (t.lease_ttl /. 4.));
              drive ()
        in
        let results = big_results @ drive () in
        (* Trust-but-verify: sample-audit this wave's remote commits (and
           escalate on any dispute) before returning, so the engine's
           post-wave checkpoint only ever persists adjudicated bytes. *)
        let quarantined_now =
          audit_job_locked_free t ~fuel ~model ~golden ~fingerprint ~commit
        in
        (match with_lock t (fun () -> t.on_quarantine) with
        | Some hook ->
            List.iter
              (fun (name, disputes) -> hook ~name ~disputes)
              quarantined_now
        | None -> ());
        results
      end
    in
    Some { Engine.wave_size; run_wave }

(* ------------------------------------------------------------------ *)
(* The adaptive planner's round runner (scheduler thread). Where
   [wave_runner] distributes dense case ranges, this distributes one
   round's *drawn case list*: shards are slices of the draw (sized so a
   worst-case codec blob still fits a wire frame), grants carry the case
   slice, workers reply with {!Ftb_inject.Sample_codec} blobs, and the
   samples come back aligned index-for-index with the draw — the planner
   folds them in draw order, so the distributed round is bit-identical
   to the serial one. The same lease / expire / local-fallback / audit
   machinery applies; a round with no live workers (or whose workers all
   die mid-round) is simply executed by the local oracle. *)

let round_runner t ~job_id ~bench ~fuel ~model ~golden =
  let fingerprint = Checkpoint.fingerprint_of_golden golden in
  let sites = Ftb_trace.Golden.sites golden in
  let run_local_case case =
    Ftb_inject.Sample_run.run_case_model ?fuel model golden case
  in
  (* Conservative shard sizing: a masked sample can carry a deviation per
     site, so the per-sample bound is the codec's worst case; the hex
     doubling is the same arithmetic as the dense path's
     [max_result_cases]. *)
  let per_sample = Ftb_inject.Sample_codec.encoded_size_upper_bound ~sites in
  let shard_cap = max 1 (P.max_result_cases / per_sample) in
  fun ~round:_ ~cases ->
    let n = Array.length cases in
    if n = 0 then [||]
    else if live_workers t = 0 then Array.map run_local_case cases
    else begin
      with_lock t (fun () ->
          if t.audit_job <> Some job_id then begin
            t.audit_job <- Some job_id;
            t.audit_records <- [];
            t.audited_wids <- []
          end);
      let nshards = ((n + shard_cap - 1) / shard_cap) in
      let tasks =
        Array.init nshards (fun i ->
            let lo = i * shard_cap in
            (i, lo, min n (lo + shard_cap)))
      in
      let slots = Array.make nshards None in
      (* Commits arrive as codec blobs already validated (decode, count,
         case alignment) by [handle_result], or produced by the audit
         oracle itself, so a decode failure here is unreachable; dropping
         the blob (leaving the slot to the post-drive local pass) is the
         safe refusal. *)
      let commit ~shard bytes =
        match Ftb_inject.Sample_codec.decode (Bytes.to_string bytes) with
        | samples -> slots.(shard) <- Some samples
        | exception Ftb_inject.Sample_codec.Format_error _ -> ()
      in
      let table =
        with_lock t (fun () ->
            let table = Lease.create ~first_lease:t.next_lease tasks in
            t.active <-
              Some
                {
                  a_job = job_id;
                  a_bench = bench;
                  a_fuel = fuel;
                  a_model = model;
                  a_fingerprint = fingerprint;
                  table;
                  a_commit = commit;
                  a_cases = Some cases;
                };
            table)
      in
      let finish () =
        with_lock t (fun () ->
            t.next_lease <- Lease.next_lease table;
            t.active <- None;
            Lease.results table)
      in
      let rec drive () =
        let claim =
          with_lock t (fun () ->
              let t_now = now () in
              prune_workers_locked t ~now:t_now;
              t.expired <- t.expired + Lease.expire table ~now:t_now;
              if Lease.outstanding table = 0 then `Finished
              else if live_workers_locked t ~now:t_now = [] then
                match
                  Lease.acquire table ~holder:local_holder ~now:t_now
                    ~ttl:infinity
                with
                | Some g -> `Local g
                | None -> `Wait
              else `Wait)
        in
        match claim with
        | `Finished -> finish ()
        | `Local g ->
            (* Compute outside the lock, commit under it: if a straggler's
               validated blob won the first-result race meanwhile, its
               samples stay (byte-identical anyway for an honest worker)
               and this slice is dropped as stale. *)
            let samples =
              Array.map run_local_case
                (Array.sub cases g.Lease.lo (g.Lease.hi - g.Lease.lo))
            in
            with_lock t (fun () ->
                match Lease.commit table ~shard:g.Lease.shard with
                | `Committed ->
                    slots.(g.Lease.shard) <- Some samples;
                    t.local_committed <- t.local_committed + 1
                | `Stale | `Unknown -> t.stale <- t.stale + 1);
            drive ()
        | `Wait ->
            Thread.delay (min t.poll (t.lease_ttl /. 4.));
            drive ()
      in
      let results = drive () in
      (* [Lease.fail] is permanent — a worker-reported failure leaves its
         shard [Done (Error _)] — so the oracle re-runs those slices
         locally; the round always completes. *)
      List.iter
        (fun (shard, r) ->
          match r with
          | Ok () -> ()
          | Error _ ->
              let _, lo, hi = tasks.(shard) in
              slots.(shard) <-
                Some (Array.map run_local_case (Array.sub cases lo (hi - lo)));
              with_lock t (fun () -> t.local_committed <- t.local_committed + 1))
        results;
      (* Trust-but-verify before a single sample folds into the boundary:
         a disputed blob is overwritten with the oracle's samples through
         [commit] above. *)
      let quarantined_now =
        audit_job_locked_free t ~fuel ~model ~golden ~fingerprint ~commit
      in
      (match with_lock t (fun () -> t.on_quarantine) with
      | Some hook ->
          List.iter (fun (name, disputes) -> hook ~name ~disputes) quarantined_now
      | None -> ());
      Array.init n (fun i ->
          let shard = i / shard_cap in
          match slots.(shard) with
          | Some samples -> samples.(i - (shard * shard_cap))
          | None -> run_local_case cases.(i))
    end
