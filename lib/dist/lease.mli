(** Lease table for one wave of campaign shards.

    A pure state machine: each shard of the wave moves
    [Pending -> Leased -> Done] (with [Leased -> Pending] on expiry,
    holder release, or re-lease after death), the caller supplies every
    timestamp, and no locks or I/O live here — {!Fleet} drives it under
    its own mutex, and the property tests drive it with randomized
    worker-death interleavings.

    The invariant the distributed merge rests on: {!commit} returns
    [`Committed] {b exactly once per shard}, no matter how leases are
    acquired, expired, renewed, released or raced. Outcome bytes enter
    the campaign only on that answer, so a shard's byte range is written
    exactly once even when a SIGKILLed worker's result arrives after the
    shard was re-leased and finished elsewhere. *)

type t

type grant = { lease_id : int; shard : int; lo : int; hi : int }

val create : ?first_lease:int -> (int * int * int) array -> t
(** [create tasks] with [tasks = (shard, lo, hi)] array, all [Pending].
    [first_lease] seeds the lease-id counter; {!Fleet} threads it across
    waves so a stale id from a previous wave can never alias a live one.
    Raises [Invalid_argument] on duplicate shard indices. *)

val next_lease : t -> int
(** First lease id this table has not issued yet. *)

val outstanding : t -> int
(** Shards not yet [Done]. The wave is finished at [0]. *)

val bounds : t -> shard:int -> (int * int) option

val acquire : ?max_cases:int -> t -> holder:int -> now:float -> ttl:float -> grant option
(** Lease the first [Pending] shard (skipping shards wider than
    [max_cases] — results that could not fit a wire frame) to [holder]
    with deadline [now +. ttl]. [None] when nothing is leasable. *)

val renew : t -> lease_id:int -> now:float -> ttl:float -> bool
(** Heartbeat: push the deadline of a live lease. [false] when the lease
    is no longer current (expired, superseded, or the shard is done). *)

val expire : t -> now:float -> int
(** Return every lease with [deadline < now] to [Pending]; the count of
    reclaimed shards. *)

val release_holder : t -> holder:int -> int
(** Return every lease held by [holder] to [Pending] (worker detach). *)

val commit : t -> shard:int -> [ `Committed | `Stale | `Unknown ]
(** Record a successful result for [shard]. [`Committed] exactly once per
    shard — only then may the caller write the result bytes. [`Stale]
    when the shard is already done; [`Unknown] when the shard is not in
    this wave (a frame from a previous wave or a confused worker). *)

val fail : t -> lease_id:int -> message:string -> [ `Committed | `Stale ]
(** Record a worker-reported failure. Counts only when [lease_id] is
    still the shard's current lease ([`Committed]: the shard becomes
    [Done (Error message)] and the engine's retry machinery takes over);
    anything else is [`Stale] and ignored. *)

val results : t -> (int * (unit, string) result) list
(** Per-shard results; call once {!outstanding} is [0]. *)
