module Json = Ftb_service.Json
module Wire = Ftb_service.Wire

exception Decode_error of string

(* Result frames carry one shard's outcome bytes hex-encoded (2 chars per
   case) plus a small JSON envelope; [frame_slack] over-estimates the
   envelope so the fit check is conservative on both ends. *)
let frame_slack = 512
let max_result_cases = (Wire.max_frame - frame_slack) / 2
let result_fits ~cases = cases <= max_result_cases

(* ------------------------------------------------------------------ *)
(* Hex codec for outcome byte blobs. *)

let hex_of_bytes b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  let digit x = if x < 10 then Char.chr (Char.code '0' + x) else Char.chr (Char.code 'a' + x - 10) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) (digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (digit (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then raise (Decode_error "hex blob has odd length");
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise (Decode_error (Printf.sprintf "invalid hex byte %C" c))
  in
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.set out i
      (Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  done;
  out

(* ------------------------------------------------------------------ *)
(* Shared field accessors. *)

let req_int name json =
  match Option.bind (Json.member name json) Json.to_int with
  | Some v -> v
  | None -> raise (Decode_error (Printf.sprintf "missing integer field %S" name))

let req_str name json =
  match Option.bind (Json.member name json) Json.to_str with
  | Some v -> v
  | None -> raise (Decode_error (Printf.sprintf "missing string field %S" name))

let req_float name json =
  match Option.bind (Json.member name json) Json.to_float with
  | Some v -> v
  | None -> raise (Decode_error (Printf.sprintf "missing number field %S" name))

let opt_int name json = Option.bind (Json.member name json) Json.to_int
let opt_str name json = Option.bind (Json.member name json) Json.to_str

let flag name json =
  match Option.bind (Json.member name json) Json.to_bool with
  | Some b -> b
  | None -> false

(* ------------------------------------------------------------------ *)
(* Worker -> server request frames. *)

let register ~domains =
  Json.Obj [ ("cmd", Json.String "worker_register"); ("domains", Json.Int domains) ]

let lease ~worker =
  Json.Obj [ ("cmd", Json.String "worker_lease"); ("worker", Json.Int worker) ]

let heartbeat ~worker ~lease =
  Json.Obj
    ([ ("cmd", Json.String "worker_heartbeat"); ("worker", Json.Int worker) ]
    @ match lease with Some l -> [ ("lease", Json.Int l) ] | None -> [])

type result_payload = Outcomes of Bytes.t | Failed of string

let result ~worker ~job ~lease ~shard payload =
  Json.Obj
    ([
       ("cmd", Json.String "worker_result");
       ("worker", Json.Int worker);
       ("job", Json.Int job);
       ("lease", Json.Int lease);
       ("shard", Json.Int shard);
     ]
    @
    match payload with
    | Outcomes b -> [ ("data", Json.String (hex_of_bytes b)) ]
    | Failed msg -> [ ("error", Json.String msg) ])

let detach ~worker =
  Json.Obj [ ("cmd", Json.String "worker_detach"); ("worker", Json.Int worker) ]

(* ------------------------------------------------------------------ *)
(* Server -> worker reply frames and their parsers. *)

let check_ok json =
  if not (flag "ok" json) then begin
    let code =
      Option.bind (Json.member "error" json) (opt_str "code")
      |> Option.value ~default:"error"
    in
    let message =
      Option.bind (Json.member "error" json) (opt_str "message")
      |> Option.value ~default:"unspecified server error"
    in
    raise (Decode_error (Printf.sprintf "%s: %s" code message))
  end

type registration = { worker : int; ttl : float }

let registered ~worker ~ttl =
  Json.Obj [ ("ok", Json.Bool true); ("worker", Json.Int worker); ("ttl", Json.Float ttl) ]

let parse_registered json =
  check_ok json;
  { worker = req_int "worker" json; ttl = req_float "ttl" json }

type grant = {
  job_id : int;
  bench : string;
  fuel : int option;
  model : Ftb_inject.Models.spec;
  fingerprint : string;
  lease_id : int;
  shard : int;
  lo : int;
  hi : int;
  ttl : float;
}

type lease_reply = Granted of grant | Wait of float

let grant_frame (g : grant) =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ( "grant",
        Json.Obj
          ([
             ("job", Json.Int g.job_id);
             ("bench", Json.String g.bench);
             ("model", Json.String (Ftb_inject.Models.spec_to_string g.model));
             ("fingerprint", Json.String g.fingerprint);
             ("lease", Json.Int g.lease_id);
             ("shard", Json.Int g.shard);
             ("lo", Json.Int g.lo);
             ("hi", Json.Int g.hi);
             ("ttl", Json.Float g.ttl);
           ]
          @ match g.fuel with Some f -> [ ("fuel", Json.Int f) ] | None -> []) );
    ]

let wait_frame ~poll =
  Json.Obj [ ("ok", Json.Bool true); ("wait", Json.Bool true); ("poll", Json.Float poll) ]

let parse_lease_reply json =
  check_ok json;
  match Json.member "grant" json with
  | Some g ->
      Granted
        {
          job_id = req_int "job" g;
          bench = req_str "bench" g;
          fuel = opt_int "fuel" g;
          model =
            (* Grants from a pre-model server carry no model field: those
               jobs are Bit_flip_64 campaigns. *)
            (match opt_str "model" g with
            | None -> Ftb_inject.Models.default_spec
            | Some s -> (
                match Ftb_inject.Models.spec_of_string s with
                | Ok model -> model
                | Error msg -> raise (Decode_error msg)));
          fingerprint = req_str "fingerprint" g;
          lease_id = req_int "lease" g;
          shard = req_int "shard" g;
          lo = req_int "lo" g;
          hi = req_int "hi" g;
          ttl = req_float "ttl" g;
        }
  | None ->
      if flag "wait" json then Wait (req_float "poll" json)
      else raise (Decode_error "lease reply carries neither grant nor wait")

let heartbeat_reply ~valid =
  Json.Obj [ ("ok", Json.Bool true); ("valid", Json.Bool valid) ]

let parse_heartbeat_reply json =
  check_ok json;
  flag "valid" json

type result_ack = { committed : bool; stale : bool }

let result_ack_frame ~committed ~stale =
  Json.Obj
    [ ("ok", Json.Bool true); ("committed", Json.Bool committed); ("stale", Json.Bool stale) ]

let parse_result_ack json =
  check_ok json;
  { committed = flag "committed" json; stale = flag "stale" json }

let detached_frame = Json.Obj [ ("ok", Json.Bool true) ]

let error_frame code message =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj [ ("code", Json.String code); ("message", Json.String message) ] );
    ]
