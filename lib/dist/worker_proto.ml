module Json = Ftb_service.Json
module Wire = Ftb_service.Wire

exception Decode_error of string

(* Result frames carry one shard's outcome bytes hex-encoded (2 chars per
   case) plus a small JSON envelope; [frame_slack] over-estimates the
   envelope so the fit check is conservative on both ends. *)
let frame_slack = 512
let max_result_cases = (Wire.max_frame - frame_slack) / 2
let result_fits ~cases = cases <= max_result_cases

(* ------------------------------------------------------------------ *)
(* Hex codec for outcome byte blobs. *)

let hex_of_bytes b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  let digit x = if x < 10 then Char.chr (Char.code '0' + x) else Char.chr (Char.code 'a' + x - 10) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) (digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (digit (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then raise (Decode_error "hex blob has odd length");
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise (Decode_error (Printf.sprintf "invalid hex byte %C" c))
  in
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.set out i
      (Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  done;
  out

(* ------------------------------------------------------------------ *)
(* Result attestation. The digest binds a shard's outcome bytes to the
   grant that produced them (job, shard, case range, golden trace), so a
   frame corrupted in transit or encoding — or replayed against another
   shard's grant — fails verification server-side before any byte reaches
   the campaign. A worker computing the digest over already-corrupt bytes
   (bad RAM upstream of the hash) still passes this check; that is what
   the server's audit re-execution is for. *)

let outcome_digest ~job ~shard ~lo ~hi ~fingerprint bytes =
  let buf = Buffer.create (64 + Bytes.length bytes) in
  Printf.bprintf buf "ftb-shard-v1:%d:%d:%d:%d:%s:" job shard lo hi fingerprint;
  Buffer.add_bytes buf bytes;
  Ftb_util.Fingerprint.of_string (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Shared field accessors. *)

let req_int name json =
  match Option.bind (Json.member name json) Json.to_int with
  | Some v -> v
  | None -> raise (Decode_error (Printf.sprintf "missing integer field %S" name))

let req_str name json =
  match Option.bind (Json.member name json) Json.to_str with
  | Some v -> v
  | None -> raise (Decode_error (Printf.sprintf "missing string field %S" name))

let req_float name json =
  match Option.bind (Json.member name json) Json.to_float with
  | Some v -> v
  | None -> raise (Decode_error (Printf.sprintf "missing number field %S" name))

let opt_int name json = Option.bind (Json.member name json) Json.to_int
let opt_str name json = Option.bind (Json.member name json) Json.to_str

let flag name json =
  match Option.bind (Json.member name json) Json.to_bool with
  | Some b -> b
  | None -> false

(* ------------------------------------------------------------------ *)
(* Worker -> server request frames. *)

let register ?name ~domains () =
  Json.Obj
    ([ ("cmd", Json.String "worker_register"); ("domains", Json.Int domains) ]
    @ match name with Some n -> [ ("name", Json.String n) ] | None -> [])

let lease ~worker =
  Json.Obj [ ("cmd", Json.String "worker_lease"); ("worker", Json.Int worker) ]

let heartbeat ~worker ~lease =
  Json.Obj
    ([ ("cmd", Json.String "worker_heartbeat"); ("worker", Json.Int worker) ]
    @ match lease with Some l -> [ ("lease", Json.Int l) ] | None -> [])

type result_payload = Outcomes of Bytes.t | Samples of string | Failed of string

let result ?digest ~worker ~job ~lease ~shard payload =
  Json.Obj
    ([
       ("cmd", Json.String "worker_result");
       ("worker", Json.Int worker);
       ("job", Json.Int job);
       ("lease", Json.Int lease);
       ("shard", Json.Int shard);
     ]
    @ (match digest with Some d -> [ ("digest", Json.String d) ] | None -> [])
    @
    match payload with
    | Outcomes b -> [ ("data", Json.String (hex_of_bytes b)) ]
    | Samples blob -> [ ("samples", Json.String (hex_of_bytes (Bytes.of_string blob))) ]
    | Failed msg -> [ ("error", Json.String msg) ])

let detach ~worker =
  Json.Obj [ ("cmd", Json.String "worker_detach"); ("worker", Json.Int worker) ]

(* ------------------------------------------------------------------ *)
(* Server -> worker reply frames and their parsers. *)

let check_ok json =
  if not (flag "ok" json) then begin
    let code =
      Option.bind (Json.member "error" json) (opt_str "code")
      |> Option.value ~default:"error"
    in
    let message =
      Option.bind (Json.member "error" json) (opt_str "message")
      |> Option.value ~default:"unspecified server error"
    in
    raise (Decode_error (Printf.sprintf "%s: %s" code message))
  end

type registration = { worker : int; ttl : float }

let registered ~worker ~ttl =
  Json.Obj [ ("ok", Json.Bool true); ("worker", Json.Int worker); ("ttl", Json.Float ttl) ]

let parse_registered json =
  check_ok json;
  { worker = req_int "worker" json; ttl = req_float "ttl" json }

type grant = {
  job_id : int;
  bench : string;
  fuel : int option;
  model : Ftb_inject.Models.spec;
  fingerprint : string;
  lease_id : int;
  shard : int;
  lo : int;
  hi : int;
  ttl : float;
  cases : int array option;
      (* [Some cases] marks a sparse sampled shard: run exactly these
         dense case indices (in order — |cases| = hi - lo, positions
         lo..hi of the planner's drawn round) with tracing and return a
         [Samples] blob instead of dense outcome bytes. *)
}

type lease_reply = Granted of grant | Wait of float

let grant_frame (g : grant) =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ( "grant",
        Json.Obj
          ([
             ("job", Json.Int g.job_id);
             ("bench", Json.String g.bench);
             ("model", Json.String (Ftb_inject.Models.spec_to_string g.model));
             ("fingerprint", Json.String g.fingerprint);
             ("lease", Json.Int g.lease_id);
             ("shard", Json.Int g.shard);
             ("lo", Json.Int g.lo);
             ("hi", Json.Int g.hi);
             ("ttl", Json.Float g.ttl);
           ]
          @ (match g.fuel with Some f -> [ ("fuel", Json.Int f) ] | None -> [])
          @
          match g.cases with
          | Some cases ->
              [ ("cases", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) cases))) ]
          | None -> []) );
    ]

let wait_frame ~poll =
  Json.Obj [ ("ok", Json.Bool true); ("wait", Json.Bool true); ("poll", Json.Float poll) ]

let parse_lease_reply json =
  check_ok json;
  match Json.member "grant" json with
  | Some g ->
      Granted
        {
          job_id = req_int "job" g;
          bench = req_str "bench" g;
          fuel = opt_int "fuel" g;
          model =
            (* Grants from a pre-model server carry no model field: those
               jobs are Bit_flip_64 campaigns. *)
            (match opt_str "model" g with
            | None -> Ftb_inject.Models.default_spec
            | Some s -> (
                match Ftb_inject.Models.spec_of_string s with
                | Ok model -> model
                | Error msg -> raise (Decode_error msg)));
          fingerprint = req_str "fingerprint" g;
          lease_id = req_int "lease" g;
          shard = req_int "shard" g;
          lo = req_int "lo" g;
          hi = req_int "hi" g;
          ttl = req_float "ttl" g;
          cases =
            (match Json.member "cases" g with
            | Some (Json.List items) ->
                Some
                  (Array.of_list
                     (List.map
                        (fun item ->
                          match Json.to_int item with
                          | Some c -> c
                          | None -> raise (Decode_error "non-integer case in sparse grant"))
                        items))
            | Some _ -> raise (Decode_error "sparse grant cases must be a list")
            | None -> None);
        }
  | None ->
      if flag "wait" json then Wait (req_float "poll" json)
      else raise (Decode_error "lease reply carries neither grant nor wait")

let heartbeat_reply ~valid =
  Json.Obj [ ("ok", Json.Bool true); ("valid", Json.Bool valid) ]

let parse_heartbeat_reply json =
  check_ok json;
  flag "valid" json

type result_ack = { committed : bool; stale : bool }

let result_ack_frame ~committed ~stale =
  Json.Obj
    [ ("ok", Json.Bool true); ("committed", Json.Bool committed); ("stale", Json.Bool stale) ]

let parse_result_ack json =
  check_ok json;
  { committed = flag "committed" json; stale = flag "stale" json }

let detached_frame = Json.Obj [ ("ok", Json.Bool true) ]

(* ------------------------------------------------------------------ *)
(* Fleet administration frames (`ftb workers`). *)

type worker_row = {
  row_wid : int;
  row_name : string;
  row_domains : int;
  row_age : float;
  row_committed : int;
  row_failed : int;
  row_disputed : int;
  row_quarantined : bool;
}

let workers_request = Json.Obj [ ("cmd", Json.String "worker_stats") ]

let workers_clear_request ~name =
  Json.Obj [ ("cmd", Json.String "worker_clear"); ("name", Json.String name) ]

let workers_frame rows ~barred =
  let row r =
    Json.Obj
      [
        ("wid", Json.Int r.row_wid);
        ("name", Json.String r.row_name);
        ("domains", Json.Int r.row_domains);
        ("age", Json.Float r.row_age);
        ("committed", Json.Int r.row_committed);
        ("failed", Json.Int r.row_failed);
        ("disputed", Json.Int r.row_disputed);
        ("quarantined", Json.Bool r.row_quarantined);
      ]
  in
  let bar (name, disputes) =
    Json.Obj [ ("name", Json.String name); ("disputes", Json.Int disputes) ]
  in
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("workers", Json.List (List.map row rows));
      ("barred", Json.List (List.map bar barred));
    ]

let parse_workers json =
  check_ok json;
  let rows =
    match Json.member "workers" json with
    | Some (Json.List items) ->
        List.map
          (fun item ->
            {
              row_wid = req_int "wid" item;
              row_name = req_str "name" item;
              row_domains = req_int "domains" item;
              row_age = req_float "age" item;
              row_committed = req_int "committed" item;
              row_failed = req_int "failed" item;
              row_disputed = req_int "disputed" item;
              row_quarantined = flag "quarantined" item;
            })
          items
    | _ -> raise (Decode_error "workers reply lacks a workers list")
  in
  let barred =
    match Json.member "barred" json with
    | Some (Json.List items) ->
        List.map (fun item -> (req_str "name" item, req_int "disputes" item)) items
    | _ -> []
  in
  (rows, barred)

let cleared_frame ~cleared =
  Json.Obj [ ("ok", Json.Bool true); ("cleared", Json.Bool cleared) ]

let parse_cleared json =
  check_ok json;
  flag "cleared" json

let error_frame code message =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj [ ("code", Json.String code); ("message", Json.String message) ] );
    ]
