(** Server-side fleet scheduler: lease campaign shards to remote workers.

    One [Fleet.t] lives inside a campaign daemon and plugs into
    {!Ftb_service.Server} at two points:

    - {!extension} handles the worker protocol frames
      (register / lease / heartbeat / result / detach) on the daemon's
      per-connection threads — plain request/response, no streaming;
    - {!wave_runner} is the {!Ftb_campaign.Engine.wave_runner} factory the
      scheduler thread queries per job: when at least one live worker is
      attached, the engine's shard waves are executed by leasing shards to
      workers instead of running them on the local pool.

    {2 Lease lifecycle}

    A grant carries a deadline ([lease_ttl] seconds out); the worker's
    heartbeat thread renews it while the shard computes. A worker that
    dies (SIGKILL, network cut) stops renewing: its leases expire and the
    shards return to [Pending] for the next worker's lease poll. A worker
    that goes silent entirely ages out of the live set after three TTLs
    (recoverably — its next frame revives it), and when {e no} live
    workers remain the scheduler thread itself runs the remaining shards
    on the local pool — the executor of last resort, so a fleet job
    always terminates. Detached workers, and workers silent an order of
    magnitude past the liveness window, are pruned from the registry
    outright so a long-lived daemon with reconnecting workers does not
    accumulate entries.

    {2 Determinism}

    Outcome bytes are a pure function of the golden trace, grants carry
    the golden fingerprint (workers refuse to compute against a divergent
    trace), the lease table commits each shard exactly once
    ({!Lease.commit}), and committed blobs pass through the engine's
    size-guarded [commit] into the shard's own [lo, hi) range. Result
    frames echo the grant's job id, and a result for any job other than
    the active one is dropped as stale — first-result-wins is sound only
    within a single job's golden trace, so a straggler from a finished
    job can never commit into a later campaign that reuses the shard
    index. Hence a campaign run by any number of workers under any
    interleaving — including mid-shard worker death — is bit-identical to
    the serial run.

    {2 Trust but verify}

    Determinism above assumes workers compute honestly; a worker with
    silently corrupt hardware breaks it without tripping any transport
    check. Three layers defend, cheapest first. (1) {e Attestation}:
    result frames carry {!Worker_proto.outcome_digest}; the scheduler
    recomputes it over the decoded bytes and rejects a mismatch with a
    typed [digest_mismatch] — transport and encoding corruption never
    commits. (2) {e Audit re-execution}: at the end of each wave the
    scheduler re-executes a seeded-deterministic sample of the wave's
    remote commits on the local pool (every worker's first audit in a job
    is guaranteed; frames without attestation are always audited) and
    compares digests. The local executor is the adjudicating oracle —
    outcome bytes are a pure function of the golden trace — so a mismatch
    is a {e dispute}: the oracle's bytes replace the worker's (before the
    engine can checkpoint them), and every remaining commit by that
    worker in the job is re-executed. (3) {e Quarantine}: a worker
    accumulating [quarantine_after] disputes is quarantined — leases
    revoked and refused, results refused, its operator-facing name barred
    from re-registration until cleared ([ftb workers --clear]). The
    sampling rate bounds what a {e partially} lying worker can slip into
    an unaudited, uncached campaign before its first dispute; profiles
    harvested from fleet jobs therefore carry provenance
    ({!job_provenance}) so downstream caching can demand full audit
    coverage or operator trust. *)

type t

val create :
  ?lease_ttl:float ->
  ?poll:float ->
  ?audit_rate:float ->
  ?audit_seed:int ->
  ?quarantine_after:int ->
  unit ->
  t
(** [lease_ttl] (default 5s) bounds how long a dead worker can sit on a
    shard; [poll] (default 0.05s) is the wait hint returned to idle
    workers. [audit_rate] (default 0.02) is the fraction of each wave's
    remote commits re-executed locally for verification — [0.] disables
    auditing entirely, [1.] re-verifies every remote shard;
    [audit_seed] fixes the deterministic sample. [quarantine_after]
    (default 2) is the dispute count at which a worker is quarantined.
    Raises [Invalid_argument] on non-positive values ([audit_rate] may be
    zero but not negative or above one). *)

val set_on_quarantine : t -> (name:string -> disputes:int -> unit) -> unit
(** Operator hook fired (outside the fleet lock, on the scheduler thread)
    when a worker is quarantined — the daemon uses it to purge cache
    entries with that worker's provenance and notify watchers. *)

val extension : t -> cmd:string -> Ftb_service.Json.t -> Ftb_service.Json.t option
(** Protocol extension for {!Ftb_service.Server.config.extension}:
    handles [worker_*] commands, [None] for everything else. Malformed
    worker frames answer typed [bad_request] / [oversized_result] /
    [bad_result] / [unknown_worker] errors. *)

val wave_runner :
  t ->
  job_id:int ->
  bench:string ->
  fuel:int option ->
  model:Ftb_inject.Models.spec ->
  golden:Ftb_trace.Golden.t ->
  Ftb_campaign.Engine.wave_runner option
(** Factory for {!Ftb_service.Server.config.wave_runner}. [model] is the
    job's fault model; every grant handed out for this job carries it, so
    workers execute their leased ranges under exactly the model the
    daemon's campaign was submitted with. [None] when no
    live worker is attached (the job runs on the local pool as before);
    otherwise a runner whose wave size tracks the fleet's live domain
    slots and whose [run_wave] leases shards out, renews/expires
    deadlines, reassigns abandoned shards and merges results. *)

val round_runner :
  t ->
  job_id:int ->
  bench:string ->
  fuel:int option ->
  model:Ftb_inject.Models.spec ->
  golden:Ftb_trace.Golden.t ->
  round:int ->
  cases:int array ->
  Ftb_inject.Sample_run.t array
(** Adaptive-round counterpart of {!wave_runner}: an
    {!Ftb_plan.Adaptive_engine.exec}-shaped executor that distributes one
    round's drawn case list over the fleet. The draw is sliced into
    sparse shards (sized so a worst-case {!Ftb_inject.Sample_codec} blob
    fits a wire frame), leased through the same table as dense waves —
    grants carry the case slice, workers reply with codec blobs that are
    structurally validated (decode, count, case alignment) and
    attestation-checked before committing — and audited by local
    re-execution before any sample is returned. The samples come back
    aligned index-for-index with [cases], so folding them is
    bit-identical to the serial planner. Rounds with no live workers, and
    slices abandoned by dead or failing workers, run on the local oracle:
    the round always completes. Partially apply through [golden] once per
    job and hand the closure to the engine. *)

val live_workers : t -> int
(** Workers currently attached and heard from within the liveness
    window. *)

type job_provenance = {
  jp_workers : string list;
      (** names of remote workers with at least one surviving (not
          oracle-overwritten) commit in the job; [[]] means every byte
          was computed locally *)
  jp_audited : bool;
      (** every surviving remote commit was audit-verified (implies a
          positive audit rate) — with [audit_rate = 1.] fleet jobs always
          finish audited *)
}

val job_provenance : t -> job_id:int -> job_provenance option
(** Provenance of the most recently driven job; [None] if [job_id] is not
    that job (or it never went through {!wave_runner}). The daemon reads
    it right after a job completes, before harvesting profiles. *)

type stats = {
  granted : int;  (** leases handed to workers *)
  remote_committed : int;  (** shards whose bytes came back over the wire *)
  local_committed : int;  (** shards run by the local executor of last resort *)
  expired : int;  (** leases reclaimed from dead/detached workers *)
  stale : int;  (** duplicate / late results dropped without committing *)
  failed : int;  (** worker-reported shard failures handed to engine retry *)
  audited : int;  (** audit re-executions performed *)
  disputed : int;  (** audited shards whose bytes the oracle overruled *)
  quarantined : int;  (** workers quarantined over the fleet's lifetime *)
  bad_digest : int;  (** result frames rejected at the attestation layer *)
}

val stats : t -> stats
