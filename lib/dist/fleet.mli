(** Server-side fleet scheduler: lease campaign shards to remote workers.

    One [Fleet.t] lives inside a campaign daemon and plugs into
    {!Ftb_service.Server} at two points:

    - {!extension} handles the worker protocol frames
      (register / lease / heartbeat / result / detach) on the daemon's
      per-connection threads — plain request/response, no streaming;
    - {!wave_runner} is the {!Ftb_campaign.Engine.wave_runner} factory the
      scheduler thread queries per job: when at least one live worker is
      attached, the engine's shard waves are executed by leasing shards to
      workers instead of running them on the local pool.

    {2 Lease lifecycle}

    A grant carries a deadline ([lease_ttl] seconds out); the worker's
    heartbeat thread renews it while the shard computes. A worker that
    dies (SIGKILL, network cut) stops renewing: its leases expire and the
    shards return to [Pending] for the next worker's lease poll. A worker
    that goes silent entirely ages out of the live set after three TTLs
    (recoverably — its next frame revives it), and when {e no} live
    workers remain the scheduler thread itself runs the remaining shards
    on the local pool — the executor of last resort, so a fleet job
    always terminates. Detached workers, and workers silent an order of
    magnitude past the liveness window, are pruned from the registry
    outright so a long-lived daemon with reconnecting workers does not
    accumulate entries.

    {2 Determinism}

    Outcome bytes are a pure function of the golden trace, grants carry
    the golden fingerprint (workers refuse to compute against a divergent
    trace), the lease table commits each shard exactly once
    ({!Lease.commit}), and committed blobs pass through the engine's
    size-guarded [commit] into the shard's own [lo, hi) range. Result
    frames echo the grant's job id, and a result for any job other than
    the active one is dropped as stale — first-result-wins is sound only
    within a single job's golden trace, so a straggler from a finished
    job can never commit into a later campaign that reuses the shard
    index. Hence a campaign run by any number of workers under any
    interleaving — including mid-shard worker death — is bit-identical to
    the serial run. *)

type t

val create : ?lease_ttl:float -> ?poll:float -> unit -> t
(** [lease_ttl] (default 5s) bounds how long a dead worker can sit on a
    shard; [poll] (default 0.05s) is the wait hint returned to idle
    workers. Raises [Invalid_argument] on non-positive values. *)

val extension : t -> cmd:string -> Ftb_service.Json.t -> Ftb_service.Json.t option
(** Protocol extension for {!Ftb_service.Server.config.extension}:
    handles [worker_*] commands, [None] for everything else. Malformed
    worker frames answer typed [bad_request] / [oversized_result] /
    [bad_result] / [unknown_worker] errors. *)

val wave_runner :
  t ->
  job_id:int ->
  bench:string ->
  fuel:int option ->
  model:Ftb_inject.Models.spec ->
  golden:Ftb_trace.Golden.t ->
  Ftb_campaign.Engine.wave_runner option
(** Factory for {!Ftb_service.Server.config.wave_runner}. [model] is the
    job's fault model; every grant handed out for this job carries it, so
    workers execute their leased ranges under exactly the model the
    daemon's campaign was submitted with. [None] when no
    live worker is attached (the job runs on the local pool as before);
    otherwise a runner whose wave size tracks the fleet's live domain
    slots and whose [run_wave] leases shards out, renews/expires
    deadlines, reassigns abandoned shards and merges results. *)

val live_workers : t -> int
(** Workers currently attached and heard from within the liveness
    window. *)

type stats = {
  granted : int;  (** leases handed to workers *)
  remote_committed : int;  (** shards whose bytes came back over the wire *)
  local_committed : int;  (** shards run by the local executor of last resort *)
  expired : int;  (** leases reclaimed from dead/detached workers *)
  stale : int;  (** duplicate / late results dropped without committing *)
  failed : int;  (** worker-reported shard failures handed to engine retry *)
}

val stats : t -> stats
