(* Pure lease-table state machine — no clocks, no I/O, no locks. The
   caller ([Fleet]) supplies timestamps and holds its own mutex, which
   keeps every transition deterministic and directly property-testable:
   whatever interleaving of acquire / renew / expire / commit a chaotic
   fleet produces, [commit] answers [`Committed] exactly once per shard. *)

type state =
  | Pending
  | Leased of { lease_id : int; holder : int; mutable deadline : float }
  | Done of (unit, string) result

type slot = { shard : int; lo : int; hi : int; mutable state : state }

type t = {
  slots : slot array;
  by_shard : (int, int) Hashtbl.t;  (* shard index -> slot position *)
  by_lease : (int, int) Hashtbl.t;  (* live lease id -> slot position *)
  mutable next_lease : int;
  mutable open_slots : int;
}

type grant = { lease_id : int; shard : int; lo : int; hi : int }

let create ?(first_lease = 1) tasks =
  let slots =
    Array.map (fun (shard, lo, hi) -> { shard; lo; hi; state = Pending }) tasks
  in
  let by_shard = Hashtbl.create (Array.length slots) in
  Array.iteri
    (fun pos (slot : slot) ->
      if Hashtbl.mem by_shard slot.shard then
        invalid_arg "Lease.create: duplicate shard";
      Hashtbl.replace by_shard slot.shard pos)
    slots;
  {
    slots;
    by_shard;
    by_lease = Hashtbl.create 16;
    next_lease = first_lease;
    open_slots = Array.length slots;
  }

let next_lease t = t.next_lease
let outstanding t = t.open_slots

let bounds t ~shard =
  match Hashtbl.find_opt t.by_shard shard with
  | Some pos -> Some (t.slots.(pos).lo, t.slots.(pos).hi)
  | None -> None

let acquire ?(max_cases = max_int) t ~holder ~now ~ttl =
  let found = ref None in
  Array.iteri
    (fun pos slot ->
      if !found = None && slot.state = Pending && slot.hi - slot.lo <= max_cases
      then found := Some pos)
    t.slots;
  match !found with
  | None -> None
  | Some pos ->
      let slot = t.slots.(pos) in
      let lease_id = t.next_lease in
      t.next_lease <- t.next_lease + 1;
      slot.state <- Leased { lease_id; holder; deadline = now +. ttl };
      Hashtbl.replace t.by_lease lease_id pos;
      Some { lease_id; shard = slot.shard; lo = slot.lo; hi = slot.hi }

let renew t ~lease_id ~now ~ttl =
  match Hashtbl.find_opt t.by_lease lease_id with
  | Some pos -> (
      match t.slots.(pos).state with
      | Leased l when l.lease_id = lease_id ->
          l.deadline <- now +. ttl;
          true
      | Leased _ | Pending | Done _ -> false)
  | None -> false

let drop_lease t pos =
  match t.slots.(pos).state with
  | Leased l -> Hashtbl.remove t.by_lease l.lease_id
  | Pending | Done _ -> ()

let expire t ~now =
  let expired = ref 0 in
  Array.iteri
    (fun pos slot ->
      match slot.state with
      | Leased l when l.deadline < now ->
          drop_lease t pos;
          slot.state <- Pending;
          incr expired
      | Leased _ | Pending | Done _ -> ())
    t.slots;
  !expired

let release_holder t ~holder =
  let released = ref 0 in
  Array.iteri
    (fun pos slot ->
      match slot.state with
      | Leased l when l.holder = holder ->
          drop_lease t pos;
          slot.state <- Pending;
          incr released
      | Leased _ | Pending | Done _ -> ())
    t.slots;
  !released

(* Success commits are keyed by shard and first-result-wins: outcome
   bytes are a pure function of the golden trace, so a result arriving on
   an expired lease (the worker outlived its deadline) is byte-identical
   to whatever a re-lease would produce — accepting it merely saves the
   redundant work. A shard already [Done] answers [`Stale]: the committed
   bytes are never overwritten, which is the no-double-commit guarantee
   the engine's merge relies on. *)
let commit t ~shard =
  match Hashtbl.find_opt t.by_shard shard with
  | None -> `Unknown
  | Some pos -> (
      let slot = t.slots.(pos) in
      match slot.state with
      | Done _ -> `Stale
      | Pending | Leased _ ->
          drop_lease t pos;
          slot.state <- Done (Ok ());
          t.open_slots <- t.open_slots - 1;
          `Committed)

(* Worker-reported failures only count when the reporting lease is still
   current — a stale failure must not clobber a shard that has since been
   re-leased (and may be about to succeed elsewhere). *)
let fail t ~lease_id ~message =
  match Hashtbl.find_opt t.by_lease lease_id with
  | None -> `Stale
  | Some pos -> (
      let slot = t.slots.(pos) in
      match slot.state with
      | Leased l when l.lease_id = lease_id ->
          drop_lease t pos;
          slot.state <- Done (Error message);
          t.open_slots <- t.open_slots - 1;
          `Committed
      | Leased _ | Pending | Done _ -> `Stale)

let results t =
  Array.to_list t.slots
  |> List.map (fun slot ->
         match slot.state with
         | Done r -> (slot.shard, r)
         | Pending | Leased _ ->
             (slot.shard, Error "shard never completed (scheduler bug)"))
