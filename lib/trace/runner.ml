type outcome = Masked | Sdc | Crash

let outcome_equal a b =
  match (a, b) with
  | Masked, Masked | Sdc, Sdc | Crash, Crash -> true
  | (Masked | Sdc | Crash), _ -> false

let outcome_to_string = function Masked -> "masked" | Sdc -> "sdc" | Crash -> "crash"
let pp_outcome ppf o = Format.pp_print_string ppf (outcome_to_string o)

type result = {
  fault : Fault.t;
  outcome : outcome;
  crash_reason : Ctx.crash_reason option;
  injected_error : float;
  output_error : float;
}

type propagation = {
  result : result;
  start : int;
  stop : int;
  deviations : float array;
}

let check_fault (golden : Golden.t) (fault : Fault.t) =
  let sites = Golden.sites golden in
  if fault.Fault.site >= sites then
    invalid_arg
      (Printf.sprintf "Runner: fault site %d outside dynamic range [0,%d)" fault.Fault.site
         sites)

let injected_error_of ctx =
  match Ctx.injection ctx with
  | None -> (* run crashed before reaching the target site *) infinity
  | Some (original, corrupted) ->
      let err = abs_float (corrupted -. original) in
      if Float.is_nan err then infinity else err

(* Taxonomy of a crash detected at the output: a NaN anywhere dominates,
   then an infinity; a non-finite L∞ error with a fully finite output means
   the *difference* overflowed, which is still an Inf-class anomaly. *)
let output_crash_reason output =
  if Array.exists Float.is_nan output then Ctx.Nan_value else Ctx.Inf_value

let classify (golden : Golden.t) output =
  let tolerance = golden.Golden.program.Program.tolerance in
  if Array.length output <> Array.length golden.Golden.output then
    (Crash, Some Ctx.Exception_raised, infinity)
  else begin
    let err = Ftb_util.Norms.linf golden.Golden.output output in
    if err = infinity then (Crash, Some (output_crash_reason output), infinity)
    else if err <= tolerance then (Masked, None, err)
    else (Sdc, None, err)
  end

(* Classify one execution of [run] (normally the program body, but the
   batched executor passes a suffix replay of a paused execution) under an
   already-positioned injecting context. *)
let outcome_of_run (golden : Golden.t) fault ctx run =
  match run ctx with
  | output ->
      let outcome, crash_reason, output_error = classify golden output in
      { fault; outcome; crash_reason; injected_error = injected_error_of ctx; output_error }
  | exception Ctx.Crash { reason; _ } ->
      { fault; outcome = Crash; crash_reason = Some reason;
        injected_error = injected_error_of ctx; output_error = infinity }

(* Crash isolation for campaigns: any exception escaping the kernel body —
   not just the cooperative [Ctx.Crash] — is contained and classified, so a
   single broken case cannot abort an hours-long campaign. Asynchronous
   resource exhaustion is not containable and still propagates. *)
let outcome_of_run_contained (golden : Golden.t) fault ctx run =
  match outcome_of_run golden fault ctx run with
  | result -> result
  | exception Out_of_memory -> raise Out_of_memory
  | exception _ ->
      { fault; outcome = Crash; crash_reason = Some Ctx.Exception_raised;
        injected_error = injected_error_of ctx; output_error = infinity }

let finish_outcome (golden : Golden.t) fault ctx =
  outcome_of_run golden fault ctx golden.Golden.program.Program.body

let run_outcome ?fuel (golden : Golden.t) fault =
  check_fault golden fault;
  finish_outcome golden fault (Ctx.outcome_only ?fuel ~fault ())

let run_outcome_contained ?fuel (golden : Golden.t) fault =
  check_fault golden fault;
  let ctx = Ctx.outcome_only ?fuel ~fault () in
  outcome_of_run_contained golden fault ctx golden.Golden.program.Program.body

let run_outcome_custom ?fuel (golden : Golden.t) ~site ~corrupt =
  let fault = Fault.make ~site ~bit:0 in
  check_fault golden fault;
  finish_outcome golden fault (Ctx.outcome_custom ?fuel ~site ~corrupt ())

let run_outcome_custom_contained ?fuel (golden : Golden.t) ~site ~corrupt =
  let fault = Fault.make ~site ~bit:0 in
  check_fault golden fault;
  let ctx = Ctx.outcome_custom ?fuel ~site ~corrupt () in
  outcome_of_run_contained golden fault ctx golden.Golden.program.Program.body

(* Shared tail of the propagation runners: execute the body under an
   already-constructed propagation context and diff the faulty trace. *)
let finish_propagation (golden : Golden.t) (fault : Fault.t) ctx =
  let outcome, crash_reason, output_error =
    match golden.Golden.program.Program.body ctx with
    | output -> classify golden output
    | exception Ctx.Crash { reason; _ } -> (Crash, Some reason, infinity)
  in
  let result =
    { fault; outcome; crash_reason; injected_error = injected_error_of ctx; output_error }
  in
  let golden_len = Golden.sites golden in
  let start = fault.Fault.site in
  let stop =
    (* Read the faulty trace in place (no [Array.sub] copy of the whole
       trace — it is as long as the run itself). *)
    let bound = min golden_len (Ctx.trace_length ctx) in
    match Ctx.diverged_at ctx with Some d -> min d bound | None -> bound
  in
  let stop = max start stop in
  let deviations =
    Array.init (stop - start) (fun k ->
        let j = start + k in
        let d = abs_float (golden.Golden.values.(j) -. Ctx.trace_value ctx j) in
        if Float.is_nan d then infinity else d)
  in
  { result; start; stop; deviations }

let run_propagation ?fuel ?sink (golden : Golden.t) fault =
  check_fault golden fault;
  let ctx = Ctx.propagation ?fuel ?sink ~fault ~golden_statics:golden.Golden.statics () in
  finish_propagation golden fault ctx

let run_propagation_custom ?fuel ?sink (golden : Golden.t) ~(fault : Fault.t) ~corrupt =
  check_fault golden fault;
  let ctx =
    Ctx.propagation_custom ?fuel ?sink ~site:fault.Fault.site ~corrupt
      ~golden_statics:golden.Golden.statics ()
  in
  finish_propagation golden fault ctx
