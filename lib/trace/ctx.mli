(** Execution context: the instrumented program's view of the tracer.

    A kernel threaded with a [Ctx.t] reports every floating-point data
    value it produces through {!record}; each call is one *dynamic
    instruction* (fault injection site). Depending on how the context was
    created the call records a golden trace, silently injects a bit flip,
    or additionally records the faulty trace for propagation analysis. *)

type crash_reason =
  | Nan_value  (** a NaN was trapped by a guard or reached the output *)
  | Inf_value  (** an infinity was trapped by a guard or reached the output *)
  | Exception_raised
      (** an exception escaped the kernel body, or the output was
          structurally invalid (wrong length) *)
  | Fuel_exhausted
      (** the divergence watchdog's step budget ran out — the injected
          fault sent the run into non-convergence *)
(** Why a run crashed — the campaign engine's crash taxonomy. Recorded
    alongside every Crash outcome so studies can break abnormal
    terminations down by cause. *)

val crash_reason_to_string : crash_reason -> string
(** ["nan"], ["inf"], ["exception"], ["fuel"]. *)

val crash_reason_equal : crash_reason -> crash_reason -> bool
val pp_crash_reason : Format.formatter -> crash_reason -> unit

exception Crash of { reason : crash_reason; what : string }
(** Abnormal termination of an instrumented run — the paper's Crash
    outcome, tagged with its taxonomy reason. Raised by {!guard_finite}
    (modelling a NaN trap or a kernel's own sanity guard), by the fuel
    watchdog inside {!record}, or by kernels directly. *)

type t
(** A context. Single use: one context drives exactly one run. *)

type sink
(** A reusable pair of trace buffers. Campaign loops that perform many
    propagation runs can allocate one sink per domain and pass it to
    {!propagation} for every run — the buffers are reset, not reallocated,
    keeping the tracing hot path free of per-run array growth. *)

val create_sink : unit -> sink
(** A fresh, empty sink. *)

val reset_sink : sink -> unit
(** Forget the sink's contents (O(1); capacity is retained). *)

(** Every constructor takes an optional [?fuel] step budget: the maximum
    number of {!record} calls the run may perform before the watchdog
    raises [Crash] with reason {!Fuel_exhausted}. Use it to bound runs of
    iterate-to-convergence kernels that an injected fault can keep from
    ever converging. Omitted means unlimited. [Invalid_argument] when
    [fuel <= 0]. *)

val golden : ?fuel:int -> unit -> t
(** A recording context for the error-free run. *)

val outcome_only : ?fuel:int -> fault:Fault.t -> unit -> t
(** An injecting context that keeps no trace — the cheap mode used for the
    bulk of a campaign where only the final output matters. *)

val outcome_custom : ?fuel:int -> site:int -> corrupt:(float -> float) -> unit -> t
(** Like {!outcome_only} but with an arbitrary corruption function instead
    of a single bit flip — the hook for alternative fault models
    ({!Ftb_inject.Models}): multi-bit bursts, 32-bit flips, random value
    replacement. *)

val propagation :
  ?fuel:int -> ?sink:sink -> fault:Fault.t -> golden_statics:int array -> unit -> t
(** An injecting context that also records the faulty run's values and
    detects control-flow divergence against the golden static-tag stream.
    Recording stops contributing to propagation data past the divergence
    point. When [sink] is given its buffers are reset and reused instead of
    allocating fresh ones; the context's trace is then only valid until the
    sink's next reuse. *)

val propagation_custom :
  ?fuel:int ->
  ?sink:sink ->
  site:int ->
  corrupt:(float -> float) ->
  golden_statics:int array ->
  unit ->
  t
(** {!propagation} generalized to an arbitrary corruption function,
    mirroring {!outcome_custom}: the model-aware adaptive sampler uses it
    to record propagation traces under any fault model's cases. *)

val counting : ?fuel:int -> unit -> t
(** A context that performs only bookkeeping (dynamic-instruction count and
    fuel); every {!record} returns its argument unchanged and nothing is
    stored. Used by the batched campaign executor to drive the shared
    prefix of a site's 64 bit-flip cases exactly once. *)

(** {1 Prefix snapshots}

    The batched executor runs a site's shared prefix once under a
    {!counting} context, snapshots, and replays only the suffix per bit
    with {!resume_outcome}. Only the context's own state (position and
    remaining fuel) lives here; interpreter state is snapshotted by the
    program's executor (see [Ftb_ir.Machine]). *)

type snapshot
(** Saved context position: dynamic-instruction index + remaining fuel. *)

val snapshot : t -> snapshot
(** Capture the context's current position. *)

val resume_outcome : snapshot -> fault:Fault.t -> t
(** An outcome-only injecting context that believes [snapshot.next] dynamic
    instructions have already executed (with the corresponding fuel spent).
    Behaves exactly like {!outcome_only} run past the same prefix — same
    injection trigger, same fuel-exhaustion point. Raises
    [Invalid_argument] when the fault site precedes the snapshot (the
    injection would be unreachable). *)

val resume_custom : snapshot -> site:int -> corrupt:(float -> float) -> t
(** {!resume_outcome} generalized to an arbitrary corruption, mirroring
    {!outcome_custom}: the batched executor uses it to replay a site's
    suffix under any fault model's cases. Same [Invalid_argument]
    condition. *)

val hooked : ?fuel:int -> (index:int -> tag:int -> float -> float) -> t
(** A context that forwards every recorded value to an arbitrary hook and
    continues with the hook's result. The building block of the lockstep
    executor ({!Lockstep}), which uses it to suspend the run at each
    dynamic instruction via an effect. Keeps no trace. *)

val record : t -> tag:int -> float -> float
(** [record t ~tag v] registers [v] as the value of the next dynamic
    instruction, whose static identity is [tag]. Returns [v], or the
    bit-flipped value if this dynamic instruction is the context's
    injection target. Kernels must use the returned value. Raises
    [Crash] with reason {!Fuel_exhausted} when the context's step budget
    is spent. *)

val guard_finite : t -> string -> float -> float
(** [guard_finite t what v] raises [Crash] when [v] is NaN (reason
    {!Nan_value}) or infinite (reason {!Inf_value}) — use at points where
    a real kernel would trap (pivot selection, convergence tests, sqrt of
    a residual norm). Returns [v] unchanged otherwise. This models the
    "NaN exception" crash of §2.1. *)

val length : t -> int
(** Number of dynamic instructions recorded so far. *)

val remaining_fuel : t -> int option
(** Steps left in the budget; [None] when the context is unlimited. *)

(** Results extracted after the run. *)

val trace_values : t -> float array
(** Recorded values (golden or propagation contexts); raises
    [Invalid_argument] on an outcome-only context. *)

val trace_statics : t -> int array
(** Static tag of each recorded dynamic instruction; same restriction as
    {!trace_values}. *)

val trace_length : t -> int
(** Number of recorded trace entries, without copying; same restriction as
    {!trace_values}. *)

val trace_value : t -> int -> float
(** [trace_value t i] is the [i]-th recorded value, without copying the
    trace. Raises [Invalid_argument] out of bounds or on an outcome-only
    context. *)

val trace_static : t -> int -> int
(** [trace_static t i] is the [i]-th recorded static tag, without copying. *)

val injection : t -> (float * float) option
(** [Some (original, corrupted)] once the injection target was reached —
    the pre- and post-flip value at the fault site. [None] for golden
    contexts or when the run ended before the target site. *)

val diverged_at : t -> int option
(** First dynamic index where the faulty run's static tag departed from the
    golden run's (propagation contexts only; [None] otherwise). A faulty
    run that executes *more* dynamic instructions than the golden run is
    marked diverged at the golden length. *)
