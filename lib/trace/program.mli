(** Instrumented programs.

    A program packages a kernel body that runs under a {!Ctx.t} together
    with its acceptance tolerance [T] — the largest L∞ deviation of the
    final output that the domain user still accepts (§2.1). The same body
    runs in golden, outcome-only and propagation modes. *)

type prefix_outcome =
  | Completed of float array
      (** the program finished before reaching the requested record count *)
  | Paused of (Ctx.t -> float array)
      (** a suspended execution: the captured interpreter snapshot can be
          replayed to completion any number of times, each replay under a
          fresh context and against a fresh copy of the saved state *)

(** Outcome of a dependent-cone replay, mirroring the classification of a
    full run: the L∞ output deviation against tolerance, or a crash. *)
type cone_outcome = Cone_masked | Cone_sdc | Cone_crash of Ctx.crash_reason

type cone_plan = {
  cone_sites : int;
      (** number of injection sites the plan covers — must equal the
          golden site count or the executor discards the plan *)
  cone_case : site:int -> ((float -> float) -> cone_outcome) option;
      (** [cone_case ~site] specializes the program to injection site
          [site]: the returned closure takes the corruption function,
          replays only the site's dependent cone (forward slice) against
          precomputed golden values, and classifies the outcome — no
          prefix, no suffix, no output copy. [None] when the site's cone is
          imprecise (feeds a float branch, or too large to pay off); the
          caller must fall back to full or prefix-snapshot replay. The
          closure is single-threaded (it reuses scratch buffers); obtain
          one per domain. *)
}
(** A site-suffix specializer: per-site dependent-cone replay. *)

type t = {
  name : string;  (** short identifier, e.g. ["cg"] *)
  description : string;  (** one-line description for reports *)
  tolerance : float;  (** acceptance threshold [T] on the L∞ output error *)
  statics : Static.table;  (** static instructions of the body *)
  body : Ctx.t -> float array;  (** the instrumented kernel *)
  resumable : (Ctx.t -> stop_at:int -> prefix_outcome) option;
      (** prefix-snapshot capability: [run ctx ~stop_at] executes the body
          under [ctx] until it is about to record dynamic instruction
          [stop_at], then snapshots the interpreter state and pauses.
          Backs the batched campaign executor, which runs the shared prefix
          of a site's 64 bit flips once. [None] for closure kernels, which
          the executor transparently re-runs in full. *)
  cone : (unit -> cone_plan option) option;
      (** dependent-cone capability: forces the (lazily built, memoized)
          cone analysis. [None] when the program carries no analysis;
          [Some force] where [force ()] is [None] when the analysis failed
          and the executor must ignore the capability. Outcomes produced
          through a plan must be bit-identical to full replay. *)
}

val make :
  ?resumable:(Ctx.t -> stop_at:int -> prefix_outcome) ->
  ?cone:(unit -> cone_plan option) ->
  name:string ->
  description:string ->
  tolerance:float ->
  statics:Static.table ->
  (Ctx.t -> float array) ->
  t
(** Checked constructor: [tolerance] must be positive and finite.
    [resumable] is the optional prefix-snapshot capability; a paused
    execution's replays must be bit-identical to running the body in full
    under an equivalently positioned context. *)

val with_cone : t -> (unit -> cone_plan option) -> t
(** Functional copy with the dependent-cone capability attached. *)
