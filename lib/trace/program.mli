(** Instrumented programs.

    A program packages a kernel body that runs under a {!Ctx.t} together
    with its acceptance tolerance [T] — the largest L∞ deviation of the
    final output that the domain user still accepts (§2.1). The same body
    runs in golden, outcome-only and propagation modes. *)

type prefix_outcome =
  | Completed of float array
      (** the program finished before reaching the requested record count *)
  | Paused of (Ctx.t -> float array)
      (** a suspended execution: the captured interpreter snapshot can be
          replayed to completion any number of times, each replay under a
          fresh context and against a fresh copy of the saved state *)

type t = {
  name : string;  (** short identifier, e.g. ["cg"] *)
  description : string;  (** one-line description for reports *)
  tolerance : float;  (** acceptance threshold [T] on the L∞ output error *)
  statics : Static.table;  (** static instructions of the body *)
  body : Ctx.t -> float array;  (** the instrumented kernel *)
  resumable : (Ctx.t -> stop_at:int -> prefix_outcome) option;
      (** prefix-snapshot capability: [run ctx ~stop_at] executes the body
          under [ctx] until it is about to record dynamic instruction
          [stop_at], then snapshots the interpreter state and pauses.
          Backs the batched campaign executor, which runs the shared prefix
          of a site's 64 bit flips once. [None] for closure kernels, which
          the executor transparently re-runs in full. *)
}

val make :
  ?resumable:(Ctx.t -> stop_at:int -> prefix_outcome) ->
  name:string ->
  description:string ->
  tolerance:float ->
  statics:Static.table ->
  (Ctx.t -> float array) ->
  t
(** Checked constructor: [tolerance] must be positive and finite.
    [resumable] is the optional prefix-snapshot capability; a paused
    execution's replays must be bit-identical to running the body in full
    under an equivalently positioned context. *)
