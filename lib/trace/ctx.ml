type crash_reason = Nan_value | Inf_value | Exception_raised | Fuel_exhausted

exception Crash of { reason : crash_reason; what : string }

let crash ~reason fmt =
  Printf.ksprintf (fun what -> raise (Crash { reason; what })) fmt

let crash_reason_to_string = function
  | Nan_value -> "nan"
  | Inf_value -> "inf"
  | Exception_raised -> "exception"
  | Fuel_exhausted -> "fuel"

let crash_reason_equal a b =
  match (a, b) with
  | Nan_value, Nan_value
  | Inf_value, Inf_value
  | Exception_raised, Exception_raised
  | Fuel_exhausted, Fuel_exhausted ->
      true
  | (Nan_value | Inf_value | Exception_raised | Fuel_exhausted), _ -> false

let pp_crash_reason ppf r = Format.pp_print_string ppf (crash_reason_to_string r)

(* Growable float/int buffers; OCaml 5.1 has no Dynarray yet. *)
module Fbuf = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 1024 0.; len = 0 }

  let push t v =
    if t.len = Array.length t.data then begin
      let grown = Array.make (2 * t.len) 0. in
      Array.blit t.data 0 grown 0 t.len;
      t.data <- grown
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let contents t = Array.sub t.data 0 t.len
end

module Ibuf = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 1024 0; len = 0 }

  let push t v =
    if t.len = Array.length t.data then begin
      let grown = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 grown 0 t.len;
      t.data <- grown
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let contents t = Array.sub t.data 0 t.len
end

type sink = { values : Fbuf.t; statics : Ibuf.t }

type mode =
  | Golden_mode of sink
  | Hook_mode of (index:int -> tag:int -> float -> float)
  | Inject_mode of {
      site : int;
      corrupt : float -> float;
      sink : sink option;
      golden_statics : int array option;
      mutable injected : (float * float) option;
      mutable diverged_at : int option;
    }

(* [fuel = max_int] means "no budget" — the sentinel keeps the hot path
   allocation-free (no option on every record). *)
type t = { mutable next : int; mutable fuel : int; mode : mode }

let fuel_of = function
  | None -> max_int
  | Some n ->
      if n <= 0 then invalid_arg "Ctx: fuel must be positive" else n

let fresh_sink () = { values = Fbuf.create (); statics = Ibuf.create () }

let golden ?fuel () = { next = 0; fuel = fuel_of fuel; mode = Golden_mode (fresh_sink ()) }
let hooked ?fuel hook = { next = 0; fuel = fuel_of fuel; mode = Hook_mode hook }

let flip_of_fault (fault : Fault.t) v = Ftb_util.Bits.flip ~bit:fault.Fault.bit v

let outcome_custom ?fuel ~site ~corrupt () =
  {
    next = 0;
    fuel = fuel_of fuel;
    mode =
      Inject_mode
        { site; corrupt; sink = None; golden_statics = None; injected = None;
          diverged_at = None };
  }

let outcome_only ?fuel ~fault () =
  outcome_custom ?fuel ~site:fault.Fault.site ~corrupt:(flip_of_fault fault) ()

let propagation ?fuel ~fault ~golden_statics () =
  {
    next = 0;
    fuel = fuel_of fuel;
    mode =
      Inject_mode
        {
          site = fault.Fault.site;
          corrupt = flip_of_fault fault;
          sink = Some (fresh_sink ());
          golden_statics = Some golden_statics;
          injected = None;
          diverged_at = None;
        };
  }

let record t ~tag v =
  if t.fuel <> max_int then begin
    if t.fuel = 0 then
      crash ~reason:Fuel_exhausted "step budget exhausted after %d dynamic instructions"
        t.next;
    t.fuel <- t.fuel - 1
  end;
  let i = t.next in
  t.next <- i + 1;
  match t.mode with
  | Golden_mode sink ->
      Fbuf.push sink.values v;
      Ibuf.push sink.statics tag;
      v
  | Hook_mode hook -> hook ~index:i ~tag v
  | Inject_mode inject ->
      let v' =
        if i = inject.site then begin
          let corrupted = inject.corrupt v in
          inject.injected <- Some (v, corrupted);
          corrupted
        end
        else v
      in
      (match inject.golden_statics with
      | Some statics when inject.diverged_at = None ->
          if i >= Array.length statics || statics.(i) <> tag then
            inject.diverged_at <- Some (min i (Array.length statics))
      | Some _ | None -> ());
      (match inject.sink with
      | Some sink ->
          Fbuf.push sink.values v';
          Ibuf.push sink.statics tag
      | None -> ());
      v'

let guard_finite _t what v =
  if Ftb_util.Bits.is_finite v then v
  else
    let reason = if Float.is_nan v then Nan_value else Inf_value in
    crash ~reason "non-finite value trapped at %s" what

let length t = t.next
let remaining_fuel t = if t.fuel = max_int then None else Some t.fuel

let sink_exn t name =
  match t.mode with
  | Golden_mode sink -> sink
  | Inject_mode { sink = Some sink; _ } -> sink
  | Inject_mode { sink = None; _ } | Hook_mode _ ->
      invalid_arg (Printf.sprintf "Ctx.%s: outcome-only context has no trace" name)

let trace_values t = Fbuf.contents (sink_exn t "trace_values").values
let trace_statics t = Ibuf.contents (sink_exn t "trace_statics").statics

let injection t =
  match t.mode with
  | Golden_mode _ | Hook_mode _ -> None
  | Inject_mode inject -> inject.injected

let diverged_at t =
  match t.mode with
  | Golden_mode _ | Hook_mode _ -> None
  | Inject_mode inject -> inject.diverged_at
