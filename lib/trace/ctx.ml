type crash_reason = Nan_value | Inf_value | Exception_raised | Fuel_exhausted

exception Crash of { reason : crash_reason; what : string }

let crash ~reason fmt =
  Printf.ksprintf (fun what -> raise (Crash { reason; what })) fmt

let crash_reason_to_string = function
  | Nan_value -> "nan"
  | Inf_value -> "inf"
  | Exception_raised -> "exception"
  | Fuel_exhausted -> "fuel"

let crash_reason_equal a b =
  match (a, b) with
  | Nan_value, Nan_value
  | Inf_value, Inf_value
  | Exception_raised, Exception_raised
  | Fuel_exhausted, Fuel_exhausted ->
      true
  | (Nan_value | Inf_value | Exception_raised | Fuel_exhausted), _ -> false

let pp_crash_reason ppf r = Format.pp_print_string ppf (crash_reason_to_string r)

(* Growable float/int buffers; OCaml 5.1 has no Dynarray yet. Buffers are
   resettable so campaign loops can reuse one sink per domain instead of
   allocating (and growing) a fresh pair of arrays for every run. *)
module Fbuf = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 1024 0.; len = 0 }

  let push t v =
    if t.len = Array.length t.data then begin
      let grown = Array.make (2 * t.len) 0. in
      Array.blit t.data 0 grown 0 t.len;
      t.data <- grown
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let contents t = Array.sub t.data 0 t.len
  let reset t = t.len <- 0

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Ctx: trace index out of bounds";
    t.data.(i)
end

module Ibuf = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 1024 0; len = 0 }

  let push t v =
    if t.len = Array.length t.data then begin
      let grown = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 grown 0 t.len;
      t.data <- grown
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let contents t = Array.sub t.data 0 t.len
  let reset t = t.len <- 0

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Ctx: trace index out of bounds";
    t.data.(i)
end

type sink = { values : Fbuf.t; statics : Ibuf.t }

let create_sink () = { values = Fbuf.create (); statics = Ibuf.create () }

let reset_sink sink =
  Fbuf.reset sink.values;
  Ibuf.reset sink.statics

type inject = {
  site : int;
  corrupt : float -> float;
  sink : sink option;
  golden_statics : int array option;
  mutable injected : (float * float) option;
  mutable diverged_at : int option;
}

(* The injection modes are split into a pre-site and a post-site variant so
   the hot path after the flip no longer compares every dynamic index
   against the site. [Outcome_post] is the campaign fast path: once an
   outcome-only context has injected, every remaining [record] is pure
   bookkeeping (no site compare, no sink, no statics check, no
   allocation). *)
type mode =
  | Golden_mode of sink
  | Hook_mode of (index:int -> tag:int -> float -> float)
  | Count_mode  (** bookkeeping only — prefix runs of the batched executor *)
  | Inject_pre of inject
  | Inject_post of inject  (** after the flip, sink and/or divergence still active *)
  | Outcome_post of inject  (** after the flip, nothing left to do per record *)

(* [fuel = max_int] means "no budget" — the sentinel keeps the hot path
   allocation-free (no option on every record). *)
type t = { mutable next : int; mutable fuel : int; mutable mode : mode }

let fuel_of = function
  | None -> max_int
  | Some n ->
      if n <= 0 then invalid_arg "Ctx: fuel must be positive" else n

let fresh_sink () = create_sink ()

let golden ?fuel () = { next = 0; fuel = fuel_of fuel; mode = Golden_mode (fresh_sink ()) }
let hooked ?fuel hook = { next = 0; fuel = fuel_of fuel; mode = Hook_mode hook }
let counting ?fuel () = { next = 0; fuel = fuel_of fuel; mode = Count_mode }

let flip_of_fault (fault : Fault.t) v = Ftb_util.Bits.flip ~bit:fault.Fault.bit v

let outcome_custom ?fuel ~site ~corrupt () =
  {
    next = 0;
    fuel = fuel_of fuel;
    mode =
      Inject_pre
        { site; corrupt; sink = None; golden_statics = None; injected = None;
          diverged_at = None };
  }

let outcome_only ?fuel ~fault () =
  outcome_custom ?fuel ~site:fault.Fault.site ~corrupt:(flip_of_fault fault) ()

let propagation_custom ?fuel ?sink ~site ~corrupt ~golden_statics () =
  let sink =
    match sink with
    | Some sink ->
        reset_sink sink;
        sink
    | None -> fresh_sink ()
  in
  {
    next = 0;
    fuel = fuel_of fuel;
    mode =
      Inject_pre
        {
          site;
          corrupt;
          sink = Some sink;
          golden_statics = Some golden_statics;
          injected = None;
          diverged_at = None;
        };
  }

let propagation ?fuel ?sink ~fault ~golden_statics () =
  propagation_custom ?fuel ?sink ~site:fault.Fault.site
    ~corrupt:(flip_of_fault fault) ~golden_statics ()

(* ------------------------------------------------------------------ *)
(* Snapshot / resume: the prefix-snapshot batched executor runs the shared
   prefix of a site's 64 bit flips once under a [counting] context, then
   replays only the suffix per bit under a context resumed at the saved
   position. The context state is just (next, fuel); interpreter state is
   the program's own business (see [Ftb_ir.Machine]). *)

type snapshot = { snap_next : int; snap_fuel : int }

let snapshot t = { snap_next = t.next; snap_fuel = t.fuel }

let resume_custom snapshot ~site ~corrupt =
  if site < snapshot.snap_next then
    invalid_arg
      (Printf.sprintf "Ctx.resume_custom: fault site %d precedes snapshot position %d" site
         snapshot.snap_next);
  {
    next = snapshot.snap_next;
    fuel = snapshot.snap_fuel;
    mode =
      Inject_pre
        {
          site;
          corrupt;
          sink = None;
          golden_statics = None;
          injected = None;
          diverged_at = None;
        };
  }

let resume_outcome snapshot ~(fault : Fault.t) =
  resume_custom snapshot ~site:fault.Fault.site ~corrupt:(flip_of_fault fault)

(* ------------------------------------------------------------------ *)

(* Sink push + divergence detection shared by the pre- and post-site
   injection paths. *)
let inject_bookkeeping inject i tag v =
  (match inject.golden_statics with
  | Some statics when inject.diverged_at = None ->
      if i >= Array.length statics || statics.(i) <> tag then
        inject.diverged_at <- Some (min i (Array.length statics))
  | Some _ | None -> ());
  match inject.sink with
  | Some sink ->
      Fbuf.push sink.values v;
      Ibuf.push sink.statics tag
  | None -> ()

let record t ~tag v =
  if t.fuel <> max_int then begin
    if t.fuel = 0 then
      crash ~reason:Fuel_exhausted "step budget exhausted after %d dynamic instructions"
        t.next;
    t.fuel <- t.fuel - 1
  end;
  let i = t.next in
  t.next <- i + 1;
  match t.mode with
  | Count_mode -> v
  | Outcome_post _ -> v
  | Golden_mode sink ->
      Fbuf.push sink.values v;
      Ibuf.push sink.statics tag;
      v
  | Hook_mode hook -> hook ~index:i ~tag v
  | Inject_post inject ->
      inject_bookkeeping inject i tag v;
      v
  | Inject_pre inject ->
      let v' =
        if i = inject.site then begin
          let corrupted = inject.corrupt v in
          inject.injected <- Some (v, corrupted);
          (* Specialize the remaining run: no more site compares, and for
             outcome-only contexts no per-record work at all. *)
          t.mode <-
            (match (inject.sink, inject.golden_statics) with
            | None, None -> Outcome_post inject
            | _ -> Inject_post inject);
          corrupted
        end
        else v
      in
      inject_bookkeeping inject i tag v';
      v'

let guard_finite _t what v =
  if Ftb_util.Bits.is_finite v then v
  else
    let reason = if Float.is_nan v then Nan_value else Inf_value in
    crash ~reason "non-finite value trapped at %s" what

let length t = t.next
let remaining_fuel t = if t.fuel = max_int then None else Some t.fuel

let sink_exn t name =
  match t.mode with
  | Golden_mode sink -> sink
  | Inject_pre { sink = Some sink; _ } | Inject_post { sink = Some sink; _ } -> sink
  | Inject_pre { sink = None; _ }
  | Inject_post { sink = None; _ }
  | Outcome_post _ | Hook_mode _ | Count_mode ->
      invalid_arg (Printf.sprintf "Ctx.%s: outcome-only context has no trace" name)

let trace_values t = Fbuf.contents (sink_exn t "trace_values").values
let trace_statics t = Ibuf.contents (sink_exn t "trace_statics").statics
let trace_length t = (sink_exn t "trace_length").values.Fbuf.len
let trace_value t i = Fbuf.get (sink_exn t "trace_value").values i
let trace_static t i = Ibuf.get (sink_exn t "trace_static").statics i

let injection t =
  match t.mode with
  | Golden_mode _ | Hook_mode _ | Count_mode -> None
  | Inject_pre inject | Inject_post inject | Outcome_post inject -> inject.injected

let diverged_at t =
  match t.mode with
  | Golden_mode _ | Hook_mode _ | Count_mode -> None
  | Inject_pre inject | Inject_post inject | Outcome_post inject -> inject.diverged_at
