type t = {
  program : Program.t;
  output : float array;
  values : float array;
  statics : int array;
}

let run (program : Program.t) =
  let ctx = Ctx.golden () in
  let output =
    try program.Program.body ctx
    with Ctx.Crash { what; _ } ->
      failwith (Printf.sprintf "Golden.run: error-free run of %s crashed: %s"
                  program.Program.name what)
  in
  let values = Ctx.trace_values ctx in
  let check what a =
    Array.iter
      (fun v ->
        if not (Ftb_util.Bits.is_finite v) then
          failwith
            (Printf.sprintf "Golden.run: non-finite %s value in error-free run of %s" what
               program.Program.name))
      a
  in
  check "output" output;
  check "trace" values;
  if Array.length values = 0 then
    failwith (Printf.sprintf "Golden.run: %s recorded no dynamic instructions"
                program.Program.name);
  { program; output; values; statics = Ctx.trace_statics ctx }

let sites t = Array.length t.values
let cases t = Fault.case_count ~sites:(sites t)
let value t i = t.values.(i)

let phase_of_site t i =
  (Static.info t.program.Program.statics t.statics.(i)).Static.phase
