(** Single fault-injection experiments.

    Two execution modes mirror the cost split of the method: an
    *outcome-only* run (cheap — no tracing) classifies one (site, bit) case
    as Masked / SDC / Crash; a *propagation* run additionally records the
    faulty trace and diffs it against the golden run, producing the
    per-instruction perturbations Δx that feed Algorithm 1.

    Every runner takes an optional [?fuel] step budget (the divergence
    watchdog, see {!Ctx}); a run that exhausts it is classified Crash with
    reason {!Ctx.Fuel_exhausted}. *)

type outcome = Masked | Sdc | Crash

val outcome_equal : outcome -> outcome -> bool
val outcome_to_string : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit

type result = {
  fault : Fault.t;
  outcome : outcome;
  crash_reason : Ctx.crash_reason option;
      (** the crash taxonomy entry; [Some _] iff [outcome = Crash] *)
  injected_error : float;
      (** |corrupted − original| at the fault site; [infinity] when the flip
          produced a non-finite value. *)
  output_error : float;
      (** L∞ distance of the final output from the golden output;
          [infinity] on Crash. *)
}

type propagation = {
  result : result;
  start : int;  (** first covered site — the fault site itself *)
  stop : int;
      (** exclusive end of coverage: the control-flow divergence point, the
          faulty run's own end (on crash), or the golden length *)
  deviations : float array;
      (** [deviations.(j - start)] = |golden_j − faulty_j| for
          [start <= j < stop] *)
}

val run_outcome : ?fuel:int -> Golden.t -> Fault.t -> result
(** Execute one injection and classify it. Classification: a raised
    [Ctx.Crash] or a non-finite output is Crash (the crash reason records
    whether a NaN, an infinity, or the fuel watchdog terminated the run);
    otherwise Masked iff the L∞ output error is within the program's
    tolerance, else SDC. Raises [Invalid_argument] when the fault site is
    outside the program's dynamic range. *)

val run_outcome_contained : ?fuel:int -> Golden.t -> Fault.t -> result
(** Like {!run_outcome}, but additionally contains *any* exception escaping
    the kernel body — not only the cooperative [Ctx.Crash] — classifying it
    as Crash with reason {!Ctx.Exception_raised}. This is the campaign
    engine's unit of work: one broken case must never abort a campaign.
    [Out_of_memory] and errors raised before the body starts (e.g. an
    out-of-range fault site) still propagate. *)

val run_outcome_custom :
  ?fuel:int -> Golden.t -> site:int -> corrupt:(float -> float) -> result
(** Like {!run_outcome} but with an arbitrary corruption function applied
    to the value produced at [site] — used by alternative fault models.
    The returned [fault] field carries [site] with bit 0 as a placeholder
    (custom corruptions have no single bit). *)

val run_outcome_custom_contained :
  ?fuel:int -> Golden.t -> site:int -> corrupt:(float -> float) -> result
(** {!run_outcome_custom} with the crash containment of
    {!run_outcome_contained} — the campaign engine's unit of work under a
    non-default fault model. *)

val outcome_of_run :
  Golden.t -> Fault.t -> Ctx.t -> (Ctx.t -> float array) -> result
(** Classify one execution of an arbitrary run function under an
    already-constructed injecting context — the generalization behind
    {!run_outcome} ([run] is then the program body). The batched campaign
    executor passes the suffix replay of a paused execution together with a
    context resumed at the snapshot position ({!Ctx.resume_outcome}). *)

val outcome_of_run_contained :
  Golden.t -> Fault.t -> Ctx.t -> (Ctx.t -> float array) -> result
(** {!outcome_of_run} with campaign crash containment: any exception other
    than [Out_of_memory] escaping [run] classifies as Crash with reason
    {!Ctx.Exception_raised}. *)

val run_propagation : ?fuel:int -> ?sink:Ctx.sink -> Golden.t -> Fault.t -> propagation
(** Execute one injection with tracing and compute the propagated
    per-instruction deviations. Coverage ends at the first control-flow
    divergence, so deviations are only reported where the faulty run
    executed the same instruction sequence as the golden run (§2.2).
    [sink] optionally reuses a caller-owned trace buffer pair
    ({!Ctx.create_sink}) instead of allocating fresh buffers — campaign
    loops keep one sink per domain. The returned deviations are always
    freshly allocated, so reusing the sink afterwards is safe. *)

val run_propagation_custom :
  ?fuel:int ->
  ?sink:Ctx.sink ->
  Golden.t ->
  fault:Fault.t ->
  corrupt:(float -> float) ->
  propagation
(** {!run_propagation} with an arbitrary corruption function applied at the
    fault's site, mirroring {!run_outcome_custom}: the model-aware adaptive
    sampler traces propagation under any fault model's cases. [fault]
    carries the case's (site, local-bit) identity for bookkeeping; the
    corruption actually applied is [corrupt], not the fault's bit flip. *)
