type prefix_outcome = Completed of float array | Paused of (Ctx.t -> float array)

type cone_outcome = Cone_masked | Cone_sdc | Cone_crash of Ctx.crash_reason

type cone_plan = {
  cone_sites : int;
  cone_case : site:int -> ((float -> float) -> cone_outcome) option;
}

type t = {
  name : string;
  description : string;
  tolerance : float;
  statics : Static.table;
  body : Ctx.t -> float array;
  resumable : (Ctx.t -> stop_at:int -> prefix_outcome) option;
  cone : (unit -> cone_plan option) option;
}

let make ?resumable ?cone ~name ~description ~tolerance ~statics body =
  if not (Ftb_util.Bits.is_finite tolerance) || tolerance <= 0. then
    invalid_arg "Program.make: tolerance must be positive and finite";
  { name; description; tolerance; statics; body; resumable; cone }

let with_cone t cone = { t with cone = Some cone }
