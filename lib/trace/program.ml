type prefix_outcome = Completed of float array | Paused of (Ctx.t -> float array)

type t = {
  name : string;
  description : string;
  tolerance : float;
  statics : Static.table;
  body : Ctx.t -> float array;
  resumable : (Ctx.t -> stop_at:int -> prefix_outcome) option;
}

let make ?resumable ~name ~description ~tolerance ~statics body =
  if not (Ftb_util.Bits.is_finite tolerance) || tolerance <= 0. then
    invalid_arg "Program.make: tolerance must be positive and finite";
  { name; description; tolerance; statics; body; resumable }
