(** Paper-shaped text renderings and CSV exports of every study result.

    One function per table/figure of the evaluation section. Each renderer
    returns the display string; the matching [csv_*] function returns the
    named {!Ftb_util.Table.t}s to write when CSV export is requested. *)

val table1 : Ftb_core.Study_exhaustive.result list -> string
(** Table 1 — golden vs boundary-approximated SDC ratio per benchmark. *)

val csv_table1 : Ftb_core.Study_exhaustive.result list -> (string * Ftb_util.Table.t) list

val crash_table : Ftb_core.Study_exhaustive.result list -> string
(** Crash-taxonomy breakdown per benchmark: campaign crash cases split by
    recorded reason (NaN, Inf, exception, fuel exhaustion). *)

val csv_crash_table :
  Ftb_core.Study_exhaustive.result list -> (string * Ftb_util.Table.t) list

val fig3 : Ftb_core.Study_exhaustive.result list -> string
(** Figure 3 — per-benchmark histograms of ΔSDC. *)

val csv_fig3 : Ftb_core.Study_exhaustive.result list -> (string * Ftb_util.Table.t) list

val table2 : Ftb_core.Study_inference.result list -> string
(** Table 2 — precision / recall / uncertainty (mean ± std) at 1 %
    sampling. *)

val csv_table2 : Ftb_core.Study_inference.result list -> (string * Ftb_util.Table.t) list

val fig4 :
  inference:Ftb_core.Study_inference.result ->
  adaptive:Ftb_core.Study_adaptive.result ->
  groups:int ->
  string
(** Figure 4 for one benchmark: row 1 true vs 1 %-inferred SDC ratio,
    row 2 potential impact, row 3 true vs adaptive prediction. Series are
    grouped into [groups] consecutive-site buckets as in the paper. *)

val csv_fig4 :
  inference:Ftb_core.Study_inference.result ->
  adaptive:Ftb_core.Study_adaptive.result ->
  groups:int ->
  (string * Ftb_util.Table.t) list

val fig5 : Ftb_core.Study_sweep.result list -> string
(** Figure 5 — precision/recall vs sample size, without (top) and with
    (bottom) the filter operation. *)

val csv_fig5 : Ftb_core.Study_sweep.result list -> (string * Ftb_util.Table.t) list

val table3 : Ftb_core.Study_adaptive.result list -> string
(** Table 3 — adaptive sampling: sample size and predicted SDC ratio. *)

val csv_table3 : Ftb_core.Study_adaptive.result list -> (string * Ftb_util.Table.t) list

val table4 : Ftb_core.Study_scaling.result -> string
(** Table 4 — CG scalability at two input sizes. *)

val csv_table4 : Ftb_core.Study_scaling.result -> (string * Ftb_util.Table.t) list

val ablation : Ftb_core.Study_ablation.result list -> string
(** Ablation report: bias/filter grid, round-size sweep, and the
    statistical-fault-injection cost baseline. *)

val csv_ablation : Ftb_core.Study_ablation.result list -> (string * Ftb_util.Table.t) list

val tolerance : Ftb_core.Study_tolerance.result list -> string
(** Tolerance-threshold sensitivity sweep. *)

val csv_tolerance :
  Ftb_core.Study_tolerance.result list -> (string * Ftb_util.Table.t) list

val model_table : Ftb_core.Study_models.result list -> string
(** Cross-model comparison — outcome mix of one exhaustive campaign per
    fault model over the same golden trace (the new results family of the
    pluggable-model pipeline). *)

val csv_model_table :
  Ftb_core.Study_models.result list -> (string * Ftb_util.Table.t) list

val save_all : dir:string -> (string * Ftb_util.Table.t) list -> string list
(** Write every named table as CSV under [dir]; returns the paths. *)
