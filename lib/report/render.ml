module Table = Ftb_util.Table
module Stats = Ftb_util.Stats
module Study_exhaustive = Ftb_core.Study_exhaustive
module Study_inference = Ftb_core.Study_inference
module Study_sweep = Ftb_core.Study_sweep
module Study_adaptive = Ftb_core.Study_adaptive
module Study_scaling = Ftb_core.Study_scaling
module Metrics = Ftb_core.Metrics

let pct = Ascii.percent

let mean_std_of field trials =
  let values = Array.map field trials in
  (Stats.mean values, Stats.std values)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

let table1 results =
  let t =
    Table.create [ "Name"; "Golden_SDC"; "Approx_SDC"; "Size (sites)"; "Cases" ]
  in
  List.iter
    (fun (r : Study_exhaustive.result) ->
      Table.add_row t
        [
          r.Study_exhaustive.name;
          pct r.Study_exhaustive.golden_sdc;
          pct r.Study_exhaustive.approx_sdc;
          string_of_int r.Study_exhaustive.sites;
          string_of_int r.Study_exhaustive.cases;
        ])
    results;
  Table.render
    ~title:
      "Table 1: true SDC ratio vs SDC ratio re-predicted from the exhaustive-campaign boundary"
    t

let csv_table1 results =
  let t = Table.create [ "name"; "golden_sdc"; "approx_sdc"; "sites"; "cases" ] in
  List.iter
    (fun (r : Study_exhaustive.result) ->
      Table.add_row t
        [
          r.Study_exhaustive.name;
          Printf.sprintf "%.6f" r.Study_exhaustive.golden_sdc;
          Printf.sprintf "%.6f" r.Study_exhaustive.approx_sdc;
          string_of_int r.Study_exhaustive.sites;
          string_of_int r.Study_exhaustive.cases;
        ])
    results;
  [ ("table1", t) ]

(* ------------------------------------------------------------------ *)
(* Crash taxonomy                                                      *)

let crash_total (c : Ftb_inject.Ground_truth.reason_counts) =
  Ftb_inject.Ground_truth.(c.nan + c.inf + c.exn + c.fuel)

let crash_table results =
  let t =
    Table.create [ "Name"; "Crashes"; "NaN"; "Inf"; "Exception"; "Fuel"; "Crash ratio" ]
  in
  List.iter
    (fun (r : Study_exhaustive.result) ->
      let c = r.Study_exhaustive.crash_breakdown in
      Table.add_row t
        [
          r.Study_exhaustive.name;
          string_of_int (crash_total c);
          string_of_int c.Ftb_inject.Ground_truth.nan;
          string_of_int c.Ftb_inject.Ground_truth.inf;
          string_of_int c.Ftb_inject.Ground_truth.exn;
          string_of_int c.Ftb_inject.Ground_truth.fuel;
          pct (float_of_int (crash_total c) /. float_of_int r.Study_exhaustive.cases);
        ])
    results;
  Table.render
    ~title:"Crash taxonomy: campaign crash cases by recorded reason" t

let csv_crash_table results =
  let t =
    Table.create
      [ "name"; "crashes"; "nan"; "inf"; "exception"; "fuel_exhausted"; "crash_ratio" ]
  in
  List.iter
    (fun (r : Study_exhaustive.result) ->
      let c = r.Study_exhaustive.crash_breakdown in
      Table.add_row t
        [
          r.Study_exhaustive.name;
          string_of_int (crash_total c);
          string_of_int c.Ftb_inject.Ground_truth.nan;
          string_of_int c.Ftb_inject.Ground_truth.inf;
          string_of_int c.Ftb_inject.Ground_truth.exn;
          string_of_int c.Ftb_inject.Ground_truth.fuel;
          Printf.sprintf "%.6f"
            (float_of_int (crash_total c) /. float_of_int r.Study_exhaustive.cases);
        ])
    results;
  [ ("crash_taxonomy", t) ]

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)

let fig3 results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Figure 3: histograms of dSDC = Golden_SDC - Approx_SDC per dynamic instruction\n\n";
  List.iter
    (fun (r : Study_exhaustive.result) ->
      let h = Study_exhaustive.(Metrics.delta_sdc_histogram r.delta_sdc) in
      Buffer.add_string buf
        (Ascii.bar_histogram
           ~title:
             (Printf.sprintf "%s  (non-monotonic sites: %s)" r.Study_exhaustive.name
                (pct r.Study_exhaustive.non_monotonic_fraction))
           h);
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let csv_fig3 results =
  List.map
    (fun (r : Study_exhaustive.result) ->
      let h = Metrics.delta_sdc_histogram r.Study_exhaustive.delta_sdc in
      let t = Table.create [ "bin_lo"; "bin_hi"; "count" ] in
      ignore
        (Ftb_util.Histogram.fold h ~init:() ~f:(fun () ~lo ~hi ~count ->
             Table.add_row t
               [ Printf.sprintf "%.6f" lo; Printf.sprintf "%.6f" hi; string_of_int count ]));
      (Printf.sprintf "fig3_%s" r.Study_exhaustive.name, t))
    results

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)

let table2 results =
  let t = Table.create [ "Name"; "Precision"; "Recall"; "Uncertainty" ] in
  List.iter
    (fun (r : Study_inference.result) ->
      let p_mean, p_std = mean_std_of (fun x -> x.Study_inference.precision) r.Study_inference.trials in
      let r_mean, r_std = mean_std_of (fun x -> x.Study_inference.recall) r.Study_inference.trials in
      let u_mean, u_std =
        mean_std_of (fun x -> x.Study_inference.uncertainty) r.Study_inference.trials
      in
      Table.add_row t
        [
          r.Study_inference.name;
          Ascii.percent_pm ~mean:p_mean ~std:p_std;
          Ascii.percent_pm ~mean:r_mean ~std:r_std;
          Ascii.percent_pm ~mean:u_mean ~std:u_std;
        ])
    results;
  Table.render
    ~title:
      (Printf.sprintf
         "Table 2: inference with %s uniform sampling (%d trials, mean \xc2\xb1 std)"
         (match results with
         | r :: _ -> pct r.Study_inference.fraction
         | [] -> "?")
         (match results with
         | r :: _ -> Array.length r.Study_inference.trials
         | [] -> 0))
    t

let csv_table2 results =
  let t =
    Table.create
      [
        "name"; "fraction"; "precision_mean"; "precision_std"; "recall_mean"; "recall_std";
        "uncertainty_mean"; "uncertainty_std";
      ]
  in
  List.iter
    (fun (r : Study_inference.result) ->
      let p_mean, p_std = mean_std_of (fun x -> x.Study_inference.precision) r.Study_inference.trials in
      let r_mean, r_std = mean_std_of (fun x -> x.Study_inference.recall) r.Study_inference.trials in
      let u_mean, u_std =
        mean_std_of (fun x -> x.Study_inference.uncertainty) r.Study_inference.trials
      in
      Table.add_row t
        [
          r.Study_inference.name;
          Printf.sprintf "%.4f" r.Study_inference.fraction;
          Printf.sprintf "%.6f" p_mean;
          Printf.sprintf "%.6f" p_std;
          Printf.sprintf "%.6f" r_mean;
          Printf.sprintf "%.6f" r_std;
          Printf.sprintf "%.6f" u_mean;
          Printf.sprintf "%.6f" u_std;
        ])
    results;
  [ ("table2", t) ]

(* ------------------------------------------------------------------ *)
(* Figure 4                                                            *)

let grouped values ~groups = Array.map snd (Metrics.grouped_mean values ~groups)

let fig4 ~(inference : Study_inference.result) ~(adaptive : Study_adaptive.result) ~groups =
  let buf = Buffer.create 8192 in
  let name = inference.Study_inference.name in
  Buffer.add_string buf
    (Printf.sprintf
       "Figure 4 (%s): per-site SDC ratio, %d-site group means over %d sites\n\n" name
       (Array.length inference.Study_inference.true_ratio / groups)
       (Array.length inference.Study_inference.true_ratio));
  Buffer.add_string buf
    (Ascii.series
       ~title:
         (Printf.sprintf "Row 1: true vs predicted SDC ratio (uniform %s sampling)"
            (pct inference.Study_inference.fraction))
       [
         ("true SDC ratio", '*', grouped inference.Study_inference.true_ratio ~groups);
         ("predicted SDC ratio", 'o', grouped inference.Study_inference.predicted_ratio ~groups);
       ]);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Ascii.series ~title:"Row 2: potential impact (significant injections + propagations)"
       [ ("potential impact", '+', grouped inference.Study_inference.impact ~groups) ]);
  Buffer.add_char buf '\n';
  let fraction_mean, _ =
    mean_std_of (fun t -> t.Study_adaptive.sample_fraction) adaptive.Study_adaptive.trials
  in
  Buffer.add_string buf
    (Ascii.series
       ~title:
         (Printf.sprintf "Row 3: true vs adaptive/progressive prediction (%s samples used)"
            (pct fraction_mean))
       [
         ("true SDC ratio", '*', grouped adaptive.Study_adaptive.true_ratio ~groups);
         ("adaptive prediction", 'o', grouped adaptive.Study_adaptive.predicted_ratio ~groups);
       ]);
  Buffer.contents buf

let csv_fig4 ~(inference : Study_inference.result) ~(adaptive : Study_adaptive.result)
    ~groups =
  let name = inference.Study_inference.name in
  let t =
    Table.create
      [ "group_start"; "true_sdc"; "predicted_sdc"; "impact"; "adaptive_predicted_sdc" ]
  in
  let true_g = Metrics.grouped_mean inference.Study_inference.true_ratio ~groups in
  let pred_g = grouped inference.Study_inference.predicted_ratio ~groups in
  let impact_g = grouped inference.Study_inference.impact ~groups in
  let adapt_g = grouped adaptive.Study_adaptive.predicted_ratio ~groups in
  Array.iteri
    (fun i (start, true_mean) ->
      Table.add_row t
        [
          string_of_int start;
          Printf.sprintf "%.6f" true_mean;
          Printf.sprintf "%.6f" pred_g.(i);
          Printf.sprintf "%.2f" impact_g.(i);
          Printf.sprintf "%.6f" adapt_g.(i);
        ])
    true_g;
  [ (Printf.sprintf "fig4_%s" name, t) ]

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)

let fig5_block title (points : Study_sweep.point array) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "  %10s %22s %22s\n" "fraction" "precision" "recall");
  Array.iter
    (fun (p : Study_sweep.point) ->
      Buffer.add_string buf
        (Printf.sprintf "  %10s %22s %22s\n"
           (pct p.Study_sweep.fraction)
           (Ascii.percent_pm ~mean:p.Study_sweep.precision_mean ~std:p.Study_sweep.precision_std)
           (Ascii.percent_pm ~mean:p.Study_sweep.recall_mean ~std:p.Study_sweep.recall_std)))
    points;
  Buffer.contents buf

let fig5 results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Figure 5: precision and recall vs sample size\n\n";
  List.iter
    (fun (r : Study_sweep.result) ->
      Buffer.add_string buf
        (fig5_block
           (Printf.sprintf "%s - without filter operation" r.Study_sweep.name)
           r.Study_sweep.without_filter);
      Buffer.add_string buf
        (fig5_block
           (Printf.sprintf "%s - with filter operation" r.Study_sweep.name)
           r.Study_sweep.with_filter);
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let csv_fig5 results =
  List.map
    (fun (r : Study_sweep.result) ->
      let t =
        Table.create
          [
            "fraction"; "filter"; "precision_mean"; "precision_std"; "recall_mean";
            "recall_std";
          ]
      in
      let add filter points =
        Array.iter
          (fun (p : Study_sweep.point) ->
            Table.add_row t
              [
                Printf.sprintf "%.4f" p.Study_sweep.fraction;
                filter;
                Printf.sprintf "%.6f" p.Study_sweep.precision_mean;
                Printf.sprintf "%.6f" p.Study_sweep.precision_std;
                Printf.sprintf "%.6f" p.Study_sweep.recall_mean;
                Printf.sprintf "%.6f" p.Study_sweep.recall_std;
              ])
          points
      in
      add "off" r.Study_sweep.without_filter;
      add "on" r.Study_sweep.with_filter;
      (Printf.sprintf "fig5_%s" r.Study_sweep.name, t))
    results

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)

let table3 results =
  let t = Table.create [ "Name"; "SDC Ratio"; "Sample Size"; "Predict SDC Ratio" ] in
  List.iter
    (fun (r : Study_adaptive.result) ->
      let f_mean, f_std =
        mean_std_of (fun x -> x.Study_adaptive.sample_fraction) r.Study_adaptive.trials
      in
      let p_mean, p_std =
        mean_std_of (fun x -> x.Study_adaptive.predicted_sdc) r.Study_adaptive.trials
      in
      Table.add_row t
        [
          r.Study_adaptive.name;
          pct r.Study_adaptive.golden_sdc;
          Ascii.percent_pm ~mean:f_mean ~std:f_std;
          Ascii.percent_pm ~mean:p_mean ~std:p_std;
        ])
    results;
  Table.render
    ~title:"Table 3: adaptive/progressive sampling (mean \xc2\xb1 std over trials)" t

let csv_table3 results =
  let t =
    Table.create
      [
        "name"; "golden_sdc"; "sample_fraction_mean"; "sample_fraction_std";
        "predicted_sdc_mean"; "predicted_sdc_std"; "rounds_mean";
      ]
  in
  List.iter
    (fun (r : Study_adaptive.result) ->
      let f_mean, f_std =
        mean_std_of (fun x -> x.Study_adaptive.sample_fraction) r.Study_adaptive.trials
      in
      let p_mean, p_std =
        mean_std_of (fun x -> x.Study_adaptive.predicted_sdc) r.Study_adaptive.trials
      in
      let rounds =
        Stats.mean
          (Array.map (fun x -> float_of_int x.Study_adaptive.rounds) r.Study_adaptive.trials)
      in
      Table.add_row t
        [
          r.Study_adaptive.name;
          Printf.sprintf "%.6f" r.Study_adaptive.golden_sdc;
          Printf.sprintf "%.6f" f_mean;
          Printf.sprintf "%.6f" f_std;
          Printf.sprintf "%.6f" p_mean;
          Printf.sprintf "%.6f" p_std;
          Printf.sprintf "%.2f" rounds;
        ])
    results;
  [ ("table3", t) ]

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)

let table4 (result : Study_scaling.result) =
  let t =
    Table.create
      [
        "Input"; "SDC ratio"; "predict SDC ratio"; "precision"; "uncertainty"; "recall";
        "sites"; "sample frac";
      ]
  in
  Array.iter
    (fun (row : Study_scaling.row) ->
      Table.add_row t
        [
          row.Study_scaling.label;
          pct row.Study_scaling.golden_sdc;
          Ascii.percent_pm ~mean:row.Study_scaling.predicted_sdc_mean
            ~std:row.Study_scaling.predicted_sdc_std;
          Ascii.percent_pm ~mean:row.Study_scaling.precision_mean
            ~std:row.Study_scaling.precision_std;
          Ascii.percent_pm ~mean:row.Study_scaling.uncertainty_mean
            ~std:row.Study_scaling.uncertainty_std;
          Ascii.percent_pm ~mean:row.Study_scaling.recall_mean
            ~std:row.Study_scaling.recall_std;
          string_of_int row.Study_scaling.sites;
          pct row.Study_scaling.sample_fraction;
        ])
    result.Study_scaling.rows;
  Table.render
    ~title:
      (Printf.sprintf "Table 4: CG scalability with %d samples per input size"
         result.Study_scaling.samples)
    t

let csv_table4 (result : Study_scaling.result) =
  let t =
    Table.create
      [
        "input"; "golden_sdc"; "predicted_sdc_mean"; "predicted_sdc_std"; "precision_mean";
        "precision_std"; "uncertainty_mean"; "uncertainty_std"; "recall_mean"; "recall_std";
        "sites"; "cases"; "sample_fraction";
      ]
  in
  Array.iter
    (fun (row : Study_scaling.row) ->
      Table.add_row t
        [
          row.Study_scaling.label;
          Printf.sprintf "%.6f" row.Study_scaling.golden_sdc;
          Printf.sprintf "%.6f" row.Study_scaling.predicted_sdc_mean;
          Printf.sprintf "%.6f" row.Study_scaling.predicted_sdc_std;
          Printf.sprintf "%.6f" row.Study_scaling.precision_mean;
          Printf.sprintf "%.6f" row.Study_scaling.precision_std;
          Printf.sprintf "%.6f" row.Study_scaling.uncertainty_mean;
          Printf.sprintf "%.6f" row.Study_scaling.uncertainty_std;
          Printf.sprintf "%.6f" row.Study_scaling.recall_mean;
          Printf.sprintf "%.6f" row.Study_scaling.recall_std;
          string_of_int row.Study_scaling.sites;
          string_of_int row.Study_scaling.cases;
          Printf.sprintf "%.6f" row.Study_scaling.sample_fraction;
        ])
    result.Study_scaling.rows;
  [ ("table4", t) ]

(* ------------------------------------------------------------------ *)
(* Ablation                                                            *)

module Study_ablation = Ftb_core.Study_ablation
module Confidence = Ftb_core.Confidence

let ablation results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Ablation: adaptive sampler design choices\n\n";
  List.iter
    (fun (r : Study_ablation.result) ->
      let t =
        Table.create
          [ "variant"; "sample size"; "predicted SDC"; "|error|"; "rounds" ]
      in
      Array.iter
        (fun (v : Study_ablation.variant) ->
          Table.add_row t
            [
              v.Study_ablation.label;
              Ascii.percent_pm ~mean:v.Study_ablation.sample_fraction_mean
                ~std:v.Study_ablation.sample_fraction_std;
              pct v.Study_ablation.predicted_sdc_mean;
              pct v.Study_ablation.abs_error_mean;
              Printf.sprintf "%.1f" v.Study_ablation.rounds_mean;
            ])
        r.Study_ablation.variants;
      Buffer.add_string buf
        (Table.render
           ~title:
             (Printf.sprintf "%s (golden SDC %s) - bias x filter grid" r.Study_ablation.name
                (pct r.Study_ablation.golden_sdc))
           t);
      Buffer.add_char buf '\n';
      let t2 = Table.create [ "round size"; "sample size"; "|error|"; "rounds" ] in
      Array.iter
        (fun (p : Study_ablation.round_point) ->
          Table.add_row t2
            [
              pct p.Study_ablation.round_fraction;
              pct p.Study_ablation.sample_fraction_mean;
              pct p.Study_ablation.abs_error_mean;
              Printf.sprintf "%.1f" p.Study_ablation.rounds_mean;
            ])
        r.Study_ablation.round_points;
      Buffer.add_string buf
        (Table.render ~title:(r.Study_ablation.name ^ " - round-size sweep") t2);
      let b = r.Study_ablation.baseline in
      Buffer.add_string buf
        (Printf.sprintf
           "\nstatistical-FI baseline (+-1%%, 95%% confidence): %d runs for one overall\n\
            ratio, %d runs for a per-site profile; the boundary used %d traced runs\n\
            and recovered %s of all masked cases.\n\n"
           b.Confidence.mc_samples_overall b.Confidence.mc_samples_full_profile
           b.Confidence.boundary_samples
           (pct b.Confidence.boundary_recall)))
    results;
  Buffer.contents buf

let csv_ablation results =
  List.concat_map
    (fun (r : Study_ablation.result) ->
      let t =
        Table.create
          [
            "variant"; "bias"; "filter"; "sample_fraction_mean"; "sample_fraction_std";
            "predicted_sdc_mean"; "abs_error_mean"; "rounds_mean";
          ]
      in
      Array.iter
        (fun (v : Study_ablation.variant) ->
          Table.add_row t
            [
              v.Study_ablation.label;
              string_of_bool v.Study_ablation.bias;
              string_of_bool v.Study_ablation.filter;
              Printf.sprintf "%.6f" v.Study_ablation.sample_fraction_mean;
              Printf.sprintf "%.6f" v.Study_ablation.sample_fraction_std;
              Printf.sprintf "%.6f" v.Study_ablation.predicted_sdc_mean;
              Printf.sprintf "%.6f" v.Study_ablation.abs_error_mean;
              Printf.sprintf "%.2f" v.Study_ablation.rounds_mean;
            ])
        r.Study_ablation.variants;
      let t2 =
        Table.create
          [ "round_fraction"; "sample_fraction_mean"; "abs_error_mean"; "rounds_mean" ]
      in
      Array.iter
        (fun (p : Study_ablation.round_point) ->
          Table.add_row t2
            [
              Printf.sprintf "%.6f" p.Study_ablation.round_fraction;
              Printf.sprintf "%.6f" p.Study_ablation.sample_fraction_mean;
              Printf.sprintf "%.6f" p.Study_ablation.abs_error_mean;
              Printf.sprintf "%.2f" p.Study_ablation.rounds_mean;
            ])
        r.Study_ablation.round_points;
      [
        (Printf.sprintf "ablation_variants_%s" r.Study_ablation.name, t);
        (Printf.sprintf "ablation_rounds_%s" r.Study_ablation.name, t2);
      ])
    results

(* ------------------------------------------------------------------ *)
(* Tolerance sweep                                                     *)

module Study_tolerance = Ftb_core.Study_tolerance

let tolerance results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Tolerance sweep: sensitivity of the analysis to the acceptance threshold T\n\n";
  List.iter
    (fun (r : Study_tolerance.result) ->
      let t =
        Table.create
          [
            "T"; "golden SDC"; "masked"; "crash"; "precision"; "recall"; "uncertainty";
            "non-monotonic";
          ]
      in
      Array.iter
        (fun (p : Study_tolerance.point) ->
          Table.add_row t
            [
              Printf.sprintf "%g" p.Study_tolerance.tolerance;
              pct p.Study_tolerance.golden_sdc;
              pct p.Study_tolerance.golden_masked;
              pct p.Study_tolerance.golden_crash;
              pct p.Study_tolerance.precision;
              pct p.Study_tolerance.recall;
              pct p.Study_tolerance.uncertainty;
              pct p.Study_tolerance.non_monotonic_fraction;
            ])
        r.Study_tolerance.points;
      Buffer.add_string buf
        (Table.render
           ~title:
             (Printf.sprintf "%s (boundary from a %s sample per point)"
                r.Study_tolerance.name
                (pct r.Study_tolerance.fraction))
           t);
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let csv_tolerance results =
  List.map
    (fun (r : Study_tolerance.result) ->
      let t =
        Table.create
          [
            "tolerance"; "golden_sdc"; "golden_masked"; "golden_crash"; "precision";
            "recall"; "uncertainty"; "non_monotonic_fraction";
          ]
      in
      Array.iter
        (fun (p : Study_tolerance.point) ->
          Table.add_row t
            [
              Printf.sprintf "%g" p.Study_tolerance.tolerance;
              Printf.sprintf "%.6f" p.Study_tolerance.golden_sdc;
              Printf.sprintf "%.6f" p.Study_tolerance.golden_masked;
              Printf.sprintf "%.6f" p.Study_tolerance.golden_crash;
              Printf.sprintf "%.6f" p.Study_tolerance.precision;
              Printf.sprintf "%.6f" p.Study_tolerance.recall;
              Printf.sprintf "%.6f" p.Study_tolerance.uncertainty;
              Printf.sprintf "%.6f" p.Study_tolerance.non_monotonic_fraction;
            ])
        r.Study_tolerance.points;
      (Printf.sprintf "tolerance_%s" r.Study_tolerance.name, t))
    results

(* ------------------------------------------------------------------ *)
(* Cross-model comparison                                              *)

module Study_models = Ftb_core.Study_models
module Models = Ftb_inject.Models

let model_table results =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (r : Study_models.result) ->
      let t =
        Table.create
          [ "Model"; "Cases"; "Masked"; "SDC"; "Crash"; "NaN"; "Inf"; "Exc"; "Fuel" ]
      in
      List.iter
        (fun (row : Study_models.row) ->
          let c = row.Study_models.crash_breakdown in
          Table.add_row t
            [
              Models.spec_name row.Study_models.model;
              string_of_int row.Study_models.cases;
              pct row.Study_models.masked_ratio;
              pct row.Study_models.sdc_ratio;
              pct row.Study_models.crash_ratio;
              string_of_int c.Ftb_inject.Ground_truth.nan;
              string_of_int c.Ftb_inject.Ground_truth.inf;
              string_of_int c.Ftb_inject.Ground_truth.exn;
              string_of_int c.Ftb_inject.Ground_truth.fuel;
            ])
        r.Study_models.rows;
      Buffer.add_string buf
        (Table.render
           ~title:
             (Printf.sprintf
                "Cross-model comparison: %s (%d dynamic instructions, exhaustive per model)"
                r.Study_models.name r.Study_models.sites)
           t);
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let csv_model_table results =
  List.map
    (fun (r : Study_models.result) ->
      let t =
        Table.create
          [
            "model"; "cases"; "masked_ratio"; "sdc_ratio"; "crash_ratio"; "nan"; "inf";
            "exception"; "fuel_exhausted";
          ]
      in
      List.iter
        (fun (row : Study_models.row) ->
          let c = row.Study_models.crash_breakdown in
          Table.add_row t
            [
              Models.spec_name row.Study_models.model;
              string_of_int row.Study_models.cases;
              Printf.sprintf "%.6f" row.Study_models.masked_ratio;
              Printf.sprintf "%.6f" row.Study_models.sdc_ratio;
              Printf.sprintf "%.6f" row.Study_models.crash_ratio;
              string_of_int c.Ftb_inject.Ground_truth.nan;
              string_of_int c.Ftb_inject.Ground_truth.inf;
              string_of_int c.Ftb_inject.Ground_truth.exn;
              string_of_int c.Ftb_inject.Ground_truth.fuel;
            ])
        r.Study_models.rows;
      (Printf.sprintf "models_%s" r.Study_models.name, t))
    results

let save_all ~dir named =
  List.map (fun (name, t) -> Table.save_csv ~dir ~name t) named
