(* The batched campaign executor: prefix-snapshot bit batching must be
   byte-identical to full per-case re-execution, for resumable (IR) and
   non-resumable (closure) programs alike, under any fuel budget. *)

module Golden = Ftb_trace.Golden
module Executor = Ftb_inject.Executor
module Ground_truth = Ftb_inject.Ground_truth
module Parallel = Ftb_inject.Parallel

let bits = Ftb_util.Bits.bits_per_double

let ir_golden =
  lazy
    (Golden.run
       (Ftb_ir.Ir.to_program (Ftb_ir.Programs.stencil3 ~n:8 ~sweeps:2 ~seed:9 ~tolerance:1e-6)))

let closure_golden = lazy (Golden.run (Helpers.linear_program ~tolerance:0.5 ()))

let serial_bytes ?fuel golden =
  let total = Golden.cases golden in
  let buf = Bytes.create total in
  for case = 0 to total - 1 do
    Bytes.set buf case (Ground_truth.case_byte ?fuel golden case)
  done;
  buf

let check_site_identity ?fuel what golden =
  let expected = serial_bytes ?fuel golden in
  let buf = Bytes.make (Golden.cases golden) '\255' in
  for site = 0 to Golden.sites golden - 1 do
    Executor.site_into ?fuel golden ~site buf ~pos:(site * bits)
  done;
  Alcotest.(check bool) (what ^ ": batched bytes = serial bytes") true
    (Bytes.equal expected buf)

let test_site_into_matches_serial () =
  check_site_identity "ir program" (Lazy.force ir_golden)

let test_site_into_closure_fallback () =
  (* Closure kernels have no resumable capability; same bytes, via the
     per-case fallback. *)
  let golden = Lazy.force closure_golden in
  Alcotest.(check bool) "fixture is not resumable" true
    (golden.Golden.program.Ftb_trace.Program.resumable = None);
  check_site_identity "closure program" golden

let test_site_into_under_fuel () =
  let golden = Lazy.force ir_golden in
  let sites = Golden.sites golden in
  (* Budgets that exhaust inside the prefix, exactly at a site, and never:
     the batched path must reproduce the serial fuel-crash bytes in all
     three regimes. *)
  List.iter
    (fun fuel -> check_site_identity ~fuel (Printf.sprintf "fuel %d" fuel) golden)
    [ 1; 2; sites / 2; sites; sites + 1; 10 * sites ]

let test_range_into_ragged_bounds () =
  let golden = Lazy.force ir_golden in
  let total = Golden.cases golden in
  let expected = serial_bytes golden in
  List.iter
    (fun (lo, hi) ->
      let buf = Bytes.make (hi - lo) '\255' in
      Executor.range_into golden ~lo ~hi buf ~off:0;
      Alcotest.(check bool)
        (Printf.sprintf "range [%d, %d) = serial slice" lo hi)
        true
        (Bytes.equal (Bytes.sub expected lo (hi - lo)) buf))
    [
      (0, total);
      (0, 0);
      (1, 63);  (* inside one site *)
      (63, 65);  (* straddles a site boundary *)
      (1, total - 1);
      (64, 192);  (* exactly two whole sites *)
      (37, 37 + 128);
    ]

let test_ground_truth_batched_pooled_identity () =
  let golden = Lazy.force ir_golden in
  let reference = Ground_truth.run golden in
  List.iter
    (fun (what, gt) ->
      Alcotest.(check bool) (what ^ " = serial engine") true
        (Bytes.equal reference.Ground_truth.outcomes gt.Ground_truth.outcomes))
    [
      ("batched serial", Executor.ground_truth ~domains:1 golden);
      ("batched pooled", Executor.ground_truth ~domains:4 golden);
      ("per-case pooled", Executor.ground_truth ~domains:4 ~batched:false golden);
      ("explicit pool", Executor.ground_truth ~pool:(Parallel.Pool.global ~domains:3 ()) golden);
    ]

let test_ground_truth_fuel_identity () =
  let golden = Lazy.force ir_golden in
  let fuel = Golden.sites golden / 2 in
  let reference = Ground_truth.run ~fuel golden in
  let batched = Executor.ground_truth ~domains:4 ~fuel golden in
  Alcotest.(check bool) "fuel-bound batched pooled = serial" true
    (Bytes.equal reference.Ground_truth.outcomes batched.Ground_truth.outcomes)

let test_site_into_validation () =
  let golden = Lazy.force ir_golden in
  let buf = Bytes.create (Golden.cases golden) in
  (match Executor.site_into golden ~site:(-1) buf ~pos:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative site accepted");
  (match Executor.site_into golden ~site:0 (Bytes.create 63) ~pos:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short buffer accepted");
  match Executor.range_into golden ~lo:0 ~hi:(Golden.cases golden + 1) buf ~off:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range hi accepted"

(* ------------------------------------------------------------------ *)
(* Model-aware executor: for every fault model, the batched path (whole
   sites via prefix snapshots) must be byte-identical to the per-case
   model-aware serial reference — the regression the old code could not
   even express (it silently assumed 64 cases per site). *)

module Models = Ftb_inject.Models

let model_specs =
  [
    { Models.model = Models.Bit_flip_64; seed = 0 };
    { Models.model = Models.Bit_flip_32; seed = 0 };
    { Models.model = Models.Adjacent_burst_2; seed = 0 };
    { Models.model = Models.Random_value { lo = -100.; hi = 100. }; seed = 11 };
  ]

let serial_bytes_model ?fuel spec golden =
  let total = Models.total_cases spec ~sites:(Golden.sites golden) in
  let buf = Bytes.create total in
  for case = 0 to total - 1 do
    Bytes.set buf case (Ground_truth.case_byte_model ?fuel spec golden case)
  done;
  buf

let test_model_batched_matches_serial () =
  List.iter
    (fun (what, golden) ->
      List.iter
        (fun spec ->
          let label =
            Printf.sprintf "%s under %s" what (Models.spec_name spec)
          in
          let expected = serial_bytes_model spec golden in
          let gt = Executor.ground_truth_model ~domains:1 spec golden in
          Alcotest.(check int)
            (label ^ ": case-space size")
            (Models.total_cases spec ~sites:(Golden.sites golden))
            (Ground_truth.cases gt);
          Alcotest.(check bool)
            (label ^ ": batched bytes = per-case bytes")
            true
            (Bytes.equal expected gt.Ground_truth.outcomes))
        model_specs)
    [ ("ir program", Lazy.force ir_golden); ("closure program", Lazy.force closure_golden) ]

let test_model_default_dispatch_is_historical_path () =
  (* Bit_flip_64 must not merely be equivalent — it dispatches to the
     exact pre-model executor, so its bytes match byte for byte. *)
  let golden = Lazy.force ir_golden in
  let gt = Executor.ground_truth ~domains:1 golden in
  let gtm = Executor.ground_truth_model ~domains:1 Models.default_spec golden in
  Alcotest.(check bool) "default model = historical executor" true
    (Bytes.equal gt.Ground_truth.outcomes gtm.Ground_truth.outcomes)

let test_model_range_into_ragged_bounds () =
  let golden = Lazy.force ir_golden in
  List.iter
    (fun spec ->
      let width = Models.spec_width spec in
      let total = Models.total_cases spec ~sites:(Golden.sites golden) in
      let expected = serial_bytes_model spec golden in
      List.iter
        (fun (lo, hi) ->
          let lo = min lo total and hi = min hi total in
          if lo <= hi then begin
            let buf = Bytes.make (hi - lo) '\255' in
            Executor.range_into_model spec golden ~lo ~hi buf ~off:0;
            Alcotest.(check bool)
              (Printf.sprintf "%s: range [%d, %d) = serial slice"
                 (Models.spec_name spec) lo hi)
              true
              (Bytes.equal (Bytes.sub expected lo (hi - lo)) buf)
          end)
        [
          (0, total);
          (0, 0);
          (1, width - 1);  (* inside one site *)
          (width - 1, width + 1);  (* straddles a site boundary *)
          (1, total - 1);
          (width, 3 * width);  (* whole sites *)
          (width / 2, (width / 2) + (2 * width));
        ])
    model_specs

let test_model_fuel_identity () =
  let golden = Lazy.force ir_golden in
  let fuel = Golden.sites golden / 2 in
  List.iter
    (fun spec ->
      let expected = serial_bytes_model ~fuel spec golden in
      let gt = Executor.ground_truth_model ~domains:2 ~fuel spec golden in
      Alcotest.(check bool)
        (Printf.sprintf "%s under fuel %d" (Models.spec_name spec) fuel)
        true
        (Bytes.equal expected gt.Ground_truth.outcomes))
    model_specs

let test_model_stochastic_replay_identical () =
  (* Two independent executions of the stochastic model — different
     batching, different domain counts — must produce identical bytes:
     the per-case RNG derivation leaves nothing to scheduling. *)
  let golden = Lazy.force ir_golden in
  let spec = { Models.model = Models.Random_value { lo = -1.; hi = 1. }; seed = 99 } in
  let a = Executor.ground_truth_model ~domains:1 spec golden in
  let b = Executor.ground_truth_model ~domains:4 spec golden in
  let c = Executor.ground_truth_model ~domains:2 ~batched:false spec golden in
  Alcotest.(check bool) "serial = pooled" true
    (Bytes.equal a.Ground_truth.outcomes b.Ground_truth.outcomes);
  Alcotest.(check bool) "serial = per-case pooled" true
    (Bytes.equal a.Ground_truth.outcomes c.Ground_truth.outcomes);
  (* And a different seed must actually change the injected values
     (outcome bytes may coincide — near-everything is SDC here). *)
  let differs =
    Array.exists
      (fun case ->
        Models.case_corrupt spec ~case 0.
        <> Models.case_corrupt { spec with Models.seed = 100 } ~case 0.)
      (Array.init 64 Fun.id)
  in
  Alcotest.(check bool) "seed changes the drawn values" true differs

(* Property: for random small IR kernels and random fuel budgets, the
   batched executor's bytes equal the serial engine's on every case. *)
let prop_batched_identity =
  let gen =
    QCheck.make
      ~print:(fun (k, n, seed, fuel) -> Printf.sprintf "kernel %d, n %d, seed %d, fuel %d" k n seed fuel)
      QCheck.Gen.(
        quad (int_bound 4) (int_range 2 6) (int_range 0 1000) (int_range 0 64))
  in
  QCheck.Test.make ~name:"batched executor = serial engine (random kernels)" ~count:25 gen
    (fun (kernel, n, seed, fuel) ->
      let ir =
        match kernel with
        | 0 -> Ftb_ir.Programs.dot ~n ~seed ~tolerance:1e-9
        | 1 -> Ftb_ir.Programs.saxpy ~n ~seed ~tolerance:1e-9
        | 2 -> Ftb_ir.Programs.stencil3 ~n:(n + 2) ~sweeps:2 ~seed ~tolerance:1e-9
        | 3 -> Ftb_ir.Programs.matvec ~n ~seed ~tolerance:1e-9
        | _ -> Ftb_ir.Programs.normalize ~n ~seed ~tolerance:1e-9
      in
      let golden = Golden.run (Ftb_ir.Ir.to_program ir) in
      let fuel = if fuel = 0 then None else Some fuel in
      let reference = serial_bytes ?fuel golden in
      let batched = (Executor.ground_truth ?fuel ~domains:1 golden).Ground_truth.outcomes in
      Bytes.equal reference batched)

let suite =
  [
    Alcotest.test_case "site_into = serial bytes" `Quick test_site_into_matches_serial;
    Alcotest.test_case "closure fallback = serial bytes" `Quick
      test_site_into_closure_fallback;
    Alcotest.test_case "fuel regimes = serial bytes" `Quick test_site_into_under_fuel;
    Alcotest.test_case "range_into handles ragged bounds" `Quick
      test_range_into_ragged_bounds;
    Alcotest.test_case "ground_truth: batched x pooled identity" `Quick
      test_ground_truth_batched_pooled_identity;
    Alcotest.test_case "ground_truth: fuel identity" `Quick test_ground_truth_fuel_identity;
    Alcotest.test_case "argument validation" `Quick test_site_into_validation;
    Alcotest.test_case "per-model batched = per-case serial" `Quick
      test_model_batched_matches_serial;
    Alcotest.test_case "default model dispatches to historical path" `Quick
      test_model_default_dispatch_is_historical_path;
    Alcotest.test_case "model range_into handles ragged bounds" `Quick
      test_model_range_into_ragged_bounds;
    Alcotest.test_case "model fuel identity" `Quick test_model_fuel_identity;
    Alcotest.test_case "stochastic replay is scheduling-independent" `Quick
      test_model_stochastic_replay_identical;
    QCheck_alcotest.to_alcotest prop_batched_identity;
  ]
