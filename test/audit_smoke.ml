(* Audit smoke test (dune alias @audit-smoke).

   Chaos-style gate for the trust-but-verify layer:

   1. Lying-worker drill: an in-process fleet of three workers, one of
      which silently corrupts its outcome bytes *before* digesting them
      (modelling SDC on the worker, which attestation alone cannot
      catch). With audit re-execution on, the campaign must still
      converge byte-identical to the serial oracle, the liar must be
      quarantined (and its watch event streamed to the client), and the
      operator clear path must re-admit the name.

   2. Cache-provenance gates: fleet-harvested profiles must record who
      computed them; unaudited full hits are refused unless the submitter
      opts in with trust_cache; audited ones serve normally; and after a
      liar is convicted no poisoned profile survives in the store. *)

module Ctx = Ftb_trace.Ctx
module Static = Ftb_trace.Static
module Program = Ftb_trace.Program
module Golden = Ftb_trace.Golden
module Ground_truth = Ftb_inject.Ground_truth
module Executor = Ftb_inject.Executor
module Checkpoint = Ftb_campaign.Checkpoint
module Job = Ftb_service.Job
module Client = Ftb_service.Client
module Server = Ftb_service.Server
module Store = Ftb_compose.Store
module Fleet = Ftb_dist.Fleet
module Worker = Ftb_dist.Worker
module P = Ftb_dist.Worker_proto
module Ir_kernels = Ftb_kernels.Ir_kernels

let failures = ref 0

let check what ok =
  if ok then Printf.printf "ok    %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL  %s\n%!" what
  end

let get_ok what = function
  | Ok v -> v
  | Error (e : Client.error) ->
      check what false;
      failwith (Printf.sprintf "%s: daemon error %s: %s" what e.Client.code e.Client.message)

let fresh_dir tag =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftb_audit_smoke_%s_%d" tag (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists path then rm path;
  Unix.mkdir path 0o755;
  path

(* Part-1 benchmark: damped fixed-point iteration, big enough that all
   three workers commit several shards each. *)
let drill_program =
  let statics = Static.create_table () in
  let tag_load = Static.register statics ~phase:"audit.load" ~label:"x[i]" in
  let tag_iter = Static.register statics ~phase:"audit.iter" ~label:"x[i] update" in
  let tag_out = Static.register statics ~phase:"audit.out" ~label:"sum" in
  let body ctx =
    let x =
      Array.map (fun v -> Ctx.record ctx ~tag:tag_load v) [| 1.0; 2.0; 3.0; 4.0 |]
    in
    for _iter = 1 to 40 do
      for i = 0 to 3 do
        let left = x.((i + 3) mod 4) and right = x.((i + 1) mod 4) in
        x.(i) <- Ctx.record ctx ~tag:tag_iter ((x.(i) +. (0.25 *. (left +. right))) /. 1.5)
      done
    done;
    [| Ctx.record ctx ~tag:tag_out (Array.fold_left ( +. ) 0. x) |]
  in
  Program.make ~name:"audit.drill" ~description:"damped fixed-point iteration"
    ~tolerance:0.05 ~statics body

(* Part-2 benchmark: an IR kernel, so the compositional cache engages. *)
let jacobi () = Ir_kernels.jacobi ~grid:4 ~sweeps:2 ~tolerance:1e-4

let resolve = function
  | "audit.drill" -> drill_program
  | "audit.jacobi" -> Ftb_ir.Pipeline.to_program (jacobi ())
  | name -> invalid_arg (Printf.sprintf "unknown benchmark %S" name)

let resolve_ir name = if name = "audit.jacobi" then Some (jacobi ()) else None
let fuel = 10_000
let lease_ttl = 0.5

(* Every corrupted byte stays a plausible outcome code, so only the audit
   oracle — never a parser — can tell the bytes are wrong. *)
let tamper ~bench:_ ~shard:_ b =
  Bytes.map (fun c -> if c = '\000' then '\001' else '\000') b

(* ------------------------------------------------------------------ *)
(* Shared scaffolding: an in-process daemon over socketpairs with a
   named worker fleet, wired exactly as the CLI wires it (provenance
   hook, quarantine hook purging the store and notifying watchers). *)

let with_scenario ~tag ~audit_rate ?(quarantine_after = 2) ~workers fn =
  let state_dir = fresh_dir tag in
  let fleet = Fleet.create ~lease_ttl ~audit_rate ~quarantine_after () in
  let config =
    {
      (Server.default_config ~state_dir) with
      Server.domains = 1;
      resolve;
      resolve_ir;
      extension = Some (Fleet.extension fleet);
      wave_runner = Some (Fleet.wave_runner fleet);
      provenance =
        Some
          (fun ~job_id ->
            Fleet.job_provenance fleet ~job_id
            |> Option.map (fun jp ->
                   (jp.Fleet.jp_workers, jp.Fleet.jp_audited)));
    }
  in
  let t = Server.create config in
  Fleet.set_on_quarantine fleet (fun ~name ~disputes ->
      (match Server.store t with
      | Some store -> ignore (Store.invalidate_worker store ~worker:name : int)
      | None -> ());
      Server.notify_quarantine t ~worker:name ~disputes);
  Server.start t;
  let connect () =
    let server_fd, peer_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    ignore (Thread.create (fun () -> Server.serve_connection t server_fd) ());
    peer_fd
  in
  let stop = Atomic.make false in
  let threads =
    List.map
      (fun (name, lies) ->
        Thread.create
          (fun () ->
            ignore
              (Worker.run
                 (Worker.config ~domains:1 ~resolve ~name
                    ?tamper:(if lies then Some tamper else None)
                    ~stop:(fun () -> Atomic.get stop)
                    connect)
                : Worker.stats))
          ())
      workers
  in
  let rec await attempts =
    if Fleet.live_workers fleet >= List.length workers then true
    else if attempts = 0 then false
    else begin
      ignore (Unix.select [] [] [] 0.02);
      await (attempts - 1)
    end
  in
  check (tag ^ ": all workers registered") (await 500);
  let client = Client.of_fd (connect ()) in
  fn ~state_dir ~fleet ~server:t ~client;
  Atomic.set stop true;
  (* A quarantined worker has already exited on its refused lease poll;
     the others detach on [stop]. *)
  List.iter Thread.join threads;
  get_ok (tag ^ ": shutdown") (Client.shutdown client);
  Server.join t;
  Client.close client

let ckpt_bytes ~state_dir ~shard_size id golden =
  match
    Checkpoint.load ~path:(Job.checkpoint_path ~state_dir id) ~shard_size golden
  with
  | state ->
      if Checkpoint.is_complete state then Some state.Checkpoint.outcomes else None
  | exception _ -> None

(* ------------------------------------------------------------------ *)
(* Part 1: one liar among three workers.                                *)

let lying_worker_drill () =
  with_scenario ~tag:"liar" ~audit_rate:1.0 ~quarantine_after:1
    ~workers:[ ("honest-1", false); ("honest-2", false); ("liar", true) ]
    (fun ~state_dir ~fleet ~server:_ ~client ->
      let shard_size = 128 in
      let spec =
        { (Job.default_spec ~bench:"audit.drill") with Job.shard_size; fuel = Some fuel }
      in
      let id = get_ok "liar: submit" (Client.submit client spec) in
      let quarantine_events = ref [] in
      let final =
        get_ok "liar: watch"
          (Client.watch client id ~on_event:(function
             | Client.Progress _ | Client.Round _ -> ()
             | Client.Worker_quarantined { worker; disputes; _ } ->
                 quarantine_events := (worker, disputes) :: !quarantine_events))
      in
      check "liar: job completed despite the lying worker"
        (final.Job.status = Job.Completed);
      (* The whole point: a worker lying about outcome bytes must not be
         able to change a single byte of the result. *)
      let golden = Golden.run drill_program in
      let reference = Ground_truth.run ~fuel golden in
      check "liar: outcome bytes bit-identical to serial oracle"
        (ckpt_bytes ~state_dir ~shard_size id golden
        = Some reference.Ground_truth.outcomes);
      check "liar: quarantine event streamed to the watching client"
        (List.exists (fun (w, d) -> w = "liar" && d >= 1) !quarantine_events);
      check "liar: no honest worker was quarantined"
        (List.for_all (fun (w, _) -> w = "liar") !quarantine_events);
      let s = Fleet.stats fleet in
      check "liar: shards were audited" (s.Fleet.audited > 0);
      check "liar: disputes recorded" (s.Fleet.disputed >= 1);
      check "liar: exactly one worker quarantined" (s.Fleet.quarantined = 1);
      check "liar: tampering happened upstream of the digest" (s.Fleet.bad_digest = 0);
      check "liar: honest workers committed remotely" (s.Fleet.remote_committed > 0);
      (* Operator workflow over the wire: the barred name is refused at
         registration, listed in the trust ledger, and re-admitted only
         after an explicit clear. *)
      let ext cmd json =
        match Fleet.extension fleet ~cmd json with
        | Some reply -> reply
        | None -> failwith ("no handler for " ^ cmd)
      in
      (match P.check_ok (ext "worker_register" (P.register ~name:"liar" ~domains:1 ())) with
      | () -> check "liar: barred name refused at registration" false
      | exception P.Decode_error _ ->
          check "liar: barred name refused at registration" true);
      let _rows, barred = P.parse_workers (ext "worker_stats" P.workers_request) in
      check "liar: trust ledger bars the liar with its dispute count"
        (match barred with [ ("liar", d) ] -> d >= 1 | _ -> false);
      check "liar: operator clear lifts the bar"
        (P.parse_cleared (ext "worker_clear" (P.workers_clear_request ~name:"liar")));
      match P.check_ok (ext "worker_register" (P.register ~name:"liar" ~domains:1 ())) with
      | () -> check "liar: cleared name registers again" true
      | exception P.Decode_error _ -> check "liar: cleared name registers again" false)

(* ------------------------------------------------------------------ *)
(* Part 2: provenance gates on the compositional cache.                 *)

let golden_jacobi () = Golden.run (Ftb_ir.Pipeline.to_program (jacobi ()))

let unaudited_provenance_gate () =
  with_scenario ~tag:"unaudited" ~audit_rate:0. ~workers:[ ("alpha", false) ]
    (fun ~state_dir ~fleet:_ ~server:t ~client ->
      let shard_size = 128 in
      let spec =
        { (Job.default_spec ~bench:"audit.jacobi") with Job.shard_size; fuel = Some fuel }
      in
      let golden = golden_jacobi () in
      let reference = Executor.ground_truth_model ~fuel spec.Job.model golden in
      let id1 = get_ok "unaudited: submit" (Client.submit client spec) in
      let final1 = get_ok "unaudited: watch" (Client.watch client id1) in
      check "unaudited: cold job completed" (final1.Job.status = Job.Completed);
      check "unaudited: cold job ran for real" (final1.Job.cache = Job.Cache_none);
      check "unaudited: cold bytes = oracle"
        (ckpt_bytes ~state_dir ~shard_size id1 golden
        = Some reference.Ground_truth.outcomes);
      (* Harvested with fleet provenance but no audit: the store must
         record the distrust... *)
      (match Server.store t with
      | Some store ->
          check "unaudited: store records unaudited fleet provenance"
            ((Store.stats store).Store.unaudited > 0)
      | None -> check "unaudited: store records unaudited fleet provenance" false);
      (* ...and the submit-time full-hit fast path must refuse to serve
         it: an unaudited full hit executes nothing, which is exactly the
         ride a poisoned profile would take. *)
      let id2 = get_ok "unaudited: resubmit" (Client.submit client spec) in
      let job2 = get_ok "unaudited: resubmit status" (Client.status client id2) in
      check "unaudited: full hit refused without --trust-cache"
        (job2.Job.cache <> Job.Cache_full);
      let final2 = get_ok "unaudited: resubmit watch" (Client.watch client id2) in
      check "unaudited: refused hit re-executed to the same bytes"
        (final2.Job.status = Job.Completed
        && ckpt_bytes ~state_dir ~shard_size id2 golden
           = Some reference.Ground_truth.outcomes);
      (* The operator can opt in explicitly. *)
      let id3 =
        get_ok "unaudited: resubmit trusting"
          (Client.submit client { spec with Job.trust_cache = true })
      in
      let job3 = get_ok "unaudited: trusting status" (Client.status client id3) in
      check "unaudited: --trust-cache serves the full hit"
        (job3.Job.status = Job.Completed && job3.Job.cache = Job.Cache_full);
      check "unaudited: trusted hit bytes = oracle"
        (ckpt_bytes ~state_dir ~shard_size id3 golden
        = Some reference.Ground_truth.outcomes))

let audited_provenance_gate () =
  with_scenario ~tag:"audited" ~audit_rate:1.0 ~workers:[ ("beta", false) ]
    (fun ~state_dir ~fleet:_ ~server:t ~client ->
      let shard_size = 128 in
      let spec =
        { (Job.default_spec ~bench:"audit.jacobi") with Job.shard_size; fuel = Some fuel }
      in
      let golden = golden_jacobi () in
      let reference = Executor.ground_truth_model ~fuel spec.Job.model golden in
      let id1 = get_ok "audited: submit" (Client.submit client spec) in
      let final1 = get_ok "audited: watch" (Client.watch client id1) in
      check "audited: cold job completed" (final1.Job.status = Job.Completed);
      (match Server.store t with
      | Some store ->
          let s = Store.stats store in
          check "audited: store populated, nothing unaudited"
            (s.Store.entries > 0 && s.Store.unaudited = 0)
      | None -> check "audited: store populated, nothing unaudited" false);
      (* Audited fleet provenance is trusted: the full hit serves without
         any opt-in, byte-identically. *)
      let id2 = get_ok "audited: resubmit" (Client.submit client spec) in
      let job2 = get_ok "audited: resubmit status" (Client.status client id2) in
      check "audited: full hit served without --trust-cache"
        (job2.Job.status = Job.Completed && job2.Job.cache = Job.Cache_full);
      check "audited: hit bytes = oracle"
        (ckpt_bytes ~state_dir ~shard_size id2 golden
        = Some reference.Ground_truth.outcomes))

let poisoned_cache_purge () =
  with_scenario ~tag:"poisoned" ~audit_rate:1.0 ~quarantine_after:1
    ~workers:[ ("gamma", false); ("liar", true) ]
    (fun ~state_dir ~fleet ~server:t ~client ->
      let shard_size = 64 in
      let spec =
        { (Job.default_spec ~bench:"audit.jacobi") with Job.shard_size; fuel = Some fuel }
      in
      let golden = golden_jacobi () in
      let reference = Executor.ground_truth_model ~fuel spec.Job.model golden in
      let id = get_ok "poisoned: submit" (Client.submit client spec) in
      let final = get_ok "poisoned: watch" (Client.watch client id) in
      check "poisoned: job completed" (final.Job.status = Job.Completed);
      check "poisoned: bytes = oracle despite the liar"
        (ckpt_bytes ~state_dir ~shard_size id golden
        = Some reference.Ground_truth.outcomes);
      check "poisoned: liar quarantined" ((Fleet.stats fleet).Fleet.quarantined = 1);
      (* The conviction must leave the cache clean: the liar's commits
         were all overwritten by the oracle, so the harvested profile
         carries only honest provenance and nothing in the store names
         the liar. *)
      (match Server.store t with
      | Some store ->
          let s = Store.stats store in
          check "poisoned: harvested profile is trusted"
            (s.Store.entries > 0 && s.Store.unaudited = 0);
          check "poisoned: no cached profile names the liar"
            (Store.invalidate_worker store ~worker:"liar" = 0)
      | None -> check "poisoned: store open" false);
      let id2 = get_ok "poisoned: resubmit" (Client.submit client spec) in
      let job2 = get_ok "poisoned: resubmit status" (Client.status client id2) in
      check "poisoned: clean profile serves a full hit"
        (job2.Job.status = Job.Completed && job2.Job.cache = Job.Cache_full))

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.printf "audit smoke: drill=%d sites, jacobi=%d sites (lease ttl %.2fs)\n%!"
    (Golden.sites (Golden.run drill_program))
    (Golden.sites (golden_jacobi ()))
    lease_ttl;
  lying_worker_drill ();
  unaudited_provenance_gate ();
  audited_provenance_gate ();
  poisoned_cache_purge ();
  if !failures > 0 then begin
    Printf.printf "%d smoke check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "audit smoke passed"
