module Parallel = Ftb_inject.Parallel
module Ground_truth = Ftb_inject.Ground_truth
module Sample_run = Ftb_inject.Sample_run
module Golden = Ftb_trace.Golden
module Runner = Ftb_trace.Runner

let golden = lazy (Golden.run (Helpers.linear_program ~tolerance:0.5 ()))

let test_parallel_ground_truth_matches_serial () =
  let g = Lazy.force golden in
  let serial = Ground_truth.run g in
  let parallel = Parallel.ground_truth ~domains:4 g in
  Alcotest.(check int) "same case count" (Ground_truth.cases serial)
    (Ground_truth.cases parallel);
  for case = 0 to Ground_truth.cases serial - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "case %d identical" case)
      true
      (Runner.outcome_equal (Ground_truth.outcome serial case)
         (Ground_truth.outcome parallel case))
  done

let test_parallel_on_real_kernel () =
  (* A kernel with internal mutable working state must still be re-entrant
     across domains (fresh state per run). *)
  let program =
    Ftb_kernels.Stencil.program
      { Ftb_kernels.Stencil.size = 5; sweeps = 3; seed = 3; tolerance = 1e-4 }
  in
  let g = Golden.run program in
  let serial = Ground_truth.run g in
  let parallel = Parallel.ground_truth ~domains:3 g in
  Helpers.check_close ~eps:1e-12 "same sdc ratio" (Ground_truth.sdc_ratio serial)
    (Ground_truth.sdc_ratio parallel);
  Helpers.check_close ~eps:1e-12 "same crash ratio" (Ground_truth.crash_ratio serial)
    (Ground_truth.crash_ratio parallel)

let test_single_domain_falls_back () =
  let g = Lazy.force golden in
  let gt = Parallel.ground_truth ~domains:1 g in
  Alcotest.(check int) "full space" (Golden.cases g) (Ground_truth.cases gt)

let test_domains_validated () =
  match Parallel.ground_truth ~domains:0 (Lazy.force golden) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 domains accepted"

let test_parallel_run_cases () =
  let g = Lazy.force golden in
  let cases = Array.init 100 (fun i -> i * 4) in
  let serial = Sample_run.run_cases g cases in
  let parallel = Parallel.run_cases ~domains:4 g cases in
  Alcotest.(check int) "same length" (Array.length serial) (Array.length parallel);
  Array.iteri
    (fun i (s : Sample_run.t) ->
      let p = parallel.(i) in
      Alcotest.(check bool) "same fault" true
        (Ftb_trace.Fault.equal s.Sample_run.fault p.Sample_run.fault);
      Alcotest.(check bool) "same outcome" true
        (Runner.outcome_equal s.Sample_run.outcome p.Sample_run.outcome);
      match (s.Sample_run.propagation, p.Sample_run.propagation) with
      | None, None -> ()
      | Some (ss, sd), Some (ps, pd) ->
          Alcotest.(check int) "same start" ss ps;
          Alcotest.(check (array (Helpers.close ()))) "same deviations" sd pd
      | _ -> Alcotest.fail "propagation presence differs")
    serial

let test_empty_cases () =
  let g = Lazy.force golden in
  Alcotest.(check int) "empty input" 0 (Array.length (Parallel.run_cases ~domains:4 g [||]))

let test_default_domains_positive () =
  Alcotest.(check bool) "at least one domain" true (Parallel.default_domains () >= 1)

let with_ftb_domains value f =
  (* There is no unsetenv in the stdlib; an empty value is documented to
     behave as unset, so restoring to "" is a clean reset. *)
  Unix.putenv "FTB_DOMAINS" value;
  Fun.protect ~finally:(fun () -> Unix.putenv "FTB_DOMAINS" "") f

let test_ftb_domains_env () =
  with_ftb_domains "3" (fun () ->
      Alcotest.(check int) "FTB_DOMAINS wins over the core cap" 3
        (Parallel.default_domains ()));
  with_ftb_domains "12" (fun () ->
      Alcotest.(check int) "FTB_DOMAINS may exceed the 8-cap" 12
        (Parallel.default_domains ()))

let test_ftb_domains_invalid () =
  List.iter
    (fun value ->
      with_ftb_domains value (fun () ->
          match Parallel.default_domains () with
          | exception Invalid_argument _ -> ()
          | d -> Alcotest.fail (Printf.sprintf "FTB_DOMAINS=%S accepted as %d" value d)))
    [ "0"; "-2"; "many"; "3.5" ]

let test_shard_joins_on_caller_exception () =
  (* The caller's chunk raises; the spawned domains must still be joined
     and the caller's exception re-raised. Before the fix this leaked the
     spawned domains. *)
  let exception Boom in
  let finished = Atomic.make 0 in
  (match
     Parallel.shard ~domains:3 ~total:300 (fun lo _hi ->
         if lo >= 200 then raise Boom (* the caller runs the last chunk *)
         else begin
           Unix.sleepf 0.02;
           Atomic.incr finished
         end)
   with
  | exception Boom -> ()
  | () -> Alcotest.fail "caller exception swallowed");
  Alcotest.(check int) "spawned chunks ran to completion" 2 (Atomic.get finished)

let test_shard_reraises_worker_exception () =
  let exception Boom in
  match
    Parallel.shard ~domains:3 ~total:300 (fun lo _hi -> if lo = 0 then raise Boom)
  with
  | exception Boom -> ()
  | () -> Alcotest.fail "worker exception swallowed"

(* --- the persistent pool --- *)

let test_pool_covers_every_item_once () =
  let pool = Parallel.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      let total = 10_000 in
      let hits = Array.make total 0 in
      (* Racy increments are safe: ranges claimed off the atomic counter are
         disjoint, so each slot is touched by exactly one domain. *)
      Parallel.Pool.run pool ~total (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check bool) "each item exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_pool_is_reusable () =
  let pool = Parallel.Pool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "domains" 3 (Parallel.Pool.domains pool);
      for round = 1 to 5 do
        let sum = Atomic.make 0 in
        Parallel.Pool.run pool ~chunk:7 ~total:round (fun lo hi ->
            for i = lo to hi - 1 do
              ignore (Atomic.fetch_and_add sum i)
            done);
        Alcotest.(check int)
          (Printf.sprintf "round %d" round)
          (round * (round - 1) / 2)
          (Atomic.get sum)
      done)

let test_pool_propagates_exception_and_survives () =
  let exception Boom in
  let pool = Parallel.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      (match
         Parallel.Pool.run pool ~chunk:1 ~total:100 (fun lo _hi ->
             if lo = 50 then raise Boom)
       with
      | exception Boom -> ()
      | () -> Alcotest.fail "job exception swallowed");
      (* The pool must stay usable after a failed job. *)
      let count = Atomic.make 0 in
      Parallel.Pool.run pool ~total:64 (fun lo hi ->
          ignore (Atomic.fetch_and_add count (hi - lo)));
      Alcotest.(check int) "pool alive after failure" 64 (Atomic.get count))

let test_pool_participants_cap () =
  let pool = Parallel.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      let seen = Array.make 128 0 in
      Parallel.Pool.run pool ~participants:1 ~total:128 (fun lo hi ->
          for i = lo to hi - 1 do
            seen.(i) <- seen.(i) + 1
          done);
      Alcotest.(check bool) "participants:1 still covers everything" true
        (Array.for_all (fun h -> h = 1) seen))

let test_pool_narrow_jobs_do_not_kill_workers () =
  (* Regression: a worker left out of a narrow job ([participants] below
     the pool width) could wake after the job had been cleared and die on
     [Option.get None], permanently deadlocking the next full-width job.
     Hammer the narrow/wide alternation to give the stale wakeup every
     chance to fire. *)
  let pool = Parallel.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      for round = 1 to 200 do
        Parallel.Pool.run pool ~participants:1 ~total:4 (fun _ _ -> ());
        let count = Atomic.make 0 in
        Parallel.Pool.run pool ~total:64 (fun lo hi ->
            ignore (Atomic.fetch_and_add count (hi - lo)));
        Alcotest.(check int)
          (Printf.sprintf "full-width job completes after narrow job %d" round)
          64 (Atomic.get count)
      done)

let test_global_pool_grows_in_place () =
  (* Regression: growing the global pool must not invalidate handles
     obtained before the growth. *)
  let narrow = Parallel.Pool.global ~domains:2 () in
  let before = Parallel.Pool.domains narrow in
  let wide = Parallel.Pool.global ~domains:(before + 1) () in
  Alcotest.(check bool) "growth reuses the same pool" true (narrow == wide);
  Alcotest.(check int) "grew by one worker" (before + 1) (Parallel.Pool.domains narrow);
  let count = Atomic.make 0 in
  Parallel.Pool.run narrow ~total:32 (fun lo hi ->
      ignore (Atomic.fetch_and_add count (hi - lo)));
  Alcotest.(check int) "pre-growth handle still runs jobs" 32 (Atomic.get count)

let test_pool_run_after_shutdown_rejected () =
  let pool = Parallel.Pool.create ~domains:2 in
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool;
  (* idempotent *)
  match Parallel.Pool.run pool ~total:10 (fun _ _ -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "run on a shut-down pool accepted"

let test_pool_zero_total_is_noop () =
  let pool = Parallel.Pool.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () -> Parallel.Pool.run pool ~total:0 (fun _ _ -> Alcotest.fail "work on empty job"))

(* Property: the pooled work-stealing campaign is byte-identical to the
   serial engine for random kernels and fuel budgets. *)
let prop_pooled_ground_truth_identity =
  let gen =
    QCheck.make
      ~print:(fun (k, n, seed, fuel, domains) ->
        Printf.sprintf "kernel %d, n %d, seed %d, fuel %d, domains %d" k n seed fuel domains)
      QCheck.Gen.(
        map
          (fun ((k, n, seed), (fuel, domains)) -> (k, n, seed, fuel, domains))
          (pair
             (triple (int_bound 2) (int_range 2 5) (int_range 0 1000))
             (pair (int_range 0 48) (int_range 2 5))))
  in
  QCheck.Test.make ~name:"pooled ground truth = serial (random kernels)" ~count:20 gen
    (fun (kernel, n, seed, fuel, domains) ->
      let ir =
        match kernel with
        | 0 -> Ftb_ir.Programs.dot ~n ~seed ~tolerance:1e-9
        | 1 -> Ftb_ir.Programs.saxpy ~n ~seed ~tolerance:1e-9
        | _ -> Ftb_ir.Programs.normalize ~n ~seed ~tolerance:1e-9
      in
      let g = Golden.run (Ftb_ir.Ir.to_program ir) in
      let fuel = if fuel = 0 then None else Some fuel in
      let serial = Ground_truth.run ?fuel g in
      let pooled = Parallel.ground_truth ~domains ?fuel g in
      Bytes.equal serial.Ground_truth.outcomes pooled.Ground_truth.outcomes)

let suite =
  [
    Alcotest.test_case "parallel ground truth = serial" `Quick
      test_parallel_ground_truth_matches_serial;
    Alcotest.test_case "parallel on real kernel" `Quick test_parallel_on_real_kernel;
    Alcotest.test_case "single domain falls back" `Quick test_single_domain_falls_back;
    Alcotest.test_case "domains validated" `Quick test_domains_validated;
    Alcotest.test_case "parallel run_cases = serial" `Quick test_parallel_run_cases;
    Alcotest.test_case "empty cases" `Quick test_empty_cases;
    Alcotest.test_case "default domains positive" `Quick test_default_domains_positive;
    Alcotest.test_case "FTB_DOMAINS overrides the default" `Quick test_ftb_domains_env;
    Alcotest.test_case "FTB_DOMAINS rejects garbage" `Quick test_ftb_domains_invalid;
    Alcotest.test_case "shard joins on caller exception" `Quick
      test_shard_joins_on_caller_exception;
    Alcotest.test_case "shard re-raises worker exception" `Quick
      test_shard_reraises_worker_exception;
    Alcotest.test_case "pool covers every item once" `Quick test_pool_covers_every_item_once;
    Alcotest.test_case "pool is reusable" `Quick test_pool_is_reusable;
    Alcotest.test_case "pool propagates exceptions and survives" `Quick
      test_pool_propagates_exception_and_survives;
    Alcotest.test_case "pool participants cap" `Quick test_pool_participants_cap;
    Alcotest.test_case "narrow jobs do not kill workers" `Quick
      test_pool_narrow_jobs_do_not_kill_workers;
    Alcotest.test_case "global pool grows in place" `Quick test_global_pool_grows_in_place;
    Alcotest.test_case "pool run after shutdown rejected" `Quick
      test_pool_run_after_shutdown_rejected;
    Alcotest.test_case "pool zero total is a no-op" `Quick test_pool_zero_total_is_noop;
    QCheck_alcotest.to_alcotest prop_pooled_ground_truth_identity;
  ]
