module Lru = Ftb_util.Lru

let test_create_bounds () =
  Alcotest.check_raises "zero capacity refused" (Invalid_argument "Lru.create: capacity must be positive")
    (fun () -> ignore (Lru.create ~capacity:0 : (int, int) Lru.t));
  let t : (int, int) Lru.t = Lru.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Lru.capacity t);
  Alcotest.(check int) "empty" 0 (Lru.length t)

let test_basic_ops () =
  let t = Lru.create ~capacity:2 in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find t "a");
  Alcotest.(check (option int)) "find b" (Some 2) (Lru.find t "b");
  Alcotest.(check (option int)) "miss" None (Lru.find t "c");
  Lru.add t "a" 10;
  Alcotest.(check (option int)) "replace in place" (Some 10) (Lru.find t "a");
  Alcotest.(check int) "replace does not grow" 2 (Lru.length t)

let test_lru_eviction () =
  let t = Lru.create ~capacity:2 in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  (* Touch "a" so "b" is the least recently used, then overflow. *)
  ignore (Lru.find t "a" : int option);
  Lru.add t "c" 3;
  Alcotest.(check int) "bounded at capacity" 2 (Lru.length t);
  Alcotest.(check bool) "lru entry evicted" false (Lru.mem t "b");
  Alcotest.(check bool) "recently used survives" true (Lru.mem t "a");
  Alcotest.(check bool) "new entry present" true (Lru.mem t "c")

let test_mem_does_not_refresh () =
  let t = Lru.create ~capacity:2 in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  (* [mem] must not count as a touch: "a" stays the eviction victim. *)
  Alcotest.(check bool) "mem sees a" true (Lru.mem t "a");
  Lru.add t "c" 3;
  Alcotest.(check bool) "mem did not protect a" false (Lru.mem t "a");
  Alcotest.(check bool) "b survived" true (Lru.mem t "b")

let test_find_or_add () =
  let t = Lru.create ~capacity:2 in
  let built = ref 0 in
  let make k () =
    incr built;
    String.length k
  in
  Alcotest.(check int) "miss computes" 1 (Lru.find_or_add t "x" (make "x"));
  Alcotest.(check int) "hit reuses" 1 (Lru.find_or_add t "x" (make "x"));
  Alcotest.(check int) "built once" 1 !built;
  ignore (Lru.find_or_add t "yy" (make "yy") : int);
  ignore (Lru.find_or_add t "zzz" (make "zzz") : int);
  Alcotest.(check int) "still bounded" 2 (Lru.length t);
  (* "x" was evicted (oldest), so it must be rebuilt on next use. *)
  Alcotest.(check int) "evicted entry rebuilt" 1 (Lru.find_or_add t "x" (make "x"));
  Alcotest.(check int) "three builds + rebuild" 4 !built

let prop_never_exceeds_capacity =
  QCheck.Test.make ~name:"lru length never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (capacity, keys) ->
      let t = Lru.create ~capacity in
      List.iter (fun k -> Lru.add t k (k * 2)) keys;
      Lru.length t <= capacity
      && List.for_all
           (fun k -> match Lru.find t k with Some v -> v = k * 2 | None -> true)
           keys)

let suite =
  [
    Alcotest.test_case "create bounds" `Quick test_create_bounds;
    Alcotest.test_case "basic add/find/replace" `Quick test_basic_ops;
    Alcotest.test_case "least-recently-used is evicted" `Quick test_lru_eviction;
    Alcotest.test_case "mem does not refresh recency" `Quick test_mem_does_not_refresh;
    Alcotest.test_case "find_or_add caches and rebuilds" `Quick test_find_or_add;
    Helpers.qcheck_to_alcotest prop_never_exceeds_capacity;
  ]
