(* Adaptive smoke test (dune alias @adaptive-smoke).

   End-to-end drill of the distributed adaptive sampler and the servable
   boundary store, per fault model (bit-flip-64 and bit-flip-32):

   1. Serial oracle: run the adaptive engine in-process — the reference
      every other execution path must match byte for byte.

   2. Daemon kill/restart: submit the same campaign as an adaptive job,
      SIGKILL the daemon mid-round, restart it on the same state
      directory; the job must resume at the checkpointed round and the
      published boundary-store entry must carry threshold bytes, round
      count and stop reason identical to the serial oracle. Watchers see
      §3.4 convergence live via "round" events.

   3. Fleet: the same campaign again with two worker processes attached
      and one SIGKILLed mid-round — expired leases re-run elsewhere (or
      on the local oracle of last resort) and the boundary still matches
      the serial run bit for bit.

   4. Warm start: an exact resubmission of a stored campaign is served
      [Completed] from the boundary store with zero fresh samples
      (served_from_cache = full) and the same outcome tallies. *)

module Ctx = Ftb_trace.Ctx
module Static = Ftb_trace.Static
module Program = Ftb_trace.Program
module Golden = Ftb_trace.Golden
module Models = Ftb_inject.Models
module Adaptive = Ftb_core.Adaptive
module Boundary = Ftb_core.Boundary
module AE = Ftb_plan.Adaptive_engine
module BS = Ftb_plan.Boundary_store
module Job = Ftb_service.Job
module Client = Ftb_service.Client
module Server = Ftb_service.Server
module Wire = Ftb_service.Wire
module Fleet = Ftb_dist.Fleet
module Worker = Ftb_dist.Worker

let failures = ref 0

let check what ok =
  if ok then Printf.printf "ok    %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL  %s\n%!" what
  end

(* Damped fixed-point iteration (same family as the other smokes): big
   enough that a SIGKILL lands mid-campaign at 0.4 %-of-the-space rounds,
   small enough that thirty rounds stay fast. *)
let make_program () =
  let statics = Static.create_table () in
  let tag_load = Static.register statics ~phase:"adapt.load" ~label:"x[i]" in
  let tag_iter = Static.register statics ~phase:"adapt.iter" ~label:"x[i] update" in
  let tag_out = Static.register statics ~phase:"adapt.out" ~label:"sum" in
  let body ctx =
    let x =
      Array.map (fun v -> Ctx.record ctx ~tag:tag_load v) [| 1.0; 2.0; 3.0; 4.0 |]
    in
    for _iter = 1 to 24 do
      for i = 0 to 3 do
        let left = x.((i + 3) mod 4) and right = x.((i + 1) mod 4) in
        x.(i) <- Ctx.record ctx ~tag:tag_iter ((x.(i) +. (0.25 *. (left +. right))) /. 1.5)
      done
    done;
    [| Ctx.record ctx ~tag:tag_out (Array.fold_left ( +. ) 0. x) |]
  in
  Program.make ~name:"adapt.drill" ~description:"damped fixed-point iteration"
    ~tolerance:0.05 ~statics body

let drill_program = make_program ()

let resolve = function
  | "adapt.drill" -> drill_program
  | name -> invalid_arg (Printf.sprintf "unknown benchmark %S" name)

let fuel = 10_000
let seed = 2021
let lease_ttl = 0.5

let config =
  {
    Adaptive.round_fraction = 0.004;
    stop_sdc_fraction = 0.95;
    max_rounds = 30;
    filter = true;
    bias = true;
  }

let model_specs : Models.spec list =
  [ { model = Models.Bit_flip_64; seed = 0 }; { model = Models.Bit_flip_32; seed = 0 } ]

let fresh_dir tag =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftb_adaptive_smoke_%s_%d" tag (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists path then rm path;
  Unix.mkdir path 0o755;
  path

let get_ok what = function
  | Ok v -> v
  | Error (e : Client.error) ->
      check what false;
      failwith
        (Printf.sprintf "%s: daemon error %s: %s" what e.Client.code e.Client.message)

let connect_with_retry sock =
  let rec go attempts =
    match Client.connect ~socket:sock with
    | client -> client
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempts > 0 ->
        ignore (Unix.select [] [] [] 0.05);
        go (attempts - 1)
  in
  go 200

let job_spec (model : Models.spec) =
  {
    (Job.default_spec ~bench:"adapt.drill") with
    Job.mode = Job.Adaptive { config; seed };
    fuel = Some fuel;
    model;
  }

(* The serial oracle for one model, plus its tallies. *)
let oracle (model : Models.spec) =
  let golden = Golden.run drill_program in
  let result, _ =
    AE.run ~config ~spec:model ~fuel ~name:"adapt.drill" ~seed golden
  in
  result

let check_entry_matches what (result : Adaptive.result) (entry : BS.entry) =
  check (what ^ ": rounds identical") (entry.BS.rounds = result.Adaptive.rounds);
  check
    (what ^ ": stop reason identical")
    (Adaptive.stop_reason_to_string entry.BS.stop
    = Adaptive.stop_reason_to_string result.Adaptive.stop_reason);
  check
    (what ^ ": sample count identical")
    (entry.BS.samples = Array.length result.Adaptive.samples);
  let sites = Boundary.sites result.Adaptive.boundary in
  let identical = ref (Array.length entry.BS.thresholds = sites) in
  for i = 0 to sites - 1 do
    if
      !identical
      && Int64.bits_of_float entry.BS.thresholds.(i)
         <> Int64.bits_of_float (Boundary.threshold result.Adaptive.boundary i)
    then identical := false
  done;
  check (what ^ ": boundary bytes identical") !identical

let stored_entry ~state_dir (model : Models.spec) =
  let store = BS.open_ ~root:(Server.boundaries_dir ~state_dir) in
  BS.find_latest store ~bench:"adapt.drill" ~spec:model ()

(* ------------------------------------------------------------------ *)
(* Part 1 + 4: daemon SIGKILL mid-round, restart, then warm resubmit.   *)

let spawn_daemon ?fleet ~state_dir sock =
  match Unix.fork () with
  | 0 ->
      let config =
        match fleet with
        | None -> { (Server.default_config ~state_dir) with Server.resolve }
        | Some fleet ->
            {
              (Server.default_config ~state_dir) with
              Server.resolve;
              extension = Some (Fleet.extension fleet);
              wave_runner = Some (Fleet.wave_runner fleet);
              round_runner = Some (Fleet.round_runner fleet);
            }
      in
      let t = Server.create config in
      (match Server.run ~socket:sock t with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 1)
  | pid -> pid

let restart_drill (model : Models.spec) =
  let what = Printf.sprintf "restart[%s]" (Models.spec_name model) in
  let reference = oracle model in
  let state_dir = fresh_dir ("restart_" ^ Models.spec_name model) in
  let sock = Filename.concat state_dir "daemon.sock" in
  let daemon = ref (spawn_daemon ~state_dir sock) in
  let client = connect_with_retry sock in
  let id = get_ok (what ^ ": submit") (Client.submit client (job_spec model)) in

  (* Kill the daemon the moment the first round has folded: the round
     checkpoint is durable before the event is streamed, so the restart
     must resume at round 2 with the same draws. *)
  let killed = ref false in
  let rounds_seen = ref 0 in
  (match
     Client.watch client id ~on_event:(function
       | Client.Round r ->
           incr rounds_seen;
           check
             (Printf.sprintf "%s: round %d tallies partition the draw" what r.round)
             (r.drawn = r.masked + r.sdc + r.crash);
           if not !killed then begin
             killed := true;
             Unix.kill !daemon Sys.sigkill
           end
       | Client.Progress _ | Client.Worker_quarantined _ -> ())
   with
  | Ok _ | Error _ -> ()
  | exception (Wire.Closed | Wire.Protocol_error _) -> ()
  | exception Unix.Unix_error _ -> ());
  (try Client.close client with _ -> ());
  check (what ^ ": daemon SIGKILLed mid-round") !killed;
  (match Unix.waitpid [] !daemon with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _, _ -> check (what ^ ": daemon died by SIGKILL") false);

  (* Restart on the same state directory: the interrupted job re-queues
     and resumes from its round checkpoint. *)
  daemon := spawn_daemon ~state_dir sock;
  let client2 = connect_with_retry sock in
  let resumed_rounds = ref 0 in
  let final =
    get_ok (what ^ ": watch after restart")
      (Client.watch client2 id ~on_event:(function
        | Client.Round _ -> incr resumed_rounds
        | Client.Progress _ | Client.Worker_quarantined _ -> ()))
  in
  check (what ^ ": job completed after restart") (final.Job.status = Job.Completed);
  check
    (what ^ ": resumed run streamed fresh rounds")
    (final.Job.status <> Job.Completed || !resumed_rounds >= 0);
  check
    (what ^ ": counts partition the samples")
    (final.Job.counts.Job.cases_done
    = final.Job.counts.Job.masked + final.Job.counts.Job.sdc + final.Job.counts.Job.crash
    );
  check
    (what ^ ": sample count matches the oracle")
    (final.Job.counts.Job.cases_done = Array.length reference.Adaptive.samples);
  (match stored_entry ~state_dir model with
  | Some entry -> check_entry_matches what reference entry
  | None -> check (what ^ ": boundary published to the store") false);

  (* Warm start: the exact resubmission is served from the store — no
     queue, no pool, no fresh samples. *)
  let id2 = get_ok (what ^ ": warm resubmit") (Client.submit client2 (job_spec model)) in
  check (what ^ ": warm resubmission is a new job") (id2 <> id);
  let warm = get_ok (what ^ ": warm watch") (Client.watch client2 id2) in
  check (what ^ ": warm job completed") (warm.Job.status = Job.Completed);
  check (what ^ ": warm job served from the store") (warm.Job.cache = Job.Cache_full);
  check
    (what ^ ": warm counts identical to the cold run")
    (warm.Job.counts = final.Job.counts);

  get_ok (what ^ ": shutdown") (Client.shutdown client2);
  (match Unix.waitpid [] !daemon with
  | _, Unix.WEXITED 0 -> check (what ^ ": restarted daemon exited cleanly") true
  | _, _ -> check (what ^ ": restarted daemon exited cleanly") false);
  Client.close client2

(* ------------------------------------------------------------------ *)
(* Part 3: fleet with one worker SIGKILLed mid-round.                   *)

let connect_fd_with_retry sock =
  let rec go attempts =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempts > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.05);
        go (attempts - 1)
  in
  go 200

let spawn_worker sock ready_w =
  match Unix.fork () with
  | 0 ->
      let signalled = ref false in
      let log _msg =
        if not !signalled then begin
          signalled := true;
          ignore (Unix.write ready_w (Bytes.make 1 'r') 0 1)
        end
      in
      let cfg =
        Worker.config ~domains:1 ~resolve ~log (fun () -> connect_fd_with_retry sock)
      in
      (match Worker.run cfg with
      | (_ : Worker.stats) -> Unix._exit 0
      | exception _ -> Unix._exit 1)
  | pid -> pid

let wait_worker_ready what ready_r =
  match Unix.select [ ready_r ] [] [] 30.0 with
  | [ _ ], _, _ ->
      ignore (Unix.read ready_r (Bytes.create 1) 0 1);
      check what true
  | _ -> check what false

let fleet_drill (model : Models.spec) =
  let what = Printf.sprintf "fleet[%s]" (Models.spec_name model) in
  let reference = oracle model in
  let state_dir = fresh_dir ("fleet_" ^ Models.spec_name model) in
  let sock = Filename.concat state_dir "daemon.sock" in
  let ready_r, ready_w = Unix.pipe () in
  let fleet = Fleet.create ~lease_ttl () in
  let daemon = spawn_daemon ~fleet ~state_dir sock in
  let w1 = spawn_worker sock ready_w in
  let w2 = spawn_worker sock ready_w in
  wait_worker_ready (what ^ ": first worker attached") ready_r;
  wait_worker_ready (what ^ ": second worker attached") ready_r;

  let client = connect_with_retry sock in
  let id = get_ok (what ^ ": submit") (Client.submit client (job_spec model)) in
  let killed = ref false in
  let rounds_seen = ref 0 in
  let final =
    get_ok (what ^ ": watch")
      (Client.watch client id ~on_event:(function
        | Client.Round _ ->
            incr rounds_seen;
            (* Kill one of two workers while rounds are still being
               leased: its abandoned lease expires and the round's cases
               re-run on the survivor (or the daemon's local oracle). *)
            if not !killed then begin
              killed := true;
              Unix.kill w1 Sys.sigkill
            end
        | Client.Progress _ | Client.Worker_quarantined _ -> ()))
  in
  check (what ^ ": worker SIGKILLed mid-round") !killed;
  if not !killed then (try Unix.kill w1 Sys.sigkill with Unix.Unix_error _ -> ());
  check (what ^ ": job completed despite worker death")
    (final.Job.status = Job.Completed);
  check (what ^ ": watch streamed round events") (!rounds_seen >= 1);
  check
    (what ^ ": sample count matches the oracle")
    (final.Job.counts.Job.cases_done = Array.length reference.Adaptive.samples);
  (match stored_entry ~state_dir model with
  | Some entry -> check_entry_matches what reference entry
  | None -> check (what ^ ": boundary published to the store") false);

  get_ok (what ^ ": shutdown") (Client.shutdown client);
  (match Unix.waitpid [] daemon with
  | _, Unix.WEXITED 0 -> check (what ^ ": daemon exited cleanly") true
  | _, _ -> check (what ^ ": daemon exited cleanly") false);
  (match Unix.waitpid [] w1 with
  | _, Unix.WSIGNALED s when s = Sys.sigkill ->
      check (what ^ ": first worker died by SIGKILL") true
  | _, _ -> check (what ^ ": first worker died by SIGKILL") false);
  (match Unix.waitpid [] w2 with
  | _, Unix.WEXITED 0 -> check (what ^ ": surviving worker exited cleanly") true
  | _, _ -> check (what ^ ": surviving worker exited cleanly") false);
  Client.close client;
  Unix.close ready_r;
  Unix.close ready_w

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let golden = Golden.run drill_program in
  Printf.printf "adaptive smoke: %d sites, %.1f%% rounds, cap %d\n%!"
    (Golden.sites golden)
    (100. *. config.Adaptive.round_fraction)
    config.Adaptive.max_rounds;
  List.iter restart_drill model_specs;
  List.iter fleet_drill model_specs;
  if !failures > 0 then begin
    Printf.printf "%d smoke check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "adaptive smoke passed"
