(* Compositional boundary analysis: fingerprint unification, the
   sectionizer's invalidation matrix, store integrity (corruption is
   quarantined, never served), model isolation (a bit-flip-32 profile
   must never serve a bit-flip-64 campaign), and checkpoint seeding
   (the engine executes only the shards the cache missed). *)

module Ir = Ftb_ir.Ir
module Pipeline = Ftb_ir.Pipeline
module Golden = Ftb_trace.Golden
module Models = Ftb_inject.Models
module Executor = Ftb_inject.Executor
module Ground_truth = Ftb_inject.Ground_truth
module Engine = Ftb_campaign.Engine
module Checkpoint = Ftb_campaign.Checkpoint
module Fingerprint = Ftb_util.Fingerprint
module Section = Ftb_compose.Section
module Profile = Ftb_compose.Profile
module Store = Ftb_compose.Store
module Compose = Ftb_compose.Compose

let fresh_dir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_store f =
  let root = fresh_dir "ftb-test-compose" in
  Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> f (Store.open_ ~root))

(* The same panel-structured kernel the compose smoke uses: one
   constant-trip top-level loop the sectionizer peels into [nb]
   sections, with an optional golden-value-preserving edit (commuted
   multiplication) confined to the first panel. *)
let panel_kernel ?(nb = 4) ?(n = 16) ?(edit_first = false) () =
  let t = Ir.create ~name:"test.panels" ~tolerance:1e-3 in
  let rng = ref 77 in
  let rand () =
    rng := (!rng * 1103515245) + 12345;
    float_of_int (!rng land 0xffff) /. 65536.
  in
  let a = Ir.array t ~name:"a" ~init:(Array.init n (fun _ -> rand ())) in
  let c = Ir.array t ~name:"c" ~init:(Array.make n 0.) in
  Ir.output_array t c;
  let kb = Ir.ireg t and i = Ir.ireg t in
  let acc = Ir.freg t in
  let open Ir in
  let idx = Iadd (Imul (Ireg kb, Iconst (n / nb)), Ireg i) in
  let straight = Fmul (Fload (a, idx), Fconst 1.5) in
  let swapped = Fmul (Fconst 1.5, Fload (a, idx)) in
  let body_at mul =
    [
      For
        ( i,
          Iconst 0,
          Iconst (n / nb),
          [
            Fassign (acc, mul, "panel.mul");
            Store (c, idx, Fadd (Freg acc, Fconst 0.25), "panel.store");
          ] );
    ]
  in
  let inner =
    if edit_first then
      [ If (Icmp (`Eq, Ireg kb, Iconst 0), body_at swapped, body_at straight) ]
    else body_at straight
  in
  Ir.set_body t [ For (kb, Iconst 0, Iconst nb, inner) ];
  t

let golden_of ir = Golden.run (Pipeline.to_program ir)
let model64 = Models.default_spec
let model32 = { Models.model = Models.Bit_flip_32; seed = 0 }
let fuel = Some 10_000_000

let plan_of ?(edit_first = false) () =
  let ir = panel_kernel ~edit_first () in
  let golden = golden_of ir in
  match Section.sectionize ~ir ~golden ~model:model64 ~fuel with
  | Some plan -> (ir, golden, plan)
  | None -> Alcotest.fail "panel kernel did not sectionize"

(* ------------------------------------------------------------------ *)
(* Fingerprint unification                                             *)

let test_fingerprint_legacy () =
  (* The golden fingerprint predates lib/util/fingerprint and is part of
     the checkpoint v2/v3 on-disk format: the unified module must
     reproduce the original MD5-over-LE-float-bits encoding exactly. *)
  let values = [| 0.0; -0.0; 1.5; Float.pi; -3.25e300; 1e-310 |] in
  let legacy =
    let b = Bytes.create (8 * Array.length values) in
    Array.iteri (fun i v -> Bytes.set_int64_le b (i * 8) (Int64.bits_of_float v)) values;
    Digest.to_hex (Digest.bytes b)
  in
  Alcotest.(check string) "of_floats matches the legacy encoding" legacy
    (Fingerprint.of_floats values);
  let golden = golden_of (panel_kernel ()) in
  Alcotest.(check string) "checkpoint golden fingerprint goes through the module"
    (Fingerprint.of_floats golden.Golden.values)
    (Checkpoint.fingerprint_of_golden golden)

let test_fingerprint_is_hex () =
  Alcotest.(check bool) "a fingerprint is hex" true
    (Fingerprint.is_hex (Fingerprint.of_string "x"));
  Alcotest.(check bool) "length matters" false (Fingerprint.is_hex "abc123");
  Alcotest.(check bool) "uppercase rejected" false
    (Fingerprint.is_hex (String.uppercase_ascii (Fingerprint.of_string "x")));
  Alcotest.(check int) "hex_length is the digest length" Fingerprint.hex_length
    (String.length (Fingerprint.of_string "x"))

(* ------------------------------------------------------------------ *)
(* Sectionizer + invalidation matrix                                   *)

let test_sectionize_shape () =
  let _, golden, plan = plan_of () in
  Alcotest.(check int) "peels into nb sections" 4 (Array.length plan.Section.sections);
  Alcotest.(check int) "covers every site" (Golden.sites golden)
    (Array.fold_left
       (fun acc s -> acc + (s.Section.site_hi - s.Section.site_lo))
       0 plan.Section.sections);
  Array.iteri
    (fun j s ->
      if j > 0 then
        Alcotest.(check int)
          (Printf.sprintf "section %d starts where %d ends" j (j - 1))
          plan.Section.sections.(j - 1).Section.site_hi s.Section.site_lo)
    plan.Section.sections;
  let keys = Array.to_list plan.Section.sections |> List.map (fun s -> s.Section.key) in
  Alcotest.(check int) "section keys are distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_keys_deterministic () =
  let _, _, p1 = plan_of () in
  let _, _, p2 = plan_of () in
  Array.iteri
    (fun j (s : Section.section) ->
      Alcotest.(check string)
        (Printf.sprintf "section %d key stable across builds" j)
        s.Section.key
        p2.Section.sections.(j).Section.key)
    p1.Section.sections;
  let key ir = Section.boundary_key ~ir ~model:model64 ~fuel in
  Alcotest.(check string) "boundary key stable across builds"
    (key (panel_kernel ()))
    (key (panel_kernel ()))

let test_edit_invalidates_only_first () =
  (* The invalidation matrix: a golden-preserving edit confined to the
     first peeled section must change exactly that section's key (later
     suffix texts and entry states are untouched) — so a resubmission
     re-executes one section and reuses the rest. *)
  let _, golden_base, base = plan_of () in
  let _, golden_edit, edited = plan_of ~edit_first:true () in
  Alcotest.(check string) "edit preserves the golden fingerprint"
    (Checkpoint.fingerprint_of_golden golden_base)
    (Checkpoint.fingerprint_of_golden golden_edit);
  Alcotest.(check bool) "section 0 key changes" false
    (base.Section.sections.(0).Section.key = edited.Section.sections.(0).Section.key);
  for j = 1 to 3 do
    Alcotest.(check string)
      (Printf.sprintf "section %d key survives the edit" j)
      base.Section.sections.(j).Section.key
      edited.Section.sections.(j).Section.key
  done;
  Alcotest.(check bool) "boundary key changes" false
    (Section.boundary_key ~ir:(panel_kernel ()) ~model:model64 ~fuel
    = Section.boundary_key ~ir:(panel_kernel ~edit_first:true ()) ~model:model64 ~fuel)

let test_model_changes_keys () =
  let ir = panel_kernel () in
  let golden = golden_of ir in
  match
    ( Section.sectionize ~ir ~golden ~model:model64 ~fuel,
      Section.sectionize ~ir ~golden ~model:model32 ~fuel )
  with
  | Some p64, Some p32 ->
      Array.iteri
        (fun j (s : Section.section) ->
          Alcotest.(check bool)
            (Printf.sprintf "section %d key depends on the model" j)
            false
            (s.Section.key = p32.Section.sections.(j).Section.key))
        p64.Section.sections
  | _ -> Alcotest.fail "kernel did not sectionize under both models"

(* ------------------------------------------------------------------ *)
(* Store: round-trip, corruption quarantine                            *)

let test_store_roundtrip () =
  with_store (fun store ->
      let section =
        Profile.Section
          {
            Profile.key = Fingerprint.of_string "section";
            model = Models.spec_to_string model64;
            width = 64;
            site_lo = 3;
            sites = 2;
            entry_fp = Fingerprint.of_string "entry";
            exit_fp = Fingerprint.of_string "exit";
            prov = Profile.prov_local;
            outcomes = String.init 128 (fun i -> Char.chr (i mod 6));
          }
      in
      Store.put store section;
      Alcotest.(check bool) "section round-trips" true
        (Store.find store ~key:(Profile.key section) = Some section);
      let stats = Store.stats store in
      Alcotest.(check int) "one entry" 1 stats.Store.entries;
      Alcotest.(check int) "classified as a section" 1 stats.Store.sections;
      Alcotest.(check int) "nothing quarantined" 0 stats.Store.quarantined;
      Alcotest.(check bool) "unknown key misses" true
        (Store.find store ~key:(Fingerprint.of_string "other") = None))

let test_store_corruption_quarantined () =
  with_store (fun store ->
      let key = Fingerprint.of_string "victim" in
      Store.put store
        (Profile.Section
           {
             Profile.key;
             model = Models.spec_to_string model64;
             width = 64;
             site_lo = 0;
             sites = 1;
             entry_fp = Fingerprint.of_string "entry";
             exit_fp = Fingerprint.of_string "exit";
             prov = Profile.prov_local;
             outcomes = String.make 64 '\001';
           });
      (* Flip one payload byte under the CRC32 envelope. *)
      let path = Store.path_of_key store key in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      let b = Bytes.of_string raw in
      Bytes.set b (len / 2) (Char.chr (Char.code (Bytes.get b (len / 2)) lxor 0x41));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      Alcotest.(check bool) "corrupt entry reads as a miss" true
        (Store.find store ~key = None);
      Alcotest.(check bool) "corrupt file left the namespace" false
        (Sys.file_exists path);
      let stats = Store.stats store in
      Alcotest.(check int) "corrupt entry was quarantined" 1 stats.Store.quarantined;
      Alcotest.(check int) "no live entries remain" 0 stats.Store.entries)

(* ------------------------------------------------------------------ *)
(* Model isolation and reduced campaigns                               *)

let test_model_mismatch_never_serves () =
  with_store (fun store ->
      let ir = panel_kernel () in
      let golden = golden_of ir in
      let r32 = Compose.run ?fuel ~model:model32 store ~ir golden in
      Alcotest.(check bool) "bit-flip-32 cold run populates the store" true
        (r32.Compose.provenance = Compose.Cold);
      (match Compose.probe store ~ir ~golden ~model:model64 ~fuel with
      | Some p ->
          Alcotest.(check int) "bit-flip-32 profiles never serve bit-flip-64" 0
            p.Compose.hit_sections
      | None -> Alcotest.fail "kernel did not sectionize");
      Alcotest.(check bool) "no boundary hit across models" true
        (Compose.probe_boundary store ~ir ~model:model64 ~fuel = None);
      (* And the composed bit-flip-64 campaign, run cold next to the
         32-bit profiles, stays byte-identical to direct. *)
      let direct = Executor.ground_truth_model model64 golden in
      let r64 = Compose.run ?fuel ~model:model64 store ~ir golden in
      Alcotest.(check bool) "cold bit-flip-64 bytes = direct" true
        (Bytes.equal r64.Compose.outcomes direct.Ground_truth.outcomes))

let test_seeded_checkpoint_reduces_engine_work () =
  with_store (fun store ->
      let ir = panel_kernel () in
      let golden = golden_of ir in
      let shard_size = 128 in
      ignore (Compose.run ?fuel store ~ir golden : Compose.report);
      (* Drop one interior section's profile, then seed a checkpoint from
         the remaining hits: the engine must resume the covered shards
         and execute only the invalidated section's. *)
      let _, _, plan = plan_of () in
      let victim = plan.Section.sections.(2) in
      Alcotest.(check int) "invalidate drops exactly one entry" 1
        (Store.invalidate store ~prefix:victim.Section.key);
      let planned =
        match Compose.probe store ~ir ~golden ~model:model64 ~fuel with
        | Some p -> p
        | None -> Alcotest.fail "kernel did not sectionize"
      in
      Alcotest.(check int) "exactly one section misses" 1 planned.Compose.miss_sections;
      let dir = fresh_dir "ftb-test-compose-ckpt" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let checkpoint = Filename.concat dir "checkpoint" in
          Checkpoint.save ~path:checkpoint
            (Compose.seed_checkpoint planned golden ~shard_size);
          let config =
            {
              Engine.default_config with
              Engine.shard_size;
              model = model64;
              fuel;
              resume = true;
              on_invalid_checkpoint = Engine.Restart;
            }
          in
          let report = Engine.run ~config ~checkpoint golden in
          let section_shards =
            (victim.Section.site_hi - victim.Section.site_lo)
            * planned.Compose.plan.Section.width / shard_size
          in
          Alcotest.(check int) "engine executed only the missed section's shards"
            section_shards report.Engine.executed_shards;
          Alcotest.(check int) "every other shard resumed from the seed"
            (report.Engine.total_shards - section_shards)
            report.Engine.resumed_shards;
          let direct = Executor.ground_truth_model model64 golden in
          Alcotest.(check bool) "reduced campaign bytes = direct" true
            (Bytes.equal report.Engine.ground_truth.Ground_truth.outcomes
               direct.Ground_truth.outcomes)))

(* ------------------------------------------------------------------ *)
(* Provenance: token lattice, v2 round-trip, v1 back-compat, purge.    *)

let test_provenance_tokens () =
  Alcotest.(check string) "local token" "local" Profile.prov_local;
  Alcotest.(check string) "audited fleet token" "fleet:audited:a,b"
    (Profile.prov_fleet ~audited:true ~workers:[ "a"; "b" ]);
  Alcotest.(check string) "unaudited fleet token" "fleet:unaudited:a"
    (Profile.prov_fleet ~audited:false ~workers:[ "a" ]);
  Alcotest.(check string) "no workers degenerates to local" Profile.prov_local
    (Profile.prov_fleet ~audited:true ~workers:[]);
  Alcotest.(check bool) "names with separators refused" true
    (match Profile.prov_fleet ~audited:true ~workers:[ "a:b" ] with
    | (_ : string) -> false
    | exception Invalid_argument _ -> true);
  (* The trust lattice: local > fleet:audited > fleet:unaudited. *)
  Alcotest.(check bool) "local trusted" true (Profile.prov_trusted Profile.prov_local);
  Alcotest.(check bool) "audited fleet trusted" true
    (Profile.prov_trusted (Profile.prov_fleet ~audited:true ~workers:[ "a" ]));
  Alcotest.(check bool) "unaudited fleet untrusted" false
    (Profile.prov_trusted (Profile.prov_fleet ~audited:false ~workers:[ "a" ]));
  Alcotest.(check (list string)) "workers recoverable" [ "a"; "b" ]
    (Profile.prov_workers (Profile.prov_fleet ~audited:true ~workers:[ "a"; "b" ]));
  Alcotest.(check (list string)) "local names no workers" []
    (Profile.prov_workers Profile.prov_local);
  Alcotest.(check bool) "garbage token invalid" false (Profile.prov_valid "fleet:maybe:a")

let fleet_section ~key ~prov =
  Profile.Section
    {
      Profile.key = Fingerprint.of_string key;
      model = Models.spec_to_string model64;
      width = 64;
      site_lo = 0;
      sites = 1;
      entry_fp = Fingerprint.of_string "entry";
      exit_fp = Fingerprint.of_string "exit";
      prov;
      outcomes = String.make 64 '\001';
    }

let test_provenance_roundtrip_and_purge () =
  with_store (fun store ->
      let audited =
        fleet_section ~key:"aud" ~prov:(Profile.prov_fleet ~audited:true ~workers:[ "w1"; "w2" ])
      in
      let unaudited =
        fleet_section ~key:"unaud" ~prov:(Profile.prov_fleet ~audited:false ~workers:[ "w2" ])
      in
      let local = fleet_section ~key:"loc" ~prov:Profile.prov_local in
      List.iter (Store.put store) [ audited; unaudited; local ];
      Alcotest.(check bool) "fleet provenance round-trips" true
        (Store.find store ~key:(Profile.key audited) = Some audited);
      let stats = Store.stats store in
      Alcotest.(check int) "three entries" 3 stats.Store.entries;
      Alcotest.(check int) "only the unaudited one counts as untrusted" 1
        stats.Store.unaudited;
      (* Purging a worker takes every profile it touched — audited ones
         included (blast radius is the operator's call) — and no others. *)
      Alcotest.(check int) "purge by worker removes both w2 entries" 2
        (Store.invalidate_worker store ~worker:"w2");
      Alcotest.(check bool) "local entry untouched" true
        (Store.find store ~key:(Profile.key local) = Some local);
      Alcotest.(check int) "purge of an unknown worker is a no-op" 0
        (Store.invalidate_worker store ~worker:"w1"))

let test_legacy_v1_parses_as_local () =
  let body = String.make 64 '\001' in
  let header =
    Printf.sprintf "ftb-section-profile-v1 %s %s 64 0 1 %s %s"
      (Fingerprint.of_string "legacy")
      (Models.spec_to_string model64)
      (Fingerprint.of_string "entry") (Fingerprint.of_string "exit")
  in
  (match Profile.parse ~path:"legacy-section" (header ^ "\n" ^ body) with
  | Profile.Section s ->
      Alcotest.(check string) "v1 section parses with local provenance"
        Profile.prov_local s.Profile.prov
  | Profile.Boundary _ -> Alcotest.fail "v1 section parsed as a boundary");
  let bheader =
    Printf.sprintf "ftb-boundary-profile-v1 %s %s 64 1 %s 0 64 0"
      (Fingerprint.of_string "legacyb")
      (Models.spec_to_string model64)
      (Fingerprint.of_string "golden")
  in
  match Profile.parse ~path:"legacy-boundary" (bheader ^ "\n" ^ body) with
  | Profile.Boundary b ->
      Alcotest.(check string) "v1 boundary parses with local provenance"
        Profile.prov_local b.Profile.bprov
  | Profile.Section _ -> Alcotest.fail "v1 boundary parsed as a section"

let suite =
  [
    Alcotest.test_case "fingerprint matches legacy encoding" `Quick
      test_fingerprint_legacy;
    Alcotest.test_case "fingerprint hex predicate" `Quick test_fingerprint_is_hex;
    Alcotest.test_case "sectionizer shape" `Quick test_sectionize_shape;
    Alcotest.test_case "keys deterministic" `Quick test_keys_deterministic;
    Alcotest.test_case "edit invalidates only its section" `Quick
      test_edit_invalidates_only_first;
    Alcotest.test_case "model is part of the key" `Quick test_model_changes_keys;
    Alcotest.test_case "store round-trip" `Quick test_store_roundtrip;
    Alcotest.test_case "corruption is quarantined" `Quick
      test_store_corruption_quarantined;
    Alcotest.test_case "model mismatch never serves" `Quick
      test_model_mismatch_never_serves;
    Alcotest.test_case "seeded checkpoint reduces engine work" `Quick
      test_seeded_checkpoint_reduces_engine_work;
    Alcotest.test_case "provenance token lattice" `Quick test_provenance_tokens;
    Alcotest.test_case "provenance round-trip and purge" `Quick
      test_provenance_roundtrip_and_purge;
    Alcotest.test_case "v1 profiles parse with local provenance" `Quick
      test_legacy_v1_parses_as_local;
  ]
