(* Shared test fixtures: tiny instrumented programs with hand-checkable
   error behaviour, and float assertion helpers. *)

module Ctx = Ftb_trace.Ctx
module Static = Ftb_trace.Static
module Program = Ftb_trace.Program

let close ?(eps = 1e-9) () = Alcotest.float eps

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

(* Linear chain: records the 4 inputs and 3 partial sums; output is the
   total. An error of magnitude e injected at any site shifts the output by
   exactly e, so every site's true fault-tolerance threshold is the
   program's tolerance. 7 dynamic instructions. *)
let linear_inputs = [| 1.0; 2.0; 3.0; 4.0 |]

let linear_program ?(tolerance = 0.5) () =
  let statics = Static.create_table () in
  let tag_load = Static.register statics ~phase:"linear.load" ~label:"x[i]" in
  let tag_sum = Static.register statics ~phase:"linear.sum" ~label:"s += x[i]" in
  let body ctx =
    let x = Array.map (fun v -> Ctx.record ctx ~tag:tag_load v) linear_inputs in
    let s1 = Ctx.record ctx ~tag:tag_sum (x.(0) +. x.(1)) in
    let s2 = Ctx.record ctx ~tag:tag_sum (s1 +. x.(2)) in
    let s3 = Ctx.record ctx ~tag:tag_sum (s2 +. x.(3)) in
    [| s3 |]
  in
  Program.make ~name:"linear" ~description:"4-term sum, unit error gain" ~tolerance
    ~statics body

let linear_sites = 7

(* Non-monotonic toy: output is y = x*(x-2)/2 evaluated at x = 2, so the
   golden output is 0 and an error d at x produces |d*(2+d)|/2 at the
   output. Bit flips of 2.0 include x' ~ 0 (top exponent bit cleared,
   injected error ~2, output error ~0: masked) while the top mantissa bit
   gives x' = 2.5 (injected error 0.5, output error 0.625: SDC) — a site
   where a larger error is masked while a smaller one corrupts. *)
let nonmonotonic_program ?(tolerance = 0.5) () =
  let statics = Static.create_table () in
  let tag_x = Static.register statics ~phase:"nm.load" ~label:"x" in
  let tag_y = Static.register statics ~phase:"nm.eval" ~label:"y = x*(x-2)/2" in
  let body ctx =
    let x = Ctx.record ctx ~tag:tag_x 2. in
    let y = Ctx.record ctx ~tag:tag_y (x *. (x -. 2.) /. 2.) in
    [| y |]
  in
  Program.make ~name:"nonmonotonic" ~description:"x*(x-2)/2 at x=2" ~tolerance ~statics body

(* Branching toy: control flow depends on the recorded value, so a large
   injected error makes the faulty run execute a different static
   instruction sequence (divergence). *)
let branching_program ?(tolerance = 10.) () =
  let statics = Static.create_table () in
  let tag_x = Static.register statics ~phase:"br.load" ~label:"x" in
  let tag_small = Static.register statics ~phase:"br.small" ~label:"y = x + 1" in
  let tag_big = Static.register statics ~phase:"br.big" ~label:"y = x * 2" in
  let tag_out = Static.register statics ~phase:"br.out" ~label:"out" in
  let body ctx =
    let x = Ctx.record ctx ~tag:tag_x 1. in
    let y =
      if x < 100. then Ctx.record ctx ~tag:tag_small (x +. 1.)
      else Ctx.record ctx ~tag:tag_big (x *. 2.)
    in
    [| Ctx.record ctx ~tag:tag_out y |]
  in
  Program.make ~name:"branching" ~description:"data-dependent branch" ~tolerance ~statics
    body

(* A crashing toy: guards its single value, so any flip to a non-finite
   value crashes. *)
let guarded_program ?(tolerance = 0.5) () =
  let statics = Static.create_table () in
  let tag_x = Static.register statics ~phase:"g.load" ~label:"x" in
  let body ctx =
    let x = Ctx.record ctx ~tag:tag_x 1.5 in
    let x = Ctx.guard_finite ctx "g.check" x in
    [| x |]
  in
  Program.make ~name:"guarded" ~description:"guarded single value" ~tolerance ~statics body

(* Diverging toy: multiplies x by a recorded factor until it drops below 1.
   The golden factor 0.5 converges in 7 iterations, but flips of the factor
   (e.g. bit 52: 0.5 -> 1.0, or bit 62: 0.5 -> huge -> x saturates at +inf)
   keep [x >= 1.] true forever — the loop only terminates under a fuel
   watchdog. Never run its campaign without [~fuel]. *)
let diverging_program ?(tolerance = 0.5) () =
  let statics = Static.create_table () in
  let tag_f = Static.register statics ~phase:"div.load" ~label:"factor" in
  let tag_x = Static.register statics ~phase:"div.iter" ~label:"x *= factor" in
  let body ctx =
    let factor = Ctx.record ctx ~tag:tag_f 0.5 in
    let x = ref 100. in
    while !x >= 1. do
      x := Ctx.record ctx ~tag:tag_x (!x *. factor)
    done;
    [| !x |]
  in
  Program.make ~name:"diverging" ~description:"loop until convergence" ~tolerance ~statics
    body

let qcheck_to_alcotest = QCheck_alcotest.to_alcotest
