(* Campaign smoke test (dune alias @campaign-smoke).

   End-to-end drill of the resumable engine against the serial ground
   truth: run a tiny campaign with checkpointing, kill it mid-way, resume,
   and require the resumed result to be bit-identical to an uninterrupted
   serial campaign — then repeat the resume after truncating the
   checkpoint file, which must be rejected and restarted cleanly. *)

module Ctx = Ftb_trace.Ctx
module Static = Ftb_trace.Static
module Program = Ftb_trace.Program
module Golden = Ftb_trace.Golden
module Ground_truth = Ftb_inject.Ground_truth
module Checkpoint = Ftb_campaign.Checkpoint
module Engine = Ftb_campaign.Engine

let failures = ref 0

let check what ok =
  if ok then Printf.printf "ok    %s\n" what
  else begin
    incr failures;
    Printf.printf "FAIL  %s\n" what
  end

(* A miniature iterative kernel: damped fixed-point iteration on a 4-vector,
   a few dozen dynamic instructions — big enough for several shards, small
   enough that the whole smoke test is instant. *)
let program =
  let statics = Static.create_table () in
  let tag_load = Static.register statics ~phase:"smoke.load" ~label:"x[i]" in
  let tag_iter = Static.register statics ~phase:"smoke.iter" ~label:"x[i] update" in
  let tag_out = Static.register statics ~phase:"smoke.out" ~label:"sum" in
  let body ctx =
    let x =
      Array.map (fun v -> Ctx.record ctx ~tag:tag_load v) [| 1.0; 2.0; 3.0; 4.0 |]
    in
    for _iter = 1 to 6 do
      for i = 0 to 3 do
        let left = x.((i + 3) mod 4) and right = x.((i + 1) mod 4) in
        x.(i) <- Ctx.record ctx ~tag:tag_iter ((x.(i) +. (0.25 *. (left +. right))) /. 1.5)
      done
    done;
    [| Ctx.record ctx ~tag:tag_out (Array.fold_left ( +. ) 0. x) |]
  in
  Program.make ~name:"smoke" ~description:"damped fixed-point iteration" ~tolerance:0.05
    ~statics body

exception Killed

let () =
  let golden = Golden.run program in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftb_campaign_smoke_%d.ckpt" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let shard_size = 64 in
  let config = { Engine.default_config with Engine.shard_size; fuel = Some 10_000 } in
  Printf.printf "campaign smoke: %d sites, %d cases, shard size %d\n"
    (Golden.sites golden) (Golden.cases golden) shard_size;

  (* The uninterrupted serial reference. *)
  let reference = Ground_truth.run ~fuel:10_000 golden in

  (* 1. Run with checkpoints and kill the campaign after the second one. *)
  let kill_config =
    {
      config with
      Engine.on_checkpoint =
        (let written = ref 0 in
         Some
           (fun ~shards_done:_ ~shards_total:_ ->
             incr written;
             if !written = 2 then raise Killed));
    }
  in
  (match Engine.run ~config:kill_config ~checkpoint:path golden with
  | _ -> check "campaign killed mid-way" false
  | exception Killed -> check "campaign killed mid-way" true);
  let partial = Checkpoint.load ~path ~shard_size golden in
  check "checkpoint holds a strict subset of shards"
    (Checkpoint.completed_count partial > 0 && not (Checkpoint.is_complete partial));

  (* 2. Resume and compare against the uninterrupted serial ground truth. *)
  let resumed = Engine.run ~config ~checkpoint:path golden in
  check "resume skipped completed shards" (resumed.Engine.resumed_shards > 0);
  check "resumed campaign bit-identical to serial ground truth"
    (Bytes.equal reference.Ground_truth.outcomes
       resumed.Engine.ground_truth.Ground_truth.outcomes);

  (* 3. Truncate the checkpoint mid-file: the loader must reject it, and the
     engine (told to restart on invalid checkpoints) must still converge to
     the exact same result. *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size / 2);
  Unix.close fd;
  (match Checkpoint.load ~path ~shard_size golden with
  | _ -> check "truncated checkpoint rejected" false
  | exception Ftb_inject.Persist.Format_error _ ->
      check "truncated checkpoint rejected" true);
  let restarted =
    Engine.run
      ~config:{ config with Engine.on_invalid_checkpoint = Engine.Restart }
      ~checkpoint:path golden
  in
  check "restart after truncation bit-identical to serial ground truth"
    (Bytes.equal reference.Ground_truth.outcomes
       restarted.Engine.ground_truth.Ground_truth.outcomes);

  (* 4. The parallel path agrees too. *)
  let parallel =
    Engine.run ~config:{ config with Engine.domains = 2; resume = false } golden
  in
  check "parallel campaign bit-identical to serial ground truth"
    (Bytes.equal reference.Ground_truth.outcomes
       parallel.Engine.ground_truth.Ground_truth.outcomes);

  if Sys.file_exists path then Sys.remove path;
  if !failures > 0 then begin
    Printf.printf "%d smoke check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "campaign smoke passed"
