(* Model smoke test (dune alias @model-smoke).

   End-to-end byte-identity per fault model, across every execution path
   a campaign can take:

   1. Serial engine: a checkpointed [Engine.run] under the model must
      reproduce the direct [Executor.ground_truth_model] bytes.
   2. Daemon kill + restart + resume: a daemon running the model's
      campaign is SIGKILLed at a shard-wave boundary and restarted; the
      resumed job must converge to the same bytes. For the stochastic
      model this is the checkpoint-resumability guarantee: the per-case
      RNG derivation makes the restart invisible in the outcome bytes.
   3. Fleet worker kill + re-lease: two worker processes serve leases for
      the model's campaign and one is SIGKILLed mid-flight; the abandoned
      lease expires, the shard is re-leased, and the finished job must
      still be bit-identical — corruption values cannot depend on which
      worker (or which attempt) executed a case.

   All reference campaigns run with [domains:1] before anything forks, so
   no domain pool ever crosses a fork(). *)

module Ctx = Ftb_trace.Ctx
module Static = Ftb_trace.Static
module Program = Ftb_trace.Program
module Golden = Ftb_trace.Golden
module Ground_truth = Ftb_inject.Ground_truth
module Models = Ftb_inject.Models
module Executor = Ftb_inject.Executor
module Checkpoint = Ftb_campaign.Checkpoint
module Engine = Ftb_campaign.Engine
module Job = Ftb_service.Job
module Client = Ftb_service.Client
module Server = Ftb_service.Server
module Fleet = Ftb_dist.Fleet
module Worker = Ftb_dist.Worker

let failures = ref 0

let check what ok =
  if ok then Printf.printf "ok    %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL  %s\n%!" what
  end

(* The same damped fixed-point family as the other smokes: small enough
   that one campaign per model per path stays fast, big enough that a
   SIGKILL at wave 2 lands mid-campaign for every model width. *)
let program =
  let statics = Static.create_table () in
  let tag_load = Static.register statics ~phase:"model.load" ~label:"x[i]" in
  let tag_iter = Static.register statics ~phase:"model.iter" ~label:"x[i] update" in
  let tag_out = Static.register statics ~phase:"model.out" ~label:"sum" in
  let body ctx =
    let x =
      Array.map (fun v -> Ctx.record ctx ~tag:tag_load v) [| 1.0; 2.0; 3.0; 4.0 |]
    in
    for _iter = 1 to 12 do
      for i = 0 to 3 do
        let left = x.((i + 3) mod 4) and right = x.((i + 1) mod 4) in
        x.(i) <- Ctx.record ctx ~tag:tag_iter ((x.(i) +. (0.25 *. (left +. right))) /. 1.5)
      done
    done;
    [| Ctx.record ctx ~tag:tag_out (Array.fold_left ( +. ) 0. x) |]
  in
  Program.make ~name:"model.bench" ~description:"damped fixed-point iteration"
    ~tolerance:0.05 ~statics body

let resolve = function
  | "model.bench" -> program
  | name -> invalid_arg (Printf.sprintf "unknown benchmark %S" name)

let fuel = 10_000
let shard_size = 32
let lease_ttl = 0.5

(* One spec per model constructor, stochastic one with a non-zero seed so
   the seed actually travels through descriptors, checkpoints and
   grants. *)
let specs : Models.spec list =
  [
    Models.default_spec;
    { model = Models.Bit_flip_32; seed = 0 };
    { model = Models.Adjacent_burst_2; seed = 0 };
    { model = Models.Random_value { lo = -50.; hi = 50. }; seed = 7 };
  ]

let fresh_dir tag =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftb_model_smoke_%s_%d" tag (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists path then rm path;
  Unix.mkdir path 0o755;
  path

let get_ok what = function
  | Ok v -> v
  | Error (e : Client.error) ->
      check what false;
      failwith (Printf.sprintf "%s: daemon error %s: %s" what e.Client.code e.Client.message)

let connect_with_retry sock =
  let rec go attempts =
    match Client.connect ~socket:sock with
    | client -> client
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempts > 0 ->
        ignore (Unix.select [] [] [] 0.05);
        go (attempts - 1)
  in
  go 200

let connect_fd_with_retry sock =
  let rec go attempts =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempts > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.05);
        go (attempts - 1)
  in
  go 200

(* ------------------------------------------------------------------ *)
(* Path 1: serial engine with checkpoints.                              *)

let serial_test golden references =
  List.iter2
    (fun (spec : Models.spec) (reference : Ground_truth.t) ->
      let what = Models.spec_name spec in
      let dir = fresh_dir "serial" in
      let path = Filename.concat dir "ckpt" in
      let config =
        { Engine.default_config with Engine.shard_size; fuel = Some fuel; model = spec }
      in
      let report = Engine.run ~config ~checkpoint:path golden in
      check (what ^ ": serial engine bit-identical to direct campaign")
        (Bytes.equal reference.Ground_truth.outcomes
           report.Engine.ground_truth.Ground_truth.outcomes);
      Sys.remove path;
      Unix.rmdir dir)
    specs references

(* ------------------------------------------------------------------ *)
(* Path 2: daemon SIGKILL at a wave boundary, restart, resume.          *)

let spawn_daemon config sock =
  match Unix.fork () with
  | 0 ->
      (match Server.run ~socket:sock (Server.create config) with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 1)
  | pid -> pid

let daemon_test golden (spec : Models.spec) (reference : Ground_truth.t) =
  let what = Models.spec_name spec in
  let state_dir = fresh_dir "daemon" in
  let sock = Filename.concat state_dir "daemon.sock" in
  let config =
    {
      (Server.default_config ~state_dir) with
      Server.domains = 2;
      checkpoint_every = 1;
      resolve;
    }
  in
  let job_spec =
    { (Job.default_spec ~bench:"model.bench") with
      Job.shard_size;
      fuel = Some fuel;
      model = spec;
    }
  in
  let pid = ref (spawn_daemon config sock) in
  let client = connect_with_retry sock in
  let id = get_ok (what ^ ": submit") (Client.submit client job_spec) in
  let killed = ref false in
  (match
     Client.watch client id ~on_event:(function
       | Client.Progress { shards_done; cases_done; cases_total; _ } ->
           if (not !killed) && shards_done >= 2 && (cases_total = 0 || cases_done < cases_total)
           then begin
             killed := true;
             Unix.kill !pid Sys.sigkill
           end
       | Client.Round _ | Client.Worker_quarantined _ -> ())
   with
  | Ok _ | Error _ -> ()
  | exception _ -> ());
  (try Client.close client with _ -> ());
  check (what ^ ": daemon killed mid-campaign") !killed;
  if !killed then begin
    ignore (Unix.waitpid [] !pid);
    pid := spawn_daemon config sock
  end;
  let client2 = connect_with_retry sock in
  let final = get_ok (what ^ ": watch after restart") (Client.watch client2 id) in
  check (what ^ ": job completed after restart") (final.Job.status = Job.Completed);
  (match
     Checkpoint.load ~model:spec
       ~path:(Job.checkpoint_path ~state_dir id)
       ~shard_size golden
   with
  | state ->
      check (what ^ ": resumed daemon bytes bit-identical to direct campaign")
        (Checkpoint.is_complete state
        && Bytes.equal reference.Ground_truth.outcomes state.Checkpoint.outcomes)
  | exception _ ->
      check (what ^ ": resumed daemon bytes bit-identical to direct campaign") false);
  get_ok (what ^ ": daemon shutdown") (Client.shutdown client2);
  (try Client.close client2 with _ -> ());
  match Unix.waitpid [] !pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> check (what ^ ": daemon exited cleanly") false

(* ------------------------------------------------------------------ *)
(* Path 3: fleet worker SIGKILL mid-lease, shard re-leased.             *)

let spawn_worker sock ready_w =
  match Unix.fork () with
  | 0 ->
      let signalled = ref false in
      let log _msg =
        if not !signalled then begin
          signalled := true;
          ignore (Unix.write ready_w (Bytes.make 1 'r') 0 1)
        end
      in
      let cfg =
        Worker.config ~domains:1 ~resolve ~log (fun () -> connect_fd_with_retry sock)
      in
      (match Worker.run cfg with
      | (_ : Worker.stats) -> Unix._exit 0
      | exception _ -> Unix._exit 1)
  | pid -> pid

let wait_worker_ready what ready_r =
  match Unix.select [ ready_r ] [] [] 30.0 with
  | [ _ ], _, _ ->
      ignore (Unix.read ready_r (Bytes.create 1) 0 1);
      check what true
  | _ -> check what false

let fleet_test golden references =
  let state_dir = fresh_dir "fleet" in
  let sock = Filename.concat state_dir "daemon.sock" in
  let ready_r, ready_w = Unix.pipe () in
  let daemon =
    match Unix.fork () with
    | 0 ->
        let fleet = Fleet.create ~lease_ttl () in
        let config =
          {
            (Server.default_config ~state_dir) with
            Server.domains = 1;
            resolve;
            extension = Some (Fleet.extension fleet);
            wave_runner = Some (Fleet.wave_runner fleet);
          }
        in
        (match Server.run ~socket:sock (Server.create config) with
        | () -> Unix._exit 0
        | exception _ -> Unix._exit 1)
    | pid -> pid
  in
  let client = connect_with_retry sock in
  (* Per model: make sure two workers are attached, then SIGKILL one of
     them mid-campaign; the survivor (plus, at worst, the daemon's local
     executor) must finish the job with the reference bytes. A fresh
     worker replaces the victim before the next model runs. *)
  let workers = ref [] in
  let spawn_two () =
    while List.length !workers < 2 do
      let w = spawn_worker sock ready_w in
      wait_worker_ready "worker attached" ready_r;
      workers := w :: !workers
    done
  in
  List.iter2
    (fun (spec : Models.spec) (reference : Ground_truth.t) ->
      let what = Models.spec_name spec in
      spawn_two ();
      let victim, rest =
        match !workers with v :: rest -> (v, rest) | [] -> assert false
      in
      let job_spec =
        { (Job.default_spec ~bench:"model.bench") with
          Job.shard_size;
          fuel = Some fuel;
          model = spec;
        }
      in
      let id = get_ok (what ^ ": submit") (Client.submit client job_spec) in
      let killed = ref false in
      let final =
        get_ok (what ^ ": watch")
          (Client.watch client id ~on_event:(function
             | Client.Progress { shards_done; cases_done; cases_total; _ } ->
                 if (not !killed) && shards_done >= 2 && cases_done < cases_total then begin
                   killed := true;
                   Unix.kill victim Sys.sigkill
                 end
             | Client.Round _ | Client.Worker_quarantined _ -> ()))
      in
      check (what ^ ": worker killed mid-campaign") !killed;
      if not !killed then (try Unix.kill victim Sys.sigkill with Unix.Unix_error _ -> ());
      (match Unix.waitpid [] victim with
      | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
      | _, _ -> check (what ^ ": victim died by SIGKILL") false);
      workers := rest;
      check (what ^ ": job completed despite worker death")
        (final.Job.status = Job.Completed);
      (match
         Checkpoint.load ~model:spec
           ~path:(Job.checkpoint_path ~state_dir id)
           ~shard_size golden
       with
      | state ->
          check (what ^ ": re-leased fleet bytes bit-identical to direct campaign")
            (Checkpoint.is_complete state
            && Bytes.equal reference.Ground_truth.outcomes state.Checkpoint.outcomes)
      | exception _ ->
          check (what ^ ": re-leased fleet bytes bit-identical to direct campaign")
            false))
    specs references;
  get_ok "fleet daemon shutdown" (Client.shutdown client);
  (try Client.close client with _ -> ());
  (match Unix.waitpid [] daemon with
  | _, Unix.WEXITED 0 -> check "fleet daemon exited cleanly" true
  | _, _ -> check "fleet daemon exited cleanly" false);
  List.iter (fun w -> ignore (Unix.waitpid [] w)) !workers;
  Unix.close ready_r;
  Unix.close ready_w

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let golden = Golden.run program in
  Printf.printf "model smoke: %d sites, models:%s\n%!" (Golden.sites golden)
    (String.concat ""
       (List.map (fun s -> " " ^ Models.spec_to_string s) specs));
  (* All references are serial ([domains:1], no pool) and computed before
     any fork below. *)
  let references =
    List.map (fun spec -> Executor.ground_truth_model ~domains:1 ~fuel spec golden) specs
  in
  serial_test golden references;
  List.iter2 (daemon_test golden) specs references;
  fleet_test golden references;
  if !failures > 0 then begin
    Printf.printf "%d model smoke check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "model smoke passed"
