module P = Ftb_dist.Worker_proto
module Lease = Ftb_dist.Lease
module Fleet = Ftb_dist.Fleet
module Rng = Ftb_util.Rng
module Json = Ftb_service.Json
module Engine = Ftb_campaign.Engine
module Golden = Ftb_trace.Golden

(* ------------------------------------------------------------------ *)
(* Worker protocol frames. *)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex codec round-trips arbitrary bytes" ~count:300
    QCheck.(string_of Gen.char)
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (P.bytes_of_hex (P.hex_of_bytes b)))

let test_hex_rejects () =
  Alcotest.check_raises "odd length" (P.Decode_error "hex blob has odd length")
    (fun () -> ignore (P.bytes_of_hex "abc"));
  (match P.bytes_of_hex "zz" with
  | _ -> Alcotest.fail "bad hex digit accepted"
  | exception P.Decode_error _ -> ())

let test_grant_roundtrip () =
  let g =
    {
      P.job_id = 7;
      bench = "ir.dot";
      fuel = Some 4096;
      model = Ftb_inject.Models.default_spec;
      fingerprint = "deadbeef";
      lease_id = 42;
      shard = 3;
      lo = 12288;
      hi = 16384;
      ttl = 2.5;
      cases = None;
    }
  in
  (match P.parse_lease_reply (P.grant_frame g) with
  | P.Granted g' -> Alcotest.(check bool) "grant round-trips" true (g = g')
  | P.Wait _ -> Alcotest.fail "grant parsed as wait");
  (match P.parse_lease_reply (P.wait_frame ~poll:0.25) with
  | P.Wait poll -> Alcotest.(check (float 1e-9)) "poll" 0.25 poll
  | P.Granted _ -> Alcotest.fail "wait parsed as grant");
  (let sparse = { g with P.lo = 0; hi = 4; cases = Some [| 9; 131; 7; 4096 |] } in
   match P.parse_lease_reply (P.grant_frame sparse) with
   | P.Granted g' -> Alcotest.(check bool) "sparse grant round-trips" true (sparse = g')
   | P.Wait _ -> Alcotest.fail "sparse grant parsed as wait");
  let no_fuel = { g with P.fuel = None } in
  match P.parse_lease_reply (P.grant_frame no_fuel) with
  | P.Granted g' -> Alcotest.(check bool) "fuel-less grant" true (no_fuel = g')
  | P.Wait _ -> Alcotest.fail "grant parsed as wait"

let test_small_frames_roundtrip () =
  let r = P.parse_registered (P.registered ~worker:9 ~ttl:1.5) in
  Alcotest.(check int) "worker id" 9 r.P.worker;
  Alcotest.(check (float 1e-9)) "ttl" 1.5 r.P.ttl;
  Alcotest.(check bool) "valid heartbeat" true
    (P.parse_heartbeat_reply (P.heartbeat_reply ~valid:true));
  let ack = P.parse_result_ack (P.result_ack_frame ~committed:false ~stale:true) in
  Alcotest.(check bool) "stale ack" true (ack.P.stale && not ack.P.committed);
  match P.check_ok (P.error_frame "oversized_result" "too big") with
  | () -> Alcotest.fail "error frame accepted as ok"
  | exception P.Decode_error msg ->
      Alcotest.(check bool) "typed code surfaces" true
        (String.length msg >= 16 && String.sub msg 0 16 = "oversized_result")

let test_result_fits () =
  Alcotest.(check bool) "max fits" true (P.result_fits ~cases:P.max_result_cases);
  Alcotest.(check bool) "max+1 does not" false
    (P.result_fits ~cases:(P.max_result_cases + 1));
  (* The guarantee behind the bound: a maximal blob's encoded frame stays
     under the wire limit. *)
  Alcotest.(check bool) "hex of max fits the wire" true
    (2 * P.max_result_cases + P.frame_slack <= Ftb_service.Wire.max_frame)

(* ------------------------------------------------------------------ *)
(* Lease table: the no-double-commit property under random worker death. *)

let test_lease_lifecycle () =
  let t = Lease.create ~first_lease:100 [| (0, 0, 10); (1, 10, 20) |] in
  Alcotest.(check int) "outstanding" 2 (Lease.outstanding t);
  let g =
    match Lease.acquire t ~holder:1 ~now:0. ~ttl:1. with
    | Some g -> g
    | None -> Alcotest.fail "no grant"
  in
  Alcotest.(check int) "lease ids thread from first_lease" 100 g.Lease.lease_id;
  Alcotest.(check bool) "renew live lease" true
    (Lease.renew t ~lease_id:g.Lease.lease_id ~now:0.5 ~ttl:1.);
  (* Renewed to 1.5: not expired at 1.2, expired at 2.0. *)
  Alcotest.(check int) "no premature expiry" 0 (Lease.expire t ~now:1.2);
  Alcotest.(check int) "expiry reclaims" 1 (Lease.expire t ~now:2.0);
  Alcotest.(check bool) "stale renew refused" false
    (Lease.renew t ~lease_id:g.Lease.lease_id ~now:2.0 ~ttl:1.);
  (* The dead worker's result still lands (first result wins)... *)
  Alcotest.(check bool) "late result commits" true
    (Lease.commit t ~shard:g.Lease.shard = `Committed);
  (* ...but only once, ever. *)
  Alcotest.(check bool) "second commit is stale" true
    (Lease.commit t ~shard:g.Lease.shard = `Stale);
  Alcotest.(check bool) "unknown shard" true (Lease.commit t ~shard:99 = `Unknown);
  Alcotest.(check int) "one left" 1 (Lease.outstanding t)

let prop_no_double_commit =
  QCheck.Test.make
    ~name:"lease scheduler: every shard commits exactly once under random death"
    ~count:300
    QCheck.(pair (int_range 1 24) (int_range 0 100000))
    (fun (nshards, seed) ->
      let rng = Rng.create ~seed in
      let tasks = Array.init nshards (fun i -> (i, i * 64, (i + 1) * 64)) in
      let t = Lease.create ~first_lease:(1 + Rng.int rng 1000) tasks in
      let commits = Array.make nshards 0 in
      let clock = ref 0. in
      (* Grants held by simulated workers; a "dead" worker's grants stay
         in this list and may produce late commits after re-lease. *)
      let grants = ref [] in
      let record_commit shard = commits.(shard) <- commits.(shard) + 1 in
      let random_grant () =
        match !grants with
        | [] -> None
        | l -> Some (List.nth l (Rng.int rng (List.length l)))
      in
      let steps = ref 0 in
      while Lease.outstanding t > 0 && !steps < 5_000 do
        incr steps;
        match Rng.int rng 10 with
        | 0 | 1 | 2 -> (
            (* A worker leases a shard. *)
            let holder = 1 + Rng.int rng 4 in
            match Lease.acquire t ~holder ~now:!clock ~ttl:1. with
            | Some g -> grants := g :: !grants
            | None -> ())
        | 3 ->
            (* Time passes; silent (SIGKILLed) workers lose their leases. *)
            clock := !clock +. (2. *. Rng.float rng 1.);
            ignore (Lease.expire t ~now:!clock : int)
        | 4 -> (
            (* A live worker heartbeats. *)
            match random_grant () with
            | Some g ->
                ignore (Lease.renew t ~lease_id:g.Lease.lease_id ~now:!clock ~ttl:1. : bool)
            | None -> ())
        | 5 | 6 | 7 -> (
            (* A result frame arrives — possibly from a worker whose lease
               expired long ago (late/duplicate delivery). *)
            match random_grant () with
            | Some g ->
                (match Lease.commit t ~shard:g.Lease.shard with
                | `Committed -> record_commit g.Lease.shard
                | `Stale | `Unknown -> ())
            | None -> ())
        | 8 -> (
            (* A worker reports a typed failure. Engine-level retry would
               re-queue the shard in a later wave; within this wave the
               failure resolves the slot, so it counts as its commit. *)
            match random_grant () with
            | Some g -> (
                match Lease.fail t ~lease_id:g.Lease.lease_id ~message:"injected" with
                | `Committed -> record_commit g.Lease.shard
                | `Stale -> ())
            | None -> ())
        | _ ->
            (* A worker detaches cleanly. *)
            ignore (Lease.release_holder t ~holder:(1 + Rng.int rng 4) : int)
      done;
      (* Drain: the executor of last resort finishes whatever remains. *)
      while Lease.outstanding t > 0 do
        match Lease.acquire t ~holder:0 ~now:!clock ~ttl:infinity with
        | Some g -> (
            match Lease.commit t ~shard:g.Lease.shard with
            | `Committed -> record_commit g.Lease.shard
            | `Stale | `Unknown -> ())
        | None ->
            (* Everything pending is leased out to ghosts; expire them. *)
            clock := !clock +. 10.;
            ignore (Lease.expire t ~now:!clock : int)
      done;
      Array.for_all (fun c -> c = 1) commits
      && List.length (Lease.results t) = nshards
      && List.for_all
           (fun (_, r) -> match r with Ok () -> true | Error m -> m = "injected")
           (Lease.results t))

(* ------------------------------------------------------------------ *)
(* Fleet scheduler: a result frame only commits into its own job's wave. *)

let test_cross_job_result_rejected () =
  (* Audit disabled: this test commits a hand-crafted byte pattern (not
     the bench's true outcomes) to observe the commit plumbing, which the
     audit oracle would rightly dispute. *)
  let fleet = Fleet.create ~lease_ttl:5.0 ~poll:0.005 ~audit_rate:0. () in
  let ext cmd json =
    match Fleet.extension fleet ~cmd json with
    | Some reply -> reply
    | None -> Alcotest.fail (Printf.sprintf "no handler for %s" cmd)
  in
  let reg = P.parse_registered (ext "worker_register" (P.register ~domains:1 ())) in
  let wid = reg.P.worker in
  let golden = Golden.run (Helpers.linear_program ()) in
  let job_id = 41 in
  let runner =
    match
      Fleet.wave_runner fleet ~job_id ~bench:"helpers.linear" ~fuel:None
        ~model:Ftb_inject.Models.default_spec ~golden
    with
    | Some r -> r
    | None -> Alcotest.fail "no wave runner despite a registered worker"
  in
  let committed = ref [] in
  let commit ~shard bytes = committed := (shard, Bytes.copy bytes) :: !committed in
  let results = ref [] in
  let ran_locally = ref false in
  let wave =
    Thread.create
      (fun () ->
        results :=
          runner.Engine.run_wave
            [| { Engine.shard = 0; attempt = 1; lo = 0; hi = 4 } |]
            ~commit
            ~run_local:(fun ~lo:_ ~hi:_ -> ran_locally := true))
      ()
  in
  let rec lease_grant attempts =
    if attempts = 0 then Alcotest.fail "scheduler never offered a grant"
    else
      match P.parse_lease_reply (ext "worker_lease" (P.lease ~worker:wid)) with
      | P.Granted g -> g
      | P.Wait poll ->
          ignore (Unix.select [] [] [] (Float.max poll 0.001));
          lease_grant (attempts - 1)
  in
  let g = lease_grant 1000 in
  Alcotest.(check int) "grant advertises the active job" job_id g.P.job_id;
  let payload = P.Outcomes (Bytes.of_string "\x00\x01\x02\x03") in
  (* A straggler from an earlier job whose shard index happens to exist in
     this wave: dropped as stale, never committed. *)
  let stale_ack =
    P.parse_result_ack
      (ext "worker_result"
         (P.result ~worker:wid ~job:(job_id - 1) ~lease:g.P.lease_id
            ~shard:g.P.shard payload))
  in
  Alcotest.(check bool) "cross-job result dropped as stale" true
    (stale_ack.P.stale && not stale_ack.P.committed);
  Alcotest.(check bool) "cross-job result committed nothing" true (!committed = []);
  (* A result frame that does not say which job it belongs to is refused
     outright with a typed error. *)
  let jobless =
    Json.Obj
      [
        ("cmd", Json.String "worker_result");
        ("worker", Json.Int wid);
        ("lease", Json.Int g.P.lease_id);
        ("shard", Json.Int g.P.shard);
        ("data", Json.String "00010203");
      ]
  in
  (match P.check_ok (ext "worker_result" jobless) with
  | () -> Alcotest.fail "job-less result frame accepted"
  | exception P.Decode_error _ -> ());
  let ack =
    P.parse_result_ack
      (ext "worker_result"
         (P.result ~worker:wid ~job:job_id ~lease:g.P.lease_id ~shard:g.P.shard
            payload))
  in
  Alcotest.(check bool) "same-job result commits" true
    (ack.P.committed && not ack.P.stale);
  Thread.join wave;
  Alcotest.(check bool) "shard never fell back to the local executor" false
    !ran_locally;
  (match !results with
  | [ (0, Ok ()) ] -> ()
  | _ -> Alcotest.fail "wave did not resolve the shard");
  (match !committed with
  | [ (0, b) ] ->
      Alcotest.(check string) "committed exactly the worker's bytes"
        "\x00\x01\x02\x03" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected exactly one committed shard");
  let s = Fleet.stats fleet in
  Alcotest.(check int) "one remote commit" 1 s.Fleet.remote_committed;
  Alcotest.(check bool) "cross-job frame counted as stale" true (s.Fleet.stale >= 1)

(* ------------------------------------------------------------------ *)
(* Trust-but-verify: attestation, audit adjudication, quarantine.       *)

let test_digest_and_admin_frames () =
  let b = Bytes.of_string "\x00\x01\x02\x03" in
  let d ~job ~shard ~lo ~hi ~fingerprint bytes =
    P.outcome_digest ~job ~shard ~lo ~hi ~fingerprint bytes
  in
  let base = d ~job:1 ~shard:0 ~lo:0 ~hi:4 ~fingerprint:"fp" b in
  Alcotest.(check string) "digest is deterministic" base
    (d ~job:1 ~shard:0 ~lo:0 ~hi:4 ~fingerprint:"fp" b);
  Alcotest.(check bool) "digest binds the bytes" false
    (base = d ~job:1 ~shard:0 ~lo:0 ~hi:4 ~fingerprint:"fp" (Bytes.of_string "\x00\x01\x02\x04"));
  Alcotest.(check bool) "digest binds the shard coordinates" false
    (base = d ~job:1 ~shard:1 ~lo:0 ~hi:4 ~fingerprint:"fp" b);
  Alcotest.(check bool) "digest binds the golden fingerprint" false
    (base = d ~job:1 ~shard:0 ~lo:0 ~hi:4 ~fingerprint:"fq" b);
  let rows =
    [
      {
        P.row_wid = 1;
        row_name = "alpha";
        row_domains = 2;
        row_age = 0.25;
        row_committed = 7;
        row_failed = 1;
        row_disputed = 0;
        row_quarantined = false;
      };
      {
        P.row_wid = 2;
        row_name = "liar";
        row_domains = 1;
        row_age = 3.5;
        row_committed = 4;
        row_failed = 0;
        row_disputed = 2;
        row_quarantined = true;
      };
    ]
  in
  let rows', barred' =
    P.parse_workers (P.workers_frame rows ~barred:[ ("liar", 2) ])
  in
  Alcotest.(check int) "rows round-trip" 2 (List.length rows');
  Alcotest.(check bool) "row fields round-trip" true (List.nth rows' 1 = List.nth rows 1);
  Alcotest.(check bool) "barred round-trips" true (barred' = [ ("liar", 2) ]);
  Alcotest.(check bool) "cleared frame round-trips" true
    (P.parse_cleared (P.cleared_frame ~cleared:true)
    && not (P.parse_cleared (P.cleared_frame ~cleared:false)))

(* Shared scaffolding: drive one wave of [job_id] through a fleet with a
   single registered worker, returning what the test needs to poke at. *)
let drive_wave fleet ~job_id ~wid ~golden ~tasks ~on_grant =
  let ext cmd json =
    match Fleet.extension fleet ~cmd json with
    | Some reply -> reply
    | None -> Alcotest.fail (Printf.sprintf "no handler for %s" cmd)
  in
  let runner =
    match
      Fleet.wave_runner fleet ~job_id ~bench:"helpers.linear" ~fuel:None
        ~model:Ftb_inject.Models.default_spec ~golden
    with
    | Some r -> r
    | None -> Alcotest.fail "no wave runner despite a registered worker"
  in
  let committed : (int, Bytes.t) Hashtbl.t = Hashtbl.create 4 in
  let commit ~shard bytes = Hashtbl.replace committed shard (Bytes.copy bytes) in
  let ran_locally = ref 0 in
  let results = ref [] in
  let wave =
    Thread.create
      (fun () ->
        results :=
          runner.Engine.run_wave tasks ~commit
            ~run_local:(fun ~lo:_ ~hi:_ -> incr ran_locally))
      ()
  in
  let rec lease_grant attempts =
    if attempts = 0 then Alcotest.fail "scheduler never offered a grant"
    else
      match P.parse_lease_reply (ext "worker_lease" (P.lease ~worker:wid)) with
      | P.Granted g -> g
      | P.Wait poll ->
          ignore (Unix.select [] [] [] (Float.max poll 0.001));
          lease_grant (attempts - 1)
  in
  on_grant ~ext ~lease_grant;
  Thread.join wave;
  (!results, committed, !ran_locally)

let test_digest_mismatch_rejected () =
  let fleet = Fleet.create ~lease_ttl:5.0 ~poll:0.005 ~audit_rate:0. () in
  let ext cmd json =
    match Fleet.extension fleet ~cmd json with
    | Some reply -> reply
    | None -> Alcotest.fail (Printf.sprintf "no handler for %s" cmd)
  in
  let reg = P.parse_registered (ext "worker_register" (P.register ~domains:1 ())) in
  let wid = reg.P.worker in
  let golden = Golden.run (Helpers.linear_program ()) in
  let job_id = 51 in
  let results, committed, _local =
    drive_wave fleet ~job_id ~wid ~golden
      ~tasks:[| { Engine.shard = 0; attempt = 1; lo = 0; hi = 4 } |]
      ~on_grant:(fun ~ext ~lease_grant ->
        let g = lease_grant 1000 in
        (* The attestation layer guards the transport: bytes whose frame
           digest disagrees with the server's recomputation never commit,
           whatever they contain. *)
        let frame =
          P.result ~digest:"0000000000000000" ~worker:wid ~job:job_id
            ~lease:g.P.lease_id ~shard:g.P.shard
            (P.Outcomes (Bytes.of_string "\x00\x01\x02\x03"))
        in
        match P.check_ok (ext "worker_result" frame) with
        | () -> Alcotest.fail "corrupt-digest result accepted"
        | exception P.Decode_error msg ->
            Alcotest.(check bool) "typed digest_mismatch" true
              (String.length msg >= 15 && String.sub msg 0 15 = "digest_mismatch"))
  in
  (* The rejection released the lease as a typed failure, so the wave
     resolves the shard through the engine's retry path, not a commit. *)
  (match results with
  | [ (0, Error _) ] -> ()
  | _ -> Alcotest.fail "digest-mismatched shard should resolve as a failure");
  Alcotest.(check int) "nothing committed" 0 (Hashtbl.length committed);
  let s = Fleet.stats fleet in
  Alcotest.(check int) "bad_digest counted" 1 s.Fleet.bad_digest;
  Alcotest.(check int) "no remote commit" 0 s.Fleet.remote_committed;
  Alcotest.(check int) "a frame rejection is not a dispute" 0 s.Fleet.disputed

let test_audit_dispute_quarantine_clear () =
  let fleet =
    Fleet.create ~lease_ttl:5.0 ~poll:0.005 ~audit_rate:1.0 ~quarantine_after:1 ()
  in
  let events = ref [] in
  Fleet.set_on_quarantine fleet (fun ~name ~disputes ->
      events := (name, disputes) :: !events);
  let ext cmd json =
    match Fleet.extension fleet ~cmd json with
    | Some reply -> reply
    | None -> Alcotest.fail (Printf.sprintf "no handler for %s" cmd)
  in
  let reg =
    P.parse_registered (ext "worker_register" (P.register ~name:"liar" ~domains:1 ()))
  in
  let wid = reg.P.worker in
  let golden = Golden.run (Helpers.linear_program ()) in
  let job_id = 52 in
  let truth =
    (Ftb_inject.Executor.ground_truth_model Ftb_inject.Models.default_spec golden)
      .Ftb_inject.Ground_truth.outcomes
  in
  let true_slice = Bytes.sub truth 0 4 in
  (* SDC upstream of the hash: the worker computes wrong bytes and
     honestly digests them, so the frame passes attestation and only the
     audit oracle can catch it. *)
  let lie = Bytes.map (fun c -> if c = '\x05' then '\x04' else '\x05') true_slice in
  let results, committed, _local =
    drive_wave fleet ~job_id ~wid ~golden
      ~tasks:[| { Engine.shard = 0; attempt = 1; lo = 0; hi = 4 } |]
      ~on_grant:(fun ~ext ~lease_grant ->
        let g = lease_grant 1000 in
        let digest =
          P.outcome_digest ~job:job_id ~shard:g.P.shard ~lo:g.P.lo ~hi:g.P.hi
            ~fingerprint:g.P.fingerprint lie
        in
        let ack =
          P.parse_result_ack
            (ext "worker_result"
               (P.result ~digest ~worker:wid ~job:job_id ~lease:g.P.lease_id
                  ~shard:g.P.shard (P.Outcomes lie)))
        in
        Alcotest.(check bool) "lying result commits at the frame layer" true
          (ack.P.committed && not ack.P.stale))
  in
  (match results with
  | [ (0, Ok ()) ] -> ()
  | _ -> Alcotest.fail "wave did not resolve the shard");
  (* Adjudication: the oracle's bytes replaced the lie before run_wave
     returned — the engine can only ever checkpoint adjudicated bytes. *)
  (match Hashtbl.find_opt committed 0 with
  | Some b -> Alcotest.(check string) "oracle overwrote the lying bytes"
      (Bytes.to_string true_slice) (Bytes.to_string b)
  | None -> Alcotest.fail "shard never committed");
  let s = Fleet.stats fleet in
  Alcotest.(check int) "audited" 1 s.Fleet.audited;
  Alcotest.(check int) "disputed" 1 s.Fleet.disputed;
  Alcotest.(check int) "quarantined" 1 s.Fleet.quarantined;
  Alcotest.(check bool) "hook fired with the liar's name" true
    (!events = [ ("liar", 1) ]);
  Alcotest.(check int) "quarantine removed the worker from the live set" 0
    (Fleet.live_workers fleet);
  (* The quarantined worker is refused everywhere: lease polls, results,
     and re-registration under the barred name. The worker process may
     long be dead by now — adjudication and quarantine never needed it. *)
  (match P.check_ok (ext "worker_lease" (P.lease ~worker:wid)) with
  | () -> Alcotest.fail "quarantined worker still granted leases"
  | exception P.Decode_error msg ->
      Alcotest.(check bool) "lease refused as quarantined" true
        (String.length msg >= 11 && String.sub msg 0 11 = "quarantined"));
  (match P.check_ok (ext "worker_register" (P.register ~name:"liar" ~domains:1 ())) with
  | () -> Alcotest.fail "barred name re-registered"
  | exception P.Decode_error msg ->
      Alcotest.(check bool) "re-registration refused" true
        (String.length msg >= 11 && String.sub msg 0 11 = "quarantined"));
  (* The trust ledger surfaces the conviction. The registry row itself is
     pruned on the same bounded-list path as detached workers — only the
     barred (name, disputes) record endures, and it alone enforces. *)
  let rows, barred = P.parse_workers (ext "worker_stats" P.workers_request) in
  Alcotest.(check bool) "quarantined row pruned from the registry" true
    (List.for_all (fun r -> r.P.row_name <> "liar") rows);
  Alcotest.(check bool) "barred list names the liar" true (barred = [ ("liar", 1) ]);
  (* ...and the operator can lift it: clearing unbars the name, and a
     fresh registration under it starts with a clean slate. *)
  Alcotest.(check bool) "clear acknowledges" true
    (P.parse_cleared (ext "worker_clear" (P.workers_clear_request ~name:"liar")));
  Alcotest.(check bool) "second clear is a no-op" false
    (P.parse_cleared (ext "worker_clear" (P.workers_clear_request ~name:"liar")));
  let reg2 =
    P.parse_registered (ext "worker_register" (P.register ~name:"liar" ~domains:1 ()))
  in
  Alcotest.(check bool) "cleared name registers under a fresh wid" true
    (reg2.P.worker <> wid);
  Alcotest.(check int) "cleared worker is live" 1 (Fleet.live_workers fleet)

let test_local_executor_never_self_quarantined () =
  let fleet =
    Fleet.create ~lease_ttl:5.0 ~poll:0.005 ~audit_rate:1.0 ~quarantine_after:1 ()
  in
  let ext cmd json =
    match Fleet.extension fleet ~cmd json with
    | Some reply -> reply
    | None -> Alcotest.fail (Printf.sprintf "no handler for %s" cmd)
  in
  let reg = P.parse_registered (ext "worker_register" (P.register ~domains:1 ())) in
  let wid = reg.P.worker in
  let golden = Golden.run (Helpers.linear_program ()) in
  (* The worker detaches before taking a lease, so the executor of last
     resort (holder wid 0) runs the whole wave. Local commits create no
     audit records: even at audit-rate 1.0 there is nothing to audit, and
     the server can never dispute — let alone quarantine — itself. *)
  let results, _committed, ran_locally =
    drive_wave fleet ~job_id:53 ~wid ~golden
      ~tasks:[| { Engine.shard = 0; attempt = 1; lo = 0; hi = 4 } |]
      ~on_grant:(fun ~ext ~lease_grant:_ ->
        ignore (ext "worker_detach" (P.detach ~worker:wid) : Json.t))
  in
  (match results with
  | [ (0, Ok ()) ] -> ()
  | _ -> Alcotest.fail "local fallback did not resolve the shard");
  Alcotest.(check int) "shard ran locally" 1 ran_locally;
  let s = Fleet.stats fleet in
  Alcotest.(check int) "one local commit" 1 s.Fleet.local_committed;
  Alcotest.(check int) "local commits are never audited" 0 s.Fleet.audited;
  Alcotest.(check int) "no disputes" 0 s.Fleet.disputed;
  Alcotest.(check int) "server never self-quarantines" 0 s.Fleet.quarantined

let suite =
  [
    Helpers.qcheck_to_alcotest prop_hex_roundtrip;
    Alcotest.test_case "hex rejects garbage" `Quick test_hex_rejects;
    Alcotest.test_case "grant/wait frames round-trip" `Quick test_grant_roundtrip;
    Alcotest.test_case "small frames round-trip" `Quick test_small_frames_roundtrip;
    Alcotest.test_case "result size bound" `Quick test_result_fits;
    Alcotest.test_case "lease lifecycle" `Quick test_lease_lifecycle;
    Helpers.qcheck_to_alcotest prop_no_double_commit;
    Alcotest.test_case "cross-job results never commit" `Quick
      test_cross_job_result_rejected;
    Alcotest.test_case "digest + trust-ledger frames" `Quick
      test_digest_and_admin_frames;
    Alcotest.test_case "attestation rejects digest mismatches" `Quick
      test_digest_mismatch_rejected;
    Alcotest.test_case "audit disputes, quarantines and clears" `Quick
      test_audit_dispute_quarantine_clear;
    Alcotest.test_case "local executor is never self-quarantined" `Quick
      test_local_executor_never_self_quarantined;
  ]
