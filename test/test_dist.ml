module P = Ftb_dist.Worker_proto
module Lease = Ftb_dist.Lease
module Fleet = Ftb_dist.Fleet
module Rng = Ftb_util.Rng
module Json = Ftb_service.Json
module Engine = Ftb_campaign.Engine
module Golden = Ftb_trace.Golden

(* ------------------------------------------------------------------ *)
(* Worker protocol frames. *)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex codec round-trips arbitrary bytes" ~count:300
    QCheck.(string_of Gen.char)
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (P.bytes_of_hex (P.hex_of_bytes b)))

let test_hex_rejects () =
  Alcotest.check_raises "odd length" (P.Decode_error "hex blob has odd length")
    (fun () -> ignore (P.bytes_of_hex "abc"));
  (match P.bytes_of_hex "zz" with
  | _ -> Alcotest.fail "bad hex digit accepted"
  | exception P.Decode_error _ -> ())

let test_grant_roundtrip () =
  let g =
    {
      P.job_id = 7;
      bench = "ir.dot";
      fuel = Some 4096;
      model = Ftb_inject.Models.default_spec;
      fingerprint = "deadbeef";
      lease_id = 42;
      shard = 3;
      lo = 12288;
      hi = 16384;
      ttl = 2.5;
    }
  in
  (match P.parse_lease_reply (P.grant_frame g) with
  | P.Granted g' -> Alcotest.(check bool) "grant round-trips" true (g = g')
  | P.Wait _ -> Alcotest.fail "grant parsed as wait");
  (match P.parse_lease_reply (P.wait_frame ~poll:0.25) with
  | P.Wait poll -> Alcotest.(check (float 1e-9)) "poll" 0.25 poll
  | P.Granted _ -> Alcotest.fail "wait parsed as grant");
  let no_fuel = { g with P.fuel = None } in
  match P.parse_lease_reply (P.grant_frame no_fuel) with
  | P.Granted g' -> Alcotest.(check bool) "fuel-less grant" true (no_fuel = g')
  | P.Wait _ -> Alcotest.fail "grant parsed as wait"

let test_small_frames_roundtrip () =
  let r = P.parse_registered (P.registered ~worker:9 ~ttl:1.5) in
  Alcotest.(check int) "worker id" 9 r.P.worker;
  Alcotest.(check (float 1e-9)) "ttl" 1.5 r.P.ttl;
  Alcotest.(check bool) "valid heartbeat" true
    (P.parse_heartbeat_reply (P.heartbeat_reply ~valid:true));
  let ack = P.parse_result_ack (P.result_ack_frame ~committed:false ~stale:true) in
  Alcotest.(check bool) "stale ack" true (ack.P.stale && not ack.P.committed);
  match P.check_ok (P.error_frame "oversized_result" "too big") with
  | () -> Alcotest.fail "error frame accepted as ok"
  | exception P.Decode_error msg ->
      Alcotest.(check bool) "typed code surfaces" true
        (String.length msg >= 16 && String.sub msg 0 16 = "oversized_result")

let test_result_fits () =
  Alcotest.(check bool) "max fits" true (P.result_fits ~cases:P.max_result_cases);
  Alcotest.(check bool) "max+1 does not" false
    (P.result_fits ~cases:(P.max_result_cases + 1));
  (* The guarantee behind the bound: a maximal blob's encoded frame stays
     under the wire limit. *)
  Alcotest.(check bool) "hex of max fits the wire" true
    (2 * P.max_result_cases + P.frame_slack <= Ftb_service.Wire.max_frame)

(* ------------------------------------------------------------------ *)
(* Lease table: the no-double-commit property under random worker death. *)

let test_lease_lifecycle () =
  let t = Lease.create ~first_lease:100 [| (0, 0, 10); (1, 10, 20) |] in
  Alcotest.(check int) "outstanding" 2 (Lease.outstanding t);
  let g =
    match Lease.acquire t ~holder:1 ~now:0. ~ttl:1. with
    | Some g -> g
    | None -> Alcotest.fail "no grant"
  in
  Alcotest.(check int) "lease ids thread from first_lease" 100 g.Lease.lease_id;
  Alcotest.(check bool) "renew live lease" true
    (Lease.renew t ~lease_id:g.Lease.lease_id ~now:0.5 ~ttl:1.);
  (* Renewed to 1.5: not expired at 1.2, expired at 2.0. *)
  Alcotest.(check int) "no premature expiry" 0 (Lease.expire t ~now:1.2);
  Alcotest.(check int) "expiry reclaims" 1 (Lease.expire t ~now:2.0);
  Alcotest.(check bool) "stale renew refused" false
    (Lease.renew t ~lease_id:g.Lease.lease_id ~now:2.0 ~ttl:1.);
  (* The dead worker's result still lands (first result wins)... *)
  Alcotest.(check bool) "late result commits" true
    (Lease.commit t ~shard:g.Lease.shard = `Committed);
  (* ...but only once, ever. *)
  Alcotest.(check bool) "second commit is stale" true
    (Lease.commit t ~shard:g.Lease.shard = `Stale);
  Alcotest.(check bool) "unknown shard" true (Lease.commit t ~shard:99 = `Unknown);
  Alcotest.(check int) "one left" 1 (Lease.outstanding t)

let prop_no_double_commit =
  QCheck.Test.make
    ~name:"lease scheduler: every shard commits exactly once under random death"
    ~count:300
    QCheck.(pair (int_range 1 24) (int_range 0 100000))
    (fun (nshards, seed) ->
      let rng = Rng.create ~seed in
      let tasks = Array.init nshards (fun i -> (i, i * 64, (i + 1) * 64)) in
      let t = Lease.create ~first_lease:(1 + Rng.int rng 1000) tasks in
      let commits = Array.make nshards 0 in
      let clock = ref 0. in
      (* Grants held by simulated workers; a "dead" worker's grants stay
         in this list and may produce late commits after re-lease. *)
      let grants = ref [] in
      let record_commit shard = commits.(shard) <- commits.(shard) + 1 in
      let random_grant () =
        match !grants with
        | [] -> None
        | l -> Some (List.nth l (Rng.int rng (List.length l)))
      in
      let steps = ref 0 in
      while Lease.outstanding t > 0 && !steps < 5_000 do
        incr steps;
        match Rng.int rng 10 with
        | 0 | 1 | 2 -> (
            (* A worker leases a shard. *)
            let holder = 1 + Rng.int rng 4 in
            match Lease.acquire t ~holder ~now:!clock ~ttl:1. with
            | Some g -> grants := g :: !grants
            | None -> ())
        | 3 ->
            (* Time passes; silent (SIGKILLed) workers lose their leases. *)
            clock := !clock +. (2. *. Rng.float rng 1.);
            ignore (Lease.expire t ~now:!clock : int)
        | 4 -> (
            (* A live worker heartbeats. *)
            match random_grant () with
            | Some g ->
                ignore (Lease.renew t ~lease_id:g.Lease.lease_id ~now:!clock ~ttl:1. : bool)
            | None -> ())
        | 5 | 6 | 7 -> (
            (* A result frame arrives — possibly from a worker whose lease
               expired long ago (late/duplicate delivery). *)
            match random_grant () with
            | Some g ->
                (match Lease.commit t ~shard:g.Lease.shard with
                | `Committed -> record_commit g.Lease.shard
                | `Stale | `Unknown -> ())
            | None -> ())
        | 8 -> (
            (* A worker reports a typed failure. Engine-level retry would
               re-queue the shard in a later wave; within this wave the
               failure resolves the slot, so it counts as its commit. *)
            match random_grant () with
            | Some g -> (
                match Lease.fail t ~lease_id:g.Lease.lease_id ~message:"injected" with
                | `Committed -> record_commit g.Lease.shard
                | `Stale -> ())
            | None -> ())
        | _ ->
            (* A worker detaches cleanly. *)
            ignore (Lease.release_holder t ~holder:(1 + Rng.int rng 4) : int)
      done;
      (* Drain: the executor of last resort finishes whatever remains. *)
      while Lease.outstanding t > 0 do
        match Lease.acquire t ~holder:0 ~now:!clock ~ttl:infinity with
        | Some g -> (
            match Lease.commit t ~shard:g.Lease.shard with
            | `Committed -> record_commit g.Lease.shard
            | `Stale | `Unknown -> ())
        | None ->
            (* Everything pending is leased out to ghosts; expire them. *)
            clock := !clock +. 10.;
            ignore (Lease.expire t ~now:!clock : int)
      done;
      Array.for_all (fun c -> c = 1) commits
      && List.length (Lease.results t) = nshards
      && List.for_all
           (fun (_, r) -> match r with Ok () -> true | Error m -> m = "injected")
           (Lease.results t))

(* ------------------------------------------------------------------ *)
(* Fleet scheduler: a result frame only commits into its own job's wave. *)

let test_cross_job_result_rejected () =
  let fleet = Fleet.create ~lease_ttl:5.0 ~poll:0.005 () in
  let ext cmd json =
    match Fleet.extension fleet ~cmd json with
    | Some reply -> reply
    | None -> Alcotest.fail (Printf.sprintf "no handler for %s" cmd)
  in
  let reg = P.parse_registered (ext "worker_register" (P.register ~domains:1)) in
  let wid = reg.P.worker in
  let golden = Golden.run (Helpers.linear_program ()) in
  let job_id = 41 in
  let runner =
    match
      Fleet.wave_runner fleet ~job_id ~bench:"helpers.linear" ~fuel:None
        ~model:Ftb_inject.Models.default_spec ~golden
    with
    | Some r -> r
    | None -> Alcotest.fail "no wave runner despite a registered worker"
  in
  let committed = ref [] in
  let commit ~shard bytes = committed := (shard, Bytes.copy bytes) :: !committed in
  let results = ref [] in
  let ran_locally = ref false in
  let wave =
    Thread.create
      (fun () ->
        results :=
          runner.Engine.run_wave
            [| { Engine.shard = 0; attempt = 1; lo = 0; hi = 4 } |]
            ~commit
            ~run_local:(fun ~lo:_ ~hi:_ -> ran_locally := true))
      ()
  in
  let rec lease_grant attempts =
    if attempts = 0 then Alcotest.fail "scheduler never offered a grant"
    else
      match P.parse_lease_reply (ext "worker_lease" (P.lease ~worker:wid)) with
      | P.Granted g -> g
      | P.Wait poll ->
          ignore (Unix.select [] [] [] (Float.max poll 0.001));
          lease_grant (attempts - 1)
  in
  let g = lease_grant 1000 in
  Alcotest.(check int) "grant advertises the active job" job_id g.P.job_id;
  let payload = P.Outcomes (Bytes.of_string "\x00\x01\x02\x03") in
  (* A straggler from an earlier job whose shard index happens to exist in
     this wave: dropped as stale, never committed. *)
  let stale_ack =
    P.parse_result_ack
      (ext "worker_result"
         (P.result ~worker:wid ~job:(job_id - 1) ~lease:g.P.lease_id
            ~shard:g.P.shard payload))
  in
  Alcotest.(check bool) "cross-job result dropped as stale" true
    (stale_ack.P.stale && not stale_ack.P.committed);
  Alcotest.(check bool) "cross-job result committed nothing" true (!committed = []);
  (* A result frame that does not say which job it belongs to is refused
     outright with a typed error. *)
  let jobless =
    Json.Obj
      [
        ("cmd", Json.String "worker_result");
        ("worker", Json.Int wid);
        ("lease", Json.Int g.P.lease_id);
        ("shard", Json.Int g.P.shard);
        ("data", Json.String "00010203");
      ]
  in
  (match P.check_ok (ext "worker_result" jobless) with
  | () -> Alcotest.fail "job-less result frame accepted"
  | exception P.Decode_error _ -> ());
  let ack =
    P.parse_result_ack
      (ext "worker_result"
         (P.result ~worker:wid ~job:job_id ~lease:g.P.lease_id ~shard:g.P.shard
            payload))
  in
  Alcotest.(check bool) "same-job result commits" true
    (ack.P.committed && not ack.P.stale);
  Thread.join wave;
  Alcotest.(check bool) "shard never fell back to the local executor" false
    !ran_locally;
  (match !results with
  | [ (0, Ok ()) ] -> ()
  | _ -> Alcotest.fail "wave did not resolve the shard");
  (match !committed with
  | [ (0, b) ] ->
      Alcotest.(check string) "committed exactly the worker's bytes"
        "\x00\x01\x02\x03" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected exactly one committed shard");
  let s = Fleet.stats fleet in
  Alcotest.(check int) "one remote commit" 1 s.Fleet.remote_committed;
  Alcotest.(check bool) "cross-job frame counted as stale" true (s.Fleet.stale >= 1)

let suite =
  [
    Helpers.qcheck_to_alcotest prop_hex_roundtrip;
    Alcotest.test_case "hex rejects garbage" `Quick test_hex_rejects;
    Alcotest.test_case "grant/wait frames round-trip" `Quick test_grant_roundtrip;
    Alcotest.test_case "small frames round-trip" `Quick test_small_frames_roundtrip;
    Alcotest.test_case "result size bound" `Quick test_result_fits;
    Alcotest.test_case "lease lifecycle" `Quick test_lease_lifecycle;
    Helpers.qcheck_to_alcotest prop_no_double_commit;
    Alcotest.test_case "cross-job results never commit" `Quick
      test_cross_job_result_rejected;
  ]
