(* Dependent-cone replay: campaign outcome bytes through the optimized,
   cone-enabled fast path must be bit-identical to the reference — the
   structured tree-walking interpreter run per-case — for every discrete
   fault model, and the fallbacks (fuel, stochastic models, cone:false)
   must change nothing. This is the acceptance bar of the specializer:
   same bytes, only faster. *)

module Ir = Ftb_ir.Ir
module Pipeline = Ftb_ir.Pipeline
module Golden = Ftb_trace.Golden
module Program = Ftb_trace.Program
module Executor = Ftb_inject.Executor
module Ground_truth = Ftb_inject.Ground_truth
module Models = Ftb_inject.Models
module Ir_kernels = Ftb_kernels.Ir_kernels

(* Tiny kernels, mirroring [Test_ir_kernels.tiny], plus [normalize]
   (whose float branch forces cone fallback on branch-feeding sites). *)
let kernels =
  [
    ("ir.cg", fun () -> Ir_kernels.cg ~grid:3 ~iterations:3 ~tolerance:1e-4);
    ("ir.lu", fun () -> Ir_kernels.lu ~n:6 ~block:3 ~seed:7 ~tolerance:1e-4);
    ("ir.fft", fun () -> Ir_kernels.fft ~n1:4 ~n2:4 ~seed:11 ~tolerance:1.0);
    ("ir.jacobi", fun () -> Ir_kernels.jacobi ~grid:3 ~sweeps:2 ~tolerance:1e-4);
    ("ir.gemm", fun () -> Ir_kernels.gemm ~n:4 ~block:2 ~seed:21 ~tolerance:1e-3);
    ("ir.matmul", fun () -> Ir_kernels.matmul ~n:4 ~seed:9 ~tolerance:1e-3);
    ("ir.stencil", fun () -> Ir_kernels.stencil ~size:4 ~sweeps:2 ~seed:3 ~tolerance:1e-4);
    ("ir.normalize", fun () -> Ftb_ir.Programs.normalize ~n:12 ~seed:15 ~tolerance:1e-9);
  ]

(* Both lowerings of each kernel, built once: the optimized compiled
   program with the cone plan attached, and the reference interpreter. *)
let fixtures =
  lazy
    (List.map
       (fun (name, build) ->
         let ir = build () in
         ( name,
           Golden.run (Pipeline.to_program ir),
           Golden.run (Ir.to_program_interpreted ir) ))
       kernels)

let discrete_specs =
  List.map (fun model -> { Models.model; seed = 0 }) Models.all_discrete

let stochastic_spec = { Models.model = Models.Random_value { lo = -10.; hi = 10. }; seed = 5 }

let reference_bytes ?fuel spec golden =
  let total = Models.total_cases spec ~sites:(Golden.sites golden) in
  let buf = Bytes.create total in
  for case = 0 to total - 1 do
    Bytes.set buf case (Ground_truth.case_byte_model ?fuel spec golden case)
  done;
  buf

let check_model ?fuel what spec fast interp =
  let expected = reference_bytes ?fuel spec interp in
  let gt = Executor.ground_truth_model ~domains:1 ?fuel spec fast in
  Alcotest.(check bool)
    (Printf.sprintf "%s under %s%s: cone bytes = interpreted bytes" what
       (Models.spec_name spec)
       (match fuel with None -> "" | Some f -> Printf.sprintf " (fuel %d)" f))
    true
    (Bytes.equal expected gt.Ground_truth.outcomes)

let test_discrete_models_byte_identity () =
  List.iter
    (fun (name, fast, interp) ->
      Alcotest.(check int)
        (name ^ ": same site space")
        (Golden.sites interp) (Golden.sites fast);
      List.iter (fun spec -> check_model name spec fast interp) discrete_specs)
    (Lazy.force fixtures)

let test_stochastic_model_byte_identity () =
  (* Stochastic models never take the cone path; bytes must still match
     the interpreted reference through the per-case fallback. *)
  List.iter
    (fun (name, fast, interp) -> check_model name stochastic_spec fast interp)
    (Lazy.force fixtures)

let test_fuel_forces_fallback_identically () =
  (* Finite fuel disables cone replay (it performs no step bookkeeping);
     the snapshot path must take over with identical bytes. *)
  List.iter
    (fun (name, fast, interp) ->
      let fuel = max 1 (Golden.sites fast / 2) in
      check_model ~fuel name (List.hd discrete_specs) fast interp)
    (Lazy.force fixtures)

let test_cone_flag_changes_nothing () =
  List.iter
    (fun (name, fast, _) ->
      let with_cone = Executor.ground_truth ~domains:1 ~cone:true fast in
      let without = Executor.ground_truth ~domains:1 ~cone:false fast in
      Alcotest.(check bool) (name ^ ": cone:false = cone:true") true
        (Bytes.equal with_cone.Ground_truth.outcomes without.Ground_truth.outcomes))
    (Lazy.force fixtures)

let test_pooled_cone_campaign_identity () =
  (* The cone closures allocate per-site scratch, so domain-parallel
     campaigns must not interfere. *)
  List.iter
    (fun (name, fast, _) ->
      let serial = Executor.ground_truth ~domains:1 fast in
      let pooled = Executor.ground_truth ~domains:4 fast in
      Alcotest.(check bool) (name ^ ": pooled = serial") true
        (Bytes.equal serial.Ground_truth.outcomes pooled.Ground_truth.outcomes))
    (Lazy.force fixtures)

let test_cone_plans_exist_and_cover () =
  (* The plan must cover the full site space, and on branch-free kernels
     it must accept (not fall back on) most sites — otherwise the fast
     path is dead code and the perf claim is vacuous. *)
  List.iter
    (fun (name, fast, _) ->
      match fast.Golden.program.Program.cone with
      | None -> Alcotest.failf "%s: no cone capability" name
      | Some force -> (
          match force () with
          | None -> Alcotest.failf "%s: cone plan failed to build" name
          | Some plan ->
              Alcotest.(check int)
                (name ^ ": plan covers the site space")
                (Golden.sites fast) plan.Program.cone_sites;
              let accepted = ref 0 in
              for site = 0 to plan.Program.cone_sites - 1 do
                if plan.Program.cone_case ~site <> None then incr accepted
              done;
              if name <> "ir.normalize" && name <> "ir.cg" && name <> "ir.lu" then
                Alcotest.(check bool)
                  (Printf.sprintf "%s: cone accepts most sites (%d/%d)" name !accepted
                     plan.Program.cone_sites)
                  true
                  (!accepted * 2 > plan.Program.cone_sites)))
    (Lazy.force fixtures)

let suite =
  [
    Alcotest.test_case "discrete models: cone = interpreted bytes" `Quick
      test_discrete_models_byte_identity;
    Alcotest.test_case "stochastic model: fallback = interpreted bytes" `Quick
      test_stochastic_model_byte_identity;
    Alcotest.test_case "fuel forces identical fallback" `Quick
      test_fuel_forces_fallback_identically;
    Alcotest.test_case "cone flag is outcome-invariant" `Quick test_cone_flag_changes_nothing;
    Alcotest.test_case "pooled cone campaign = serial" `Quick
      test_pooled_cone_campaign_identity;
    Alcotest.test_case "cone plans cover the site space" `Quick
      test_cone_plans_exist_and_cover;
  ]
