module Boundary = Ftb_core.Boundary
module Ground_truth = Ftb_inject.Ground_truth
module Sample_run = Ftb_inject.Sample_run
module Golden = Ftb_trace.Golden
module Runner = Ftb_trace.Runner
module Fault = Ftb_trace.Fault

let golden = lazy (Golden.run (Helpers.linear_program ~tolerance:0.5 ()))
let gt = lazy (Ground_truth.run (Lazy.force golden))

let test_create () =
  let b = Boundary.create ~sites:5 in
  Alcotest.(check int) "sites" 5 (Boundary.sites b);
  for i = 0 to 4 do
    Helpers.check_close "zero thresholds" 0. (Boundary.threshold b i)
  done;
  match Boundary.create ~sites:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 sites accepted"

let test_add_masked_propagation_takes_max () =
  let b = Boundary.create ~sites:4 in
  Boundary.add_masked_propagation b ~start:1 [| 0.3; 0.1 |];
  Boundary.add_masked_propagation b ~start:1 [| 0.2; 0.4 |];
  Helpers.check_close "untouched site" 0. (Boundary.threshold b 0);
  Helpers.check_close "max aggregation" 0.3 (Boundary.threshold b 1);
  Helpers.check_close "max aggregation (second site)" 0.4 (Boundary.threshold b 2);
  Helpers.check_close "beyond coverage untouched" 0. (Boundary.threshold b 3);
  Alcotest.(check int) "support counts contributions" 2 b.Boundary.support.(1)

let test_zero_deviations_carry_no_evidence () =
  let b = Boundary.create ~sites:2 in
  Boundary.add_masked_propagation b ~start:0 [| 0.; 0. |];
  Alcotest.(check int) "no support from zero deviation" 0 b.Boundary.support.(0)

let test_coverage_bounds_checked () =
  let b = Boundary.create ~sites:2 in
  match Boundary.add_masked_propagation b ~start:1 [| 1.; 2. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range coverage accepted"

let test_filter_blocks_large_deviations () =
  let b = Boundary.create ~sites:2 in
  let floor = [| 0.25; infinity |] in
  Boundary.add_masked_propagation ~min_sdc_error:floor b ~start:0 [| 0.3; 0.3 |];
  Helpers.check_close "filtered out at site 0" 0. (Boundary.threshold b 0);
  Helpers.check_close "kept where no sdc floor" 0.3 (Boundary.threshold b 1)

let test_min_sdc_errors () =
  let mk outcome site err propagation =
    {
      Sample_run.fault = Fault.make ~site ~bit:0;
      outcome;
      crash_reason = None;
      injected_error = err;
      propagation;
    }
  in
  let samples =
    [|
      mk Runner.Sdc 0 0.5 None;
      mk Runner.Sdc 0 0.2 None;
      mk Runner.Crash 1 0.1 None;
      mk Runner.Masked 1 0.05 (Some (1, [| 0.05 |]));
    |]
  in
  let floor = Boundary.min_sdc_errors ~sites:3 samples in
  Helpers.check_close "min over sdc" 0.2 floor.(0);
  Helpers.check_close "crash ignored" infinity floor.(1);
  Helpers.check_close "no data" infinity floor.(2)

let test_infer_uses_only_masked () =
  let g = Lazy.force golden in
  (* site 0, bit 5 -> masked; site 0, bit 63 -> sdc. *)
  let samples =
    Array.map
      (fun bit -> Sample_run.run_case g (Fault.to_case (Fault.make ~site:0 ~bit)))
      [| 5; 63 |]
  in
  let b = Boundary.infer ~sites:Helpers.linear_sites samples in
  Alcotest.(check bool) "threshold from the masked sample only" true
    (Boundary.threshold b 0 > 0. && Boundary.threshold b 0 < 0.5)

let test_exhaustive_boundary_linear_program () =
  (* For the monotone linear program every site's threshold must be the
     largest masked injected error, and predicting with it reproduces the
     exact SDC set. *)
  let g = Lazy.force golden and t = Lazy.force gt in
  let b = Boundary.exhaustive t in
  for site = 0 to Helpers.linear_sites - 1 do
    let thr = Boundary.threshold b site in
    Alcotest.(check bool) "threshold within tolerance" true (thr <= 0.5 && thr > 0.);
    for bit = 0 to 63 do
      let fault = Fault.make ~site ~bit in
      let e = Ground_truth.injected_error g fault in
      match Ground_truth.outcome_of_fault t fault with
      | Runner.Masked ->
          Alcotest.(check bool) "masked cases sit at or below the boundary" true (e <= thr)
      | Runner.Sdc ->
          Alcotest.(check bool) "sdc cases sit above the boundary" true (e > thr)
      | Runner.Crash -> ()
    done
  done

let test_exhaustive_boundary_nonmonotonic_site () =
  (* x*(x-2) at x=0 with T=0.5: an injected error of exactly 2 is masked,
     but errors in (~0.27, ~1.7) are SDC — the masked-above-SDC sample must
     not raise the threshold past the smallest SDC error. *)
  let g = Golden.run (Helpers.nonmonotonic_program ~tolerance:0.5 ()) in
  let t = Ground_truth.run g in
  let b = Boundary.exhaustive t in
  let min_sdc = ref infinity in
  for bit = 0 to 63 do
    let fault = Fault.make ~site:0 ~bit in
    if Ground_truth.outcome_of_fault t fault = Runner.Sdc then begin
      let e = Ground_truth.injected_error g fault in
      if e < !min_sdc then min_sdc := e
    end
  done;
  Alcotest.(check bool) "site 0 has SDC cases" true (!min_sdc < infinity);
  Alcotest.(check bool) "threshold below the smallest SDC error" true
    (Boundary.threshold b 0 < !min_sdc)

let test_copy_is_independent () =
  let b = Boundary.create ~sites:2 in
  Boundary.add_masked_propagation b ~start:0 [| 0.1 |];
  let c = Boundary.copy b in
  Boundary.add_masked_propagation b ~start:0 [| 0.9 |];
  Helpers.check_close "copy unaffected" 0.1 (Boundary.threshold c 0)

let prop_threshold_monotone_in_samples =
  QCheck.Test.make ~name:"adding samples never lowers an unfiltered boundary" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 20) (int_bound (Helpers.linear_sites * 64 - 1)))
    (fun cases ->
      let g = Lazy.force golden in
      let samples = Array.map (Sample_run.run_case g) (Array.of_list cases) in
      let half = Array.sub samples 0 (Array.length samples / 2) in
      let b_half = Boundary.infer ~sites:Helpers.linear_sites half in
      let b_full = Boundary.infer ~sites:Helpers.linear_sites samples in
      let ok = ref true in
      for i = 0 to Helpers.linear_sites - 1 do
        if Boundary.threshold b_full i < Boundary.threshold b_half i then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "max aggregation (Algorithm 1)" `Quick
      test_add_masked_propagation_takes_max;
    Alcotest.test_case "zero deviations" `Quick test_zero_deviations_carry_no_evidence;
    Alcotest.test_case "coverage bounds" `Quick test_coverage_bounds_checked;
    Alcotest.test_case "filter operation" `Quick test_filter_blocks_large_deviations;
    Alcotest.test_case "min_sdc_errors" `Quick test_min_sdc_errors;
    Alcotest.test_case "infer uses only masked" `Quick test_infer_uses_only_masked;
    Alcotest.test_case "exhaustive boundary (monotone)" `Quick
      test_exhaustive_boundary_linear_program;
    Alcotest.test_case "exhaustive boundary (non-monotonic)" `Quick
      test_exhaustive_boundary_nonmonotonic_site;
    Alcotest.test_case "copy independent" `Quick test_copy_is_independent;
    Helpers.qcheck_to_alcotest prop_threshold_monotone_in_samples;
  ]
