(* IR pipeline smoke test (dune alias @ir-smoke).

   End-to-end gate for the optimizing pipeline + dependent-cone replay:
   every IR kernel port at a tiny configuration is lowered twice — through
   [Pipeline.to_program] (optimized, compiled, cone plan attached) and
   through [Ir.to_program_interpreted] (the tree-walking reference) — and
   an exhaustive campaign per fault model must produce bit-identical
   outcome bytes. Also asserts the cone fast path is actually taken
   (a plan exists and accepts sites) so a silent fallback regression
   cannot pass the gate, and that the optimizer shrank at least one
   kernel. Small configs: the whole smoke is a few seconds. *)

module Ir = Ftb_ir.Ir
module Passes = Ftb_ir.Passes
module Pipeline = Ftb_ir.Pipeline
module Golden = Ftb_trace.Golden
module Program = Ftb_trace.Program
module Ground_truth = Ftb_inject.Ground_truth
module Models = Ftb_inject.Models
module Executor = Ftb_inject.Executor
module Ir_kernels = Ftb_kernels.Ir_kernels

let failures = ref 0

let check what ok =
  if ok then Printf.printf "ok    %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL  %s\n%!" what
  end

let kernels =
  [
    ("ir.cg", fun () -> Ir_kernels.cg ~grid:3 ~iterations:3 ~tolerance:1e-4);
    ("ir.lu", fun () -> Ir_kernels.lu ~n:6 ~block:3 ~seed:7 ~tolerance:1e-4);
    ("ir.fft", fun () -> Ir_kernels.fft ~n1:4 ~n2:4 ~seed:11 ~tolerance:1.0);
    ("ir.jacobi", fun () -> Ir_kernels.jacobi ~grid:3 ~sweeps:2 ~tolerance:1e-4);
    ("ir.gemm", fun () -> Ir_kernels.gemm ~n:4 ~block:2 ~seed:21 ~tolerance:1e-3);
    ("ir.matmul", fun () -> Ir_kernels.matmul ~n:4 ~seed:9 ~tolerance:1e-3);
    ("ir.stencil", fun () -> Ir_kernels.stencil ~size:4 ~sweeps:2 ~seed:3 ~tolerance:1e-4);
  ]

let specs =
  List.map (fun model -> { Models.model; seed = 0 }) Models.all_discrete
  @ [ { Models.model = Models.Random_value { lo = -4.; hi = 4. }; seed = 9 } ]

let reference_bytes spec golden =
  let total = Models.total_cases spec ~sites:(Golden.sites golden) in
  String.init total (fun case -> Ground_truth.case_byte_model spec golden case)

let () =
  let shrunk = ref false in
  List.iter
    (fun (name, build) ->
      let ir = build () in
      (match Ir.validate ir with
      | Ok () -> check (name ^ ": validates") true
      | Error msgs ->
          check (Printf.sprintf "%s: validates (%s)" name (String.concat "; " msgs)) false);
      let optimized, stats = Pipeline.optimize_with_report ir in
      let before = Passes.op_count ir and after = Passes.op_count optimized in
      if after < before then shrunk := true;
      check
        (Printf.sprintf "%s: pipeline ran %d passes (%d -> %d ops)" name
           (List.length stats) before after)
        (after <= before);
      let fast = Golden.run (Pipeline.to_program ir) in
      let interp = Golden.run (Ir.to_program_interpreted ir) in
      check
        (Printf.sprintf "%s: same site space (%d)" name (Golden.sites fast))
        (Golden.sites fast = Golden.sites interp);
      (match fast.Golden.program.Program.cone with
      | None -> check (name ^ ": cone capability attached") false
      | Some force -> (
          match force () with
          | None -> check (name ^ ": cone plan builds") false
          | Some plan ->
              let accepted = ref 0 in
              for site = 0 to plan.Program.cone_sites - 1 do
                if plan.Program.cone_case ~site <> None then incr accepted
              done;
              check
                (Printf.sprintf "%s: cone accepts %d/%d sites" name !accepted
                   plan.Program.cone_sites)
                (!accepted > 0)));
      List.iter
        (fun spec ->
          let expected = reference_bytes spec interp in
          let gt = Executor.ground_truth_model ~domains:2 spec fast in
          check
            (Printf.sprintf "%s: %s bytes = interpreted reference" name
               (Models.spec_name spec))
            (String.equal expected (Bytes.to_string gt.Ground_truth.outcomes)))
        specs)
    kernels;
  check "pipeline shrinks at least one kernel" !shrunk;
  if !failures > 0 then begin
    Printf.printf "ir smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "ir smoke: all checks passed"
