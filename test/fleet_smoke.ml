(* Fleet smoke test (dune alias @fleet-smoke).

   End-to-end drill of the distributed worker fleet:

   1. Worker-death drill with real processes: fork a daemon with the
      fleet scheduler wired in, fork two worker processes that attach
      over the Unix socket, then SIGKILL one worker mid-campaign — the
      abandoned lease must expire and its shard re-run on the surviving
      worker, converging to outcome bytes bit-identical to the plain
      serial campaign. A second job then loses its *last* worker
      mid-flight, so the daemon's executor of last resort has to finish
      the wave on the local pool. The forks happen before the parent
      touches any domain pool, because a pool's worker domains do not
      survive fork().

   2. In-process socketpair fleet: two Worker.run threads attached to an
      in-process daemon over socketpairs; a campaign must be executed by
      leased shards (fleet stats show remote commits), complete
      bit-identically, and the workers must detach cleanly on stop. *)

module Ctx = Ftb_trace.Ctx
module Static = Ftb_trace.Static
module Program = Ftb_trace.Program
module Golden = Ftb_trace.Golden
module Ground_truth = Ftb_inject.Ground_truth
module Models = Ftb_inject.Models
module Executor = Ftb_inject.Executor
module Checkpoint = Ftb_campaign.Checkpoint
module Job = Ftb_service.Job
module Client = Ftb_service.Client
module Server = Ftb_service.Server
module Fleet = Ftb_dist.Fleet
module Worker = Ftb_dist.Worker

let failures = ref 0

let check what ok =
  if ok then Printf.printf "ok    %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL  %s\n%!" what
  end

(* Damped fixed-point iteration on a 4-vector (same family as the other
   smokes): "drill" is big enough that a SIGKILL lands mid-campaign,
   "quick" keeps the in-process part fast. *)
let make_program ~name ~iters =
  let statics = Static.create_table () in
  let tag_load = Static.register statics ~phase:"fleet.load" ~label:"x[i]" in
  let tag_iter = Static.register statics ~phase:"fleet.iter" ~label:"x[i] update" in
  let tag_out = Static.register statics ~phase:"fleet.out" ~label:"sum" in
  let body ctx =
    let x =
      Array.map (fun v -> Ctx.record ctx ~tag:tag_load v) [| 1.0; 2.0; 3.0; 4.0 |]
    in
    for _iter = 1 to iters do
      for i = 0 to 3 do
        let left = x.((i + 3) mod 4) and right = x.((i + 1) mod 4) in
        x.(i) <- Ctx.record ctx ~tag:tag_iter ((x.(i) +. (0.25 *. (left +. right))) /. 1.5)
      done
    done;
    [| Ctx.record ctx ~tag:tag_out (Array.fold_left ( +. ) 0. x) |]
  in
  Program.make ~name ~description:"damped fixed-point iteration" ~tolerance:0.05
    ~statics body

let drill_program = make_program ~name:"fleet.drill" ~iters:40
let quick_program = make_program ~name:"fleet.quick" ~iters:12

let resolve = function
  | "fleet.drill" -> drill_program
  | "fleet.quick" -> quick_program
  | name -> invalid_arg (Printf.sprintf "unknown benchmark %S" name)

let fuel = 10_000
let lease_ttl = 0.5

let fresh_dir tag =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftb_fleet_smoke_%s_%d" tag (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists path then rm path;
  Unix.mkdir path 0o755;
  path

let get_ok what = function
  | Ok v -> v
  | Error (e : Client.error) ->
      check what false;
      failwith (Printf.sprintf "%s: daemon error %s: %s" what e.Client.code e.Client.message)

let server_config ~state_dir fleet =
  {
    (Server.default_config ~state_dir) with
    Server.domains = 1;
    resolve;
    extension = Some (Fleet.extension fleet);
    wave_runner = Some (Fleet.wave_runner fleet);
  }

(* ------------------------------------------------------------------ *)
(* Part 1: fork a daemon + two workers, SIGKILL workers mid-campaign.   *)

let spawn_daemon ~state_dir sock =
  match Unix.fork () with
  | 0 ->
      let fleet = Fleet.create ~lease_ttl () in
      let t = Server.create (server_config ~state_dir fleet) in
      (match Server.run ~socket:sock t with
      | () -> Unix._exit 0
      | exception _ -> Unix._exit 1)
  | pid -> pid

let connect_fd_with_retry sock =
  let rec go attempts =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempts > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.05);
        go (attempts - 1)
  in
  go 200

(* A worker process: attaches to the daemon's socket and serves leases
   until the daemon hangs up (or it is SIGKILLed by the drill). The first
   log line only ever follows a successful registration, so writing one
   byte to [ready_w] on it tells the parent the worker is attached. *)
let spawn_worker sock ready_w =
  match Unix.fork () with
  | 0 ->
      let signalled = ref false in
      let log _msg =
        if not !signalled then begin
          signalled := true;
          ignore (Unix.write ready_w (Bytes.make 1 'r') 0 1)
        end
      in
      let cfg =
        Worker.config ~domains:1 ~resolve ~log (fun () -> connect_fd_with_retry sock)
      in
      (match Worker.run cfg with
      | (_ : Worker.stats) -> Unix._exit 0
      | exception _ -> Unix._exit 1)
  | pid -> pid

let wait_worker_ready what ready_r =
  match Unix.select [ ready_r ] [] [] 30.0 with
  | [ _ ], _, _ ->
      ignore (Unix.read ready_r (Bytes.create 1) 0 1);
      check what true
  | _ -> check what false

let connect_client_with_retry sock =
  let rec go attempts =
    match Client.connect ~socket:sock with
    | client -> client
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempts > 0 ->
        ignore (Unix.select [] [] [] 0.05);
        go (attempts - 1)
  in
  go 200

(* Submit one drill campaign and SIGKILL [victim] once it is
   demonstrably mid-flight; returns the final job descriptor. *)
let run_job_killing client ~what ~victim =
  let spec =
    { (Job.default_spec ~bench:"fleet.drill") with Job.shard_size = 128; fuel = Some fuel }
  in
  let id = get_ok (what ^ ": submit") (Client.submit client spec) in
  let killed = ref false in
  let final =
    get_ok (what ^ ": watch")
      (Client.watch client id ~on_event:(function
         | Client.Progress { shards_done; cases_done; cases_total; _ } ->
             if (not !killed) && shards_done >= 2 && cases_done < cases_total then begin
               killed := true;
               Unix.kill victim Sys.sigkill
             end
         | Client.Round _ | Client.Worker_quarantined _ -> ()))
  in
  check (what ^ ": worker killed mid-campaign") !killed;
  if not !killed then (try Unix.kill victim Sys.sigkill with Unix.Unix_error _ -> ());
  (id, final)

let check_bit_identical what ~state_dir ~shard_size id =
  let golden = Golden.run drill_program in
  let reference = Ground_truth.run ~fuel golden in
  match Checkpoint.load ~path:(Job.checkpoint_path ~state_dir id) ~shard_size golden with
  | state ->
      check what
        (Checkpoint.is_complete state
        && Bytes.equal reference.Ground_truth.outcomes state.Checkpoint.outcomes)
  | exception _ -> check what false

let worker_death_test () =
  let state_dir = fresh_dir "drill" in
  let sock = Filename.concat state_dir "daemon.sock" in
  let ready_r, ready_w = Unix.pipe () in

  let daemon = spawn_daemon ~state_dir sock in
  let w1 = spawn_worker sock ready_w in
  let w2 = spawn_worker sock ready_w in
  wait_worker_ready "first worker attached" ready_r;
  wait_worker_ready "second worker attached" ready_r;

  let client = connect_client_with_retry sock in

  (* Job 1: kill one of two workers mid-lease. The abandoned shard's lease
     expires and the survivor picks it up; the job must still complete
     with bytes bit-identical to the serial campaign. *)
  let id1, final1 = run_job_killing client ~what:"one-dead" ~victim:w1 in
  check "one-dead: job completed despite worker death"
    (final1.Job.status = Job.Completed);
  check_bit_identical "one-dead: outcome bytes bit-identical to serial run"
    ~state_dir ~shard_size:128 id1;

  (* Job 2: kill the *last* worker mid-lease. With zero live workers the
     scheduler's executor of last resort finishes the wave on the local
     pool, so the job still terminates — and still bit-identically. *)
  let id2, final2 = run_job_killing client ~what:"all-dead" ~victim:w2 in
  check "all-dead: job completed via local executor of last resort"
    (final2.Job.status = Job.Completed);
  check_bit_identical "all-dead: outcome bytes bit-identical to serial run"
    ~state_dir ~shard_size:128 id2;

  get_ok "drill daemon shutdown" (Client.shutdown client);
  (match Unix.waitpid [] daemon with
  | _, Unix.WEXITED 0 -> check "drill daemon exited cleanly" true
  | _, _ -> check "drill daemon exited cleanly" false);
  (match Unix.waitpid [] w1 with
  | _, Unix.WSIGNALED s when s = Sys.sigkill ->
      check "first worker died by SIGKILL" true
  | _, _ -> check "first worker died by SIGKILL" false);
  (match Unix.waitpid [] w2 with
  | _, Unix.WSIGNALED s when s = Sys.sigkill ->
      check "second worker died by SIGKILL" true
  | _, _ -> check "second worker died by SIGKILL" false);
  Client.close client;
  Unix.close ready_r;
  Unix.close ready_w

(* ------------------------------------------------------------------ *)
(* Part 2: in-process fleet over socketpairs.                           *)

let socketpair_fleet_test () =
  let state_dir = fresh_dir "pair" in
  let fleet = Fleet.create ~lease_ttl () in
  let t = Server.create (server_config ~state_dir fleet) in
  Server.start t;
  let connect () =
    let server_fd, peer_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    ignore (Thread.create (fun () -> Server.serve_connection t server_fd) ());
    peer_fd
  in

  (* Two in-process workers; [stop] detaches them once the job is done. *)
  let stop = Atomic.make false in
  let worker_thread () =
    Thread.create
      (fun () -> Worker.run (Worker.config ~domains:1 ~resolve ~stop:(fun () -> Atomic.get stop) connect))
      ()
  in
  let wt1 = worker_thread () in
  let wt2 = worker_thread () in
  let rec await_workers attempts =
    if Fleet.live_workers fleet >= 2 then true
    else if attempts = 0 then false
    else begin
      ignore (Unix.select [] [] [] 0.02);
      await_workers (attempts - 1)
    end
  in
  check "both in-process workers registered" (await_workers 500);

  let client = Client.of_fd (connect ()) in
  let spec =
    { (Job.default_spec ~bench:"fleet.quick") with Job.shard_size = 64; fuel = Some fuel }
  in
  let id = get_ok "submit fleet job" (Client.submit client spec) in
  let events = ref 0 in
  let final =
    get_ok "watch fleet job" (Client.watch client id ~on_event:(fun _ -> incr events))
  in
  check "fleet job completed" (final.Job.status = Job.Completed);
  check "watch streamed progress events" (!events >= 1);

  let golden = Golden.run quick_program in
  let reference = Ground_truth.run ~fuel golden in
  (match Checkpoint.load ~path:(Job.checkpoint_path ~state_dir id) ~shard_size:64 golden with
  | state ->
      check "fleet outcome bytes bit-identical to serial run"
        (Checkpoint.is_complete state
        && Bytes.equal reference.Ground_truth.outcomes state.Checkpoint.outcomes)
  | exception _ -> check "fleet outcome bytes bit-identical to serial run" false);
  (* The checkpoint a fleet campaign persists carries the same golden
     fingerprint as a local one: loading against an independently rebuilt
     golden (above) would have failed otherwise, and the fingerprint in
     every grant matches it. *)
  check "grant fingerprint matches the local golden"
    (Checkpoint.fingerprint_of_golden golden
    = Checkpoint.fingerprint_of_golden (Golden.run (resolve "fleet.quick")));

  let s = Fleet.stats fleet in
  check "shards were executed remotely" (s.Fleet.remote_committed > 0);
  check "every remote commit came from a grant" (s.Fleet.granted >= s.Fleet.remote_committed);
  let total = Golden.cases golden in
  let shards = (total + 63) / 64 in
  check "every shard accounted for (remote + local)"
    (s.Fleet.remote_committed + s.Fleet.local_committed >= shards);

  (* Clean detach: stop the workers, then drain the daemon. *)
  Atomic.set stop true;
  Thread.join wt1;
  Thread.join wt2;
  check "workers detached from live set" (Fleet.live_workers fleet = 0);
  get_ok "fleet daemon shutdown" (Client.shutdown client);
  Server.join t;
  check "fleet daemon drained cleanly" true;
  Client.close client

(* ------------------------------------------------------------------ *)
(* Part 3: in-process fleet under non-default fault models.             *)

let model_specs : Models.spec list =
  [
    { model = Models.Bit_flip_32; seed = 0 };
    { model = Models.Random_value { lo = -50.; hi = 50. }; seed = 7 };
  ]

let model_fleet_test () =
  let state_dir = fresh_dir "model" in
  let fleet = Fleet.create ~lease_ttl () in
  let t = Server.create (server_config ~state_dir fleet) in
  Server.start t;
  let connect () =
    let server_fd, peer_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    ignore (Thread.create (fun () -> Server.serve_connection t server_fd) ());
    peer_fd
  in
  let stop = Atomic.make false in
  let worker_thread () =
    Thread.create
      (fun () -> Worker.run (Worker.config ~domains:1 ~resolve ~stop:(fun () -> Atomic.get stop) connect))
      ()
  in
  let wt1 = worker_thread () in
  let wt2 = worker_thread () in
  let rec await_workers attempts =
    if Fleet.live_workers fleet >= 2 then true
    else if attempts = 0 then false
    else begin
      ignore (Unix.select [] [] [] 0.02);
      await_workers (attempts - 1)
    end
  in
  check "model fleet: both workers registered" (await_workers 500);

  let client = Client.of_fd (connect ()) in
  let golden = Golden.run quick_program in
  let committed_before = ref (Fleet.stats fleet).Fleet.remote_committed in
  List.iter
    (fun (spec : Models.spec) ->
      let what = Models.spec_name spec in
      let job_spec =
        { (Job.default_spec ~bench:"fleet.quick") with
          Job.shard_size = 64;
          fuel = Some fuel;
          model = spec;
        }
      in
      let id = get_ok (what ^ ": submit") (Client.submit client job_spec) in
      let final = get_ok (what ^ ": watch") (Client.watch client id) in
      check (what ^ ": fleet job completed") (final.Job.status = Job.Completed);
      (* Leased shards must reproduce the direct serial campaign under the
         same model bit-for-bit — for the stochastic model this checks the
         per-(site,case) seed derivation is scheduling-independent. *)
      let reference = Executor.ground_truth_model ~domains:1 ~fuel spec golden in
      (match
         Checkpoint.load ~model:spec
           ~path:(Job.checkpoint_path ~state_dir id)
           ~shard_size:64 golden
       with
      | state ->
          check (what ^ ": fleet bytes bit-identical to serial model campaign")
            (Checkpoint.is_complete state
            && Bytes.equal reference.Ground_truth.outcomes state.Checkpoint.outcomes)
      | exception _ ->
          check (what ^ ": fleet bytes bit-identical to serial model campaign") false);
      let committed = (Fleet.stats fleet).Fleet.remote_committed in
      check (what ^ ": shards were executed remotely") (committed > !committed_before);
      committed_before := committed)
    model_specs;

  Atomic.set stop true;
  Thread.join wt1;
  Thread.join wt2;
  get_ok "model fleet daemon shutdown" (Client.shutdown client);
  Server.join t;
  Client.close client

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.printf "fleet smoke: drill=%d sites, quick=%d sites (lease ttl %.2fs)\n%!"
    (Golden.sites (Golden.run drill_program))
    (Golden.sites (Golden.run quick_program))
    lease_ttl;
  worker_death_test ();
  socketpair_fleet_test ();
  model_fleet_test ();
  if !failures > 0 then begin
    Printf.printf "%d smoke check(s) failed\n" !failures;
    exit 1
  end;
  print_endline "fleet smoke passed"
