module Ctx = Ftb_trace.Ctx
module Fault = Ftb_trace.Fault
module Bits = Ftb_util.Bits

let run_values ctx values =
  Array.iteri (fun i v -> ignore (Ctx.record ctx ~tag:i v)) values

let test_golden_records () =
  let ctx = Ctx.golden () in
  let values = [| 1.; 2.; 3. |] in
  run_values ctx values;
  Alcotest.(check int) "length" 3 (Ctx.length ctx);
  Alcotest.(check (array (Helpers.close ()))) "values" values (Ctx.trace_values ctx);
  Alcotest.(check (array int)) "statics" [| 0; 1; 2 |] (Ctx.trace_statics ctx);
  Alcotest.(check bool) "no injection" true (Ctx.injection ctx = None)

let test_golden_returns_value () =
  let ctx = Ctx.golden () in
  Helpers.check_close "record returns value" 42. (Ctx.record ctx ~tag:0 42.)

let test_injection_flips_target () =
  let fault = Fault.make ~site:1 ~bit:Bits.sign_bit in
  let ctx = Ctx.outcome_only ~fault () in
  Helpers.check_close "site 0 untouched" 5. (Ctx.record ctx ~tag:0 5.);
  Helpers.check_close "site 1 sign-flipped" (-7.) (Ctx.record ctx ~tag:1 7.);
  Helpers.check_close "site 2 untouched" 9. (Ctx.record ctx ~tag:2 9.);
  match Ctx.injection ctx with
  | Some (original, corrupted) ->
      Helpers.check_close "original" 7. original;
      Helpers.check_close "corrupted" (-7.) corrupted
  | None -> Alcotest.fail "injection not recorded"

let test_injection_not_reached () =
  let fault = Fault.make ~site:10 ~bit:0 in
  let ctx = Ctx.outcome_only ~fault () in
  run_values ctx [| 1.; 2. |];
  Alcotest.(check bool) "target past end: no injection" true (Ctx.injection ctx = None)

let test_outcome_only_has_no_trace () =
  let ctx = Ctx.outcome_only ~fault:(Fault.make ~site:0 ~bit:0) () in
  run_values ctx [| 1. |];
  Alcotest.check_raises "trace_values rejected"
    (Invalid_argument "Ctx.trace_values: outcome-only context has no trace") (fun () ->
      ignore (Ctx.trace_values ctx))

let test_propagation_traces_corrupted_values () =
  let fault = Fault.make ~site:0 ~bit:Bits.sign_bit in
  let golden_statics = [| 0; 1 |] in
  let ctx = Ctx.propagation ~fault ~golden_statics () in
  let x = Ctx.record ctx ~tag:0 2. in
  ignore (Ctx.record ctx ~tag:1 (x +. 1.));
  Alcotest.(check (array (Helpers.close ()))) "trace holds faulty values" [| -2.; -1. |]
    (Ctx.trace_values ctx);
  Alcotest.(check bool) "no divergence: same tags" true (Ctx.diverged_at ctx = None)

let test_divergence_on_tag_mismatch () =
  let fault = Fault.make ~site:0 ~bit:0 in
  let golden_statics = [| 0; 1; 2 |] in
  let ctx = Ctx.propagation ~fault ~golden_statics () in
  ignore (Ctx.record ctx ~tag:0 1.);
  ignore (Ctx.record ctx ~tag:7 2.);
  (* different static instruction *)
  ignore (Ctx.record ctx ~tag:2 3.);
  Alcotest.(check (option int)) "diverged at 1" (Some 1) (Ctx.diverged_at ctx)

let test_divergence_on_longer_run () =
  let fault = Fault.make ~site:0 ~bit:0 in
  let golden_statics = [| 0 |] in
  let ctx = Ctx.propagation ~fault ~golden_statics () in
  ignore (Ctx.record ctx ~tag:0 1.);
  ignore (Ctx.record ctx ~tag:0 2.);
  (* one instruction past the golden run *)
  Alcotest.(check (option int)) "diverged at golden length" (Some 1) (Ctx.diverged_at ctx)

let test_guard_finite () =
  let ctx = Ctx.golden () in
  Helpers.check_close "finite passes" 3. (Ctx.guard_finite ctx "spot" 3.);
  Alcotest.check_raises "nan trapped"
    (Ctx.Crash { reason = Ctx.Nan_value; what = "non-finite value trapped at spot" })
    (fun () -> ignore (Ctx.guard_finite ctx "spot" nan));
  Alcotest.check_raises "inf trapped"
    (Ctx.Crash { reason = Ctx.Inf_value; what = "non-finite value trapped at spot" })
    (fun () -> ignore (Ctx.guard_finite ctx "spot" infinity))

let test_fuel_exhaustion () =
  let ctx = Ctx.golden ~fuel:3 () in
  run_values ctx [| 1.; 2.; 3. |];
  Alcotest.(check (option int)) "fuel spent" (Some 0) (Ctx.remaining_fuel ctx);
  Alcotest.check_raises "fourth record crashes"
    (Ctx.Crash
       {
         reason = Ctx.Fuel_exhausted;
         what = "step budget exhausted after 3 dynamic instructions";
       })
    (fun () -> ignore (Ctx.record ctx ~tag:3 4.))

let test_no_fuel_is_unbounded () =
  let ctx = Ctx.golden () in
  run_values ctx (Array.make 1000 1.);
  Alcotest.(check (option int)) "no budget tracked" None (Ctx.remaining_fuel ctx)

let test_fuel_must_be_positive () =
  Alcotest.check_raises "zero fuel rejected"
    (Invalid_argument "Ctx: fuel must be positive") (fun () ->
      ignore (Ctx.golden ~fuel:0 ()))

let test_flip_to_nan_recorded_as_injection () =
  (* Flipping the top exponent bit of 1.0 produces a non-finite value; the
     injection pair must still be observable. *)
  let fault = Fault.make ~site:0 ~bit:62 in
  let ctx = Ctx.outcome_only ~fault () in
  let v = Ctx.record ctx ~tag:0 1. in
  Alcotest.(check bool) "returned value non-finite" false (Bits.is_finite v);
  match Ctx.injection ctx with
  | Some (original, corrupted) ->
      Helpers.check_close "original" 1. original;
      Alcotest.(check bool) "corrupted non-finite" false (Bits.is_finite corrupted)
  | None -> Alcotest.fail "injection not recorded"

let suite =
  [
    Alcotest.test_case "golden records" `Quick test_golden_records;
    Alcotest.test_case "golden returns value" `Quick test_golden_returns_value;
    Alcotest.test_case "injection flips target" `Quick test_injection_flips_target;
    Alcotest.test_case "injection not reached" `Quick test_injection_not_reached;
    Alcotest.test_case "outcome-only has no trace" `Quick test_outcome_only_has_no_trace;
    Alcotest.test_case "propagation traces corrupted values" `Quick
      test_propagation_traces_corrupted_values;
    Alcotest.test_case "divergence on tag mismatch" `Quick test_divergence_on_tag_mismatch;
    Alcotest.test_case "divergence on longer run" `Quick test_divergence_on_longer_run;
    Alcotest.test_case "guard_finite" `Quick test_guard_finite;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "no fuel is unbounded" `Quick test_no_fuel_is_unbounded;
    Alcotest.test_case "fuel must be positive" `Quick test_fuel_must_be_positive;
    Alcotest.test_case "flip to nan recorded" `Quick test_flip_to_nan_recorded_as_injection;
  ]
