(* Decorrelated-jitter backoff: delay bounds, cap clamping, retry
   accounting, and environment-knob parsing. Sleeps are injected, so the
   suite never actually waits. *)

module Backoff = Ftb_util.Backoff
module Rng = Ftb_util.Rng

let test_policy_validation () =
  let rejects f = match f () with
    | _ -> Alcotest.fail "bad policy accepted"
    | exception Invalid_argument _ -> ()
  in
  rejects (fun () -> Backoff.policy ~base:0. ());
  rejects (fun () -> Backoff.policy ~base:1. ~cap:0.5 ());
  rejects (fun () -> Backoff.policy ~max_attempts:0 ())

let test_delays_within_bounds () =
  let policy = Backoff.policy ~base:0.1 ~cap:2.0 () in
  let rng = Rng.create ~seed:7 in
  let previous = ref 0. in
  for _ = 1 to 1000 do
    let d = Backoff.next_delay rng policy ~previous:!previous in
    Alcotest.(check bool) "delay >= base" true (d >= policy.Backoff.base);
    Alcotest.(check bool) "delay <= cap" true (d <= policy.Backoff.cap);
    Alcotest.(check bool) "delay <= 3 * previous (or cap bound)" true
      (d <= Float.min policy.Backoff.cap (3. *. Float.max !previous policy.Backoff.base));
    previous := d
  done

let test_delays_grow_under_sustained_failure () =
  (* With a generous cap the expected delay grows roughly exponentially:
     after a handful of failures the mean delay must dwarf the base. *)
  let policy = Backoff.policy ~base:0.01 ~cap:1000. ~max_attempts:12 () in
  let mean_delay_at step =
    let acc = ref 0. in
    let trials = 200 in
    for seed = 1 to trials do
      let rng = Rng.create ~seed in
      let d = ref 0. in
      for _ = 1 to step do
        d := Backoff.next_delay rng policy ~previous:!d
      done;
      acc := !acc +. !d
    done;
    !acc /. float_of_int trials
  in
  Alcotest.(check bool) "delays grow by an order of magnitude" true
    (mean_delay_at 8 > 10. *. mean_delay_at 1)

let test_retry_succeeds_after_failures () =
  let sleeps = ref [] in
  let attempts = ref 0 in
  let result =
    Backoff.retry
      ~policy:(Backoff.policy ~base:0.05 ~cap:1.0 ~max_attempts:10 ())
      ~sleep:(fun d -> sleeps := d :: !sleeps)
      (fun ~attempt ->
        incr attempts;
        Alcotest.(check int) "attempt numbers count up" (!attempts - 1) attempt;
        if attempt < 3 then Backoff.Retry (Failure "transient")
        else Backoff.Done "payload")
  in
  Alcotest.(check bool) "eventual success" true (result = Ok "payload");
  Alcotest.(check int) "one sleep per failed attempt" 3 (List.length !sleeps);
  List.iter
    (fun d ->
      Alcotest.(check bool) "recorded sleeps within policy" true
        (d >= 0.05 && d <= 1.0))
    !sleeps

let test_retry_exhausts_attempts () =
  let attempts = ref 0 in
  let result =
    Backoff.retry
      ~policy:(Backoff.policy ~max_attempts:4 ())
      ~sleep:(fun _ -> ())
      (fun ~attempt:_ ->
        incr attempts;
        Backoff.Retry (Failure "still down"))
  in
  Alcotest.(check int) "every attempt consumed" 4 !attempts;
  match result with
  | Error (Failure msg) -> Alcotest.(check string) "last failure surfaced" "still down" msg
  | Ok _ | Error _ -> Alcotest.fail "exhausted retry did not report the failure"

let test_retry_first_try_sleeps_nothing () =
  let slept = ref false in
  let result =
    Backoff.retry
      ~sleep:(fun _ -> slept := true)
      (fun ~attempt:_ -> Backoff.Done 42)
  in
  Alcotest.(check bool) "no sleep on immediate success" false !slept;
  Alcotest.(check bool) "value returned" true (result = Ok 42)

let with_env bindings f =
  let old = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) bindings in
  List.iter (fun (k, v) -> Unix.putenv k v) bindings;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (k, v) -> Unix.putenv k (Option.value v ~default:"")) old)
    f

let test_env_knobs () =
  with_env
    [ ("FTB_RETRY_BASE", "0.25"); ("FTB_RETRY_CAP", "9"); ("FTB_RETRY_ATTEMPTS", "3") ]
    (fun () ->
      let p = Backoff.from_env () in
      Alcotest.(check bool) "base" true (p.Backoff.base = 0.25);
      Alcotest.(check bool) "cap" true (p.Backoff.cap = 9.);
      Alcotest.(check int) "attempts" 3 p.Backoff.max_attempts);
  (* Malformed values fall back to the policy defaults. *)
  with_env
    [ ("FTB_RETRY_BASE", "banana"); ("FTB_RETRY_CAP", "-4"); ("FTB_RETRY_ATTEMPTS", "0") ]
    (fun () ->
      let p = Backoff.from_env () in
      Alcotest.(check bool) "defaults survive garbage" true (p = Backoff.default))

let suite =
  [
    Alcotest.test_case "policy validation" `Quick test_policy_validation;
    Alcotest.test_case "delays within bounds" `Quick test_delays_within_bounds;
    Alcotest.test_case "delays grow under sustained failure" `Quick
      test_delays_grow_under_sustained_failure;
    Alcotest.test_case "retry succeeds after failures" `Quick
      test_retry_succeeds_after_failures;
    Alcotest.test_case "retry exhausts attempts" `Quick test_retry_exhausts_attempts;
    Alcotest.test_case "first try sleeps nothing" `Quick
      test_retry_first_try_sleeps_nothing;
    Alcotest.test_case "environment knobs" `Quick test_env_knobs;
  ]
