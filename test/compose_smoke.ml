(* Compositional cache smoke test (dune alias @compose-smoke).

   End-to-end gate for the profile cache, differential throughout:

   1. Direct composer: for every IR kernel (tiny configs) x every fault
      model — cold composed campaign, then a full-hit resubmission, both
      byte-identical to Executor.ground_truth_model; the full hit must
      execute zero cases.
   2. One-section edit: a golden-value-preserving edit to the first
      peeled section of a blocked-gemm kernel re-executes only that
      section's cases, and the composed boundary byte-matches the edited
      program's from-scratch campaign.
   3. Daemon: submit -> resubmit identical (served from the boundary
      cache without scheduling any pool or fleet work) -> resubmit a
      one-section edit (reduced campaign), each byte-identical to the
      direct campaign, with cache provenance reported over the wire. *)

module Ir = Ftb_ir.Ir
module Golden = Ftb_trace.Golden
module Models = Ftb_inject.Models
module Executor = Ftb_inject.Executor
module Ground_truth = Ftb_inject.Ground_truth
module Checkpoint = Ftb_campaign.Checkpoint
module Ir_kernels = Ftb_kernels.Ir_kernels
module Section = Ftb_compose.Section
module Store = Ftb_compose.Store
module Compose = Ftb_compose.Compose
module Server = Ftb_service.Server
module Client = Ftb_service.Client
module Job = Ftb_service.Job
module Json = Ftb_service.Json

let failures = ref 0

let check what ok =
  if ok then Printf.printf "ok    %s\n%!" what
  else begin
    incr failures;
    Printf.printf "FAIL  %s\n%!" what
  end

let fresh_dir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun entry -> rm_rf (Filename.concat path entry)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Part 1: direct composer, every kernel x every model.                *)

let kernels =
  [
    ("ir.cg", fun () -> Ir_kernels.cg ~grid:3 ~iterations:3 ~tolerance:1e-4);
    ("ir.lu", fun () -> Ir_kernels.lu ~n:6 ~block:3 ~seed:7 ~tolerance:1e-4);
    ("ir.fft", fun () -> Ir_kernels.fft ~n1:4 ~n2:4 ~seed:11 ~tolerance:1.0);
    ("ir.jacobi", fun () -> Ir_kernels.jacobi ~grid:3 ~sweeps:2 ~tolerance:1e-4);
    ("ir.gemm", fun () -> Ir_kernels.gemm ~n:4 ~block:2 ~seed:21 ~tolerance:1e-3);
    ("ir.matmul", fun () -> Ir_kernels.matmul ~n:4 ~seed:9 ~tolerance:1e-3);
    ("ir.stencil", fun () -> Ir_kernels.stencil ~size:4 ~sweeps:2 ~seed:3 ~tolerance:1e-4);
  ]

let specs =
  List.map (fun model -> { Models.model; seed = 0 }) Models.all_discrete
  @ [ { Models.model = Models.Random_value { lo = -4.; hi = 4. }; seed = 9 } ]

let direct_part () =
  let root = fresh_dir "ftb-compose-smoke" in
  let store = Store.open_ ~root in
  List.iter
    (fun (name, build) ->
      let ir = build () in
      let golden = Golden.run (Ftb_ir.Pipeline.to_program ir) in
      List.iter
        (fun spec ->
          let tag = Printf.sprintf "%s/%s" name (Models.spec_to_string spec) in
          let direct = Executor.ground_truth_model spec golden in
          let cold = Compose.run ~model:spec store ~ir golden in
          check (tag ^ ": cold composed bytes = direct")
            (Bytes.equal cold.Compose.outcomes direct.Ground_truth.outcomes);
          let hit = Compose.run ~model:spec store ~ir golden in
          check (tag ^ ": resubmission is a full hit")
            (hit.Compose.provenance = Compose.Full);
          check (tag ^ ": full hit executed zero cases")
            (hit.Compose.cases_executed = 0);
          check (tag ^ ": full-hit bytes = direct")
            (Bytes.equal hit.Compose.outcomes direct.Ground_truth.outcomes))
        specs)
    kernels;
  let stats = Store.stats store in
  check
    (Printf.sprintf "store populated (%d entries, %d boundaries)" stats.Store.entries
       stats.Store.boundaries)
    (stats.Store.entries > 0 && stats.Store.boundaries > 0 && stats.Store.quarantined = 0);
  rm_rf root

(* ------------------------------------------------------------------ *)
(* Part 2: one-section edit on a peelable blocked kernel.              *)

(* A gemm-style kernel: one top-level loop over [nb] panels that the
   sectionizer peels into [nb] sections. [edit_first] guards a
   golden-value-preserving edit (commuted multiplication operands —
   bit-identical products for the finite golden values) under
   [kb = 0], so after per-iteration specialization only the first
   section's canonical text changes. *)
let panel_kernel ~n ~nb ~edit_first () =
  let t = Ir.create ~name:"smoke.panels" ~tolerance:1e-3 in
  let rng = ref 77 in
  let rand () =
    rng := (!rng * 1103515245) + 12345;
    float_of_int (!rng land 0xffff) /. 65536.
  in
  let a = Ir.array t ~name:"a" ~init:(Array.init n (fun _ -> rand ())) in
  let c = Ir.array t ~name:"c" ~init:(Array.make n 0.) in
  Ir.output_array t c;
  let kb = Ir.ireg t and i = Ir.ireg t in
  let acc = Ir.freg t in
  let open Ir in
  let base = Imul (Ireg kb, Iconst (n / nb)) in
  let idx = Iadd (base, Ireg i) in
  let straight = Fmul (Fload (a, idx), Fconst 1.5) in
  let swapped = Fmul (Fconst 1.5, Fload (a, idx)) in
  let body_at mul =
    [
      For
        ( i,
          Iconst 0,
          Iconst (n / nb),
          [
            Fassign (acc, mul, "panel.mul");
            Store (c, idx, Fadd (Freg acc, Fconst 0.25), "panel.store");
          ] );
    ]
  in
  let inner =
    if edit_first then
      [ If (Icmp (`Eq, Ireg kb, Iconst 0), body_at swapped, body_at straight) ]
    else body_at straight
  in
  Ir.set_body t [ For (kb, Iconst 0, Iconst nb, inner) ];
  t

let edit_part () =
  let root = fresh_dir "ftb-compose-edit" in
  let store = Store.open_ ~root in
  let nb = 4 and n = 16 in
  let model = Models.default_spec in
  let base = panel_kernel ~n ~nb ~edit_first:false () in
  let edited = panel_kernel ~n ~nb ~edit_first:true () in
  let golden_base = Golden.run (Ftb_ir.Pipeline.to_program base) in
  let golden_edit = Golden.run (Ftb_ir.Pipeline.to_program edited) in
  check "edit preserves the golden output bit-for-bit"
    (Checkpoint.fingerprint_of_golden golden_base
    = Checkpoint.fingerprint_of_golden golden_edit);
  let cold = Compose.run store ~ir:base golden_base in
  check
    (Printf.sprintf "panel kernel peels into %d sections (got %d)" nb
       cold.Compose.sections_total)
    (cold.Compose.sections_total = nb);
  let direct_edit = Executor.ground_truth_model model golden_edit in
  let partial = Compose.run store ~ir:edited golden_edit in
  let per_section = Golden.sites golden_edit / nb * partial.Compose.width in
  check "one-section edit is a partial hit" (partial.Compose.provenance = Compose.Partial);
  check
    (Printf.sprintf "only the edited section re-executes (%d cases, expected %d)"
       partial.Compose.cases_executed per_section)
    (partial.Compose.cases_executed = per_section);
  check "edited composed bytes = edited direct"
    (Bytes.equal partial.Compose.outcomes direct_edit.Ground_truth.outcomes);
  rm_rf root

(* ------------------------------------------------------------------ *)
(* Part 3: daemon — submit, resubmit identical, resubmit one edit.     *)

let get_ok what = function
  | Ok v -> v
  | Error (e : Client.error) ->
      check what false;
      failwith (Printf.sprintf "%s: daemon error %s: %s" what e.Client.code e.Client.message)

let daemon_part () =
  let state_dir = fresh_dir "ftb-compose-daemon" in
  let nb = 4 and n = 16 in
  (* The "benchmark" the daemon resolves is a mutable slot, so
     resubmitting after flipping it models a developer editing one
     section of a program between submissions. *)
  let current = ref (panel_kernel ~n ~nb ~edit_first:false) in
  let resolve name =
    if name = "smoke.panels" then Ftb_ir.Pipeline.to_program (!current ())
    else invalid_arg (Printf.sprintf "unknown benchmark %S" name)
  in
  let resolve_ir name = if name = "smoke.panels" then Some (!current ()) else None in
  (* The wave-runner factory is consulted exactly once per job that
     reaches the engine — a submit-time full hit must never get there. *)
  let engine_jobs = ref 0 in
  let config =
    {
      (Server.default_config ~state_dir) with
      Server.resolve;
      resolve_ir;
      wave_runner =
        Some
          (fun ~job_id:_ ~bench:_ ~fuel:_ ~model:_ ~golden:_ ->
            incr engine_jobs;
            None);
    }
  in
  let t = Server.create config in
  Server.start t;
  let server_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Thread.create (fun () -> Server.serve_connection t server_fd) () in
  let client = Client.of_fd client_fd in
  let spec =
    { (Job.default_spec ~bench:"smoke.panels") with Job.shard_size = 128 }
  in
  let model = spec.Job.model in
  let golden_base = Golden.run (Ftb_ir.Pipeline.to_program (panel_kernel ~n ~nb ~edit_first:false ())) in
  let direct_base = Executor.ground_truth_model model golden_base in
  let ckpt_bytes id golden =
    match
      Checkpoint.load
        ~path:(Job.checkpoint_path ~state_dir id)
        ~shard_size:spec.Job.shard_size golden
    with
    | state -> if Checkpoint.is_complete state then Some state.Checkpoint.outcomes else None
    | exception _ -> None
  in

  (* Cold submission: runs for real, harvested into the store. *)
  let id1 = get_ok "daemon: cold submit" (Client.submit client spec) in
  let final1 = get_ok "daemon: cold watch" (Client.watch client id1) in
  check "daemon: cold job completed" (final1.Job.status = Job.Completed);
  check "daemon: cold job ran the engine" (!engine_jobs = 1);
  check "daemon: cold job served_from_cache = none" (final1.Job.cache = Job.Cache_none);
  check "daemon: cold checkpoint bytes = direct"
    (ckpt_bytes id1 golden_base = Some direct_base.Ground_truth.outcomes);

  (* Byte-identical resubmission: served whole at submit time — job is
     already Completed, the engine (and thus pool/fleet) never sees it. *)
  let id2 = get_ok "daemon: resubmit identical" (Client.submit client spec) in
  check "daemon: resubmission is a fresh job" (id2 <> id1);
  let job2 = get_ok "daemon: resubmission status" (Client.status client id2) in
  check "daemon: resubmission already completed" (job2.Job.status = Job.Completed);
  check "daemon: resubmission served_from_cache = full (over the wire)"
    (job2.Job.cache = Job.Cache_full);
  check "daemon: full hit scheduled no engine work" (!engine_jobs = 1);
  check "daemon: full-hit counts cover the case space"
    (job2.Job.counts.Job.cases_done = job2.Job.counts.Job.cases_total
    && job2.Job.counts.Job.cases_total
       = Golden.sites golden_base * Models.spec_width model
    && job2.Job.counts.Job.masked + job2.Job.counts.Job.sdc + job2.Job.counts.Job.crash
      = job2.Job.counts.Job.cases_total);
  check "daemon: full-hit checkpoint bytes = direct"
    (ckpt_bytes id2 golden_base = Some direct_base.Ground_truth.outcomes);
  let final2 = get_ok "daemon: watch of served job" (Client.watch client id2) in
  check "daemon: watch of served job returns done immediately"
    (final2.Job.status = Job.Completed && final2.Job.cache = Job.Cache_full);

  (* One-section edit: a reduced campaign (only the missed section's
     shards), still byte-identical to the edited program's direct run. *)
  current := panel_kernel ~n ~nb ~edit_first:true;
  let golden_edit = Golden.run (Ftb_ir.Pipeline.to_program (!current ())) in
  let direct_edit = Executor.ground_truth_model model golden_edit in
  let id3 = get_ok "daemon: submit edited" (Client.submit client spec) in
  let final3 = get_ok "daemon: watch edited" (Client.watch client id3) in
  check "daemon: edited job completed" (final3.Job.status = Job.Completed);
  check "daemon: edited job served_from_cache = partial"
    (final3.Job.cache = Job.Cache_partial);
  check "daemon: edited job ran the engine" (!engine_jobs = 2);
  check "daemon: edited checkpoint bytes = edited direct"
    (ckpt_bytes id3 golden_edit = Some direct_edit.Ground_truth.outcomes);

  get_ok "daemon: shutdown" (Client.shutdown client);
  Server.join t;
  Client.close client;
  Thread.join conn;
  rm_rf state_dir

let () =
  direct_part ();
  edit_part ();
  daemon_part ();
  if !failures > 0 then begin
    Printf.printf "%d compose smoke failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "compose smoke ok"
